#!/usr/bin/env bash
# Pre-PR gate: everything CI would run, in the order that fails fastest.
#
#   ./scripts/check.sh
#
# Builds release artifacts, runs the full test suite, then lints (clippy at
# deny-warnings) and checks formatting. Run from anywhere; it cd's to the
# workspace root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace --no-default-features  (serial fallback)"
cargo test -q --workspace --no-default-features

echo "==> cargo test -p tafloc-serve --test protocol_fuzz  (decoder fuzz)"
cargo test -q -p tafloc-serve --test protocol_fuzz

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> all checks passed"
