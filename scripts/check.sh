#!/usr/bin/env bash
# Pre-PR gate: everything CI would run, in the order that fails fastest.
#
#   ./scripts/check.sh
#
# Builds release artifacts, runs the full test suite, then lints (clippy at
# deny-warnings) and checks formatting. Run from anywhere; it cd's to the
# workspace root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace --no-default-features  (serial fallback)"
cargo test -q --workspace --no-default-features

echo "==> cargo test -p tafloc-serve --test protocol_fuzz  (decoder fuzz)"
cargo test -q -p tafloc-serve --test protocol_fuzz

# The wire crate is the serialization boundary for the whole serve plane;
# gate it by name in both feature configurations, plus the end-to-end
# conformance suite (round-trips, derive byte-compat, version negotiation).
echo "==> cargo test -q -p taf-wire  (wire codecs)"
cargo test -q -p taf-wire

echo "==> cargo test -q -p taf-wire --no-default-features  (wire codecs, serial)"
cargo test -q -p taf-wire --no-default-features

echo "==> cargo test -q -p tafloc-serve --test wire_roundtrip  (wire conformance)"
cargo test -q -p tafloc-serve --test wire_roundtrip

echo "==> cargo test -q -p tafloc-serve --test wire_roundtrip --no-default-features"
cargo test -q -p tafloc-serve --test wire_roundtrip --no-default-features

# The planner is consumed by serve/cli/testkit with default features off, so
# gate that configuration (and its lints/formatting) by name — a workspace run
# with default features would not catch a planner regression behind a feature.
# Sharding gates, by name: the ring proptests, the admission-control
# conservation test, and the kill-9/restart battery (shard_serving runs the
# daemon at both --shards 1 and --shards 4).
echo "==> cargo test -q -p tafloc-serve --test shard_ring  (shard ring proptests)"
cargo test -q -p tafloc-serve --test shard_ring

echo "==> cargo test -q -p tafloc-ingest --test backpressure  (admission conservation)"
cargo test -q -p tafloc-ingest --test backpressure

echo "==> cargo test -q -p tafloc-serve --test shard_serving  (sharded daemon battery)"
cargo test -q -p tafloc-serve --test shard_serving

# crash-harness: the kill -9 battery in release mode — journaled survey
# replay, capture-round recovery, plan/warm resumption, all with torn-write
# damage injected between kill and restart — plus the store-corruption
# proptests and the scenario-level crash knobs against their goldens.
echo "==> cargo test -q --release -p tafloc-serve --test crash_harness  (kill -9 battery)"
cargo test -q --release -p tafloc-serve --test crash_harness

echo "==> cargo test -q --release -p tafloc-serve --test restart  (recovery battery)"
cargo test -q --release -p tafloc-serve --test restart

echo "==> cargo test -q --release -p tafloc-serve --test store_robustness  (corruption proptests)"
cargo test -q --release -p tafloc-serve --test store_robustness

echo "==> cargo test -q -p taf-plan --no-default-features  (planner)"
cargo test -q -p taf-plan --no-default-features

echo "==> cargo clippy -p taf-plan --all-targets -- -D warnings  (planner)"
cargo clippy -q -p taf-plan --all-targets -- -D warnings

echo "==> cargo fmt -p taf-plan --check  (planner)"
cargo fmt -p taf-plan --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> all checks passed"
