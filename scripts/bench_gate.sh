#!/usr/bin/env bash
# Solver performance gate: re-runs solver_bench and fails if the fresh
# 1-thread wall time regresses more than BENCH_GATE_THRESHOLD (default 1.25,
# i.e. +25%) against the committed BENCH_solver.json.
#
#   ./scripts/bench_gate.sh
#
# The committed file is the tracked baseline; the fresh run overwrites it in
# the working tree (CI uploads the fresh file as an artifact, it is never
# committed from CI). Machine-to-machine variance is real — the threshold is
# deliberately loose, and BENCH_GATE_THRESHOLD can be raised for a known-slow
# runner. A *faster* machine trivially passes; the gate only catches changes
# that make the solver substantially slower on comparable hardware.

set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${BENCH_GATE_THRESHOLD:-1.25}"
baseline=BENCH_solver.json

if [ ! -f "$baseline" ]; then
  echo "bench_gate: no committed $baseline to compare against" >&2
  exit 1
fi

# The canonical emitter writes one field per line in a fixed order, with the
# cold 1-thread phase first; the first wall_ms / stop_reason belong to it.
wall_ms_1() { grep -m1 '"wall_ms"' "$1" | tr -cd '0-9.'; }
stop_reason_1() { grep -m1 '"stop_reason"' "$1" | sed 's/.*: *"\([^"]*\)".*/\1/'; }
# Top-level scalar field (key before value, value may be fractional).
scalar() { grep -m1 "\"$2\"" "$1" | sed 's/.*: *//' | tr -cd '0-9.'; }

old_ms="$(wall_ms_1 "$baseline")"
old_stop="$(stop_reason_1 "$baseline" || true)"
old_speedup="$(scalar "$baseline" max_thread_speedup || true)"
echo "bench_gate: committed cold 1-thread wall time: ${old_ms} ms (threshold x${threshold})"

cargo run --release -p taf-bench --bin solver_bench

new_ms="$(wall_ms_1 "$baseline")"
new_stop="$(stop_reason_1 "$baseline" || true)"
new_speedup="$(scalar "$baseline" max_thread_speedup || true)"
echo "bench_gate: fresh cold 1-thread wall time: ${new_ms} ms"

# Convergence is part of the recorded contract: once the committed baseline
# says the solver converges, a fresh run that stops on max_iters is a real
# behavioral regression (the timing comparison would be meaningless anyway —
# the two runs did different amounts of work). Hard-fail it. A baseline that
# never converged keeps the old advisory behavior.
if [ "$new_stop" = "max_iters" ] && [ "$old_stop" = "converged" ]; then
  echo "bench_gate: FAIL — solver no longer converges (stop_reason went" \
       "converged -> max_iters); check final_rel_delta in $baseline" >&2
  exit 1
elif [ "$new_stop" = "max_iters" ]; then
  echo "bench_gate: note — solver stops at max_iters (as in the committed baseline)"
fi

if awk -v new="$new_ms" -v old="$old_ms" -v t="$threshold" \
    'BEGIN { exit !(new <= old * t) }'; then
  echo "bench_gate: OK (${new_ms} ms <= ${old_ms} ms x ${threshold})"
else
  echo "bench_gate: FAIL — solver regressed: ${new_ms} ms > ${old_ms} ms x ${threshold}" >&2
  exit 1
fi

# Parallel-scaling watchdog (warn-only): a >25% drop in the max-thread speedup
# against the committed baseline means the kernels lost their fan-out, even if
# single-thread wall time is fine. Warn-only because CI containers routinely
# have fewer cores than the thread counts benched (the JSON flags those phases
# `oversubscribed`) — scaling numbers from such a box are scheduling noise.
if [ -n "$old_speedup" ] && [ -n "$new_speedup" ]; then
  if awk -v new="$new_speedup" -v old="$old_speedup" 'BEGIN { exit !(new >= old * 0.75) }'; then
    echo "bench_gate: scaling OK (max-thread speedup ${new_speedup}x vs ${old_speedup}x committed)"
  else
    echo "bench_gate: WARNING — max-thread speedup dropped >25%:" \
         "${new_speedup}x vs ${old_speedup}x committed; check threads_available" \
         "and the oversubscribed flags in $baseline" >&2
  fi
fi

# Warm-start visibility: surface the recorded cold/warm iteration counts so a
# log reader sees the adaptive-refresh win (the CI assertion lives in the
# bench-smoke job).
cold_iters="$(scalar "$baseline" cold_iterations || true)"
warm_iters="$(scalar "$baseline" warm_iterations || true)"
if [ -n "$cold_iters" ] && [ -n "$warm_iters" ]; then
  echo "bench_gate: warm refresh ${warm_iters} iters vs ${cold_iters} cold"
fi

# ---------------------------------------------------------------------------
# Serve-throughput gate (warn-only): re-runs serve_bench --quick and warns if
# v1 or v2 locate throughput drops below baseline/threshold. Throughput on a
# loaded CI runner is far noisier than solver wall time, so this never fails
# the build — it exists to make wire-protocol regressions visible in the log.
# ---------------------------------------------------------------------------

serve_baseline=BENCH_serve.json
# Strip through the key and colon before keeping digits — the key itself
# contains digits ("v1_...") that would otherwise prefix the value.
field() { grep -m1 "\"$2\"" "$1" | sed 's/.*: *//' | tr -cd '0-9.'; }

if [ ! -f "$serve_baseline" ] || ! grep -q '"v1_locate_req_per_s"' "$serve_baseline"; then
  echo "bench_gate: no serve throughput baseline — creating one with serve_bench --quick"
  cargo run --release -p taf-bench --bin serve_bench -- --quick
else
  old_v1="$(field "$serve_baseline" v1_locate_req_per_s)"
  old_v2="$(field "$serve_baseline" v2_locate_req_per_s)"
  echo "bench_gate: committed serve throughput: v1 ${old_v1} req/s, v2 ${old_v2} req/s (warn below /${threshold})"
  cargo run --release -p taf-bench --bin serve_bench -- --quick
  new_v1="$(field "$serve_baseline" v1_locate_req_per_s)"
  new_v2="$(field "$serve_baseline" v2_locate_req_per_s)"
  echo "bench_gate: fresh serve throughput: v1 ${new_v1} req/s, v2 ${new_v2} req/s"
  for proto in v1 v2; do
    old_var="old_$proto"; new_var="new_$proto"
    if awk -v new="${!new_var}" -v old="${!old_var}" -v t="$threshold" \
        'BEGIN { exit !(new * t >= old) }'; then
      echo "bench_gate: serve $proto OK (${!new_var} req/s vs ${!old_var} req/s baseline)"
    else
      echo "bench_gate: WARNING — serve $proto throughput regressed:" \
           "${!new_var} req/s < ${!old_var} req/s / ${threshold}" >&2
    fi
  done
fi

# ---------------------------------------------------------------------------
# Sharding phases (warn-only): the fresh serve run must include the many-site
# sharded phase, and a fresh ingest run must show the sharded credit queues
# shedding ~nothing silently (every dropped sample gets an explicit verdict).
# Both warn rather than fail — these are correctness-shaped signals surfaced
# through the bench artifacts, and the real assertions live in the test
# batteries (shard_serving.rs, backpressure.rs).
# ---------------------------------------------------------------------------

if grep -q '"sharded"' "$serve_baseline"; then
  sharded_rps="$(field "$serve_baseline" locate_req_per_s)"
  echo "bench_gate: sharded serve phase present (${sharded_rps} locate req/s across shards)"
else
  echo "bench_gate: WARNING — $serve_baseline has no sharded many-site phase" >&2
fi

ingest_baseline=BENCH_ingest.json
cargo run --release -p taf-bench --bin ingest_bench -- --quick
if grep -q '"sharded_credit"' "$ingest_baseline"; then
  silent="$(field "$ingest_baseline" silent_shed_fraction)"
  if awk -v s="${silent:-1}" 'BEGIN { exit !(s <= 0.05) }'; then
    echo "bench_gate: sharded ingest OK (silent shed fraction ${silent} <= 0.05)"
  else
    echo "bench_gate: WARNING — sharded credit queues shed ${silent} of samples" \
         "silently (expected <= 0.05)" >&2
  fi
else
  echo "bench_gate: WARNING — $ingest_baseline has no sharded_credit phase" >&2
fi

# ---------------------------------------------------------------------------
# Journal-cost watchdog (warn-only): the fresh ingest run must include the
# journaled phase (sharded admission with the write-ahead log on the admitted
# path), and journaling must keep the admitted rate within the gate threshold
# of the unjournaled sharded baseline from the same run. Warn-only: rate
# ratios on a loaded runner are noisy, and the durability correctness
# assertions live in crash_harness.rs / store_robustness.rs.
# ---------------------------------------------------------------------------

if grep -q '"journaled"' "$ingest_baseline"; then
  wal_ratio="$(field "$ingest_baseline" wal_admitted_ratio_vs_sharded)"
  if awk -v r="${wal_ratio:-0}" -v t="$threshold" 'BEGIN { exit !(r * t >= 1.0) }'; then
    echo "bench_gate: journaled ingest OK (admitted rate ${wal_ratio} of unjournaled baseline, >= 1/${threshold})"
  else
    echo "bench_gate: WARNING — write-ahead journaling cut the admitted rate to" \
         "${wal_ratio} of the unjournaled sharded baseline (expected >= 1/${threshold})" >&2
  fi
else
  echo "bench_gate: WARNING — $ingest_baseline has no journaled phase" >&2
fi
