//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` with spawns executed immediately on
//! the calling thread. The one consumer (`taf-bench`'s seed sweep) only
//! relies on scoped closures borrowing locals, not on actual concurrency.

pub mod thread {
    //! Scoped "threads" that run inline.

    use std::marker::PhantomData;

    /// Runs `f` with a scope whose spawns execute serially; returns its
    /// result as `Ok` (a panicking spawn propagates the panic directly
    /// instead of surfacing it here).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let scope = Scope { _marker: PhantomData };
        Ok(f(&scope))
    }

    /// Spawn handle container, mirroring `crossbeam::thread::Scope`.
    #[derive(Debug)]
    pub struct Scope<'env> {
        _marker: PhantomData<&'env mut &'env ()>,
    }

    impl<'env> Scope<'env> {
        /// Runs `f` immediately and returns its result wrapped in a handle.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<T>
        where
            F: FnOnce(&Scope<'env>) -> T,
        {
            ScopedJoinHandle { result: f(self) }
        }
    }

    /// Handle to a completed inline "thread".
    #[derive(Debug)]
    pub struct ScopedJoinHandle<T> {
        result: T,
    }

    impl<T> ScopedJoinHandle<T> {
        /// Returns the already-computed result.
        pub fn join(self) -> std::thread::Result<T> {
            Ok(self.result)
        }
    }
}
