//! Offline stand-in for `rayon`.
//!
//! Executes everything serially on the calling thread. The workspace's
//! parallel kernels are documented as bit-identical to their serial
//! fallbacks, so running the `par_*` entry points as plain iterators
//! changes nothing observable; `current_num_threads()` returning 1 also
//! steers the guarded call sites straight onto their serial paths.

use std::fmt;

/// Number of worker threads (always 1: everything runs serially).
pub fn current_num_threads() -> usize {
    1
}

/// A "pool" that runs closures inline on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    _threads: usize,
}

impl ThreadPool {
    /// Runs `op` on the calling thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder { threads: 0 }
    }

    /// Records (and otherwise ignores) the requested thread count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Builds the inline pool; never fails.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { _threads: self.threads })
    }
}

/// Build error type (never constructed by the stub).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("stub rayon pools cannot fail to build")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Parallel-iterator extension traits, backed by std iterators.
pub mod prelude {
    /// `par_iter` / `par_iter_mut` / `par_chunks_mut` on slices, returning
    /// ordinary sequential iterators.
    pub trait ParallelSliceStub<T> {
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceStub<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}
