//! Offline stand-in for `serde_json`.
//!
//! Text layer over the stub `serde` crate's [`Value`] model: a strict JSON
//! parser, a compact renderer with round-tripping float output, and the
//! typed `to_string` / `from_str` entry points the workspace uses.

use serde::de::DeserializeOwned;
use serde::{Serialize, ValueDeserializer};
use std::fmt;

pub use serde::Value;

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes any [`Serialize`] type to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    match value.to_value() {
        Some(v) => {
            let mut out = String::new();
            render(&v, &mut out);
            Ok(out)
        }
        None => Err(Error::new("serde_json stub: to_string unavailable for this type")),
    }
}

/// Parses JSON text into any [`DeserializeOwned`] type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::deserialize(ValueDeserializer { value: &value }).map_err(|e: serde::StubError| Error(e.0))
}

/// Builds a [`Value`] from a literal, like `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            // Integral values render as integers; everything else uses
            // Rust's shortest round-tripping float formatting.
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => render_str(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_str(k, out);
                out.push(':');
                render(item, out);
            }
            out.push('}');
        }
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Maximum nesting depth; protocol fuzzing feeds arbitrary bytes here and a
/// recursive-descent parser must not blow the stack on `[[[[…`.
const MAX_DEPTH: usize = 128;

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("non-UTF-8 number"))?;
        let n: f64 =
            text.parse().map_err(|_| Error::new(format!("invalid number `{text}`")))?;
        if n.is_finite() {
            Ok(Value::Num(n))
        } else {
            Err(Error::new(format!("number `{text}` overflows f64")))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogates degrade to the replacement character;
                            // nothing in this workspace emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(Error::new("control character in string"));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: take the full scalar from the source.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("non-UTF-8 string"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}
