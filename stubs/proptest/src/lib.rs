//! Offline stand-in for `proptest`.
//!
//! Runs each property as a fixed number of deterministically seeded random
//! cases (default 16, override with `PROPTEST_CASES`) instead of upstream's
//! shrinking search. Supports the strategy surface this workspace uses:
//! integer/float ranges, tuples, `collection::vec`, `prop_map`,
//! `prop_flat_map`, and the `proptest!`/`prop_assert*`/`prop_assume!`
//! macros.

/// Deterministic SplitMix64 case generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for one numbered case.
    pub fn for_case(case: u64) -> Self {
        TestRng { state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5151_7ead_5151_7ead }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

/// Cases per property (`PROPTEST_CASES` env override).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(16)
}

/// Why one generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::TestRng;

    /// A recipe for generating values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty range strategy");
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() - *self.start()) as u64 + 1;
                    self.start() + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_strategies!(usize, u64, u32, u16);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares `#[test]` functions that run a property over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                for __case in 0..$crate::cases() {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("property failed at case {}: {}", __case, __msg)
                        }
                    }
                }
            }
        )+
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
