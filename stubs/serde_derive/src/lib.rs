//! Hand-rolled offline stand-in for `serde_derive`.
//!
//! Generates working `Serialize`/`Deserialize` impls against the stub
//! `serde` crate's JSON `Value` model. Supports exactly the subset this
//! workspace uses: non-generic braced structs and enums with unit or
//! struct variants, plus the attributes `#[serde(default)]`,
//! `#[serde(default = "path")]`, `#[serde(tag = "...")]` and
//! `#[serde(rename_all = "kebab-case")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_serialize(&c).parse().expect("stub serde_derive: generated Serialize must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_deserialize(&c).parse().expect("stub serde_derive: generated Deserialize must parse")
}

struct Container {
    name: String,
    tag: Option<String>,
    rename_all: bool,
    default: bool,
    kind: Kind,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    ty: String,
    /// Fallback expression from `#[serde(default)]` / `#[serde(default = "f")]`.
    default: Option<String>,
    optional: bool,
}

struct Variant {
    name: String,
    unit: bool,
    fields: Vec<Field>,
}

#[derive(Default)]
struct SerdeAttr {
    tag: Option<String>,
    rename_all: bool,
    /// `Some(None)` for bare `default`, `Some(Some(path))` for `default = "path"`.
    default: Option<Option<String>>,
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Strips the surrounding quotes from a string-literal token.
fn literal_str(t: &TokenTree) -> Option<String> {
    let s = t.to_string();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        Some(s[1..s.len() - 1].to_string())
    } else {
        None
    }
}

/// Accumulates `#[serde(...)]` keys out of one attribute's bracket content.
fn scan_serde_attr(attr: TokenStream, out: &mut SerdeAttr) {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match toks.first().and_then(ident_of) {
        Some(name) if name == "serde" => {}
        _ => return,
    }
    let args = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let mut items: Vec<Vec<TokenTree>> = vec![Vec::new()];
    for t in args {
        if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
            items.push(Vec::new());
        } else {
            items.last_mut().unwrap().push(t);
        }
    }
    for item in items {
        let Some(key) = item.first().and_then(ident_of) else { continue };
        let val = item.get(2).and_then(literal_str);
        match key.as_str() {
            "tag" => out.tag = val,
            "rename_all" => out.rename_all = val.as_deref() == Some("kebab-case"),
            "default" => out.default = Some(val),
            _ => {}
        }
    }
}

/// Consumes leading `#[...]` attributes at `*i`, folding serde ones into `out`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize, out: &mut SerdeAttr) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            scan_serde_attr(g.stream(), out);
        }
        *i += 2;
    }
}

/// Consumes `pub` / `pub(...)` at `*i`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if ident_of(&toks[*i]).as_deref() == Some("pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse_container(input: TokenStream) -> Container {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attr = SerdeAttr::default();
    skip_attrs(&toks, &mut i, &mut attr);
    skip_vis(&toks, &mut i);
    let kw = ident_of(&toks[i]).expect("stub serde_derive: expected `struct` or `enum`");
    i += 1;
    let name = ident_of(&toks[i]).expect("stub serde_derive: expected a type name");
    i += 1;
    let body = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("stub serde_derive: generic types are unsupported")
            }
            Some(_) => i += 1,
            None => panic!("stub serde_derive: only braced structs/enums are supported"),
        }
    };
    let kind = match kw.as_str() {
        "struct" => Kind::Struct(parse_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("stub serde_derive: cannot derive for `{other}`"),
    };
    Container { name, tag: attr.tag, rename_all: attr.rename_all, default: attr.default.is_some(), kind }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let mut attr = SerdeAttr::default();
        skip_attrs(&toks, &mut i, &mut attr);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = ident_of(&toks[i])
            .unwrap_or_else(|| panic!("stub serde_derive: expected a field name, got {}", toks[i]));
        i += 1;
        assert!(
            matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "stub serde_derive: tuple structs are unsupported"
        );
        i += 1;
        let mut depth = 0i32;
        let mut ty = String::new();
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                let ch = p.as_char();
                if ch == ',' && depth == 0 {
                    i += 1;
                    break;
                }
                if ch == '<' {
                    depth += 1;
                }
                if ch == '>' {
                    depth -= 1;
                }
            }
            ty.push_str(&toks[i].to_string());
            // `::` arrives as two puncts with Joint spacing; a space between
            // them would emit an unparsable `: :`.
            match &toks[i] {
                TokenTree::Punct(p) if p.spacing() == proc_macro::Spacing::Joint => {}
                _ => ty.push(' '),
            }
            i += 1;
        }
        let optional = ty.starts_with("Option ");
        let default = attr.default.map(|d| match d {
            Some(path) => format!("{path} ()"),
            None => "::core::default::Default::default ()".to_string(),
        });
        fields.push(Field { name, ty, default, optional });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let mut attr = SerdeAttr::default();
        skip_attrs(&toks, &mut i, &mut attr);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i])
            .unwrap_or_else(|| panic!("stub serde_derive: expected a variant name, got {}", toks[i]));
        i += 1;
        let mut unit = true;
        let mut fields = Vec::new();
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            assert!(
                g.delimiter() == Delimiter::Brace,
                "stub serde_derive: tuple variants are unsupported"
            );
            fields = parse_fields(g.stream());
            unit = false;
            i += 1;
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, unit, fields });
    }
    variants
}

fn kebab(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn variant_wire_name(c: &Container, v: &Variant) -> String {
    if c.rename_all {
        kebab(&v.name)
    } else {
        v.name.clone()
    }
}

fn push_field_pairs(out: &mut String, fields: &[Field], accessor: impl Fn(&str) -> String) {
    for f in fields {
        out.push_str(&format!(
            "__obj.push((::std::string::String::from(\"{}\"), ::serde::Serialize::to_value({})?));",
            f.name,
            accessor(&f.name)
        ));
    }
}

fn gen_serialize(c: &Container) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "#[automatically_derived] impl ::serde::Serialize for {} {{ \
         fn to_value(&self) -> ::core::option::Option<::serde::Value> {{",
        c.name
    ));
    match &c.kind {
        Kind::Struct(fields) => {
            s.push_str(
                "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();",
            );
            push_field_pairs(&mut s, fields, |f| format!("&self.{f}"));
            s.push_str("::core::option::Option::Some(::serde::Value::Obj(__obj))");
        }
        Kind::Enum(variants) => {
            s.push_str("match self {");
            for v in variants {
                let wire = variant_wire_name(c, v);
                let pat = if v.unit {
                    format!("{}::{}", c.name, v.name)
                } else {
                    let binds: Vec<&str> = v.fields.iter().map(|f| f.name.as_str()).collect();
                    format!("{}::{} {{ {} }}", c.name, v.name, binds.join(", "))
                };
                s.push_str(&format!("{pat} => {{"));
                match (&c.tag, v.unit) {
                    (Some(tag), _) => {
                        s.push_str(
                            "let mut __obj: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();",
                        );
                        s.push_str(&format!(
                            "__obj.push((::std::string::String::from(\"{tag}\"), \
                             ::serde::Value::Str(::std::string::String::from(\"{wire}\"))));"
                        ));
                        push_field_pairs(&mut s, &v.fields, |f| f.to_string());
                        s.push_str("::core::option::Option::Some(::serde::Value::Obj(__obj))");
                    }
                    (None, true) => {
                        s.push_str(&format!(
                            "::core::option::Option::Some(::serde::Value::Str(\
                             ::std::string::String::from(\"{wire}\")))"
                        ));
                    }
                    (None, false) => {
                        s.push_str(
                            "let mut __obj: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();",
                        );
                        push_field_pairs(&mut s, &v.fields, |f| f.to_string());
                        s.push_str(&format!(
                            "::core::option::Option::Some(::serde::Value::Obj(::std::vec![(\
                             ::std::string::String::from(\"{wire}\"), \
                             ::serde::Value::Obj(__obj))]))"
                        ));
                    }
                }
                s.push('}');
            }
            s.push('}');
        }
    }
    s.push_str("} }");
    s
}

/// `match` expression that extracts and deserializes one field of `fields`
/// from the object bound to `__src`, honouring defaults.
fn field_expr(c: &Container, f: &Field, src: &str) -> String {
    let err = "<__D::Error as ::serde::de::Error>::custom";
    let fallback = if let Some(d) = &f.default {
        d.clone()
    } else if f.optional {
        "::core::option::Option::None".to_string()
    } else if c.default {
        format!(
            "{{ let __dflt: {} = ::core::default::Default::default(); __dflt.{} }}",
            c.name, f.name
        )
    } else {
        format!(
            "return ::core::result::Result::Err({err}(\"{}: missing field `{}`\"))",
            c.name, f.name
        )
    };
    format!(
        "match ::serde::__stub_field({src}, \"{fname}\") {{ \
           ::core::option::Option::Some(__x) => match ::serde::__stub_de::<{ty}>(__x) {{ \
             ::core::result::Result::Ok(__ok) => __ok, \
             ::core::result::Result::Err(__e) => return ::core::result::Result::Err({err}(\
               ::std::format!(\"{cname}.{fname}: {{}}\", __e))), \
           }}, \
           ::core::option::Option::None => {fallback}, \
         }}",
        fname = f.name,
        ty = f.ty,
        cname = c.name,
    )
}

fn struct_literal(c: &Container, path: &str, fields: &[Field], src: &str) -> String {
    let mut s = format!("{path} {{");
    for f in fields {
        s.push_str(&format!("{}: {},", f.name, field_expr(c, f, src)));
    }
    s.push('}');
    s
}

fn gen_deserialize(c: &Container) -> String {
    let err = "<__D::Error as ::serde::de::Error>::custom";
    let mut s = String::new();
    s.push_str(&format!(
        "#[automatically_derived] impl<'de> ::serde::Deserialize<'de> for {0} {{ \
         fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) \
         -> ::core::result::Result<Self, __D::Error> {{ \
         let __v = ::serde::Deserializer::stub_value(&__d);",
        c.name
    ));
    match &c.kind {
        Kind::Struct(fields) => {
            s.push_str(&format!(
                "if !::serde::__stub_is_obj(__v) {{ return ::core::result::Result::Err({err}(\
                 \"{}: expected a JSON object\")); }}",
                c.name
            ));
            s.push_str(&format!(
                "::core::result::Result::Ok({})",
                struct_literal(c, &c.name, fields, "__v")
            ));
        }
        Kind::Enum(variants) => {
            if let Some(tag) = &c.tag {
                s.push_str(&format!(
                    "let __tag: &str = match ::serde::__stub_field(__v, \"{tag}\") {{ \
                       ::core::option::Option::Some(::serde::Value::Str(__s)) => __s.as_str(), \
                       _ => return ::core::result::Result::Err({err}(\
                         \"{0}: missing or non-string tag `{tag}`\")), \
                     }}; match __tag {{",
                    c.name
                ));
                for v in variants {
                    let wire = variant_wire_name(c, v);
                    let body = if v.unit {
                        format!("{}::{}", c.name, v.name)
                    } else {
                        struct_literal(c, &format!("{}::{}", c.name, v.name), &v.fields, "__v")
                    };
                    s.push_str(&format!("\"{wire}\" => ::core::result::Result::Ok({body}),"));
                }
                s.push_str(&format!(
                    "__other => ::core::result::Result::Err({err}(::std::format!(\
                     \"{}: unknown variant `{{}}`\", __other))), }}",
                    c.name
                ));
            } else {
                s.push_str("match __v { ::serde::Value::Str(__s) => match __s.as_str() {");
                for v in variants.iter().filter(|v| v.unit) {
                    let wire = variant_wire_name(c, v);
                    s.push_str(&format!(
                        "\"{wire}\" => ::core::result::Result::Ok({}::{}),",
                        c.name, v.name
                    ));
                }
                s.push_str(&format!(
                    "__other => ::core::result::Result::Err({err}(::std::format!(\
                     \"{0}: unknown variant `{{}}`\", __other))), }},",
                    c.name
                ));
                s.push_str(
                    "::serde::Value::Obj(__pairs) if __pairs.len() == 1 => { \
                     let __inner = &__pairs[0].1; match __pairs[0].0.as_str() {",
                );
                for v in variants {
                    let wire = variant_wire_name(c, v);
                    let body = if v.unit {
                        format!("{}::{}", c.name, v.name)
                    } else {
                        struct_literal(c, &format!("{}::{}", c.name, v.name), &v.fields, "__inner")
                    };
                    s.push_str(&format!("\"{wire}\" => ::core::result::Result::Ok({body}),"));
                }
                s.push_str(&format!(
                    "__other => ::core::result::Result::Err({err}(::std::format!(\
                     \"{0}: unknown variant `{{}}`\", __other))), }} }},",
                    c.name
                ));
                s.push_str(&format!(
                    "_ => ::core::result::Result::Err({err}(\
                     \"{0}: expected a variant name or single-key object\")), }}",
                    c.name
                ));
            }
        }
    }
    s.push_str("} }");
    s
}
