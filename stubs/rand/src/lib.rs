//! Offline stand-in for `rand` 0.9.
//!
//! A deterministic SplitMix64 generator behind the rand 0.9 call surface
//! this workspace uses (`StdRng::seed_from_u64`, `Rng::random`,
//! `Rng::random_range`, `SliceRandom::shuffle`). The sequence differs from
//! upstream `StdRng`, which is why every stochastic baseline in this repo
//! is blessed under whichever backend the build uses.

/// Concrete generators.
pub mod rngs {
    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

/// Raw 64-bit generation, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014): tiny, full-period, and good
        // enough for test/simulation noise.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Types samplable from the standard distribution (stub's `StandardUniform`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = self.end.checked_sub(self.start).expect("empty range");
                assert!(span > 0, "cannot sample from an empty range");
                // Modulo bias is irrelevant at stub quality.
                self.start + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice utilities, mirroring `rand::seq`.
pub mod seq {
    /// In-place shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: super::Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: super::Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
