//! Offline stand-in for `parking_lot`, backed by `std::sync`.

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutex with `parking_lot`'s panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Locks, ignoring poisoning (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
