//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture this stub routes everything
//! through one order-preserving JSON [`Value`] model: `Serialize` renders a
//! type *to* a `Value`, `Deserialize` rebuilds a type *from* one, and the
//! companion `serde_json` stub converts between `Value` and text. The
//! surface is exactly what this workspace touches — no more.
//!
//! One deliberate gap: `u8` does not serialize. `serde_json::to_string(&0u8)`
//! failing is the workspace's sentinel for "running against the stub"
//! (see `crates/serve/tests/restart.rs`), which keeps the networked
//! end-to-end tests gated off in offline builds.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON document. Objects preserve insertion order so rendered output is
/// deterministic and matches the declared field order of derived types.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any JSON number (integers are whole-valued floats).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object (`None` for other variants).
    pub fn field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable key lookup in an object.
    pub fn field_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Obj(pairs) => pairs.iter_mut().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization to the stub [`Value`] model. `None` means the type cannot
/// be serialized by the stub (the `u8` sentinel, or NaN keys etc.).
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_value(&self) -> Option<Value>;
}

/// A source of one borrowed [`Value`] to deserialize from.
pub trait Deserializer<'de> {
    /// Error type surfaced to the caller.
    type Error: de::Error;
    /// The parsed document this deserializer wraps.
    fn stub_value(&self) -> &'de Value;
}

/// Deserialization from the stub [`Value`] model.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from the deserializer's value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

pub mod de {
    //! Deserialization error plumbing, mirroring `serde::de`.

    /// Errors constructible from a message, like `serde::de::Error`.
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }

    /// Marker for types deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

/// The stub's concrete deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct StubError(pub String);

impl fmt::Display for StubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for StubError {}

impl de::Error for StubError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        StubError(msg.to_string())
    }
}

/// Deserializer over a borrowed [`Value`].
pub struct ValueDeserializer<'de> {
    /// The document to deserialize from.
    pub value: &'de Value,
}

impl<'de> Deserializer<'de> for ValueDeserializer<'de> {
    type Error = StubError;
    fn stub_value(&self) -> &'de Value {
        self.value
    }
}

// Helpers called by `serde_derive`-generated code.

/// Object field lookup (derive helper).
pub fn __stub_field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.field(key)
}

/// Deserializes a `Value` into any owned type (derive helper).
pub fn __stub_de<T: de::DeserializeOwned>(v: &Value) -> Result<T, StubError> {
    T::deserialize(ValueDeserializer { value: v })
}

/// True when `v` is an object (derive helper).
pub fn __stub_is_obj(v: &Value) -> bool {
    matches!(v, Value::Obj(_))
}

fn num_err<E: de::Error>(what: &str, v: &Value) -> E {
    E::custom(format!("expected {what}, got {v:?}"))
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Option<Value> {
                Some(Value::Num(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.stub_value() {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    v => Err(num_err("an integer", v)),
                }
            }
        }
    )*};
}

int_impls!(u16, u32, u64, usize, i16, i32, i64, isize);

// `u8` is the stub sentinel: serialization fails on purpose (see module docs).
impl Serialize for u8 {
    fn to_value(&self) -> Option<Value> {
        None
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Option<Value> {
        if self.is_finite() {
            Some(Value::Num(*self))
        } else {
            Some(Value::Null)
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.stub_value() {
            Value::Num(n) => Ok(*n),
            Value::Null => Ok(f64::NAN),
            v => Err(num_err("a number", v)),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Option<Value> {
        Some(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.stub_value() {
            Value::Bool(b) => Ok(*b),
            v => Err(num_err("a boolean", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Option<Value> {
        Some(Value::Str(self.clone()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Option<Value> {
        Some(Value::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.stub_value() {
            Value::Str(s) => Ok(s.clone()),
            v => Err(num_err("a string", v)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Option<Value> {
        self.iter().map(Serialize::to_value).collect::<Option<Vec<Value>>>().map(Value::Arr)
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.stub_value() {
            Value::Arr(items) => items
                .iter()
                .map(|v| __stub_de::<T>(v).map_err(|e| de::Error::custom(e.0)))
                .collect(),
            v => Err(num_err("an array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Option<Value> {
        match self {
            Some(x) => x.to_value(),
            None => Some(Value::Null),
        }
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.stub_value() {
            Value::Null => Ok(None),
            v => __stub_de::<T>(v).map(Some).map_err(|e| de::Error::custom(e.0)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Option<Value> {
        (**self).to_value()
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        __stub_de::<T>(d.stub_value()).map(Box::new).map_err(|e| de::Error::custom(e.0))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Option<Value> {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Option<Value> {
        Some(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(d.stub_value().clone())
    }
}

// `From` conversions backing the `serde_json::json!` macro.
macro_rules! from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Num(v as f64) }
        }
    )*};
}
from_num!(i32, i64, u32, u64, usize, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

// `value["key"]` / `value[idx]`, matching serde_json's Value indexing.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.field(key).unwrap_or_else(|| panic!("no field `{key}` in {self:?}"))
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.field(key).is_none() {
            if let Value::Obj(pairs) = self {
                pairs.push((key.to_string(), Value::Null));
            } else {
                panic!("cannot index non-object {self:?} with `{key}`");
            }
        }
        self.field_mut(key).unwrap()
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Arr(items) => &items[idx],
            v => panic!("cannot index non-array {v:?} with {idx}"),
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Arr(items) => &mut items[idx],
            v => panic!("cannot index non-array {v:?} with {idx}"),
        }
    }
}
