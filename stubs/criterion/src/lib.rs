//! Offline stand-in for `criterion`.
//!
//! Compiles the workspace's `harness = false` benches and, when run,
//! executes every benchmark body exactly once with no measurement. Real
//! performance numbers come from the `taf-bench` binaries, not from this.

use std::fmt::Display;

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        eprintln!("criterion stub: group {name} (single uninstrumented pass)");
        BenchmarkGroup { _c: self }
    }

    /// Runs one ungrouped benchmark body once.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("criterion stub: bench {id}");
        f(&mut Bencher { _private: () });
        self
    }
}

/// A group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one grouped benchmark body once.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("criterion stub: bench {id}");
        f(&mut Bencher { _private: () });
        self
    }

    /// Runs one parameterized benchmark body once.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        eprintln!("criterion stub: bench {}", id.0);
        f(&mut Bencher { _private: () }, input);
        self
    }

    /// Records (and ignores) a sample-size hint.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Runs benchmark bodies; the stub executes them once, unmeasured.
#[derive(Debug)]
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Calls `f` once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Function + parameter identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
