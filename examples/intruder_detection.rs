//! Intruder detection: the paper's second motivating scenario. A target that
//! cannot be asked to carry a device enters a monitored room three months after
//! deployment. The example (1) *detects* presence from the live RSS deviation
//! against the empty-room baseline, then (2) *localizes* the intruder with all
//! four Fig. 5 systems side by side.
//!
//! Run with: `cargo run --release -p tafloc --example intruder_detection`

use tafloc::baselines::{Rass, RassConfig, Rti, RtiConfig};
use tafloc::core::db::FingerprintDb;
use tafloc::core::system::{TafLoc, TafLocConfig};
use tafloc::rfsim::geometry::Segment;
use tafloc::rfsim::{campaign, World, WorldConfig};

fn main() {
    let world = World::new(WorldConfig::paper_default(), 1337);
    let t = 90.0; // three months after installation

    // Day-0 installation survey.
    let x0 = campaign::full_calibration(&world, 0.0, 100);
    let e0 = campaign::empty_snapshot(&world, 0.0, 100);
    let db0 = FingerprintDb::from_world(x0, &world).expect("survey matches world geometry");

    // TafLoc refreshes its database this week from the reference cells.
    let mut tafloc = TafLoc::calibrate(TafLocConfig::default(), db0.clone(), e0.clone())
        .expect("calibration succeeds");
    let fresh = campaign::measure_columns(&world, t, tafloc.reference_cells(), 100);
    let fresh_empty = campaign::empty_snapshot(&world, t, 100);
    tafloc.update(&fresh, &fresh_empty).expect("update succeeds");

    // The comparators.
    let links: Vec<Segment> = world.deployment().links().iter().map(|l| l.segment).collect();
    let rti = Rti::new(&links, world.grid(), RtiConfig::default()).expect("rti builds");
    let rass_stale = Rass::new(db0, e0, RassConfig::default()).expect("rass builds");
    let rass_rec =
        rass_stale.with_database(tafloc.db().clone(), fresh_empty.clone()).expect("rass rebind");

    // --- Step 1: presence detection -------------------------------------
    // Watch the per-link deviation from the fresh empty-room baseline; a person
    // inside the area shadows at least one link by several dB.
    let detect = |y: &[f64]| -> f64 {
        y.iter().zip(&fresh_empty).map(|(v, e)| (e - v).max(0.0)).fold(0.0f64, f64::max)
    };
    let quiet = campaign::empty_snapshot(&world, t + 0.01, 100);
    println!("room empty:    max link attenuation {:.2} dB -> no alarm", detect(&quiet));

    // An intruder sweep: several entry points through the room.
    let intruder_cells = [13, 29, 45, 61, 77];
    let threshold_db = 4.0;
    let mut errs = [0.0f64; 4];
    println!(
        "\n{:>8} {:>12} {:>10} {:>10} {:>14} {:>15}",
        "cell", "deviation", "TafLoc", "RTI", "RASS w/ rec.", "RASS w/o rec."
    );
    for &cell in &intruder_cells {
        let y = campaign::snapshot_at_cell(&world, t, cell, 100);
        let deviation = detect(&y);
        assert!(deviation > threshold_db, "intruder at cell {cell} should trip the detector");
        let truth = world.grid().cell_center(cell);
        let e = [
            tafloc.localize(&y).expect("tafloc localizes").point.distance(&truth),
            rti.localize(&fresh_empty, &y).expect("rti localizes").point.distance(&truth),
            rass_rec.localize(&y).expect("rass w/ rec localizes").point.distance(&truth),
            rass_stale.localize(&y).expect("rass w/o rec localizes").point.distance(&truth),
        ];
        for (acc, v) in errs.iter_mut().zip(e) {
            *acc += v / intruder_cells.len() as f64;
        }
        println!(
            "{:>8} {:>9.2} dB {:>8.2} m {:>8.2} m {:>12.2} m {:>13.2} m",
            cell, deviation, e[0], e[1], e[2], e[3]
        );
    }
    println!(
        "{:>8} {:>12} {:>8.2} m {:>8.2} m {:>12.2} m {:>13.2} m",
        "mean", "", errs[0], errs[1], errs[2], errs[3]
    );
    println!(
        "\nevery intrusion tripped the detector (threshold {threshold_db} dB); \
         TafLoc localizes with a months-old database refreshed from {} cells only",
        tafloc.reference_cells().len()
    );
}
