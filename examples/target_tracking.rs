//! Target tracking with self-scheduled maintenance: the "time-adaptive" loop
//! closed end to end.
//!
//! A resident walks the room (random-waypoint motion) on several days across a
//! four-month deployment. Between walks, a [`DriftMonitor`] spot-checks two
//! reference cells; whenever it reports the database has drifted past the
//! threshold, TafLoc runs a reference-only update. During walks, a particle
//! filter fuses fingerprint likelihoods with a human motion model.
//!
//! Run with: `cargo run --release -p tafloc --example target_tracking`

use tafloc::core::db::FingerprintDb;
use tafloc::core::monitor::{MonitorConfig, Recommendation};
use tafloc::core::system::{TafLoc, TafLocConfig};
use tafloc::core::tracking::{ParticleFilter, TrackerConfig};
use tafloc::rfsim::trajectory::{random_waypoint, WaypointConfig};
use tafloc::rfsim::{campaign, World, WorldConfig};

fn main() {
    let world = World::new(WorldConfig::paper_default(), 99);
    let samples = 60;

    // Day-0 installation.
    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let db = FingerprintDb::from_world(x0, &world).expect("survey matches world geometry");
    let mut tafloc =
        TafLoc::calibrate(TafLocConfig::default(), db, e0).expect("calibration succeeds");
    let mut monitor = tafloc
        .monitor(2, 0.0, MonitorConfig { error_threshold_db: 3.0, min_interval_days: 7.0 })
        .expect("monitor builds");

    println!("deployment with self-scheduled maintenance (spot-check 2 reference cells)\n");
    let mut updates = 0;
    for &day in &[10.0, 30.0, 60.0, 90.0, 120.0] {
        // --- maintenance loop ------------------------------------------------
        let spot = campaign::measure_columns(&world, day, monitor.cells(), samples);
        match monitor.check(day, &spot).expect("spot check") {
            Recommendation::Healthy { estimated_error_db } => {
                println!("day {day:>5.0}: db healthy (est. error {estimated_error_db:.2} dB)");
            }
            Recommendation::Cooldown { estimated_error_db, days_remaining } => {
                println!(
                    "day {day:>5.0}: drifted (est. {estimated_error_db:.2} dB) but cooling down {days_remaining:.0} d"
                );
            }
            Recommendation::UpdateRecommended { estimated_error_db } => {
                let fresh =
                    campaign::measure_columns(&world, day, tafloc.reference_cells(), samples);
                let empty = campaign::empty_snapshot(&world, day, samples);
                let report = tafloc.update(&fresh, &empty).expect("update succeeds");
                let refreshed =
                    tafloc.db().rss().select_cols(monitor.cells()).expect("monitored cells exist");
                monitor.record_update(day, refreshed).expect("baseline refresh");
                updates += 1;
                println!(
                    "day {day:>5.0}: UPDATED (est. error was {estimated_error_db:.2} dB, \
                     {} LoLi-IR iters, 0.28 h of labor)",
                    report.iterations
                );
            }
        }

        // --- a tracked walk on this day --------------------------------------
        let traj = random_waypoint(world.grid(), &WaypointConfig::default(), 30, day as u64);
        let mut pf = ParticleFilter::new(tafloc.db(), TrackerConfig::default(), day as u64)
            .expect("filter builds");
        let mut errs = Vec::new();
        for (k, pos) in traj.points.iter().enumerate() {
            // Walks are short relative to drift: a fixed intra-day time offset.
            let t = day + k as f64 * traj.sample_period_s / 86_400.0;
            let y = campaign::snapshot_at_point(&world, t, pos, 20);
            let est = pf.step(tafloc.db(), &y, traj.sample_period_s).expect("step");
            if k >= 5 {
                errs.push(est.point.distance(pos));
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        println!(
            "            tracked a {:.0}-m walk with mean error {mean:.2} m",
            traj.path_length()
        );
    }
    println!(
        "\ntotal reference-only updates over 120 days: {updates} ({:.2} h of labor)",
        updates as f64 * 0.28
    );
}
