//! Radio tomographic imaging visualized: print the RTI attenuation image as an
//! ASCII floor-plan heat map for one and for two simultaneous targets, next to
//! the TafLoc fingerprint match.
//!
//! Run with: `cargo run --release -p tafloc --example rti_imaging`

use tafloc::baselines::{Rti, RtiConfig};
use tafloc::core::db::FingerprintDb;
use tafloc::core::eval::ascii_heatmap;
use tafloc::core::system::{TafLoc, TafLocConfig};
use tafloc::rfsim::geometry::Segment;
use tafloc::rfsim::{campaign, World, WorldConfig};

fn main() {
    let world = World::new(WorldConfig::paper_default(), 2718);
    let samples = 100;

    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let db = FingerprintDb::from_world(x0, &world).expect("survey matches world geometry");
    let tafloc =
        TafLoc::calibrate(TafLocConfig::default(), db, e0.clone()).expect("calibration succeeds");
    let links: Vec<Segment> = world.deployment().links().iter().map(|l| l.segment).collect();
    let rti = Rti::new(&links, world.grid(), RtiConfig::default()).expect("rti builds");

    // ---- one target -----------------------------------------------------
    let cell = 58;
    let truth = world.grid().cell_center(cell);
    let y = campaign::snapshot_at_cell(&world, 0.0, cell, samples);
    let fix = rti.localize(&e0, &y).expect("rti localizes");
    println!("one target at ({:.2}, {:.2}) — RTI attenuation image:", truth.x, truth.y);
    println!("{}", ascii_heatmap(&fix.image, world.grid()).expect("image matches grid"));
    println!(
        "RTI estimate    ({:.2}, {:.2})  error {:.2} m",
        fix.point.x,
        fix.point.y,
        fix.point.distance(&truth)
    );
    let tfix = tafloc.localize(&y).expect("tafloc localizes");
    println!(
        "TafLoc estimate ({:.2}, {:.2})  error {:.2} m",
        tfix.point.x,
        tfix.point.y,
        tfix.point.distance(&truth)
    );

    // ---- two targets ----------------------------------------------------
    let (c1, c2) = (12, 83);
    let (p1, p2) = (world.grid().cell_center(c1), world.grid().cell_center(c2));
    let y2 = campaign::snapshot_at_points(&world, 0.0, &[p1, p2], samples);
    let fix2 = rti.localize(&e0, &y2).expect("rti localizes");
    println!(
        "\ntwo targets at ({:.2}, {:.2}) and ({:.2}, {:.2}) — RTI image shows both:",
        p1.x, p1.y, p2.x, p2.y
    );
    println!("{}", ascii_heatmap(&fix2.image, world.grid()).expect("image matches grid"));
    let peaks = rti.localize_multi(&e0, &y2, 2, 2.0).expect("peak extraction");
    for (k, p) in peaks.iter().enumerate() {
        let err = p.distance(&p1).min(p.distance(&p2));
        println!(
            "RTI peak {}: ({:.2}, {:.2}) — {:.2} m from the nearest true target",
            k + 1,
            p.x,
            p.y,
            err
        );
    }
    let tfix2 = tafloc.localize(&y2).expect("tafloc localizes");
    println!(
        "TafLoc single fix: ({:.2}, {:.2}) — a single-target database cannot represent two bodies",
        tfix2.point.x, tfix2.point.y
    );
}
