//! Database aging: *why* TafLoc exists, in one table.
//!
//! Tracks localization accuracy over six months for three maintenance policies:
//!
//! * **never update** — the day-0 fingerprints age in place (what the paper
//!   calls the key unsolved problem);
//! * **TafLoc update** — refresh from the 10 reference cells at each checkpoint
//!   (0.28 h of labor each);
//! * **full re-survey** — the labor-intensive gold standard (2.7 h each).
//!
//! Run with: `cargo run --release -p tafloc --example database_aging`

use tafloc::core::db::FingerprintDb;
use tafloc::core::system::{TafLoc, TafLocConfig};
use tafloc::rfsim::{campaign, World, WorldConfig};

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

fn main() {
    let world = World::new(WorldConfig::paper_default(), 404);
    let samples = 60;

    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let db0 = FingerprintDb::from_world(x0, &world).expect("survey matches world geometry");

    let stale = TafLoc::calibrate(TafLocConfig::default(), db0.clone(), e0.clone())
        .expect("calibration succeeds");
    let mut updated = stale.clone();

    println!("{:>8} {:>16} {:>16} {:>18}", "day", "never [m]", "TafLoc [m]", "re-survey [m]");
    for &t in &[0.0, 15.0, 45.0, 90.0, 135.0, 180.0] {
        // TafLoc policy: reference-only refresh at each checkpoint.
        if t > 0.0 {
            let fresh = campaign::measure_columns(&world, t, updated.reference_cells(), samples);
            let empty = campaign::empty_snapshot(&world, t, samples);
            updated.update(&fresh, &empty).expect("update succeeds");
        }
        // Gold standard: full re-survey at this instant.
        let xt = campaign::full_calibration(&world, t, samples);
        let et = campaign::empty_snapshot(&world, t, samples);
        let resurveyed = TafLoc::calibrate(
            TafLocConfig::default(),
            FingerprintDb::from_world(xt, &world).expect("survey matches world geometry"),
            et,
        )
        .expect("calibration succeeds");

        let mut errs = (Vec::new(), Vec::new(), Vec::new());
        for cell in (0..world.num_cells()).step_by(2) {
            let truth = world.grid().cell_center(cell);
            let y = campaign::snapshot_at_cell(&world, t, cell, samples);
            errs.0.push(stale.localize(&y).expect("ok").point.distance(&truth));
            errs.1.push(updated.localize(&y).expect("ok").point.distance(&truth));
            errs.2.push(resurveyed.localize(&y).expect("ok").point.distance(&truth));
        }
        println!(
            "{:>8.0} {:>16.2} {:>16.2} {:>18.2}",
            t,
            median(errs.0),
            median(errs.1),
            median(errs.2)
        );
    }
    println!(
        "\nlabor per checkpoint: never = 0 h, TafLoc = 0.28 h (10 cells), re-survey = 2.67 h (96 cells)"
    );
}
