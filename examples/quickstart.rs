//! Quickstart: the full TafLoc lifecycle in ~40 lines.
//!
//! 1. Survey the room once (full calibration).
//! 2. Let 45 days pass — fingerprints expire.
//! 3. Re-survey only the 10 reference cells and reconstruct the database.
//! 4. Localize a live measurement.
//!
//! Run with: `cargo run --release -p tafloc --example quickstart`

use tafloc::core::db::FingerprintDb;
use tafloc::core::system::{TafLoc, TafLocConfig};
use tafloc::rfsim::{campaign, World, WorldConfig};

fn main() {
    // A simulated 9 m x 12 m room: 10 WiFi links around a 96-cell monitored area.
    let world = World::new(WorldConfig::paper_default(), 2024);
    println!(
        "world: {} links, {} cells of {:.1} m",
        world.num_links(),
        world.num_cells(),
        world.grid().cell_size()
    );

    // Day 0: the one-time full site survey (100 RSS samples per cell).
    let x0 = campaign::full_calibration(&world, 0.0, 100);
    let e0 = campaign::empty_snapshot(&world, 0.0, 100);
    let db = FingerprintDb::from_world(x0, &world).expect("survey matches world geometry");
    let mut tafloc =
        TafLoc::calibrate(TafLocConfig::default(), db, e0).expect("calibration succeeds");
    println!("reference cells selected by column-pivoted QR: {:?}", tafloc.reference_cells());

    // Day 45: RSS has drifted ~6 dBm. Surveying all 96 cells would take 2.7 h;
    // TafLoc re-measures its 10 reference cells (0.28 h) and reconstructs.
    let t = 45.0;
    let fresh = campaign::measure_columns(&world, t, tafloc.reference_cells(), 100);
    let empty = campaign::empty_snapshot(&world, t, 100);
    let report = tafloc.update(&fresh, &empty).expect("update succeeds");
    println!(
        "update: {} LoLi-IR iterations (converged: {}), database shifted by {:.2} dB on average",
        report.iterations, report.converged, report.mean_abs_change_db
    );

    // A person stands in cell 42; the system sees one averaged RSS vector.
    let target_cell = 42;
    let y = campaign::snapshot_at_cell(&world, t, target_cell, 100);
    let fix = tafloc.localize(&y).expect("localization succeeds");
    let truth = world.grid().cell_center(target_cell);
    println!(
        "target truly at ({:.2}, {:.2}); TafLoc estimates ({:.2}, {:.2}) -> error {:.2} m",
        truth.x,
        truth.y,
        fix.point.x,
        fix.point.y,
        fix.point.distance(&truth)
    );
}
