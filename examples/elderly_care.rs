//! Elderly care: the paper's motivating scenario — track a resident who wears
//! no device, months after the system was installed, and raise an alert when
//! they linger in a risky zone (here: the area near the room's entrance).
//!
//! The deployment is 60 days old. Before tracking, TafLoc refreshes its
//! fingerprint database from the 10 reference cells (a ~17-minute chore instead
//! of a ~2.7-hour re-survey), then follows a simulated morning routine.
//!
//! Run with: `cargo run --release -p tafloc --example elderly_care`

use tafloc::core::db::FingerprintDb;
use tafloc::core::system::{TafLoc, TafLocConfig};
use tafloc::rfsim::geometry::Point;
use tafloc::rfsim::{campaign, World, WorldConfig};

/// The resident's morning path through the room (cell indices on the 8x12 grid).
const ROUTINE: [usize; 10] = [4, 12, 21, 30, 38, 47, 55, 62, 70, 78];

fn main() {
    let world = World::new(WorldConfig::paper_default(), 77);
    let deployment_age_days = 60.0;

    // Installed at day 0 ...
    let x0 = campaign::full_calibration(&world, 0.0, 100);
    let e0 = campaign::empty_snapshot(&world, 0.0, 100);
    let db = FingerprintDb::from_world(x0, &world).expect("survey matches world geometry");
    let mut tafloc =
        TafLoc::calibrate(TafLocConfig::default(), db, e0).expect("calibration succeeds");

    // ... refreshed this morning from the reference cells only.
    let fresh =
        campaign::measure_columns(&world, deployment_age_days, tafloc.reference_cells(), 100);
    let empty = campaign::empty_snapshot(&world, deployment_age_days, 100);
    tafloc.update(&fresh, &empty).expect("update succeeds");
    println!(
        "database refreshed after {deployment_age_days:.0} days using {} reference cells\n",
        tafloc.reference_cells().len()
    );

    // The "risky zone": within 1.5 m of the entrance at the grid origin corner.
    let entrance = Point::new(world.grid().origin().x, world.grid().origin().y);
    let risky_radius_m = 1.5;

    println!(
        "{:>6} {:>18} {:>18} {:>10} {:>8}",
        "step", "true pos [m]", "estimate [m]", "error [m]", "alert"
    );
    let mut alerts = 0;
    let mut total_err = 0.0;
    for (step, &cell) in ROUTINE.iter().enumerate() {
        let truth = world.grid().cell_center(cell);
        let y = campaign::snapshot_at_cell(&world, deployment_age_days, cell, 100);
        let fix = tafloc.localize(&y).expect("localization succeeds");
        let err = fix.point.distance(&truth);
        total_err += err;
        let alert = fix.point.distance(&entrance) < risky_radius_m;
        if alert {
            alerts += 1;
        }
        println!(
            "{:>6} ({:>7.2},{:>7.2}) ({:>7.2},{:>7.2}) {:>10.2} {:>8}",
            step,
            truth.x,
            truth.y,
            fix.point.x,
            fix.point.y,
            err,
            if alert { "YES" } else { "-" }
        );
    }
    println!(
        "\nmean tracking error {:.2} m over {} steps; {} entrance-zone alert(s)",
        total_err / ROUTINE.len() as f64,
        ROUTINE.len(),
        alerts
    );
}
