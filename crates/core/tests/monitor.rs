//! Dedicated drift-monitor tests: hysteresis and error-probe monotonicity.
//!
//! The in-module unit tests cover construction and single checks; these
//! exercise the monitor the way the serving loop does — repeated spot checks
//! across a full recommend → update → recommend cycle — and pin down the two
//! properties the auto-refresh logic depends on: `min_interval_days` must
//! suppress back-to-back recommendations, and the estimated error must be
//! monotone in the injected drift.

use taf_linalg::Matrix;
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::monitor::{DriftMonitor, MonitorConfig, Recommendation};
use tafloc_core::system::{TafLoc, TafLocConfig};

fn drifted(stored: &Matrix, offset_db: f64) -> Matrix {
    stored.map(|v| v + offset_db)
}

#[test]
fn hysteresis_suppresses_back_to_back_recommendations() {
    let config = MonitorConfig { error_threshold_db: 3.0, min_interval_days: 2.0 };
    let stored = Matrix::filled(6, 3, -48.0);
    let mut monitor = DriftMonitor::new(stored.clone(), vec![2, 9, 14], 0.0, config).unwrap();

    // Day 10, 5 dB drift: past the threshold and past the interval.
    let fresh = drifted(&stored, 5.0);
    assert!(matches!(
        monitor.check(10.0, &fresh).unwrap(),
        Recommendation::UpdateRecommended { .. }
    ));

    // The operator refreshes on day 10; the fresh columns become the baseline.
    monitor.record_update(10.0, fresh.clone()).unwrap();

    // The very next spot checks drift hard again, but within
    // `min_interval_days` of the refresh the monitor must not recommend
    // another one — only report a cooldown with the remaining wait.
    for (day, remaining) in [(10.5, 1.5), (11.0, 1.0), (11.75, 0.25)] {
        match monitor.check(day, &drifted(&fresh, 6.0)).unwrap() {
            Recommendation::Cooldown { days_remaining, estimated_error_db } => {
                assert!((days_remaining - remaining).abs() < 1e-12, "day {day}");
                assert!((estimated_error_db - 6.0).abs() < 1e-12);
            }
            other => panic!("expected cooldown on day {day}, got {other:?}"),
        }
    }

    // Once the interval has elapsed the recommendation comes back.
    assert!(matches!(
        monitor.check(12.0, &drifted(&fresh, 6.0)).unwrap(),
        Recommendation::UpdateRecommended { .. }
    ));

    // And if the drift settles below the threshold meanwhile, the monitor is
    // healthy regardless of the clock.
    assert!(matches!(
        monitor.check(12.0, &drifted(&fresh, 1.0)).unwrap(),
        Recommendation::Healthy { .. }
    ));
}

#[test]
fn estimated_error_is_monotone_in_injected_drift() {
    let stored = Matrix::filled(8, 4, -52.0);
    let monitor =
        DriftMonitor::new(stored.clone(), vec![0, 1, 2, 3], 0.0, MonitorConfig::default()).unwrap();

    // A uniform offset is recovered exactly (mean absolute deviation).
    let mut prev = -1.0;
    for k in 0..12 {
        let offset = 0.5 * k as f64;
        let est = monitor.check(100.0, &drifted(&stored, offset)).unwrap().estimated_error_db();
        assert!((est - offset).abs() < 1e-12, "uniform {offset} dB must be recovered exactly");
        assert!(est > prev, "estimate must be strictly increasing in drift");
        prev = est;
    }

    // Sign-alternating drift of the same magnitude gives the same estimate:
    // the probe measures |drift|, not its direction.
    let mut mixed = stored.clone();
    let (rows, cols) = stored.shape();
    for i in 0..rows {
        for j in 0..cols {
            let s = if (i + j) % 2 == 0 { 2.5 } else { -2.5 };
            mixed.set(i, j, stored.get(i, j).unwrap() + s).unwrap();
        }
    }
    let est = monitor.check(100.0, &mixed).unwrap().estimated_error_db();
    assert!((est - 2.5).abs() < 1e-12);
}

#[test]
fn system_built_monitor_follows_simulated_drift() {
    // The serving path builds its monitor through `TafLoc::monitor`; make
    // sure that wiring yields the same monotone probe on simulator drift.
    let world = World::new(WorldConfig::small_test(), 31);
    let x0 = campaign::full_calibration(&world, 0.0, 20);
    let e0 = campaign::empty_snapshot(&world, 0.0, 20);
    let db = tafloc_core::db::FingerprintDb::from_world(x0, &world).unwrap();
    let config = TafLocConfig { ref_count: 6, ..Default::default() };
    let sys = TafLoc::calibrate(config, db, e0).unwrap();

    let monitor = sys.monitor(2, 0.0, MonitorConfig::default()).unwrap();
    let cells: Vec<usize> = monitor.cells().to_vec();
    assert_eq!(cells.len(), 2);

    let mut prev = f64::NEG_INFINITY;
    for &t in &[10.0, 40.0, 80.0] {
        let fresh = campaign::measure_columns(&world, t, &cells, 20);
        let est = monitor.check(t, &fresh).unwrap().estimated_error_db();
        assert!(est > prev, "estimate must grow with simulated drift ({est:.2} at day {t})");
        prev = est;
    }
}
