//! Edge-case integration tests: degenerate sizes, extreme configurations, and
//! boundary conditions that unit tests of the happy path don't reach.

use taf_linalg::Matrix;
use taf_rfsim::geometry::{Point, Segment};
use taf_rfsim::grid::FloorGrid;
use tafloc_core::db::FingerprintDb;
use tafloc_core::loli_ir::{reconstruct, LoliIrConfig, ReconstructionProblem};
use tafloc_core::mask::Mask;
use tafloc_core::matcher::{localize, localize_among, MatchMethod};
use tafloc_core::operators::NeighborGraph;
use tafloc_core::reference::{select_references, ReferenceStrategy};
use tafloc_core::system::{TafLoc, TafLocConfig};

fn tiny_db(links: usize, nx: usize, ny: usize) -> FingerprintDb {
    let grid = FloorGrid::new(Point::new(0.0, 0.0), 1.0, nx, ny);
    let segs: Vec<Segment> = (0..links)
        .map(|i| {
            Segment::new(
                Point::new(-1.0, i as f64 * 0.5),
                Point::new(nx as f64 + 1.0, i as f64 * 0.5),
            )
        })
        .collect();
    let rss = Matrix::from_fn(links, nx * ny, |i, j| {
        -45.0 - (i as f64) - 2.0 * ((j as f64 * 0.7 + i as f64).sin())
    });
    FingerprintDb::new(rss, segs, grid).unwrap()
}

#[test]
fn single_cell_database_localizes_trivially() {
    let db = tiny_db(3, 1, 1);
    let y = db.fingerprint(0).unwrap();
    for method in [
        MatchMethod::NearestNeighbor,
        MatchMethod::Knn { k: 5 },
        MatchMethod::Probabilistic { sigma_db: 1.0 },
    ] {
        let fix = localize(&db, &y, method).unwrap();
        assert_eq!(fix.cell, 0);
    }
}

#[test]
fn single_link_database_works() {
    let db = tiny_db(1, 3, 2);
    let y = db.fingerprint(4).unwrap();
    let fix = localize(&db, &y, MatchMethod::NearestNeighbor).unwrap();
    // With one link many cells can tie; the best distance must still be zero.
    assert!(fix.best_distance < 1e-12);
}

#[test]
fn localize_among_respects_candidates() {
    let db = tiny_db(4, 3, 3);
    let y = db.fingerprint(0).unwrap();
    // Exclude the true cell: the best candidate must come from the allowed set.
    let fix = localize_among(&db, &y, MatchMethod::NearestNeighbor, Some(&[5, 7, 8])).unwrap();
    assert!([5, 7, 8].contains(&fix.cell));
    // Candidate validation.
    assert!(localize_among(&db, &y, MatchMethod::NearestNeighbor, Some(&[])).is_err());
    assert!(localize_among(&db, &y, MatchMethod::NearestNeighbor, Some(&[99])).is_err());
}

#[test]
fn loli_ir_on_one_by_one_matrix() {
    let observed = Matrix::from_rows(&[&[-50.0]]).unwrap();
    let mask = Mask::trues(1, 1);
    let problem = ReconstructionProblem::completion_only(&observed, &mask);
    let cfg = LoliIrConfig { rank: 1, ..Default::default() };
    let rec = reconstruct(&problem, &cfg).unwrap();
    assert!((rec.matrix[(0, 0)] - (-50.0)).abs() < 0.5);
}

#[test]
fn loli_ir_single_row_matrix() {
    // One link, several cells: rank is 1; prior drives the unobserved cells.
    let truth = Matrix::from_rows(&[&[-50.0, -52.0, -54.0, -53.0, -51.0]]).unwrap();
    let mask = Mask::from_columns(1, 5, &[0, 4]).unwrap();
    let problem = ReconstructionProblem {
        observed: &truth,
        mask: &mask,
        lrr_prior: Some(&truth),
        location_graph: None,
        link_graph: None,
        empty_rss: None,
        distortion: None,
    };
    let rec = reconstruct(&problem, &LoliIrConfig { rank: 1, ..Default::default() }).unwrap();
    assert!(rec.matrix.sub(&truth).unwrap().map(f64::abs).mean() < 1.0);
}

#[test]
fn loli_ir_with_fully_observed_matrix_reproduces_it() {
    let truth = Matrix::from_fn(4, 6, |i, j| -40.0 - (i + j) as f64);
    let mask = Mask::trues(4, 6);
    let problem = ReconstructionProblem::completion_only(&truth, &mask);
    let cfg = LoliIrConfig { rank: 4, lambda: 1e-6, ..Default::default() };
    let rec = reconstruct(&problem, &cfg).unwrap();
    assert!(rec.matrix.approx_eq(&truth, 0.2), "fully observed input must be honored");
}

#[test]
fn loli_ir_graphs_on_degenerate_graphs() {
    // Graphs with no edges must behave exactly like no graphs at all.
    let truth = Matrix::from_fn(3, 4, |i, j| -50.0 + (i * j) as f64);
    let mask = Mask::from_columns(3, 4, &[0, 2]).unwrap();
    let empty_g = NeighborGraph::new(4, Vec::<(usize, usize)>::new());
    let empty_h = NeighborGraph::new(3, Vec::<(usize, usize)>::new());
    let with = ReconstructionProblem {
        observed: &truth,
        mask: &mask,
        lrr_prior: Some(&truth),
        location_graph: Some(&empty_g),
        link_graph: Some(&empty_h),
        empty_rss: None,
        distortion: None,
    };
    let without = ReconstructionProblem {
        observed: &truth,
        mask: &mask,
        lrr_prior: Some(&truth),
        location_graph: None,
        link_graph: None,
        empty_rss: None,
        distortion: None,
    };
    let cfg = LoliIrConfig { alpha: 5.0, beta: 5.0, ..Default::default() };
    let a = reconstruct(&with, &cfg).unwrap();
    let b = reconstruct(&without, &cfg).unwrap();
    assert!(a.matrix.approx_eq(&b.matrix, 1e-9));
}

#[test]
fn reference_selection_all_columns() {
    let db = tiny_db(3, 2, 2);
    // Selecting every column must succeed and be a permutation.
    let sel = select_references(db.rss(), 4, ReferenceStrategy::QrPivot).unwrap();
    let mut sorted = sel.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 1, 2, 3]);
}

#[test]
fn tafloc_with_minimum_references() {
    // One reference cell is degenerate but must not panic or produce NaN.
    let db = tiny_db(4, 3, 3);
    let cfg = TafLocConfig { ref_count: 1, ..Default::default() };
    let mut sys = TafLoc::calibrate(cfg, db.clone(), vec![-40.0; 4]).unwrap();
    let fresh = db.rss().select_cols(sys.reference_cells()).unwrap();
    let report = sys.update(&fresh, &[-40.0; 4]).unwrap();
    assert!(!sys.db().rss().has_non_finite());
    assert!(report.iterations >= 1);
}

#[test]
fn tafloc_with_all_cells_as_references_is_a_resurvey() {
    // n = N degenerates into a full re-survey: the reconstruction must track
    // the fresh measurements closely.
    let db = tiny_db(4, 2, 3);
    let cfg = TafLocConfig { ref_count: 6, ..Default::default() };
    let mut sys = TafLoc::calibrate(cfg, db.clone(), vec![-40.0; 4]).unwrap();
    let fresh_full = db.rss().map(|v| v - 3.0); // everything shifted by -3 dB
    let fresh = fresh_full.select_cols(sys.reference_cells()).unwrap();
    sys.update(&fresh, &[-43.0; 4]).unwrap();
    let err = sys.db().mean_abs_error(&fresh_full).unwrap();
    assert!(err < 0.8, "full observation should pin the DB, err {err}");
}

#[test]
fn mask_extremes_through_loli_ir() {
    let truth = Matrix::from_fn(3, 5, |i, j| -50.0 - (i + j) as f64);
    // Single observed entry: solvable (heavily regularized), no NaN.
    let mut mask = Mask::falses(3, 5);
    mask.set(1, 2, true);
    let problem = ReconstructionProblem::completion_only(&truth, &mask);
    let rec = reconstruct(&problem, &LoliIrConfig { rank: 1, ..Default::default() }).unwrap();
    assert!(!rec.matrix.has_non_finite());
}

#[test]
fn db_rejects_empty_geometry() {
    let grid = FloorGrid::new(Point::new(0.0, 0.0), 1.0, 1, 1);
    // Zero links: shape check must fail for a 1x1 matrix.
    assert!(FingerprintDb::new(Matrix::zeros(1, 1), vec![], grid).is_err());
}

#[test]
fn graph_smoothness_on_empty_graph_is_zero() {
    let g = NeighborGraph::new(5, Vec::<(usize, usize)>::new());
    let x = Matrix::from_fn(2, 5, |i, j| (i * j) as f64);
    assert_eq!(tafloc_core::operators::column_smoothness(&x, &g), 0.0);
    assert_eq!(g.num_edges(), 0);
    assert_eq!(g.incidence().unwrap().rows(), 0);
}
