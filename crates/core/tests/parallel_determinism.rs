//! LoLi-IR determinism contract: reconstruction output is bit-identical
//! across thread counts and across repeated runs.
//!
//! The colored Gauss-Seidel sweep guarantees this by construction (each class
//! member writes only its own scratch slot, scatter is serial and
//! index-ordered); these tests pin the property down end to end, both below
//! the parallel fan-out threshold (where the solver stays inline) and above it
//! (where the rayon pool actually runs the class members concurrently).

use proptest::prelude::*;
use taf_linalg::Matrix;
use tafloc_core::loli_ir::{
    reconstruct, reconstruct_with, LoliIrConfig, ReconstructionProblem, SolverWorkspace,
};
use tafloc_core::mask::Mask;
use tafloc_core::operators::NeighborGraph;

/// Deterministic pseudo-random matrix in RSS range (xorshift).
fn pseudo(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        -70.0 + (state % 4000) as f64 / 100.0
    })
}

/// Snapshot of everything a reconstruction publishes, for exact comparison.
fn fingerprint(
    rec: &tafloc_core::loli_ir::Reconstruction,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    (
        rec.matrix.as_slice().to_vec(),
        rec.l.as_slice().to_vec(),
        rec.r.as_slice().to_vec(),
        rec.objective_trace.clone(),
    )
}

fn solve_problem(
    truth: &Matrix,
    prior: &Matrix,
    mask: &Mask,
    cfg: &LoliIrConfig,
) -> tafloc_core::loli_ir::Reconstruction {
    let g = NeighborGraph::new(truth.cols(), (0..truth.cols() - 1).map(|j| (j, j + 1)));
    let h = NeighborGraph::new(truth.rows(), (0..truth.rows() - 1).map(|i| (i, i + 1)));
    let problem = ReconstructionProblem {
        observed: truth,
        mask,
        lrr_prior: Some(prior),
        location_graph: Some(&g),
        link_graph: Some(&h),
        empty_rss: None,
        distortion: None,
    };
    reconstruct(&problem, cfg).unwrap()
}

#[test]
fn repeated_runs_are_bit_identical() {
    let truth = pseudo(6, 12, 41);
    let prior = pseudo(6, 12, 43);
    let mask = Mask::from_columns(6, 12, &[0, 4, 8]).unwrap();
    let cfg = LoliIrConfig { max_iters: 8, tol: 0.0, ..Default::default() };
    let first = fingerprint(&solve_problem(&truth, &prior, &mask, &cfg));
    for _ in 0..3 {
        assert_eq!(first, fingerprint(&solve_problem(&truth, &prior, &mask, &cfg)));
    }
}

/// Above the fan-out threshold the class solves really do run on the pool;
/// the output must not depend on how many workers the pool has.
#[cfg(feature = "parallel")]
#[test]
fn large_problem_bit_identical_across_thread_counts() {
    // 20 x 400 with chain graphs: L-step classes of ~10 rows and R-step
    // classes of ~200 columns both clear PAR_MIN_FLOPS at rank 8.
    let truth = pseudo(20, 400, 7);
    let prior = pseudo(20, 400, 11);
    let cols: Vec<usize> = (0..400).step_by(3).collect();
    let mask = Mask::from_columns(20, 400, &cols).unwrap();
    let cfg = LoliIrConfig { max_iters: 4, tol: 0.0, ..Default::default() };

    let mut reference = None;
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let got = pool.install(|| fingerprint(&solve_problem(&truth, &prior, &mask, &cfg)));
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(want, &got, "thread count {threads} changed the result"),
        }
    }
}

#[cfg(feature = "parallel")]
mod proptests {
    use super::*;

    proptest! {
        /// Random small problems: serial inline path, pools of 1/2/8 workers, and
        /// a reused workspace all produce the same bits.
        #[test]
        fn reconstruct_bit_identical_across_thread_counts(
            seed in 0u64..1000,
            m in 3usize..7,
            n in 4usize..10,
            keep in 1usize..4,
        ) {
            let truth = pseudo(m, n, seed * 2 + 1);
            let prior = pseudo(m, n, seed * 2 + 500);
            let cols: Vec<usize> = (0..n).step_by(keep).collect();
            let mask = Mask::from_columns(m, n, &cols).unwrap();
            let cfg = LoliIrConfig { rank: 3, max_iters: 5, tol: 0.0, ..Default::default() };

            let base = fingerprint(&solve_problem(&truth, &prior, &mask, &cfg));
            for threads in [1usize, 2, 8] {
                let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
                let got = pool.install(|| fingerprint(&solve_problem(&truth, &prior, &mask, &cfg)));
                prop_assert_eq!(&base, &got, "thread count {}", threads);
            }

            // Workspace reuse must not change the bits either.
            let g = NeighborGraph::new(n, (0..n - 1).map(|j| (j, j + 1)));
            let h = NeighborGraph::new(m, (0..m - 1).map(|i| (i, i + 1)));
            let problem = ReconstructionProblem {
                observed: &truth,
                mask: &mask,
                lrr_prior: Some(&prior),
                location_graph: Some(&g),
                link_graph: Some(&h),
                empty_rss: None,
                distortion: None,
            };
            let mut ws = SolverWorkspace::new();
            for _ in 0..2 {
                let reused = fingerprint(&reconstruct_with(&problem, &cfg, &mut ws).unwrap());
                prop_assert_eq!(&base, &reused);
            }
        }
    }
}
