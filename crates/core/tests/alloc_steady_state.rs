//! Zero-allocation contract for steady-state LoLi-IR iterations.
//!
//! A counting global allocator measures whole solves on a warmed
//! [`SolverWorkspace`]. Per-call setup (edge sets, coloring, SVD init) is
//! allowed to allocate, but the iteration loop itself must not — so a run with
//! 50 iterations must allocate exactly as often as a run with 5. The problem
//! is sized below the parallel fan-out threshold, where the solver is
//! obligated to stay inline; the contract therefore holds identically with and
//! without the `parallel` feature.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use taf_linalg::Matrix;
use tafloc_core::loli_ir::{
    reconstruct_with, LoliIrConfig, ReconstructionProblem, SolverWorkspace,
};
use tafloc_core::mask::Mask;
use tafloc_core::operators::NeighborGraph;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn iterations_allocate_nothing_on_a_warm_workspace() {
    let truth = Matrix::from_fn(6, 12, |i, j| {
        -50.0
            - 3.0 * (0.4 * i as f64 + 0.2 * j as f64).sin()
            - 2.0 * (0.3 * j as f64 - 0.5 * i as f64).cos()
    });
    let prior = truth.map(|v| v + 0.8 * (v * 17.0).sin());
    let mask = Mask::from_columns(6, 12, &[1, 5, 9]).unwrap();
    let g = NeighborGraph::new(12, (0..11).map(|j| (j, j + 1)));
    let h = NeighborGraph::new(6, (0..5).map(|i| (i, i + 1)));
    let problem = ReconstructionProblem {
        observed: &truth,
        mask: &mask,
        lrr_prior: Some(&prior),
        location_graph: Some(&g),
        link_graph: Some(&h),
        empty_rss: None,
        distortion: None,
    };
    // tol = 0 forces exactly max_iters iterations, so the two configs differ
    // only in how many times the iteration loop body runs.
    let short = LoliIrConfig { max_iters: 5, tol: 0.0, ..Default::default() };
    let long = LoliIrConfig { max_iters: 50, tol: 0.0, ..Default::default() };

    // Warm the workspace at the larger trace capacity.
    let mut ws = SolverWorkspace::new();
    reconstruct_with(&problem, &long, &mut ws).unwrap();
    reconstruct_with(&problem, &short, &mut ws).unwrap();

    let short_allocs = count_allocations(|| {
        reconstruct_with(&problem, &short, &mut ws).unwrap();
    });
    let long_allocs = count_allocations(|| {
        reconstruct_with(&problem, &long, &mut ws).unwrap();
    });
    assert_eq!(
        short_allocs,
        long_allocs,
        "iteration loop allocated: 45 extra iterations cost {} allocations",
        long_allocs.saturating_sub(short_allocs)
    );
    // Sanity: the counter is actually live (setup does allocate).
    assert!(short_allocs > 0, "counting allocator not engaged");
}
