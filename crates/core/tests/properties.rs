//! Property-based tests of the TafLoc core: mask algebra, graph invariants,
//! LRR exactness on low-rank inputs, LoLi-IR's objective contract, and matcher
//! consistency.

use proptest::prelude::*;
use taf_linalg::Matrix;
use tafloc_core::loli_ir::{reconstruct, LoliIrConfig, ReconstructionProblem};
use tafloc_core::lrr::LrrModel;
use tafloc_core::mask::{detect_distorted, Mask};
use tafloc_core::operators::{column_smoothness, row_smoothness, NeighborGraph};
use tafloc_core::reference::{select_references, selection_residual, ReferenceStrategy};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-70.0..-30.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized correctly"))
}

/// A random low-rank matrix `U·V` with `rank` factors.
fn low_rank(rows: usize, cols: usize, rank: usize) -> impl Strategy<Value = Matrix> {
    (
        proptest::collection::vec(-2.0..2.0f64, rows * rank),
        proptest::collection::vec(-2.0..2.0f64, rank * cols),
    )
        .prop_map(move |(u, v)| {
            let u = Matrix::from_vec(rows, rank, u).expect("sized");
            let v = Matrix::from_vec(rank, cols, v).expect("sized");
            u.matmul(&v).expect("shapes agree")
        })
}

proptest! {
    // ------------------------------------------------------------------
    // Masks
    // ------------------------------------------------------------------

    #[test]
    fn mask_complement_partitions(rows in 1usize..8, cols in 1usize..8, cols_sel in proptest::collection::vec(0usize..8, 0..4)) {
        let sel: Vec<usize> = cols_sel.into_iter().filter(|&c| c < cols).collect();
        let m = Mask::from_columns(rows, cols, &sel).unwrap();
        let c = m.complement();
        prop_assert_eq!(m.count() + c.count(), rows * cols);
        prop_assert_eq!(m.and(&c).unwrap().count(), 0);
    }

    #[test]
    fn mask_apply_preserves_true_entries(x in matrix(4, 6)) {
        let m = Mask::from_matrix(&x, |v| v > -50.0);
        let applied = m.apply(&x).unwrap();
        for (i, j) in m.true_positions() {
            prop_assert_eq!(applied[(i, j)], x[(i, j)]);
        }
        for (i, j, v) in applied.indexed_iter() {
            if !m.get(i, j) {
                prop_assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn distortion_mask_monotone_in_threshold(x in matrix(4, 6)) {
        let empty = vec![-40.0; 4];
        let loose = detect_distorted(&x, &empty, 1.0).unwrap();
        let tight = detect_distorted(&x, &empty, 10.0).unwrap();
        // Tighter threshold flags a subset of the loose one.
        prop_assert_eq!(tight.and(&loose).unwrap().count(), tight.count());
        prop_assert!(tight.count() <= loose.count());
    }

    /// Mask application round-trips: `B∘X` preserves every observed entry
    /// bit-exactly, zeroes the rest, is idempotent, and partitions `X`
    /// against its complement — for *arbitrary* masks, not just column masks.
    #[test]
    fn mask_apply_round_trips_observed_entries(
        (x, bits) in (1usize..7, 1usize..9)
            .prop_flat_map(|(r, c)| (matrix(r, c), proptest::collection::vec(0usize..2, r * c)))
    ) {
        let (rows, cols) = (x.rows(), x.cols());
        let mut m = Mask::falses(rows, cols);
        for (idx, &b) in bits.iter().enumerate() {
            if b == 1 {
                m.set(idx / cols, idx % cols, true);
            }
        }
        let applied = m.apply(&x).unwrap();
        for (i, j, v) in applied.indexed_iter() {
            if m.get(i, j) {
                prop_assert!(v.to_bits() == x[(i, j)].to_bits(), "observed entry changed");
            } else {
                prop_assert_eq!(v, 0.0);
            }
        }
        // Idempotence: re-applying the mask is a no-op.
        prop_assert!(m.apply(&applied).unwrap().approx_eq(&applied, 0.0));
        // Partition: B∘X + Bᶜ∘X reassembles X exactly.
        let rebuilt = applied.add(&m.complement().apply(&x).unwrap()).unwrap();
        prop_assert!(rebuilt.approx_eq(&x, 0.0));
    }

    // ------------------------------------------------------------------
    // Graphs and smoothness
    // ------------------------------------------------------------------

    #[test]
    fn graph_laplacian_is_psd(edges in proptest::collection::vec((0usize..6, 0usize..6), 0..12)) {
        let g = NeighborGraph::new(6, edges);
        let lap = g.laplacian();
        let eig = lap.eigh().unwrap();
        prop_assert!(eig.is_psd(1e-9));
        // Constant vector in the null space.
        let ones = vec![1.0; 6];
        let lv = lap.matvec(&ones);
        prop_assert!(lv.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn smoothness_scales_quadratically(x in matrix(3, 6), s in 0.1..4.0f64) {
        let g = NeighborGraph::new(6, (0..5).map(|j| (j, j + 1)));
        let base = column_smoothness(&x, &g);
        let scaled = column_smoothness(&x.scale(s), &g);
        prop_assert!((scaled - s * s * base).abs() <= 1e-6 * (1.0 + scaled.abs()));
        let h = NeighborGraph::new(3, [(0, 1), (1, 2)]);
        let rbase = row_smoothness(&x, &h);
        prop_assert!(rbase >= 0.0 && base >= 0.0);
    }

    // ------------------------------------------------------------------
    // Reference selection + LRR
    // ------------------------------------------------------------------

    /// Every selection strategy returns exactly `n` distinct, in-bounds
    /// column indices for arbitrary valid matrices — the contract the LRR
    /// fit and the serving survey both build on without re-checking.
    #[test]
    fn selection_returns_n_distinct_in_bounds_columns(
        (x, n, seed) in (1usize..7, 1usize..10)
            .prop_flat_map(|(r, c)| (matrix(r, c), 1..=c, 0u64..1000))
    ) {
        let strategies = [
            ReferenceStrategy::QrPivot,
            ReferenceStrategy::Random { seed },
            ReferenceStrategy::LeverageScore,
        ];
        for strategy in strategies {
            let sel = select_references(&x, n, strategy).unwrap();
            prop_assert_eq!(sel.len(), n, "{strategy:?} returned {} columns", sel.len());
            prop_assert!(sel.iter().all(|&j| j < x.cols()), "{strategy:?} went out of bounds");
            let mut sorted = sel.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), n, "{strategy:?} repeated a column: {sel:?}");
            // Degenerate requests must be rejected, never mis-sized.
            prop_assert!(select_references(&x, 0, strategy).is_err());
            prop_assert!(select_references(&x, x.cols() + 1, strategy).is_err());
        }
    }

    #[test]
    fn qr_selection_spans_low_rank(x in low_rank(6, 14, 3)) {
        prop_assume!(x.frobenius_norm() > 1e-3);
        let sel = select_references(&x, 3, ReferenceStrategy::QrPivot).unwrap();
        let res = selection_residual(&x, &sel).unwrap();
        prop_assert!(res < 1e-4, "rank-3 matrix must be spanned by 3 pivots (residual {res})");
    }

    #[test]
    fn lrr_exact_on_spanning_references(x in low_rank(5, 10, 2)) {
        prop_assume!(x.frobenius_norm() > 1e-3);
        let sel = select_references(&x, 2, ReferenceStrategy::QrPivot).unwrap();
        let model = LrrModel::fit(&x, &sel, 1e-10).unwrap();
        prop_assert!(model.representation_error(&x).unwrap() < 1e-4);
    }

    #[test]
    fn lrr_prediction_is_linear(x in low_rank(5, 10, 2), s in 0.5..2.0f64) {
        prop_assume!(x.frobenius_norm() > 1e-3);
        let sel = select_references(&x, 3, ReferenceStrategy::QrPivot).unwrap();
        let model = LrrModel::fit(&x, &sel, 1e-8).unwrap();
        let refs = x.select_cols(&sel).unwrap();
        let a = model.predict(&refs.scale(s)).unwrap();
        let b = model.predict(&refs).unwrap().scale(s);
        prop_assert!(a.approx_eq(&b, 1e-7 * (1.0 + a.max_abs())));
    }

    // ------------------------------------------------------------------
    // LoLi-IR contract
    // ------------------------------------------------------------------

    #[test]
    fn loli_ir_objective_never_increases(x in low_rank(5, 9, 3), noise_scale in 0.0..1.0f64) {
        prop_assume!(x.frobenius_norm() > 1e-2);
        let prior = x.map(|v| v + noise_scale * (v * 13.7).sin());
        let mask = Mask::from_columns(5, 9, &[0, 4, 8]).unwrap();
        let g = NeighborGraph::new(9, (0..8).map(|j| (j, j + 1)));
        let h = NeighborGraph::new(5, (0..4).map(|i| (i, i + 1)));
        let problem = ReconstructionProblem {
            observed: &x,
            mask: &mask,
            lrr_prior: Some(&prior),
            location_graph: Some(&g),
            link_graph: Some(&h),
            empty_rss: None,
            distortion: None,
        };
        let cfg = LoliIrConfig { rank: 3, max_iters: 12, tol: 0.0, ..Default::default() };
        let rec = reconstruct(&problem, &cfg).unwrap();
        for w in rec.objective_trace.windows(2) {
            prop_assert!(w[1] <= w[0] * (1.0 + 1e-9) + 1e-9, "{} -> {}", w[0], w[1]);
        }
        prop_assert!(!rec.matrix.has_non_finite());
    }

    #[test]
    fn loli_ir_with_perfect_prior_stays_close(x in low_rank(5, 9, 2)) {
        prop_assume!(x.frobenius_norm() > 1.0);
        let mask = Mask::from_columns(5, 9, &[1, 5]).unwrap();
        let problem = ReconstructionProblem {
            observed: &x,
            mask: &mask,
            lrr_prior: Some(&x),
            location_graph: None,
            link_graph: None,
            empty_rss: None,
            distortion: None,
        };
        let cfg = LoliIrConfig { rank: 2, ..Default::default() };
        let rec = reconstruct(&problem, &cfg).unwrap();
        let rel = rec.matrix.sub(&x).unwrap().frobenius_norm() / x.frobenius_norm();
        prop_assert!(rel < 0.05, "relative error {rel}");
    }

    // ------------------------------------------------------------------
    // Matching
    // ------------------------------------------------------------------

    #[test]
    fn exact_fingerprint_always_matches_its_cell(x in matrix(4, 12), cell in 0usize..12) {
        use taf_rfsim::geometry::{Point, Segment};
        use taf_rfsim::grid::FloorGrid;
        use tafloc_core::db::FingerprintDb;
        use tafloc_core::matcher::{localize, MatchMethod};

        let grid = FloorGrid::new(Point::new(0.0, 0.0), 1.0, 4, 3);
        let links = (0..4)
            .map(|i| Segment::new(Point::new(-1.0, i as f64), Point::new(5.0, i as f64)))
            .collect();
        let db = FingerprintDb::new(x, links, grid).unwrap();
        let y = db.fingerprint(cell).unwrap();
        let r = localize(&db, &y, MatchMethod::NearestNeighbor).unwrap();
        // Distance must be exactly zero for its own column (ties can pick
        // another identical column, so compare distances, not indices).
        prop_assert!(r.best_distance < 1e-12);
    }
}
