//! Warm-started refresh contract.
//!
//! A warm start changes only *where the iteration begins* — never what a
//! fixed point looks like, never the per-iteration arithmetic, never the
//! thread-count invariance. These tests pin that down:
//!
//! 1. A warm-started refresh lands at the same fixed point a cold solve of
//!    the same problem reaches, within tolerance (property-tested over random
//!    problems and drifts).
//! 2. On a mildly drifted problem the warm solve needs no more iterations
//!    than the cold one (and strictly fewer when the drift is small).
//! 3. Warm solves are bit-identical across thread pools of 1, 2 and 8.
//! 4. An unusable warm state (wrong shape) falls back to a solve that is
//!    bit-identical to the cold one.

use proptest::prelude::*;
use taf_linalg::Matrix;
use tafloc_core::loli_ir::{
    reconstruct_warm, LoliIrConfig, Reconstruction, ReconstructionProblem, SolverWorkspace,
    WarmState,
};
use tafloc_core::mask::Mask;
use tafloc_core::operators::NeighborGraph;

/// Deterministic pseudo-random matrix in RSS range (xorshift).
fn pseudo(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        -70.0 + (state % 4000) as f64 / 100.0
    })
}

/// Adds a smooth low-amplitude drift field to `base` — the "time passed"
/// between two refreshes of the same site.
fn drifted(base: &Matrix, amplitude_db: f64, seed: u64) -> Matrix {
    let phase = (seed % 17) as f64;
    Matrix::from_fn(base.rows(), base.cols(), |i, j| {
        base[(i, j)] + amplitude_db * ((i as f64 * 0.7 + j as f64 * 0.13 + phase).sin())
    })
}

struct Case {
    truth: Matrix,
    prior: Matrix,
    mask: Mask,
}

fn solve(case: &Case, cfg: &LoliIrConfig, warm: Option<&WarmState>) -> Reconstruction {
    let g = NeighborGraph::new(case.truth.cols(), (0..case.truth.cols() - 1).map(|j| (j, j + 1)));
    let h = NeighborGraph::new(case.truth.rows(), (0..case.truth.rows() - 1).map(|i| (i, i + 1)));
    let problem = ReconstructionProblem {
        observed: &case.truth,
        mask: &case.mask,
        lrr_prior: Some(&case.prior),
        location_graph: Some(&g),
        link_graph: Some(&h),
        empty_rss: None,
        distortion: None,
    };
    reconstruct_warm(&problem, cfg, &mut SolverWorkspace::new(), warm).unwrap()
}

fn case(m: usize, n: usize, seed: u64, drift_db: f64) -> (Case, Case) {
    let truth = pseudo(m, n, seed);
    let prior = drifted(&truth, 0.5, seed ^ 3);
    let cols: Vec<usize> = (0..n).step_by(3).collect();
    let mask = Mask::from_columns(m, n, &cols).unwrap();
    let yesterday = Case { truth: truth.clone(), prior: prior.clone(), mask: mask.clone() };
    let today = Case {
        truth: drifted(&truth, drift_db, seed ^ 11),
        prior: drifted(&prior, drift_db, seed ^ 11),
        mask,
    };
    (yesterday, today)
}

#[test]
fn warm_refresh_reaches_the_cold_fixed_point() {
    let cfg = LoliIrConfig { max_iters: 600, tol: 1e-8, ..Default::default() };
    let (yesterday, today) = case(10, 36, 2024, 1.0);
    let first = solve(&yesterday, &cfg, None);
    assert!(first.converged, "baseline solve must converge");
    let warm_state = WarmState::from_reconstruction(&first);

    let cold = solve(&today, &cfg, None);
    let warmed = solve(&today, &cfg, Some(&warm_state));
    assert!(cold.converged && warmed.converged);
    assert!(warmed.warm_start, "a fresh previous solution should win the seed comparison");

    // Same fixed point: reconstructions agree to well under the dB scale
    // anything downstream (guard, matcher) can perceive.
    let worst = cold
        .matrix
        .as_slice()
        .iter()
        .zip(warmed.matrix.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(worst < 1e-2, "cold and warm fixed points differ by {worst} dB");
}

#[test]
fn warm_refresh_spends_no_more_iterations_than_cold() {
    let cfg = LoliIrConfig { max_iters: 400, tol: 1e-7, ..Default::default() };
    let (yesterday, today) = case(12, 45, 99, 0.2);
    let first = solve(&yesterday, &cfg, None);
    assert!(first.converged);
    let warm_state = WarmState::from_reconstruction(&first);

    let cold = solve(&today, &cfg, None);
    let warmed = solve(&today, &cfg, Some(&warm_state));
    assert!(cold.converged && warmed.converged);
    assert!(warmed.warm_start);
    assert!(
        warmed.iterations <= cold.iterations,
        "warm took {} iterations, cold {}",
        warmed.iterations,
        cold.iterations
    );
}

#[test]
fn unusable_warm_state_is_bit_identical_to_cold() {
    let cfg = LoliIrConfig { max_iters: 12, tol: 0.0, ..Default::default() };
    let (_, today) = case(8, 24, 7, 0.5);

    // Wrong shape: built from a solve of a differently-sized problem.
    let (other, _) = case(6, 24, 7, 0.5);
    let foreign = WarmState::from_reconstruction(&solve(&other, &cfg, None));

    let cold = solve(&today, &cfg, None);
    let fallback = solve(&today, &cfg, Some(&foreign));
    assert!(!fallback.warm_start);
    assert_eq!(cold.matrix.as_slice(), fallback.matrix.as_slice());
    assert_eq!(cold.l.as_slice(), fallback.l.as_slice());
    assert_eq!(cold.r.as_slice(), fallback.r.as_slice());
    assert_eq!(cold.objective_trace, fallback.objective_trace);
}

#[cfg(feature = "parallel")]
#[test]
fn warm_solve_bit_identical_across_thread_counts() {
    // Large enough that both sweep directions clear the parallel fan-out
    // threshold at rank 8.
    let cfg = LoliIrConfig { max_iters: 6, tol: 0.0, ..Default::default() };
    let (yesterday, today) = case(20, 400, 5, 0.3);
    let warm_state = WarmState::from_reconstruction(&solve(&yesterday, &cfg, None));

    let mut reference: Option<(Vec<f64>, Vec<f64>, Vec<f64>)> = None;
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let rec = pool.install(|| solve(&today, &cfg, Some(&warm_state)));
        let got =
            (rec.matrix.as_slice().to_vec(), rec.l.as_slice().to_vec(), rec.r.as_slice().to_vec());
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(want, &got, "warm solve differs at {threads} threads"),
        }
    }
}

proptest! {
    /// Over random problem sizes, seeds and drift amplitudes: a warm-started
    /// refresh converges to the same fixed point as a cold solve.
    #[test]
    fn warm_and_cold_agree_on_the_fixed_point(
        m in 6usize..12,
        n in 15usize..40,
        seed in 1u64..5000,
        drift in 0.05f64..1.5,
    ) {
        let cfg = LoliIrConfig { max_iters: 300, tol: 1e-8, ..Default::default() };
        let (yesterday, today) = case(m, n, seed, drift);
        let first = solve(&yesterday, &cfg, None);
        prop_assume!(first.converged);
        let warm_state = WarmState::from_reconstruction(&first);

        let cold = solve(&today, &cfg, None);
        let warmed = solve(&today, &cfg, Some(&warm_state));
        prop_assert!(cold.converged && warmed.converged);
        let worst = cold
            .matrix
            .as_slice()
            .iter()
            .zip(warmed.matrix.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(worst < 1e-2, "fixed points differ by {} dB", worst);
    }
}
