//! Target tracking: a particle filter over the fingerprint database.
//!
//! The paper's applications track *moving* people ("fine-grained" localization
//! over time), and its comparator RASS is explicitly a tracking system. This
//! module fuses per-snapshot fingerprint likelihoods with a simple human-motion
//! model:
//!
//! * **predict** — particles random-walk with a step scale `speed · dt`,
//!   reflected at the monitored-region boundary;
//! * **update** — each particle is weighted by the Gaussian likelihood of the
//!   live RSS vector against the fingerprint of the particle's cell;
//! * **resample** — systematic resampling whenever the effective sample size
//!   collapses below a configured fraction.
//!
//! Compared to snapshot matching, tracking suppresses the fingerprint-aliasing
//! outliers (a far-away cell with a coincidentally similar fingerprint is
//! unreachable under the motion model).

use crate::db::FingerprintDb;
use crate::error::TaflocError;
use crate::Result;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use taf_rfsim::geometry::Point;
use taf_rfsim::rng::GaussianSource;

/// Particle-filter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Number of particles.
    pub num_particles: usize,
    /// Motion-model speed scale (m/s): the per-step displacement std is
    /// `speed_mps · dt`.
    pub speed_mps: f64,
    /// RSS likelihood scale (dB) — the assumed measurement noise per link.
    pub sigma_db: f64,
    /// Resample when the effective sample size falls below this fraction of
    /// `num_particles` (in `(0, 1]`).
    pub resample_fraction: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig { num_particles: 400, speed_mps: 1.2, sigma_db: 2.5, resample_fraction: 0.5 }
    }
}

/// One tracking estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackEstimate {
    /// Weighted-mean position.
    pub point: Point,
    /// Effective sample size at estimate time (diagnostic; low = degenerate).
    pub effective_sample_size: f64,
}

/// A particle filter bound to a fingerprint database.
///
/// ```
/// use taf_rfsim::{campaign, World, WorldConfig};
/// use tafloc_core::db::FingerprintDb;
/// use tafloc_core::tracking::{ParticleFilter, TrackerConfig};
///
/// let world = World::new(WorldConfig::small_test(), 1);
/// let db = FingerprintDb::from_world(campaign::full_calibration(&world, 0.0, 20), &world).unwrap();
/// let mut pf = ParticleFilter::new(&db, TrackerConfig::default(), 7).unwrap();
/// for _step in 0..5 {
///     let y = campaign::snapshot_at_cell(&world, 0.0, 12, 20);
///     let est = pf.step(&db, &y, 1.0).unwrap();
///     assert!(est.point.x.is_finite());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ParticleFilter {
    config: TrackerConfig,
    particles: Vec<Point>,
    weights: Vec<f64>,
    rng: StdRng,
}

impl ParticleFilter {
    /// Creates a filter with particles spread uniformly over the monitored
    /// region of `db`'s grid.
    pub fn new(db: &FingerprintDb, config: TrackerConfig, seed: u64) -> Result<Self> {
        if config.num_particles == 0 {
            return Err(TaflocError::InvalidConfig {
                field: "num_particles",
                reason: "must be >= 1".into(),
            });
        }
        if !(config.sigma_db > 0.0) || !(config.speed_mps > 0.0) {
            return Err(TaflocError::InvalidConfig {
                field: "tracker",
                reason: "speed and sigma must be positive".into(),
            });
        }
        if !(config.resample_fraction > 0.0 && config.resample_fraction <= 1.0) {
            return Err(TaflocError::InvalidConfig {
                field: "resample_fraction",
                reason: format!("must be in (0, 1], got {}", config.resample_fraction),
            });
        }
        let g = db.grid();
        let mut rng = StdRng::seed_from_u64(seed);
        let particles = (0..config.num_particles)
            .map(|_| {
                Point::new(
                    g.origin().x + g.width() * rng.random::<f64>(),
                    g.origin().y + g.height() * rng.random::<f64>(),
                )
            })
            .collect();
        let weights = vec![1.0 / config.num_particles as f64; config.num_particles];
        Ok(ParticleFilter { config, particles, weights, rng })
    }

    /// Advances the filter by one measurement: motion prediction, likelihood
    /// weighting against `db`, optional resampling; returns the estimate.
    ///
    /// `dt_s` is the time since the previous measurement, in seconds.
    pub fn step(&mut self, db: &FingerprintDb, y: &[f64], dt_s: f64) -> Result<TrackEstimate> {
        if y.len() != db.num_links() {
            return Err(TaflocError::DimensionMismatch {
                op: "ParticleFilter::step",
                expected: (db.num_links(), 1),
                actual: (y.len(), 1),
            });
        }
        if !(dt_s > 0.0) {
            return Err(TaflocError::InvalidConfig {
                field: "dt_s",
                reason: format!("must be positive, got {dt_s}"),
            });
        }
        let g = db.grid();
        let (x0, y0) = (g.origin().x, g.origin().y);
        let (x1, y1) = (x0 + g.width(), y0 + g.height());
        let step_std = self.config.speed_mps * dt_s;

        // Predict: Gaussian random walk, reflected into the region.
        let mut gauss = GaussianSource::new(&mut self.rng);
        for p in &mut self.particles {
            let nx = p.x + step_std * gauss.sample();
            let ny = p.y + step_std * gauss.sample();
            p.x = reflect(nx, x0, x1);
            p.y = reflect(ny, y0, y1);
        }

        // Update: Gaussian fingerprint likelihood of the particle's cell.
        let x = db.rss();
        let scale = 2.0 * self.config.sigma_db * self.config.sigma_db;
        let mut log_w: Vec<f64> = Vec::with_capacity(self.particles.len());
        for (p, w) in self.particles.iter().zip(&self.weights) {
            let cell = g.cell_at(p).ok_or_else(|| TaflocError::SolverFailure {
                solver: "particle-filter",
                reason: "reflected particle left the region".into(),
            })?;
            let mut ll = 0.0;
            for (i, &yi) in y.iter().enumerate() {
                let d = yi - x[(i, cell)];
                ll -= d * d / scale;
            }
            log_w.push(w.max(1e-300).ln() + ll);
        }
        // Normalize in log space.
        let max_lw = log_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for (w, lw) in self.weights.iter_mut().zip(&log_w) {
            *w = (lw - max_lw).exp();
            sum += *w;
        }
        for w in &mut self.weights {
            *w /= sum;
        }

        // Estimate + ESS.
        let ess = 1.0 / self.weights.iter().map(|w| w * w).sum::<f64>();
        let mut ex = 0.0;
        let mut ey = 0.0;
        for (p, &w) in self.particles.iter().zip(&self.weights) {
            ex += w * p.x;
            ey += w * p.y;
        }

        // Resample if degenerate.
        if ess < self.config.resample_fraction * self.config.num_particles as f64 {
            self.systematic_resample();
        }
        Ok(TrackEstimate { point: Point::new(ex, ey), effective_sample_size: ess })
    }

    /// Systematic (low-variance) resampling; resets weights to uniform.
    fn systematic_resample(&mut self) {
        let n = self.particles.len();
        let start: f64 = self.rng.random::<f64>() / n as f64;
        let mut new_particles = Vec::with_capacity(n);
        let mut cum = self.weights[0];
        let mut i = 0;
        for k in 0..n {
            let u = start + k as f64 / n as f64;
            while u > cum && i + 1 < n {
                i += 1;
                cum += self.weights[i];
            }
            new_particles.push(self.particles[i]);
        }
        self.particles = new_particles;
        self.weights.iter_mut().for_each(|w| *w = 1.0 / n as f64);
    }

    /// Current particle positions (diagnostics, plotting).
    pub fn particles(&self) -> &[Point] {
        &self.particles
    }
}

/// Reflects `v` into `[lo, hi]` (one bounce is enough for human step sizes;
/// falls back to clamping for pathological jumps).
fn reflect(v: f64, lo: f64, hi: f64) -> f64 {
    let r = if v < lo {
        2.0 * lo - v
    } else if v > hi {
        2.0 * hi - v
    } else {
        v
    };
    // Keep strictly inside so `cell_at` stays Some even on the boundary.
    r.clamp(lo, hi - 1e-9).max(lo + 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taf_rfsim::{campaign, trajectory, World, WorldConfig};

    fn db_and_world(seed: u64) -> (World, FingerprintDb) {
        let world = World::new(WorldConfig::paper_default(), seed);
        let x = campaign::full_calibration(&world, 0.0, 50);
        let db = FingerprintDb::from_world(x, &world).unwrap();
        (world, db)
    }

    #[test]
    fn reflect_keeps_in_range() {
        assert!((reflect(-0.5, 0.0, 4.0) - 0.5).abs() < 1e-12);
        assert!((reflect(4.5, 0.0, 4.0) - 3.5).abs() < 1e-12);
        assert_eq!(reflect(2.0, 0.0, 4.0), 2.0);
        // Pathological jump clamps rather than leaving the region.
        let r = reflect(100.0, 0.0, 4.0);
        assert!((0.0..4.0).contains(&r));
    }

    #[test]
    fn tracks_static_target() {
        let (world, db) = db_and_world(1);
        let mut pf = ParticleFilter::new(&db, TrackerConfig::default(), 7).unwrap();
        let cell = 44;
        let truth = world.grid().cell_center(cell);
        let mut last = None;
        for k in 0..15 {
            let y = campaign::snapshot_at_cell(&world, 0.001 * k as f64, cell, 50);
            last = Some(pf.step(&db, &y, 1.0).unwrap());
        }
        let est = last.unwrap();
        let err = est.point.distance(&truth);
        assert!(err < 1.0, "static target error {err:.2} m after convergence");
    }

    #[test]
    fn tracks_moving_target_better_than_snapshots() {
        let (world, db) = db_and_world(2);
        let traj = trajectory::random_waypoint(
            world.grid(),
            &trajectory::WaypointConfig::default(),
            40,
            3,
        );
        let mut pf = ParticleFilter::new(&db, TrackerConfig::default(), 7).unwrap();
        let mut pf_errs = Vec::new();
        let mut snap_errs = Vec::new();
        for (k, pos) in traj.points.iter().enumerate() {
            let y = campaign::snapshot_at_point(&world, 0.001 * k as f64, pos, 30);
            let est = pf.step(&db, &y, traj.sample_period_s).unwrap();
            pf_errs.push(est.point.distance(pos));
            let snap = crate::matcher::localize(&db, &y, crate::matcher::MatchMethod::Knn { k: 3 })
                .unwrap();
            snap_errs.push(snap.point.distance(pos));
        }
        // Discard the filter's burn-in.
        let pf_mean: f64 = pf_errs[5..].iter().sum::<f64>() / (pf_errs.len() - 5) as f64;
        let snap_mean: f64 = snap_errs[5..].iter().sum::<f64>() / (snap_errs.len() - 5) as f64;
        assert!(
            pf_mean < snap_mean + 0.1,
            "tracking ({pf_mean:.2} m) should not trail snapshot matching ({snap_mean:.2} m)"
        );
        assert!(pf_mean < 1.2, "moving-target tracking error {pf_mean:.2} m");
    }

    #[test]
    fn ess_reported_and_resampling_keeps_filter_alive() {
        let (world, db) = db_and_world(3);
        let mut pf =
            ParticleFilter::new(&db, TrackerConfig { num_particles: 100, ..Default::default() }, 1)
                .unwrap();
        for k in 0..10 {
            let y = campaign::snapshot_at_cell(&world, 0.001 * k as f64, 10, 30);
            let est = pf.step(&db, &y, 1.0).unwrap();
            assert!(est.effective_sample_size >= 1.0);
            assert!(est.effective_sample_size <= 100.0 + 1e-9);
        }
        assert_eq!(pf.particles().len(), 100);
    }

    #[test]
    fn validates_config_and_input() {
        let (_, db) = db_and_world(4);
        assert!(ParticleFilter::new(
            &db,
            TrackerConfig { num_particles: 0, ..Default::default() },
            1
        )
        .is_err());
        assert!(ParticleFilter::new(&db, TrackerConfig { sigma_db: 0.0, ..Default::default() }, 1)
            .is_err());
        assert!(ParticleFilter::new(
            &db,
            TrackerConfig { speed_mps: 0.0, ..Default::default() },
            1
        )
        .is_err());
        assert!(ParticleFilter::new(
            &db,
            TrackerConfig { resample_fraction: 0.0, ..Default::default() },
            1
        )
        .is_err());
        let mut pf = ParticleFilter::new(&db, TrackerConfig::default(), 1).unwrap();
        assert!(pf.step(&db, &[0.0; 3], 1.0).is_err());
        let y = vec![-50.0; db.num_links()];
        assert!(pf.step(&db, &y, 0.0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let (world, db) = db_and_world(5);
        let y = campaign::snapshot_at_cell(&world, 0.0, 20, 30);
        let mut a = ParticleFilter::new(&db, TrackerConfig::default(), 9).unwrap();
        let mut b = ParticleFilter::new(&db, TrackerConfig::default(), 9).unwrap();
        let ea = a.step(&db, &y, 1.0).unwrap();
        let eb = b.step(&db, &y, 1.0).unwrap();
        assert_eq!(ea, eb);
    }
}
