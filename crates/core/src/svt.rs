//! Rank-minimization matrix completion (the poster's property-(i)-only scheme).
//!
//! The first formulation in the paper is plain matrix completion:
//! `min rank(X̂)  s.t.  B ∘ X̂ = X_I`. Its convex relaxation replaces rank with the
//! nuclear norm, solved here by the **soft-impute** iteration (a singular-value
//! thresholding method): alternately fill the missing entries from the current
//! estimate and shrink the singular values.
//!
//! This module exists (a) as the ablation baseline showing low-rank structure
//! alone is not enough — with only a few observed columns, completion without the
//! LRR prior is badly under-determined — and (b) as the initializer fallback for
//! LoLi-IR when no LRR prior is supplied.

use crate::error::TaflocError;
use crate::mask::Mask;
use crate::Result;
use serde::{Deserialize, Serialize};
use taf_linalg::Matrix;

/// Soft-impute configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvtConfig {
    /// Singular-value shrinkage threshold `τ`. Larger values force lower rank.
    pub tau: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Relative-change stopping tolerance.
    pub tol: f64,
}

impl Default for SvtConfig {
    fn default() -> Self {
        SvtConfig { tau: 1.0, max_iters: 200, tol: 1e-6 }
    }
}

/// Result of a completion run.
#[derive(Debug, Clone)]
pub struct SvtResult {
    /// The completed matrix.
    pub matrix: Matrix,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration budget.
    pub converged: bool,
}

/// Completes `observed` (values valid where `mask` is true) by soft-impute.
///
/// Missing entries are initialized to the mean of each row's observed entries
/// (falling back to the global observed mean), which matters for RSS data where
/// entries sit around −40…−70 dBm rather than 0.
pub fn soft_impute(observed: &Matrix, mask: &Mask, config: &SvtConfig) -> Result<SvtResult> {
    if mask.shape() != observed.shape() {
        return Err(TaflocError::DimensionMismatch {
            op: "soft_impute",
            expected: observed.shape(),
            actual: mask.shape(),
        });
    }
    if mask.count() == 0 {
        return Err(TaflocError::InvalidConfig {
            field: "mask",
            reason: "no observed entries to complete from".into(),
        });
    }
    if !(config.tau > 0.0) || config.max_iters == 0 {
        return Err(TaflocError::InvalidConfig {
            field: "svt",
            reason: format!(
                "tau must be > 0 and max_iters > 0 (tau={}, iters={})",
                config.tau, config.max_iters
            ),
        });
    }

    let (m, n) = observed.shape();

    // Row-mean initialization of missing entries.
    let mut global_sum = 0.0;
    let mut global_cnt = 0usize;
    for (i, j) in mask.true_positions() {
        global_sum += observed[(i, j)];
        global_cnt += 1;
    }
    let global_mean = global_sum / global_cnt as f64;
    let mut row_mean = vec![global_mean; m];
    for i in 0..m {
        let mut s = 0.0;
        let mut c = 0usize;
        for j in 0..n {
            if mask.get(i, j) {
                s += observed[(i, j)];
                c += 1;
            }
        }
        if c > 0 {
            row_mean[i] = s / c as f64;
        }
    }
    let mut x =
        Matrix::from_fn(m, n, |i, j| if mask.get(i, j) { observed[(i, j)] } else { row_mean[i] });

    let mut converged = false;
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Shrink singular values of the current filled matrix, then re-impose
        // the observed entries in place and fold the step-size norm into the
        // same pass — the shrunk matrix becomes the next iterate directly, so
        // the loop allocates nothing beyond the SVD's own scratch.
        let mut shrunk = x.svd()?.shrink(config.tau);
        for (i, j) in mask.true_positions() {
            shrunk[(i, j)] = observed[(i, j)];
        }
        let mut step_sq = 0.0;
        for i in 0..m {
            for j in 0..n {
                let d = shrunk[(i, j)] - x[(i, j)];
                step_sq += d * d;
            }
        }
        let denom = x.frobenius_norm().max(1e-12);
        let delta = step_sq.sqrt() / denom;
        x = shrunk;
        if delta < config.tol {
            converged = true;
            break;
        }
    }
    if x.has_non_finite() {
        return Err(TaflocError::SolverFailure {
            solver: "soft-impute",
            reason: "produced non-finite values".into(),
        });
    }
    Ok(SvtResult { matrix: x, iterations, converged })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank-2 test matrix (6 x 8).
    fn low_rank() -> Matrix {
        let u = Matrix::from_cols(&[
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            &[1.0, -1.0, 1.0, -1.0, 1.0, -1.0],
        ])
        .unwrap();
        let v = Matrix::from_rows(&[
            &[1.0, 0.5, -0.5, 2.0, 1.5, 0.0, -1.0, 0.3],
            &[0.0, 1.0, 1.0, -1.0, 0.5, 2.0, 0.7, -0.2],
        ])
        .unwrap();
        u.matmul(&v).unwrap()
    }

    /// Mask observing every entry except a scattered set.
    fn scattered_mask(m: usize, n: usize, holes: &[(usize, usize)]) -> Mask {
        let mut mask = Mask::trues(m, n);
        for &(i, j) in holes {
            mask.set(i, j, false);
        }
        mask
    }

    #[test]
    fn recovers_scattered_missing_entries() {
        let x = low_rank();
        let holes = [(0, 0), (1, 3), (2, 5), (4, 7), (5, 2), (3, 1)];
        let mask = scattered_mask(6, 8, &holes);
        let cfg = SvtConfig { tau: 0.05, max_iters: 2000, tol: 1e-9 };
        let res = soft_impute(&x, &mask, &cfg).unwrap();
        for &(i, j) in &holes {
            assert!(
                (res.matrix[(i, j)] - x[(i, j)]).abs() < 0.3,
                "hole ({i},{j}): {} vs {}",
                res.matrix[(i, j)],
                x[(i, j)]
            );
        }
    }

    #[test]
    fn observed_entries_exactly_preserved() {
        let x = low_rank();
        let mask = scattered_mask(6, 8, &[(0, 0)]);
        let res = soft_impute(&x, &mask, &SvtConfig::default()).unwrap();
        for (i, j) in mask.true_positions() {
            assert_eq!(res.matrix[(i, j)], x[(i, j)]);
        }
    }

    #[test]
    fn converges_on_easy_problem() {
        let x = low_rank();
        let mask = scattered_mask(6, 8, &[(2, 2)]);
        let cfg = SvtConfig { tau: 0.05, max_iters: 2000, tol: 1e-9 };
        let res = soft_impute(&x, &mask, &cfg).unwrap();
        assert!(res.converged, "failed after {} iterations", res.iterations);
    }

    #[test]
    fn column_only_observation_is_underdetermined() {
        // The motivating failure: observing whole columns only (TafLoc's update
        // pattern) leaves completion unable to pin down the unobserved columns —
        // which is why TafLoc needs the LRR prior. The reconstruction should be
        // noticeably worse than with scattered holes.
        let x = low_rank();
        let mask = Mask::from_columns(6, 8, &[0, 1, 2]).unwrap();
        let cfg = SvtConfig { tau: 0.05, max_iters: 500, tol: 1e-8 };
        let res = soft_impute(&x, &mask, &cfg).unwrap();
        let err: f64 = (0..6)
            .flat_map(|i| (3..8).map(move |j| (i, j)))
            .map(|(i, j)| (res.matrix[(i, j)] - x[(i, j)]).abs())
            .sum::<f64>()
            / 30.0;
        assert!(err > 0.5, "column-only completion should struggle, err = {err}");
    }

    #[test]
    fn validates_inputs() {
        let x = low_rank();
        let bad_mask = Mask::trues(2, 2);
        assert!(soft_impute(&x, &bad_mask, &SvtConfig::default()).is_err());
        let empty = Mask::falses(6, 8);
        assert!(soft_impute(&x, &empty, &SvtConfig::default()).is_err());
        let mask = Mask::trues(6, 8);
        let cfg = SvtConfig { tau: 0.0, ..Default::default() };
        assert!(soft_impute(&x, &mask, &cfg).is_err());
        let cfg = SvtConfig { max_iters: 0, ..Default::default() };
        assert!(soft_impute(&x, &mask, &cfg).is_err());
    }

    #[test]
    fn full_observation_returns_input() {
        let x = low_rank();
        let mask = Mask::trues(6, 8);
        let res = soft_impute(&x, &mask, &SvtConfig::default()).unwrap();
        assert!(res.matrix.approx_eq(&x, 1e-12));
    }

    #[test]
    fn larger_tau_lowers_rank() {
        let x = low_rank();
        let mask = scattered_mask(6, 8, &[(1, 1), (4, 4)]);
        let lo =
            soft_impute(&x, &mask, &SvtConfig { tau: 0.01, max_iters: 300, tol: 1e-8 }).unwrap();
        let hi =
            soft_impute(&x, &mask, &SvtConfig { tau: 50.0, max_iters: 300, tol: 1e-8 }).unwrap();
        let rank = |m: &Matrix| m.svd().unwrap().rank(1e-6);
        assert!(rank(&hi.matrix) <= rank(&lo.matrix));
    }
}
