//! The continuity (`G`) and similarity (`H`) structure operators.
//!
//! Property (iii) of the poster: *"RSS measurements at neighbor locations along a
//! particular link are continuous, and measurements at a specific location from
//! adjacent links are similar."* We encode both as graphs:
//!
//! * the **location graph** connects spatially adjacent cells (4-neighborhood of
//!   the floor grid) — penalizing differences of a link's RSS across an edge is
//!   the continuity term `‖X_D·G‖²_F`;
//! * the **link graph** connects each link to its `k` geometrically nearest
//!   links — penalizing differences of a cell's RSS across an edge is the
//!   similarity term `‖H·X_D‖²_F`.
//!
//! Both are exposed as neighbor lists (what the LoLi-IR inner loops consume) and
//! as sparse incidence matrices / dense Laplacians (for diagnostics, the exact CG
//! variant and tests).

use crate::Result;
use serde::{Deserialize, Serialize};
use taf_linalg::sparse::Csr;
use taf_linalg::Matrix;
use taf_rfsim::deployment::Deployment;
use taf_rfsim::geometry::Segment;
use taf_rfsim::grid::FloorGrid;

/// An undirected neighborhood graph over `n` vertices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborGraph {
    /// `neighbors[v]` = sorted, deduplicated adjacency list of vertex `v`.
    neighbors: Vec<Vec<usize>>,
}

impl NeighborGraph {
    /// Builds a graph from raw adjacency lists, symmetrizing and deduplicating.
    /// Panics if an index is out of range (graphs come from validated geometry).
    pub fn new(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut neighbors = vec![Vec::new(); n];
        for (a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} vertices");
            if a == b {
                continue;
            }
            neighbors[a].push(b);
            neighbors[b].push(a);
        }
        for list in &mut neighbors {
            list.sort_unstable();
            list.dedup();
        }
        NeighborGraph { neighbors }
    }

    /// The location graph: cells adjacent in the floor grid (4-neighborhood).
    pub fn locations(grid: &FloorGrid) -> Self {
        let n = grid.num_cells();
        let mut edges = Vec::new();
        for v in 0..n {
            for u in grid.neighbors4(v) {
                if u > v {
                    edges.push((v, u));
                }
            }
        }
        NeighborGraph::new(n, edges)
    }

    /// The link graph: each link connected to its `k` nearest links (by midpoint
    /// distance).
    pub fn links(deployment: &Deployment, k: usize) -> Self {
        let m = deployment.num_links();
        let mut edges = Vec::new();
        for i in 0..m {
            for j in deployment.adjacent_links(i, k) {
                edges.push((i, j));
            }
        }
        NeighborGraph::new(m, edges)
    }

    /// Link graph built from bare segments (for databases without a full
    /// [`Deployment`]): connects each link to its `k` nearest by midpoint.
    pub fn links_from_segments(segments: &[Segment], k: usize) -> Self {
        let m = segments.len();
        let mids: Vec<_> = segments.iter().map(|s| s.midpoint()).collect();
        let mut edges = Vec::new();
        for i in 0..m {
            let mut others: Vec<(usize, f64)> =
                (0..m).filter(|&j| j != i).map(|j| (j, mids[i].distance(&mids[j]))).collect();
            others.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
            for &(j, _) in others.iter().take(k) {
                edges.push((i, j));
            }
        }
        NeighborGraph::new(m, edges)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Adjacency list of vertex `v`. Panics when out of range.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.neighbors[v]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.neighbors[v].len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// Oriented incidence matrix (`num_edges x n`): each row has `+1/−1` at an
    /// edge's endpoints. `incidence()ᵀ · incidence()` is the graph Laplacian.
    pub fn incidence(&self) -> Result<Csr> {
        let mut triplets = Vec::with_capacity(2 * self.num_edges());
        let mut row = 0;
        for v in 0..self.len() {
            for &u in &self.neighbors[v] {
                if u > v {
                    triplets.push((row, v, 1.0));
                    triplets.push((row, u, -1.0));
                    row += 1;
                }
            }
        }
        Csr::from_triplets(row, self.len(), &triplets).map_err(crate::error::TaflocError::from)
    }

    /// Dense graph Laplacian `L = D − A`.
    pub fn laplacian(&self) -> Matrix {
        let n = self.len();
        let mut l = Matrix::zeros(n, n);
        for v in 0..n {
            l[(v, v)] = self.degree(v) as f64;
            for &u in &self.neighbors[v] {
                l[(v, u)] = -1.0;
            }
        }
        l
    }
}

/// Smoothness energy of the rows of `x` over `graph` (vertices = columns):
/// `Σ_edges ‖x[:, u] − x[:, v]‖²` — the continuity penalty `‖X·G‖²_F`.
pub fn column_smoothness(x: &Matrix, graph: &NeighborGraph) -> f64 {
    debug_assert_eq!(x.cols(), graph.len());
    let mut acc = 0.0;
    for v in 0..graph.len() {
        for &u in graph.neighbors(v) {
            if u > v {
                for i in 0..x.rows() {
                    let d = x[(i, v)] - x[(i, u)];
                    acc += d * d;
                }
            }
        }
    }
    acc
}

/// Smoothness energy of the columns of `x` over `graph` (vertices = rows):
/// `Σ_edges ‖x[u, :] − x[v, :]‖²` — the similarity penalty `‖H·X‖²_F`.
pub fn row_smoothness(x: &Matrix, graph: &NeighborGraph) -> f64 {
    debug_assert_eq!(x.rows(), graph.len());
    let mut acc = 0.0;
    for v in 0..graph.len() {
        for &u in graph.neighbors(v) {
            if u > v {
                for j in 0..x.cols() {
                    let d = x[(v, j)] - x[(u, j)];
                    acc += d * d;
                }
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use taf_rfsim::geometry::Point;

    fn grid() -> FloorGrid {
        FloorGrid::new(Point::new(0.0, 0.0), 1.0, 3, 2)
    }

    #[test]
    fn location_graph_structure() {
        let g = NeighborGraph::locations(&grid());
        assert_eq!(g.len(), 6);
        // 3x2 grid: horizontal edges 2 per row x 2 rows = 4, vertical 3 -> 7.
        assert_eq!(g.num_edges(), 7);
        // Corner cell 0 has 2 neighbors: 1 (right) and 3 (up).
        assert_eq!(g.neighbors(0), &[1, 3]);
    }

    #[test]
    fn link_graph_from_deployment() {
        let d = Deployment::perimeter(&grid(), 6, 0.3);
        let g = NeighborGraph::links(&d, 2);
        assert_eq!(g.len(), 6);
        for v in 0..6 {
            assert!(g.degree(v) >= 2, "every link has at least its own 2 nearest");
            assert!(!g.neighbors(v).contains(&v));
        }
    }

    #[test]
    fn links_from_segments_matches_deployment_graph() {
        let d = Deployment::perimeter(&grid(), 6, 0.3);
        let segs: Vec<Segment> = d.links().iter().map(|l| l.segment).collect();
        let a = NeighborGraph::links(&d, 2);
        let b = NeighborGraph::links_from_segments(&segs, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn new_symmetrizes_and_dedups() {
        let g = NeighborGraph::new(3, vec![(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn incidence_gram_is_laplacian() {
        let g = NeighborGraph::locations(&grid());
        let inc = g.incidence().unwrap();
        assert_eq!(inc.rows(), g.num_edges());
        let lap = inc.gram_dense();
        assert!(lap.approx_eq(&g.laplacian(), 1e-12));
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = NeighborGraph::locations(&grid());
        let l = g.laplacian();
        for i in 0..l.rows() {
            let s: f64 = l.row(i).iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn smoothness_zero_for_constant() {
        let g = NeighborGraph::locations(&grid());
        let x = Matrix::filled(4, 6, 3.0);
        assert_eq!(column_smoothness(&x, &g), 0.0);
        let lg = NeighborGraph::new(4, vec![(0, 1), (2, 3)]);
        assert_eq!(row_smoothness(&x, &lg), 0.0);
    }

    #[test]
    fn smoothness_matches_incidence_formulation() {
        let g = NeighborGraph::locations(&grid());
        let x = Matrix::from_fn(2, 6, |i, j| (i * 7 + j * j) as f64 * 0.3);
        // Rows of the incidence matrix are edge-difference functionals, so the
        // smoothness energy equals ‖Inc · Xᵀ‖²_F.
        let inc = g.incidence().unwrap();
        let diff = inc.matmul_dense(&x.transpose()).unwrap(); // (E x N)·(N x M) = E x M
        let energy = diff.iter().map(|v| v * v).sum::<f64>();
        assert!((energy - column_smoothness(&x, &g)).abs() < 1e-9);
    }

    #[test]
    fn smoothness_detects_roughness() {
        let g = NeighborGraph::locations(&grid());
        let smooth = Matrix::from_fn(1, 6, |_, j| j as f64 * 0.1);
        let rough = Matrix::from_fn(1, 6, |_, j| if j % 2 == 0 { 10.0 } else { -10.0 });
        assert!(column_smoothness(&rough, &g) > column_smoothness(&smooth, &g));
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        NeighborGraph::new(2, vec![(0, 5)]);
    }
}
