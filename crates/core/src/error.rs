//! Error type for the TafLoc core.

use std::fmt;
use taf_linalg::LinalgError;

/// Errors surfaced by the TafLoc pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TaflocError {
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// Two inputs had incompatible shapes.
    DimensionMismatch {
        /// Operation that failed.
        op: &'static str,
        /// Expected shape `(rows, cols)`.
        expected: (usize, usize),
        /// Actual shape `(rows, cols)`.
        actual: (usize, usize),
    },
    /// A configuration value was invalid.
    InvalidConfig {
        /// Which field.
        field: &'static str,
        /// What was wrong.
        reason: String,
    },
    /// Not enough reference locations for the requested operation.
    InsufficientReferences {
        /// Requested number of references.
        requested: usize,
        /// Number of available candidate locations.
        available: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Operation that failed.
        op: &'static str,
        /// Offending index.
        index: usize,
        /// Exclusive bound.
        bound: usize,
    },
    /// The solver failed to make progress (diverged or produced non-finite values).
    SolverFailure {
        /// Which solver.
        solver: &'static str,
        /// Details.
        reason: String,
    },
}

impl fmt::Display for TaflocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaflocError::Linalg(e) => write!(f, "linear algebra: {e}"),
            TaflocError::DimensionMismatch { op, expected, actual } => write!(
                f,
                "{op}: expected {}x{}, got {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            TaflocError::InvalidConfig { field, reason } => {
                write!(f, "invalid config `{field}`: {reason}")
            }
            TaflocError::InsufficientReferences { requested, available } => write!(
                f,
                "requested {requested} reference locations but only {available} candidates exist"
            ),
            TaflocError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "{op}: index {index} out of bounds (< {bound})")
            }
            TaflocError::SolverFailure { solver, reason } => {
                write!(f, "{solver} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for TaflocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TaflocError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for TaflocError {
    fn from(e: LinalgError) -> Self {
        TaflocError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = TaflocError::DimensionMismatch { op: "update", expected: (2, 3), actual: (4, 5) };
        assert!(e.to_string().contains("2x3"));
        let e = TaflocError::InvalidConfig { field: "rank", reason: "zero".into() };
        assert!(e.to_string().contains("rank"));
        let e = TaflocError::InsufficientReferences { requested: 10, available: 3 };
        assert!(e.to_string().contains("10"));
        let e = TaflocError::IndexOutOfBounds { op: "col", index: 7, bound: 5 };
        assert!(e.to_string().contains("7"));
        let e = TaflocError::SolverFailure { solver: "loli-ir", reason: "NaN".into() };
        assert!(e.to_string().contains("loli-ir"));
    }

    #[test]
    fn linalg_conversion_and_source() {
        let le = LinalgError::EmptyInput { op: "svd" };
        let e: TaflocError = le.clone().into();
        assert_eq!(e, TaflocError::Linalg(le));
        assert!(std::error::Error::source(&e).is_some());
    }
}
