//! LoLi-IR: the **Lo**w-rank + **Li**near-representation **I**terative
//! **R**efinement solver — TafLoc's fingerprint-matrix reconstruction.
//!
//! # The objective
//!
//! Writing the reconstruction as `X̂ = L·Rᵀ` (`L: M x r`, `R: N x r`), LoLi-IR
//! minimizes
//!
//! ```text
//! f(L, R) =   λ (‖L‖²_F + ‖R‖²_F)                      — low-rank factors (P1)
//!           + ‖B ∘ (L·Rᵀ − X_I)‖²_F                     — fit fresh measurements
//!           + μ ‖L·Rᵀ − X_R·Z‖²_F                       — LRR prior (P2)
//!           + α Σ_{(j,j') ∈ G} ‖w_{jj'} ∘ (x̂_j − x̂_{j'})‖²        — continuity (P3)
//!           + β Σ_{(i,i') ∈ H} ‖w_{ii'} ∘ (x̂_i − x̂_{i'} − δ_{ii'}·1)‖²  — similarity (P3)
//! ```
//!
//! where `G` is the location graph (grid-adjacent cells), `H` the link graph
//! (geometrically adjacent links), `w` restricts each edge to the entries flagged
//! as *largely distorted* (the paper's `X_D`), and `δ_{ii'} = e_i − e_{i'}`
//! aligns the empty-room baselines of two links before comparing them.
//!
//! # The algorithm
//!
//! The poster says the non-convex problem is solved by obtaining `L` and `R` "in
//! an alternatively iterative manner" after an SVD initialization. Concretely:
//!
//! 1. Initialize `L, R` from the truncated SVD of the LRR prediction `X_R·Z`
//!    (or of the row-mean-filled observations when no prior is given).
//! 2. **L-step** — Gauss-Seidel over rows: solving for row `l_i` with everything
//!    else fixed is an `r x r` ridge system (Cholesky), because the data, prior
//!    and similarity terms are all quadratic in `l_i`.
//! 3. **R-step** — Gauss-Seidel over columns, symmetric.
//! 4. Evaluate `f`; stop when the relative decrease falls below `tol`.
//!
//! Because every block solve is exact, the objective is monotonically
//! non-increasing — a property the tests assert.
//!
//! # Parallelism and determinism
//!
//! Two rows couple in the L-step only through a similarity edge (and two
//! columns in the R-step only through a continuity edge), so each sweep is run
//! as a *colored* Gauss-Seidel pass: a deterministic greedy coloring of the
//! link (resp. location) graph partitions the rows (columns) into classes with
//! no intra-class edges, classes are visited in fixed order, and the
//! independent solves inside a class fan out across the rayon pool (behind the
//! `parallel` feature). Each solve writes only its own [`SolverWorkspace`]
//! scratch slot; results are scattered back serially in index order, which
//! makes the output bit-identical at any thread count — including the serial
//! build. Exact block solves in any order keep the objective monotone.
//!
//! Steady-state iterations are allocation-free when the caller reuses a
//! [`SolverWorkspace`] via [`reconstruct_with`].

use crate::error::TaflocError;
use crate::mask::Mask;
use crate::operators::NeighborGraph;
use crate::Result;
use serde::{Deserialize, Serialize};
use taf_linalg::decomp::cholesky::solve_in_place;
use taf_linalg::{LinalgError, Matrix};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Estimated fused-multiply-add count below which a class of block solves runs
/// inline: at small sizes the fork/join overhead exceeds the solve cost, and
/// staying serial also keeps steady-state iterations allocation-free.
const PAR_MIN_FLOPS: usize = 1 << 16;

/// LoLi-IR hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoliIrConfig {
    /// Factor rank `r` of `X̂ = L·Rᵀ`.
    pub rank: usize,
    /// Ridge weight `λ` on the factors (must be `> 0`; keeps every inner system
    /// positive definite).
    pub lambda: f64,
    /// Weight `μ` of the LRR prior term.
    pub mu: f64,
    /// Weight `α` of the continuity term (location graph).
    pub alpha: f64,
    /// Weight `β` of the similarity term (link graph).
    pub beta: f64,
    /// Maximum outer (L-step + R-step) iterations.
    pub max_iters: usize,
    /// Relative objective-decrease stopping tolerance.
    pub tol: f64,
    /// Adaptive stopping: the relative decrease must stay below `tol` for this
    /// many *consecutive* iterations before the solve is declared converged.
    /// `1` reproduces the classic single-hit rule; larger values guard against
    /// declaring victory on one coincidentally-flat iteration of a solve that
    /// is still moving (the failure mode that made refreshes silently burn the
    /// whole `max_iters` budget instead: the tolerance was never *held*).
    #[serde(default = "default_stall_iters")]
    pub stall_iters: usize,
    /// Anderson-style acceleration: after each sweep, extrapolate the factors
    /// along the last step direction with a secant-estimated coefficient and
    /// keep the extrapolated point only if it lowers the objective. Safeguarded
    /// by that re-evaluation, so the objective trace stays monotone; off by
    /// default because the extra objective evaluation only pays for itself on
    /// slow geometric convergence (cold starts on large problems).
    #[serde(default)]
    pub accelerate: bool,
    /// Test-only fault-injection hook: a constant bias (dB) added to every
    /// entry of the reconstructed matrix after the solve. `0.0` (the default,
    /// and the only sane production value) is a strict no-op. The regression
    /// harness (`taf-testkit`) sets this to verify its accuracy gates detect
    /// a corrupted reconstruction — see the mutation check in that crate.
    #[serde(default)]
    pub debug_bias_db: f64,
}

fn default_stall_iters() -> usize {
    1
}

impl Default for LoliIrConfig {
    fn default() -> Self {
        LoliIrConfig {
            rank: 8,
            lambda: 1e-2,
            mu: 1.0,
            alpha: 0.05,
            beta: 0.05,
            max_iters: 60,
            tol: 1e-6,
            stall_iters: default_stall_iters(),
            accelerate: false,
            debug_bias_db: 0.0,
        }
    }
}

impl LoliIrConfig {
    fn validate(&self) -> Result<()> {
        if self.rank == 0 {
            return Err(TaflocError::InvalidConfig {
                field: "rank",
                reason: "must be >= 1".into(),
            });
        }
        if !(self.lambda > 0.0) {
            return Err(TaflocError::InvalidConfig {
                field: "lambda",
                reason: format!("must be > 0, got {}", self.lambda),
            });
        }
        for (name, v) in [("mu", self.mu), ("alpha", self.alpha), ("beta", self.beta)] {
            if v < 0.0 || !v.is_finite() {
                return Err(TaflocError::InvalidConfig {
                    field: name,
                    reason: format!("must be finite and >= 0, got {v}"),
                });
            }
        }
        if self.max_iters == 0 {
            return Err(TaflocError::InvalidConfig {
                field: "max_iters",
                reason: "must be >= 1".into(),
            });
        }
        if self.stall_iters == 0 {
            return Err(TaflocError::InvalidConfig {
                field: "stall_iters",
                reason: "must be >= 1".into(),
            });
        }
        if !self.debug_bias_db.is_finite() {
            return Err(TaflocError::InvalidConfig {
                field: "debug_bias_db",
                reason: format!("must be finite, got {}", self.debug_bias_db),
            });
        }
        Ok(())
    }
}

/// Inputs to one reconstruction.
///
/// Borrowed so that the caller (typically [`crate::system::TafLoc`]) can reuse the
/// graphs and masks across updates.
#[derive(Debug, Clone, Copy)]
pub struct ReconstructionProblem<'a> {
    /// Measured values `X_I` (`M x N`); only entries where `mask` is true are read.
    pub observed: &'a Matrix,
    /// Observation mask `B`.
    pub mask: &'a Mask,
    /// LRR prior `X_R·Z` (`M x N`), if available.
    pub lrr_prior: Option<&'a Matrix>,
    /// Location graph for the continuity term (`N` vertices).
    pub location_graph: Option<&'a NeighborGraph>,
    /// Link graph for the similarity term (`M` vertices).
    pub link_graph: Option<&'a NeighborGraph>,
    /// Per-link empty-room RSS `e` (for the cross-link baseline offsets `δ`);
    /// zeros assumed when absent.
    pub empty_rss: Option<&'a [f64]>,
    /// Largely-distorted entry mask `X_D`'s support; when present, the
    /// continuity/similarity penalties only act where *both* endpoint entries of
    /// an edge are distorted. When absent, they act everywhere.
    pub distortion: Option<&'a Mask>,
}

impl<'a> ReconstructionProblem<'a> {
    /// Minimal problem: observations + mask only (pure matrix completion).
    pub fn completion_only(observed: &'a Matrix, mask: &'a Mask) -> Self {
        ReconstructionProblem {
            observed,
            mask,
            lrr_prior: None,
            location_graph: None,
            link_graph: None,
            empty_rss: None,
            distortion: None,
        }
    }

    fn validate(&self) -> Result<()> {
        let shape = self.observed.shape();
        if self.mask.shape() != shape {
            return Err(TaflocError::DimensionMismatch {
                op: "LoLi-IR(mask)",
                expected: shape,
                actual: self.mask.shape(),
            });
        }
        if self.mask.count() == 0 {
            return Err(TaflocError::InvalidConfig {
                field: "mask",
                reason: "no observed entries".into(),
            });
        }
        if let Some(p) = self.lrr_prior {
            if p.shape() != shape {
                return Err(TaflocError::DimensionMismatch {
                    op: "LoLi-IR(prior)",
                    expected: shape,
                    actual: p.shape(),
                });
            }
        }
        if let Some(g) = self.location_graph {
            if g.len() != shape.1 {
                return Err(TaflocError::DimensionMismatch {
                    op: "LoLi-IR(location_graph)",
                    expected: (shape.1, 1),
                    actual: (g.len(), 1),
                });
            }
        }
        if let Some(h) = self.link_graph {
            if h.len() != shape.0 {
                return Err(TaflocError::DimensionMismatch {
                    op: "LoLi-IR(link_graph)",
                    expected: (shape.0, 1),
                    actual: (h.len(), 1),
                });
            }
        }
        if let Some(e) = self.empty_rss {
            if e.len() != shape.0 {
                return Err(TaflocError::DimensionMismatch {
                    op: "LoLi-IR(empty_rss)",
                    expected: (shape.0, 1),
                    actual: (e.len(), 1),
                });
            }
        }
        if let Some(d) = self.distortion {
            if d.shape() != shape {
                return Err(TaflocError::DimensionMismatch {
                    op: "LoLi-IR(distortion)",
                    expected: shape,
                    actual: d.shape(),
                });
            }
        }
        Ok(())
    }
}

/// Output of a LoLi-IR run.
#[derive(Debug, Clone)]
pub struct Reconstruction {
    /// The reconstructed matrix `X̂ = L·Rᵀ`.
    pub matrix: Matrix,
    /// Left factor `L` (`M x r`).
    pub l: Matrix,
    /// Right factor `R` (`N x r`).
    pub r: Matrix,
    /// Objective value after initialization and after each outer iteration.
    pub objective_trace: Vec<f64>,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Whether the relative-decrease tolerance was held for
    /// [`LoliIrConfig::stall_iters`] consecutive iterations.
    pub converged: bool,
    /// Whether this solve was seeded from a [`WarmState`] (false for the SVD
    /// cold start, including when a supplied warm state was rejected for
    /// shape mismatch or non-finite values).
    pub warm_start: bool,
    /// Per-cell/per-link reconstruction confidence derived from the final
    /// factors — the signal an adaptive-sensing planner consumes.
    pub diagnostics: ReconstructionDiagnostics,
}

/// The previous solution `(L, R)`, carried between solves so a steady-state
/// refresh resumes where the last one stopped instead of paying a cold SVD
/// start and a full iteration burn.
///
/// This is the paper's P2 insight turned into solver state: the localization
/// model `Z` is stable across time, so consecutive refreshes solve nearly the
/// same problem and the previous factors are an excellent initial iterate.
/// `Z` itself rides along in `TafLoc`'s LRR model (it parameterizes the prior
/// `X_R·Z`, not the iterate), and the per-row Cholesky scratch factors are
/// reused through the [`SolverWorkspace`]; the warm state proper is just the
/// factor pair. Build one from an *accepted* reconstruction with
/// [`WarmState::from_reconstruction`] — a rejected or rolled-back solve must
/// never seed the next one (see `SolverCache` in the system layer).
#[derive(Debug, Clone)]
pub struct WarmState {
    l: Matrix,
    r: Matrix,
}

impl WarmState {
    /// Captures the factor pair of a finished solve.
    pub fn from_reconstruction(rec: &Reconstruction) -> Self {
        WarmState { l: rec.l.clone(), r: rec.r.clone() }
    }

    /// Rebuilds a warm state from a previously captured factor pair (the
    /// persistence path). Returns `None` when the pair cannot have come from
    /// one solve: mismatched ranks or any non-finite entry.
    pub fn from_parts(l: Matrix, r: Matrix) -> Option<Self> {
        if l.cols() != r.cols() || l.has_non_finite() || r.has_non_finite() {
            return None;
        }
        Some(WarmState { l, r })
    }

    /// Left factor `L` (`links x rank`).
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Right factor `R` (`cells x rank`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// `(links, cells, rank)` this state can seed.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.l.rows(), self.r.rows(), self.l.cols())
    }

    /// A warm state is usable only when every entry is finite.
    pub fn is_finite(&self) -> bool {
        !self.l.has_non_finite() && !self.r.has_non_finite()
    }
}

/// Per-cell reconstruction confidence, computed from the final `(L, R)`
/// factors after the solve.
///
/// Three ingredients, all deterministic functions of the solution:
///
/// * **residual** — RMS misfit (dB) between `X̂` and the observed entries,
///   per location cell (column) and per link (row). A cell whose observed
///   entries the solver could not fit is a cell whose unobserved entries
///   should not be trusted either.
/// * **leverage** — the ridge leverage score
///   `h_j = r_jᵀ (RᵀR + λI)⁻¹ r_j ∈ [0, 1)` of each cell's factor row. High
///   leverage means the cell's column occupies a direction of factor space
///   that few other columns share, so little information is borrowed from
///   them and the completion rests on thin evidence.
/// * **coverage** — the fraction of the cell's entries that were observed.
///
/// They combine into `cell_confidence ∈ [0, 1]`: high when a well-observed
/// column was fit closely in a well-supported direction, low for unobserved
/// or poorly-fit or high-leverage columns. Only the *ordering* is consumed
/// by the planner, so the exact blend matters less than its monotonicity in
/// each ingredient.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconstructionDiagnostics {
    /// Per-cell RMS residual (dB) over the cell's observed entries; cells
    /// with no observed entry take the global RMS residual.
    pub cell_rms_residual_db: Vec<f64>,
    /// Per-cell ridge leverage score in `[0, 1]`.
    pub cell_leverage: Vec<f64>,
    /// Observed entries per cell.
    pub cell_observed: Vec<usize>,
    /// Combined per-cell confidence in `[0, 1]` (higher = more trusted).
    pub cell_confidence: Vec<f64>,
    /// Per-link RMS residual (dB) over the link's observed entries; links
    /// with no observed entry take the global RMS residual.
    pub link_rms_residual_db: Vec<f64>,
    /// Global RMS residual (dB) over every observed entry.
    pub rms_residual_db: f64,
}

/// Weight of the coverage floor in the confidence blend: a fully unobserved
/// cell keeps this fraction of the coverage term, so residual and leverage
/// still order the unobserved cells among themselves.
const CONFIDENCE_COVERAGE_FLOOR: f64 = 0.15;

/// Computes [`ReconstructionDiagnostics`] for the final factors. Runs once
/// per solve, after the iteration loop; it may allocate (the iteration loop
/// may not) but reuses the workspace's `gram` and scratch slot 0 for the
/// `r x r` leverage solves.
fn compute_diagnostics(
    problem: &ReconstructionProblem<'_>,
    config: &LoliIrConfig,
    rf: &Matrix,
    ws: &mut SolverWorkspace,
) -> Result<ReconstructionDiagnostics> {
    let (m, n) = problem.observed.shape();
    let r = rf.cols();
    let SolverWorkspace { scratch, gram, xh, .. } = ws;

    // Residuals of the reconstruction against the observed entries. `xh`
    // holds the final `L·Rᵀ` (the last objective evaluation wrote it).
    let mut cell_sq = vec![0.0f64; n];
    let mut cell_observed = vec![0usize; n];
    let mut link_sq = vec![0.0f64; m];
    let mut link_observed = vec![0usize; m];
    let mut total_sq = 0.0f64;
    let mut total_count = 0usize;
    for (i, j) in problem.mask.true_positions() {
        let d = xh[(i, j)] - problem.observed[(i, j)];
        cell_sq[j] += d * d;
        cell_observed[j] += 1;
        link_sq[i] += d * d;
        link_observed[i] += 1;
        total_sq += d * d;
        total_count += 1;
    }
    let rms_residual_db = (total_sq / total_count.max(1) as f64).sqrt();
    let cell_rms_residual_db: Vec<f64> = (0..n)
        .map(|j| {
            if cell_observed[j] > 0 {
                (cell_sq[j] / cell_observed[j] as f64).sqrt()
            } else {
                rms_residual_db
            }
        })
        .collect();
    let link_rms_residual_db: Vec<f64> = (0..m)
        .map(|i| {
            if link_observed[i] > 0 {
                (link_sq[i] / link_observed[i] as f64).sqrt()
            } else {
                rms_residual_db
            }
        })
        .collect();

    // Ridge leverage scores h_j = r_jᵀ (RᵀR + λI)⁻¹ r_j via one Cholesky of
    // the r x r gram (reusing workspace buffers sized by `ensure`).
    rf.gram_into(gram)?;
    let s = &mut scratch[0];
    for a in 0..r {
        for b in 0..r {
            s.lhs[(a, b)] = gram[(a, b)] + config.lambda * f64::from(a == b);
        }
    }
    s.lhs.cholesky_into(&mut s.chol)?;
    let mut cell_leverage = Vec::with_capacity(n);
    for j in 0..n {
        s.sol.copy_from_slice(rf.row(j));
        solve_in_place(&s.chol, &mut s.sol)?;
        let h: f64 = taf_linalg::dot(rf.row(j), &s.sol);
        cell_leverage.push(h.clamp(0.0, 1.0));
    }

    let cell_confidence: Vec<f64> = (0..n)
        .map(|j| {
            let coverage = cell_observed[j] as f64 / m.max(1) as f64;
            let coverage_term =
                CONFIDENCE_COVERAGE_FLOOR + (1.0 - CONFIDENCE_COVERAGE_FLOOR) * coverage;
            let fit_term = 1.0 / (1.0 + cell_rms_residual_db[j]);
            let support_term = 1.0 - cell_leverage[j];
            (coverage_term * fit_term * support_term).clamp(0.0, 1.0)
        })
        .collect();

    Ok(ReconstructionDiagnostics {
        cell_rms_residual_db,
        cell_leverage,
        cell_observed,
        cell_confidence,
        link_rms_residual_db,
        rms_residual_db,
    })
}

/// Pre-resolved edge lists: for each undirected edge, the indices of the "active"
/// coordinates (where both endpoint entries are distorted).
struct EdgeSets {
    /// Location edges `(j, j', active links)`.
    location: Vec<(usize, usize, Vec<usize>)>,
    /// Link edges `(i, i', active cells)`.
    link: Vec<(usize, usize, Vec<usize>)>,
}

fn build_edge_sets(problem: &ReconstructionProblem<'_>) -> EdgeSets {
    let (m, n) = problem.observed.shape();
    let active = |i: usize, j: usize| problem.distortion.map_or(true, |d| d.get(i, j));

    let mut location = Vec::new();
    if let Some(g) = problem.location_graph {
        for v in 0..n {
            for &u in g.neighbors(v) {
                if u > v {
                    let links: Vec<usize> =
                        (0..m).filter(|&i| active(i, v) && active(i, u)).collect();
                    if !links.is_empty() {
                        location.push((v, u, links));
                    }
                }
            }
        }
    }
    let mut link = Vec::new();
    if let Some(h) = problem.link_graph {
        for v in 0..m {
            for &u in h.neighbors(v) {
                if u > v {
                    let cells: Vec<usize> =
                        (0..n).filter(|&j| active(v, j) && active(u, j)).collect();
                    if !cells.is_empty() {
                        link.push((v, u, cells));
                    }
                }
            }
        }
    }
    EdgeSets { location, link }
}

/// Reusable scratch for one in-flight `r x r` block solve.
///
/// One slot is leased per row/column of the color class currently being
/// solved; the slot owns every buffer the solve needs, so running a class in
/// parallel requires no allocation and no shared mutable state.
#[derive(Debug)]
struct RowScratch {
    /// Normal-equation matrix (`r x r`).
    lhs: Matrix,
    /// Cholesky factor of `lhs` (`r x r`).
    chol: Matrix,
    /// Right-hand side.
    rhs: Vec<f64>,
    /// Solution (seeded from `rhs`, solved in place).
    sol: Vec<f64>,
    /// Edge direction buffer (`r_j − r_{j'}` resp. `l_i − l_{i'}`).
    dir: Vec<f64>,
    /// Copy slot for the fixed other-endpoint factor row.
    other: Vec<f64>,
    /// Failure raised by this slot's solve, if any (checked at scatter time).
    status: Option<LinalgError>,
}

impl RowScratch {
    fn new(r: usize) -> Self {
        RowScratch {
            lhs: Matrix::zeros(r, r),
            chol: Matrix::zeros(r, r),
            rhs: vec![0.0; r],
            sol: vec![0.0; r],
            dir: vec![0.0; r],
            other: vec![0.0; r],
            status: None,
        }
    }
}

/// Preallocated buffers for [`reconstruct_with`].
///
/// A workspace can be reused across solves of any shape: buffers grow when the
/// problem does and are reused verbatim otherwise, which makes steady-state
/// solver iterations allocation-free. `SolverWorkspace::new()` itself
/// allocates nothing — buffers appear on first use.
#[derive(Debug)]
pub struct SolverWorkspace {
    scratch: Vec<RowScratch>,
    gram: Matrix,
    xh: Matrix,
    trace: Vec<f64>,
    /// Closed-form accumulator for the fully-active location edges of one
    /// L-sweep: `α Σ (r_j − r_{j'})(r_j − r_{j'})ᵀ` (lower triangle).
    loc_lhs: Matrix,
    /// Closed-form accumulator for the fully-active link edges of one R-sweep:
    /// `β Σ (l_i − l_{i'})(l_i − l_{i'})ᵀ` (lower triangle).
    link_lhs: Matrix,
    /// Right-hand-side companion of `link_lhs`: `β Σ δ_{ii'} (l_i − l_{i'})`.
    link_rhs: Vec<f64>,
    /// Column sums of `R` (`Σ_j r_j`) for the baseline-offset part of the
    /// fully-active similarity right-hand sides.
    rsum: Vec<f64>,
    /// Prior right-hand sides: `P·R` (`m x r`) for the L-step…
    prior_l: Matrix,
    /// …and `Lᵀ·P` (`r x n`) for the R-step.
    prior_r: Matrix,
    /// Pre-sweep factor snapshots for the acceleration step (sized only when
    /// `accelerate` is on).
    prev_l: Matrix,
    prev_r: Matrix,
    /// Second `m x n` product buffer so a rejected extrapolation can be
    /// discarded without recomputing `L·Rᵀ` (sized only when `accelerate` on).
    xh_alt: Matrix,
}

impl SolverWorkspace {
    /// Creates an empty workspace; buffers are allocated lazily by the solver.
    pub fn new() -> Self {
        SolverWorkspace {
            scratch: Vec::new(),
            gram: Matrix::zeros(0, 0),
            xh: Matrix::zeros(0, 0),
            trace: Vec::new(),
            loc_lhs: Matrix::zeros(0, 0),
            link_lhs: Matrix::zeros(0, 0),
            link_rhs: Vec::new(),
            rsum: Vec::new(),
            prior_l: Matrix::zeros(0, 0),
            prior_r: Matrix::zeros(0, 0),
            prev_l: Matrix::zeros(0, 0),
            prev_r: Matrix::zeros(0, 0),
            xh_alt: Matrix::zeros(0, 0),
        }
    }

    /// Grows the buffers to fit an `m x n` rank-`r` problem; a no-op (and
    /// allocation-free) when they already fit.
    fn ensure(&mut self, m: usize, n: usize, r: usize, max_iters: usize, accelerate: bool) {
        let slots = m.max(n);
        let slots_fit =
            self.scratch.len() >= slots && self.scratch.first().is_some_and(|s| s.rhs.len() == r);
        if !slots_fit {
            self.scratch = (0..slots).map(|_| RowScratch::new(r)).collect();
        }
        for sq in [&mut self.gram, &mut self.loc_lhs, &mut self.link_lhs] {
            if sq.shape() != (r, r) {
                *sq = Matrix::zeros(r, r);
            }
        }
        if self.link_rhs.len() != r {
            self.link_rhs = vec![0.0; r];
        }
        if self.rsum.len() != r {
            self.rsum = vec![0.0; r];
        }
        if self.xh.shape() != (m, n) {
            self.xh = Matrix::zeros(m, n);
        }
        if self.prior_l.shape() != (m, r) {
            self.prior_l = Matrix::zeros(m, r);
        }
        if self.prior_r.shape() != (r, n) {
            self.prior_r = Matrix::zeros(r, n);
        }
        if accelerate {
            if self.prev_l.shape() != (m, r) {
                self.prev_l = Matrix::zeros(m, r);
            }
            if self.prev_r.shape() != (n, r) {
                self.prev_r = Matrix::zeros(n, r);
            }
            if self.xh_alt.shape() != (m, n) {
                self.xh_alt = Matrix::zeros(m, n);
            }
        }
        self.trace.clear();
        self.trace.reserve(max_iters + 1);
    }
}

impl Default for SolverWorkspace {
    fn default() -> Self {
        SolverWorkspace::new()
    }
}

/// Deterministic greedy coloring: vertices are visited in index order and take
/// the smallest color absent among their already-colored neighbors, so the
/// classes depend only on the edge list — never on thread count. Vertices
/// joined by an edge never share a class, hence every block solve within a
/// class is independent and may run concurrently.
fn color_classes(
    n_vertices: usize,
    edges: impl Iterator<Item = (usize, usize)>,
) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_vertices];
    for (u, v) in edges {
        adj[u].push(v);
        adj[v].push(u);
    }
    let mut color = vec![usize::MAX; n_vertices];
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for v in 0..n_vertices {
        let c = (0..=classes.len())
            .find(|&c| !adj[v].iter().any(|&u| color[u] == c))
            .expect("a free color always exists");
        if c == classes.len() {
            classes.push(Vec::new());
        }
        color[v] = c;
        classes[c].push(v);
    }
    classes
}

/// Cross-link empty-room baseline offset `δ_{ii'} = e_i − e_{i'}`.
fn baseline_delta(problem: &ReconstructionProblem<'_>, i: usize, i2: usize) -> f64 {
    problem.empty_rss.map_or(0.0, |e| e[i] - e[i2])
}

/// Evaluates the LoLi-IR objective at `(L, R)`, writing `L·Rᵀ` into `xh`.
fn objective(
    problem: &ReconstructionProblem<'_>,
    edges: &EdgeSets,
    config: &LoliIrConfig,
    mu: f64,
    l: &Matrix,
    rf: &Matrix,
    xh: &mut Matrix,
) -> Result<f64> {
    l.matmul_nt_into(rf, xh)?;
    let mut f = config.lambda * (l.frobenius_norm().powi(2) + rf.frobenius_norm().powi(2));
    for (i, j) in problem.mask.true_positions() {
        let d = xh[(i, j)] - problem.observed[(i, j)];
        f += d * d;
    }
    if let Some(p) = problem.lrr_prior {
        if mu > 0.0 {
            let mut s = 0.0;
            for (a, b) in xh.as_slice().iter().zip(p.as_slice()) {
                let d = a - b;
                s += d * d;
            }
            f += mu * s;
        }
    }
    if config.alpha > 0.0 {
        for (j, j2, links) in &edges.location {
            for &i in links {
                let d = xh[(i, *j)] - xh[(i, *j2)];
                f += config.alpha * d * d;
            }
        }
    }
    if config.beta > 0.0 {
        for (i, i2, cells) in &edges.link {
            let off = baseline_delta(problem, *i, *i2);
            for &j in cells {
                let d = xh[(*i, j)] - xh[(*i2, j)] - off;
                f += config.beta * d * d;
            }
        }
    }
    Ok(f)
}

/// Shared read-only inputs for the L-step solves of one color class.
struct LStepCtx<'a> {
    problem: &'a ReconstructionProblem<'a>,
    edges: &'a EdgeSets,
    config: &'a LoliIrConfig,
    mu: f64,
    l: &'a Matrix,
    rf: &'a Matrix,
    /// `RᵀR`.
    gram: &'a Matrix,
    /// Observed column indices per row (CSR-style; replaces per-entry mask probes).
    row_obs: &'a [Vec<usize>],
    /// Link edges incident to each row (fully-active and not).
    row_edges: &'a [Vec<usize>],
    /// Location edges with a *partial* active set containing each row; the
    /// fully-active ones are folded into `loc_lhs` once per sweep.
    row_loc_edges: &'a [Vec<usize>],
    /// `α Σ_fully-active (r_j − r_{j'})(…)ᵀ` (lower triangle), shared by every
    /// row, or `None` when no location edge is fully active.
    loc_lhs: Option<&'a Matrix>,
    /// Column sums of `R` for the baseline-offset right-hand-side term.
    rsum: &'a [f64],
    /// `P·R` (`m x r`): each row's prior right-hand side, or `None` when the
    /// prior term is off.
    prior_rhs: Option<&'a Matrix>,
}

/// Shared read-only inputs for the R-step solves of one color class.
struct RStepCtx<'a> {
    problem: &'a ReconstructionProblem<'a>,
    edges: &'a EdgeSets,
    config: &'a LoliIrConfig,
    mu: f64,
    l: &'a Matrix,
    rf: &'a Matrix,
    /// `LᵀL`.
    gram: &'a Matrix,
    /// Observed row indices per column.
    col_obs: &'a [Vec<usize>],
    /// Location edges incident to each column (fully-active and not).
    col_edges: &'a [Vec<usize>],
    /// Link edges with a *partial* active set containing each column.
    col_link_edges: &'a [Vec<usize>],
    /// `β Σ_fully-active (l_i − l_{i'})(…)ᵀ` (lower triangle) and its
    /// right-hand side `β Σ δ_{ii'} (l_i − l_{i'})`, shared by every column;
    /// `None` when no link edge is fully active.
    link_closed: Option<(&'a Matrix, &'a [f64])>,
    /// `Lᵀ·P` (`r x n`): each column's prior right-hand side.
    prior_rhs: Option<&'a Matrix>,
}

/// Factors `s.lhs` and solves for `s.rhs` into `s.sol`, recording any failure
/// in `s.status` (parallel workers cannot early-return an error themselves).
fn finish_solve(s: &mut RowScratch) {
    match s.lhs.cholesky_into(&mut s.chol) {
        Ok(()) => {
            s.sol.copy_from_slice(&s.rhs);
            if let Err(e) = solve_in_place(&s.chol, &mut s.sol) {
                s.status = Some(e);
            }
        }
        Err(e) => s.status = Some(e),
    }
}

/// Builds and solves the `r x r` ridge system for row `l_i` entirely inside
/// `s`. Factor rows read through `ctx.l` belong to other color classes, so
/// every solve in a class is independent of its siblings.
///
/// Only the lower triangle of `s.lhs` is written — the Cholesky factorization
/// reads nothing else — and every term whose active set covers the whole
/// matrix enters through a closed form (`μ RᵀR` for the prior, the shared
/// `loc_lhs` for fully-active continuity edges, `β RᵀR` plus a Gram
/// matrix-vector product for fully-active similarity edges) instead of a
/// per-entry rank-1 loop. Partial (distortion-restricted) edges keep the
/// per-entry path.
fn solve_l_row(ctx: &LStepCtx<'_>, i: usize, s: &mut RowScratch) {
    let r = ctx.gram.rows();
    let n = ctx.rf.rows();
    s.status = None;
    for a in 0..r {
        for b in 0..=a {
            s.lhs[(a, b)] = ctx.config.lambda * f64::from(a == b) + ctx.mu * ctx.gram[(a, b)];
        }
    }
    if let Some(full) = ctx.loc_lhs {
        for a in 0..r {
            for b in 0..=a {
                s.lhs[(a, b)] += full[(a, b)];
            }
        }
    }
    s.rhs.fill(0.0);
    // Data term: Σ_j B_ij (r_jᵀ l_i − x_ij)².
    for &j in &ctx.row_obs[i] {
        let rj = ctx.rf.row(j);
        rank1_update(&mut s.lhs, rj, 1.0);
        taf_linalg::axpy_slice(&mut s.rhs, ctx.problem.observed[(i, j)], rj);
    }
    // LRR prior: μ ‖R l_i − p_i‖² — right-hand side μ (P·R)_i.
    if let Some(pr) = ctx.prior_rhs {
        taf_linalg::axpy_slice(&mut s.rhs, ctx.mu, pr.row(i));
    }
    // Similarity edges incident to row i (other endpoint held fixed).
    if ctx.config.beta > 0.0 {
        for &k in &ctx.row_edges[i] {
            let (u, v, cells) = &ctx.edges.link[k];
            let other = if *u == i { *v } else { *u };
            let off = if *u == i {
                baseline_delta(ctx.problem, *u, *v)
            } else {
                -baseline_delta(ctx.problem, *u, *v)
            };
            s.other.copy_from_slice(ctx.l.row(other));
            if cells.len() == n {
                // Fully active: Σ_j r_j r_jᵀ = RᵀR and the target sum
                // collapses to G·l_other + off·Σ_j r_j.
                for a in 0..r {
                    for b in 0..=a {
                        s.lhs[(a, b)] += ctx.config.beta * ctx.gram[(a, b)];
                    }
                }
                for a in 0..r {
                    let t = taf_linalg::dot(ctx.gram.row(a), &s.other) + off * ctx.rsum[a];
                    s.rhs[a] += ctx.config.beta * t;
                }
            } else {
                for &j in cells {
                    let rj = ctx.rf.row(j);
                    rank1_update(&mut s.lhs, rj, ctx.config.beta);
                    // Target for x̂_ij is x̂_other,j + off.
                    let t: f64 = taf_linalg::dot(&s.other, rj) + off;
                    taf_linalg::axpy_slice(&mut s.rhs, ctx.config.beta * t, rj);
                }
            }
        }
    }
    // Continuity edges whose *partial* active-link set contains row i:
    // α (l_iᵀ (r_j − r_{j'}))² — quadratic in l_i with direction
    // d = r_j − r_{j'} and zero target. (Fully-active ones came in via
    // `loc_lhs` above.)
    if ctx.config.alpha > 0.0 {
        for &k in &ctx.row_loc_edges[i] {
            let (j, j2, _) = &ctx.edges.location[k];
            let rj = ctx.rf.row(*j);
            let rj2 = ctx.rf.row(*j2);
            for (dv, (&a, &b)) in s.dir.iter_mut().zip(rj.iter().zip(rj2)) {
                *dv = a - b;
            }
            rank1_update(&mut s.lhs, &s.dir, ctx.config.alpha);
        }
    }
    finish_solve(s);
}

/// Builds and solves the `r x r` ridge system for column `r_j` inside `s`;
/// symmetric counterpart of [`solve_l_row`] (lower-triangle `lhs`, closed
/// forms for fully-active terms, per-entry loops only for partial edges).
fn solve_r_col(ctx: &RStepCtx<'_>, j: usize, s: &mut RowScratch) {
    let r = ctx.gram.rows();
    let m = ctx.l.rows();
    s.status = None;
    for a in 0..r {
        for b in 0..=a {
            s.lhs[(a, b)] = ctx.config.lambda * f64::from(a == b) + ctx.mu * ctx.gram[(a, b)];
        }
    }
    s.rhs.fill(0.0);
    // Fully-active similarity edges: one shared accumulator pair per sweep.
    if let Some((full_lhs, full_rhs)) = ctx.link_closed {
        for a in 0..r {
            for b in 0..=a {
                s.lhs[(a, b)] += full_lhs[(a, b)];
            }
        }
        taf_linalg::axpy_slice(&mut s.rhs, 1.0, full_rhs);
    }
    for &i in &ctx.col_obs[j] {
        let li = ctx.l.row(i);
        rank1_update(&mut s.lhs, li, 1.0);
        taf_linalg::axpy_slice(&mut s.rhs, ctx.problem.observed[(i, j)], li);
    }
    // LRR prior right-hand side μ (LᵀP)_{·j}.
    if let Some(lp) = ctx.prior_rhs {
        for (a, v) in s.rhs.iter_mut().enumerate() {
            *v += ctx.mu * lp[(a, j)];
        }
    }
    if ctx.config.alpha > 0.0 {
        for &k in &ctx.col_edges[j] {
            let (u, v, links) = &ctx.edges.location[k];
            let other = if *u == j { *v } else { *u };
            s.other.copy_from_slice(ctx.rf.row(other));
            if links.len() == m {
                // Fully active: Σ_i l_i l_iᵀ = LᵀL, target sum G_L·r_other.
                for a in 0..r {
                    for b in 0..=a {
                        s.lhs[(a, b)] += ctx.config.alpha * ctx.gram[(a, b)];
                    }
                }
                for a in 0..r {
                    let t = taf_linalg::dot(ctx.gram.row(a), &s.other);
                    s.rhs[a] += ctx.config.alpha * t;
                }
            } else {
                for &i in links {
                    let li = ctx.l.row(i);
                    rank1_update(&mut s.lhs, li, ctx.config.alpha);
                    let t: f64 = taf_linalg::dot(li, &s.other);
                    taf_linalg::axpy_slice(&mut s.rhs, ctx.config.alpha * t, li);
                }
            }
        }
    }
    // Similarity edges whose *partial* active-cell set contains column j:
    // β ((l_i − l_{i'})ᵀ r_j − δ_{ii'})² — quadratic in r_j with
    // direction d = l_i − l_{i'} and target δ. (Fully-active ones came in via
    // `link_closed` above.)
    if ctx.config.beta > 0.0 {
        for &k in &ctx.col_link_edges[j] {
            let (i, i2, _) = &ctx.edges.link[k];
            let li = ctx.l.row(*i);
            let li2 = ctx.l.row(*i2);
            for (dv, (&a, &b)) in s.dir.iter_mut().zip(li.iter().zip(li2)) {
                *dv = a - b;
            }
            rank1_update(&mut s.lhs, &s.dir, ctx.config.beta);
            let w = ctx.config.beta * baseline_delta(ctx.problem, *i, *i2);
            if w != 0.0 {
                for (a, &dv) in s.rhs.iter_mut().zip(&s.dir) {
                    *a += w * dv;
                }
            }
        }
    }
    finish_solve(s);
}

/// Runs one color class of independent block solves, fanning out to the rayon
/// pool when the class is big enough. The serial fallback (and the serial
/// build) visits the same slots with identical arithmetic, so results are
/// bit-identical at any thread count.
fn run_tasks<F>(tasks: &mut [RowScratch], big: bool, f: F)
where
    F: Fn(usize, &mut RowScratch) + Sync + Send,
{
    #[cfg(feature = "parallel")]
    if big && rayon::current_num_threads() > 1 {
        tasks.par_iter_mut().enumerate().for_each(|(k, s)| f(k, s));
        return;
    }
    let _ = big;
    for (k, s) in tasks.iter_mut().enumerate() {
        f(k, s);
    }
}

/// Runs LoLi-IR on a reconstruction problem.
///
/// Convenience wrapper around [`reconstruct_with`] with a fresh workspace;
/// callers solving repeatedly should hold a [`SolverWorkspace`] and call
/// [`reconstruct_with`] to skip the per-call buffer allocations.
pub fn reconstruct(
    problem: &ReconstructionProblem<'_>,
    config: &LoliIrConfig,
) -> Result<Reconstruction> {
    reconstruct_with(problem, config, &mut SolverWorkspace::new())
}

/// Runs LoLi-IR reusing the caller's [`SolverWorkspace`], always cold-started.
///
/// Steady-state iterations perform no heap allocation — every buffer lives in
/// the workspace. The result is bit-identical for a given problem regardless
/// of thread count: rows/columns are partitioned into graph-coloring classes
/// solved class by class (a colored Gauss-Seidel sweep), and within a class
/// each solve writes only its own scratch slot before a serial, index-ordered
/// scatter back into the factor.
pub fn reconstruct_with(
    problem: &ReconstructionProblem<'_>,
    config: &LoliIrConfig,
    ws: &mut SolverWorkspace,
) -> Result<Reconstruction> {
    reconstruct_warm(problem, config, ws, None)
}

/// Runs LoLi-IR, seeding the iterate from `warm` when one is supplied.
///
/// A usable warm state (matching `(links, cells, rank)` shape, all entries
/// finite) replaces the truncated-SVD initialization with the previous
/// solution; an unusable one falls back to the cold start — bit-identical to
/// [`reconstruct_with`] — rather than erroring, so callers can pass whatever
/// they have and check [`Reconstruction::warm_start`] afterwards. Warm or
/// cold, every iterate-improvement property is unchanged (exact block solves,
/// monotone objective, bit-identical output at any thread count); only the
/// starting point differs, which is what lets a steady-state refresh stop
/// after a handful of iterations instead of re-earning the whole solution.
pub fn reconstruct_warm(
    problem: &ReconstructionProblem<'_>,
    config: &LoliIrConfig,
    ws: &mut SolverWorkspace,
    warm: Option<&WarmState>,
) -> Result<Reconstruction> {
    config.validate()?;
    problem.validate()?;

    let (m, n) = problem.observed.shape();
    let r = config.rank.min(m).min(n);
    // The LRR term only exists when a prior was supplied; otherwise its weight in
    // the normal equations must vanish too (a bare `mu * RᵀR` on the left-hand
    // side with no matching right-hand side would shrink X̂ toward zero).
    let mu = if problem.lrr_prior.is_some() { config.mu } else { 0.0 };
    let has_prior = mu > 0.0 && problem.lrr_prior.is_some();
    let edges = build_edge_sets(problem);

    ws.ensure(m, n, r, config.max_iters, config.accelerate);

    // ------------------------------------------------------------------
    // Initialization. The cold start is the truncated SVD of the prior (or of
    // a filled observation). A usable warm state (matching shape, finite) is
    // a *candidate*, not a mandate: the current problem may have drifted far
    // from the one that produced it, leaving the old solution a worse start
    // than the SVD of the fresh prior. Both seeds are scored by the actual
    // objective and the lower one wins — a stale warm state can therefore
    // never make a solve slower to converge than the cold start, while a
    // fresh one skips most of the descent.
    // ------------------------------------------------------------------
    let init_target: Matrix = match problem.lrr_prior {
        Some(p) => p.clone(),
        None => fill_from_observed(problem.observed, problem.mask),
    };
    let svd = init_target.svd()?.truncate(r);
    let cold_l = Matrix::from_fn(m, r, |i, k| svd.u[(i, k)] * svd.sigma[k].sqrt());
    let cold_r = Matrix::from_fn(n, r, |j, k| svd.v[(j, k)] * svd.sigma[k].sqrt());
    let seed = warm.filter(|w| w.shape() == (m, n, r) && w.is_finite());
    let warm_start = match seed {
        None => false,
        Some(w) => {
            let f_warm = objective(problem, &edges, config, mu, &w.l, &w.r, &mut ws.xh)?;
            let f_cold = objective(problem, &edges, config, mu, &cold_l, &cold_r, &mut ws.xh)?;
            // Strict `<` (false on NaN) so ties and garbage go cold.
            f_warm < f_cold
        }
    };
    let (mut l, mut rf) = if warm_start {
        let w = seed.expect("warm_start implies a seed");
        (w.l.clone(), w.r.clone())
    } else {
        (cold_l, cold_r)
    };

    let f0 = objective(problem, &edges, config, mu, &l, &rf, &mut ws.xh)?;
    ws.trace.push(f0);
    let mut converged = false;
    let mut iterations = 0;

    // Observed coordinates as CSR-style index lists, so the block solves walk
    // only the observed entries instead of probing the mask across every
    // row/column.
    let mut row_obs: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut col_obs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, j) in problem.mask.true_positions() {
        row_obs[i].push(j);
        col_obs[j].push(i);
    }

    // Fully-active edges (every row resp. column in the active set — the
    // common case whenever no distortion mask narrows the penalties) are
    // handled in closed form: their per-sweep accumulators are computed once
    // and shared by every block solve of the sweep, instead of redoing a
    // rank-1 update per active entry per solve.
    let has_full_loc =
        config.alpha > 0.0 && edges.location.iter().any(|(_, _, links)| links.len() == m);
    let has_full_link =
        config.beta > 0.0 && edges.link.iter().any(|(_, _, cells)| cells.len() == n);

    // Per-row and per-column edge adjacency (indices into edge lists).
    //
    // Both smoothness terms depend on *both* factors: a similarity edge
    // (i, i') constrains rows i, i' of L and every active column of R; a
    // continuity edge (j, j') constrains columns j, j' of R and every active row
    // of L. For each block solve to be an exact minimization (and the objective
    // therefore monotone), every term touching the variable must enter its
    // normal equations — so we index the edges from all four directions. The
    // "every active row/column" directions list only the *partial* edges; the
    // fully-active ones enter through the shared closed-form accumulators.
    let mut row_edges: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut col_link_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, (i, i2, cells)) in edges.link.iter().enumerate() {
        row_edges[*i].push(k);
        row_edges[*i2].push(k);
        if cells.len() < n {
            for &j in cells {
                col_link_edges[j].push(k);
            }
        }
    }
    let mut col_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut row_loc_edges: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (k, (j, j2, links)) in edges.location.iter().enumerate() {
        col_edges[*j].push(k);
        col_edges[*j2].push(k);
        if links.len() < m {
            for &i in links {
                row_loc_edges[i].push(k);
            }
        }
    }

    // Color classes for the Gauss-Seidel sweeps. A row's solve reads other L
    // rows only through similarity edges (and a column's solve reads other R
    // rows only through continuity edges), so two rows/columns may be solved
    // concurrently iff no edge joins them — exactly what a proper coloring
    // guarantees. When the coupling term is off, everything is independent and
    // a single class covers the whole sweep.
    let row_classes = if config.beta > 0.0 {
        color_classes(m, edges.link.iter().map(|(u, v, _)| (*u, *v)))
    } else {
        vec![(0..m).collect()]
    };
    let col_classes = if config.alpha > 0.0 {
        color_classes(n, edges.location.iter().map(|(u, v, _)| (*u, *v)))
    } else {
        vec![(0..n).collect()]
    };

    let mut stall = 0usize;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        if config.accelerate {
            ws.prev_l.as_mut_slice().copy_from_slice(l.as_slice());
            ws.prev_r.as_mut_slice().copy_from_slice(rf.as_slice());
        }

        // ---------------- L-step: colored Gauss-Seidel over rows ----------------
        rf.gram_into(&mut ws.gram)?;
        if has_full_link {
            ws.rsum.fill(0.0);
            for j in 0..n {
                taf_linalg::axpy_slice(&mut ws.rsum, 1.0, rf.row(j));
            }
        }
        if has_full_loc {
            let SolverWorkspace { scratch, loc_lhs, .. } = &mut *ws;
            loc_lhs.as_mut_slice().fill(0.0);
            let dir = &mut scratch[0].dir;
            for (j, j2, links) in &edges.location {
                if links.len() == m {
                    for (dv, (&a, &b)) in dir.iter_mut().zip(rf.row(*j).iter().zip(rf.row(*j2))) {
                        *dv = a - b;
                    }
                    rank1_update(loc_lhs, dir, config.alpha);
                }
            }
        }
        if has_prior {
            let p = problem.lrr_prior.expect("has_prior implies Some");
            p.matmul_into(&rf, &mut ws.prior_l)?;
        }
        for class in &row_classes {
            let big = class.len() > 1 && class.len() * n * r * r >= PAR_MIN_FLOPS;
            let ctx = LStepCtx {
                problem,
                edges: &edges,
                config,
                mu,
                l: &l,
                rf: &rf,
                gram: &ws.gram,
                row_obs: &row_obs,
                row_edges: &row_edges,
                row_loc_edges: &row_loc_edges,
                loc_lhs: if has_full_loc { Some(&ws.loc_lhs) } else { None },
                rsum: &ws.rsum,
                prior_rhs: if has_prior { Some(&ws.prior_l) } else { None },
            };
            run_tasks(&mut ws.scratch[..class.len()], big, |k, s| solve_l_row(&ctx, class[k], s));
            for (k, &i) in class.iter().enumerate() {
                let s = &mut ws.scratch[k];
                if let Some(e) = s.status.take() {
                    return Err(e.into());
                }
                l.set_row(i, &s.sol).expect("row length r");
            }
        }

        // ---------------- R-step: colored Gauss-Seidel over columns ----------------
        l.gram_into(&mut ws.gram)?;
        if has_full_link {
            let SolverWorkspace { scratch, link_lhs, link_rhs, .. } = &mut *ws;
            link_lhs.as_mut_slice().fill(0.0);
            link_rhs.fill(0.0);
            let dir = &mut scratch[0].dir;
            for (i, i2, cells) in &edges.link {
                if cells.len() == n {
                    for (dv, (&a, &b)) in dir.iter_mut().zip(l.row(*i).iter().zip(l.row(*i2))) {
                        *dv = a - b;
                    }
                    rank1_update(link_lhs, dir, config.beta);
                    let w = config.beta * baseline_delta(problem, *i, *i2);
                    if w != 0.0 {
                        taf_linalg::axpy_slice(link_rhs, w, dir);
                    }
                }
            }
        }
        if has_prior {
            let p = problem.lrr_prior.expect("has_prior implies Some");
            l.matmul_tn_into(p, &mut ws.prior_r)?;
        }
        for class in &col_classes {
            let big = class.len() > 1 && class.len() * m * r * r >= PAR_MIN_FLOPS;
            let ctx = RStepCtx {
                problem,
                edges: &edges,
                config,
                mu,
                l: &l,
                rf: &rf,
                gram: &ws.gram,
                col_obs: &col_obs,
                col_edges: &col_edges,
                col_link_edges: &col_link_edges,
                link_closed: if has_full_link {
                    Some((&ws.link_lhs, ws.link_rhs.as_slice()))
                } else {
                    None
                },
                prior_rhs: if has_prior { Some(&ws.prior_r) } else { None },
            };
            run_tasks(&mut ws.scratch[..class.len()], big, |k, s| solve_r_col(&ctx, class[k], s));
            for (k, &j) in class.iter().enumerate() {
                let s = &mut ws.scratch[k];
                if let Some(e) = s.status.take() {
                    return Err(e.into());
                }
                rf.set_row(j, &s.sol).expect("row length r");
            }
        }

        let mut f = objective(problem, &edges, config, mu, &l, &rf, &mut ws.xh)?;
        if !f.is_finite() {
            return Err(TaflocError::SolverFailure {
                solver: "loli-ir",
                reason: format!("objective became non-finite at iteration {iterations}"),
            });
        }

        // Anderson-style (secant/Aitken) acceleration: when the last two
        // decrements look geometric with ratio ρ < 1, the fixed point lies
        // roughly θ = ρ/(1−ρ) step lengths ahead — extrapolate both factors
        // and keep the result only if the objective actually drops, so the
        // trace stays monotone no matter how wrong the estimate is.
        if config.accelerate && ws.trace.len() >= 2 {
            let f1 = *ws.trace.last().expect("trace seeded");
            let f2 = ws.trace[ws.trace.len() - 2];
            let (d1, d2) = (f1 - f, f2 - f1);
            if d1 > 0.0 && d2 > d1 {
                let rho = d1 / d2;
                let theta = (rho / (1.0 - rho)).clamp(0.0, MAX_ACCEL_THETA);
                if theta > 0.0 {
                    for (cand, &cur) in ws.prev_l.as_mut_slice().iter_mut().zip(l.as_slice().iter())
                    {
                        *cand = cur + theta * (cur - *cand);
                    }
                    for (cand, &cur) in
                        ws.prev_r.as_mut_slice().iter_mut().zip(rf.as_slice().iter())
                    {
                        *cand = cur + theta * (cur - *cand);
                    }
                    let SolverWorkspace { prev_l, prev_r, xh_alt, .. } = &mut *ws;
                    let f_acc = objective(problem, &edges, config, mu, prev_l, prev_r, xh_alt)?;
                    if f_acc.is_finite() && f_acc < f {
                        std::mem::swap(&mut l, &mut ws.prev_l);
                        std::mem::swap(&mut rf, &mut ws.prev_r);
                        std::mem::swap(&mut ws.xh, &mut ws.xh_alt);
                        f = f_acc;
                    }
                }
            }
        }

        let prev = *ws.trace.last().expect("trace seeded");
        ws.trace.push(f);
        // Adaptive stopping: the tolerance must *hold* for `stall_iters`
        // consecutive iterations, not merely be grazed once.
        if (prev - f).abs() <= config.tol * prev.abs().max(1.0) {
            stall += 1;
            if stall >= config.stall_iters {
                converged = true;
                break;
            }
        } else {
            stall = 0;
        }
    }

    // `ws.xh` already holds `L·Rᵀ` for the final factors — the last objective
    // evaluation wrote it — so publishing is a straight copy. Diagnostics are
    // computed first, from the same final state (and before the debug bias,
    // which corrupts only the published matrix).
    let diagnostics = compute_diagnostics(problem, config, &rf, ws)?;
    let mut matrix = ws.xh.clone();
    if config.debug_bias_db != 0.0 {
        // Fault-injection hook (see `LoliIrConfig::debug_bias_db`): corrupt
        // the published reconstruction without touching the solve itself.
        for v in matrix.as_mut_slice() {
            *v += config.debug_bias_db;
        }
    }
    if matrix.has_non_finite() {
        return Err(TaflocError::SolverFailure {
            solver: "loli-ir",
            reason: "reconstruction contains non-finite values".into(),
        });
    }
    Ok(Reconstruction {
        matrix,
        l,
        r: rf,
        objective_trace: ws.trace.clone(),
        iterations,
        converged,
        warm_start,
        diagnostics,
    })
}

/// Ceiling on the acceleration extrapolation coefficient: θ = 2 already
/// triples the step; anything larger trusts two noisy decrements too much and
/// mostly burns the safeguard evaluation.
const MAX_ACCEL_THETA: f64 = 2.0;

/// `lhs += w · v·vᵀ` for a symmetric `r x r` accumulator — lower triangle
/// only, via contiguous row slices. Every consumer (the blocked Cholesky and
/// the solve that follows) reads only the lower triangle, so skipping the
/// mirrored upper half cuts the dominant per-entry cost of the block solves
/// almost in half.
fn rank1_update(lhs: &mut Matrix, v: &[f64], w: f64) {
    let r = v.len();
    debug_assert_eq!(lhs.shape(), (r, r));
    let data = lhs.as_mut_slice();
    for a in 0..r {
        let wa = w * v[a];
        let row = &mut data[a * r..a * r + a + 1];
        for (o, &vb) in row.iter_mut().zip(v) {
            *o += wa * vb;
        }
    }
}

/// Fills unobserved entries with the row mean of the observed ones (global mean
/// fallback) — the no-prior initialization target.
fn fill_from_observed(observed: &Matrix, mask: &Mask) -> Matrix {
    let (m, n) = observed.shape();
    let mut global_sum = 0.0;
    let mut global_cnt = 0usize;
    for (i, j) in mask.true_positions() {
        global_sum += observed[(i, j)];
        global_cnt += 1;
    }
    let global_mean = if global_cnt > 0 { global_sum / global_cnt as f64 } else { 0.0 };
    Matrix::from_fn(m, n, |i, j| {
        if mask.get(i, j) {
            observed[(i, j)]
        } else {
            let mut s = 0.0;
            let mut c = 0usize;
            for jj in 0..n {
                if mask.get(i, jj) {
                    s += observed[(i, jj)];
                    c += 1;
                }
            }
            if c > 0 {
                s / c as f64
            } else {
                global_mean
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smooth rank-2 ground truth resembling RSS structure (values ~ -50).
    fn ground_truth() -> Matrix {
        Matrix::from_fn(6, 12, |i, j| {
            -50.0
                - 3.0 * (0.4 * i as f64 + 0.2 * j as f64).sin()
                - 2.0 * (0.3 * j as f64 - 0.5 * i as f64).cos()
        })
    }

    fn column_mask(truth: &Matrix, cols: &[usize]) -> Mask {
        Mask::from_columns(truth.rows(), truth.cols(), cols).unwrap()
    }

    #[test]
    fn completion_with_prior_recovers_truth() {
        let truth = ground_truth();
        let mask = column_mask(&truth, &[0, 3, 7, 11]);
        // A perfect prior: the solver should stay close to it and fit observations.
        let problem = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&truth),
            location_graph: None,
            link_graph: None,
            empty_rss: None,
            distortion: None,
        };
        let rec = reconstruct(&problem, &LoliIrConfig::default()).unwrap();
        let err = rec.matrix.sub(&truth).unwrap().map(f64::abs).mean();
        assert!(err < 0.5, "mean abs error {err}");
    }

    #[test]
    fn objective_monotonically_non_increasing() {
        let truth = ground_truth();
        let mask = column_mask(&truth, &[1, 5, 9]);
        let noisy_prior = truth.map(|v| v + 0.8 * (v * 17.0).sin());
        let g = NeighborGraph::new(12, (0..11).map(|j| (j, j + 1)));
        let h = NeighborGraph::new(6, (0..5).map(|i| (i, i + 1)));
        let problem = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&noisy_prior),
            location_graph: Some(&g),
            link_graph: Some(&h),
            empty_rss: None,
            distortion: None,
        };
        let cfg = LoliIrConfig { max_iters: 25, tol: 0.0, ..Default::default() };
        let rec = reconstruct(&problem, &cfg).unwrap();
        for w in rec.objective_trace.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-10) + 1e-9,
                "objective increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn converges_and_reports_trace() {
        let truth = ground_truth();
        let mask = column_mask(&truth, &[0, 4, 8]);
        let problem = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&truth),
            location_graph: None,
            link_graph: None,
            empty_rss: None,
            distortion: None,
        };
        let rec = reconstruct(&problem, &LoliIrConfig::default()).unwrap();
        assert!(rec.converged, "no convergence in {} iters", rec.iterations);
        assert_eq!(rec.objective_trace.len(), rec.iterations + 1);
        assert_eq!(rec.l.shape(), (6, 6));
        assert_eq!(rec.r.shape(), (12, 6));
    }

    #[test]
    fn no_prior_pure_completion_runs() {
        let truth = ground_truth();
        // Scattered observations (60%).
        let mut mask = Mask::trues(6, 12);
        for k in 0..72 {
            if k % 5 < 2 {
                mask.set(k / 12, k % 12, false);
            }
        }
        let problem = ReconstructionProblem::completion_only(&truth, &mask);
        let cfg = LoliIrConfig { rank: 3, mu: 0.0, alpha: 0.0, beta: 0.0, ..Default::default() };
        let rec = reconstruct(&problem, &cfg).unwrap();
        let err = rec.matrix.sub(&truth).unwrap().map(f64::abs).mean();
        assert!(err < 1.5, "pure completion err {err}");
    }

    #[test]
    fn smoothness_terms_help_with_bad_prior() {
        // Corrupt the prior in the unobserved region with rough noise; the
        // continuity term should pull the reconstruction back toward smoothness.
        let truth = ground_truth();
        let mask = column_mask(&truth, &[0, 6, 11]);
        let rough_prior = Matrix::from_fn(6, 12, |i, j| {
            truth[(i, j)] + if (i + j) % 2 == 0 { 2.0 } else { -2.0 }
        });
        let g = NeighborGraph::new(12, (0..11).map(|j| (j, j + 1)));
        let h = NeighborGraph::new(6, (0..5).map(|i| (i, i + 1)));

        let base = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&rough_prior),
            location_graph: None,
            link_graph: None,
            empty_rss: None,
            distortion: None,
        };
        let with_graphs =
            ReconstructionProblem { location_graph: Some(&g), link_graph: Some(&h), ..base };
        let cfg_plain = LoliIrConfig { alpha: 0.0, beta: 0.0, rank: 6, ..Default::default() };
        let cfg_smooth = LoliIrConfig { alpha: 0.8, beta: 0.8, rank: 6, ..Default::default() };
        let plain = reconstruct(&base, &cfg_plain).unwrap();
        let smooth = reconstruct(&with_graphs, &cfg_smooth).unwrap();
        let err = |m: &Matrix| m.sub(&truth).unwrap().map(f64::abs).mean();
        assert!(
            err(&smooth.matrix) < err(&plain.matrix),
            "smoothness should help: {} vs {}",
            err(&smooth.matrix),
            err(&plain.matrix)
        );
    }

    #[test]
    fn empty_rss_offsets_align_links() {
        // Two links whose rows differ by a constant baseline offset: with
        // empty_rss supplied, the similarity term must NOT flatten that offset.
        let base_row: Vec<f64> = (0..8).map(|j| -(5.0 + (0.5 * j as f64).sin())).collect();
        let truth = Matrix::from_fn(2, 8, |i, j| base_row[j] - 40.0 - 10.0 * i as f64);
        let mask = Mask::from_columns(2, 8, &[0, 4]).unwrap();
        let h = NeighborGraph::new(2, [(0, 1)]);
        let empty = [-40.0, -50.0];
        let problem = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&truth),
            location_graph: None,
            link_graph: Some(&h),
            empty_rss: Some(&empty),
            distortion: None,
        };
        let cfg = LoliIrConfig { beta: 5.0, rank: 2, ..Default::default() };
        let rec = reconstruct(&problem, &cfg).unwrap();
        let err = rec.matrix.sub(&truth).unwrap().map(f64::abs).mean();
        assert!(err < 0.5, "offset-aware similarity should preserve truth, err {err}");
    }

    #[test]
    fn distortion_mask_restricts_edges() {
        let truth = ground_truth();
        let mask = column_mask(&truth, &[0, 6]);
        let g = NeighborGraph::new(12, (0..11).map(|j| (j, j + 1)));
        // No entry distorted -> graphs contribute nothing; objective equals the
        // no-graph objective at the same factors (compare traces' first entries).
        let none_distorted = Mask::falses(6, 12);
        let with = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&truth),
            location_graph: Some(&g),
            link_graph: None,
            empty_rss: None,
            distortion: Some(&none_distorted),
        };
        let without = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&truth),
            location_graph: None,
            link_graph: None,
            empty_rss: None,
            distortion: None,
        };
        let cfg = LoliIrConfig { alpha: 10.0, ..Default::default() };
        let a = reconstruct(&with, &cfg).unwrap();
        let b = reconstruct(&without, &cfg).unwrap();
        assert!((a.objective_trace[0] - b.objective_trace[0]).abs() < 1e-9);
    }

    #[test]
    fn validates_config_and_problem() {
        let truth = ground_truth();
        let mask = column_mask(&truth, &[0]);
        let p = ReconstructionProblem::completion_only(&truth, &mask);
        let bad = LoliIrConfig { rank: 0, ..Default::default() };
        assert!(reconstruct(&p, &bad).is_err());
        let bad = LoliIrConfig { lambda: 0.0, ..Default::default() };
        assert!(reconstruct(&p, &bad).is_err());
        let bad = LoliIrConfig { mu: -1.0, ..Default::default() };
        assert!(reconstruct(&p, &bad).is_err());
        let bad = LoliIrConfig { max_iters: 0, ..Default::default() };
        assert!(reconstruct(&p, &bad).is_err());

        let wrong_mask = Mask::trues(2, 2);
        let p = ReconstructionProblem::completion_only(&truth, &wrong_mask);
        assert!(reconstruct(&p, &LoliIrConfig::default()).is_err());
        let empty_mask = Mask::falses(6, 12);
        let p = ReconstructionProblem::completion_only(&truth, &empty_mask);
        assert!(reconstruct(&p, &LoliIrConfig::default()).is_err());
    }

    #[test]
    fn debug_bias_shifts_output_only() {
        let truth = ground_truth();
        let mask = column_mask(&truth, &[0, 4, 8]);
        let problem = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&truth),
            location_graph: None,
            link_graph: None,
            empty_rss: None,
            distortion: None,
        };
        let clean = reconstruct(&problem, &LoliIrConfig::default()).unwrap();
        let cfg = LoliIrConfig { debug_bias_db: 3.0, ..Default::default() };
        let biased = reconstruct(&problem, &cfg).unwrap();
        let shift = biased.matrix.sub(&clean.matrix).unwrap();
        assert!(shift.iter().all(|v| (v - 3.0).abs() < 1e-12), "bias must be exactly +3 dB");
        // The solve itself is untouched: traces agree bit for bit.
        assert_eq!(clean.objective_trace, biased.objective_trace);
        let bad = LoliIrConfig { debug_bias_db: f64::NAN, ..Default::default() };
        assert!(reconstruct(&problem, &bad).is_err());
    }

    #[test]
    fn rank_clamped_to_dimensions() {
        let truth = ground_truth(); // 6 x 12
        let mask = column_mask(&truth, &[0, 5, 11]);
        let problem = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&truth),
            location_graph: None,
            link_graph: None,
            empty_rss: None,
            distortion: None,
        };
        let cfg = LoliIrConfig { rank: 99, ..Default::default() };
        let rec = reconstruct(&problem, &cfg).unwrap();
        assert_eq!(rec.l.cols(), 6);
    }

    #[test]
    fn coloring_is_proper_and_deterministic() {
        // Chain 0-1-2-3-4 plus a chord 0-2: needs 3 colors at vertex 2.
        let edges = [(0usize, 1usize), (1, 2), (2, 3), (3, 4), (0, 2)];
        let classes = color_classes(5, edges.iter().copied());
        // Every vertex appears exactly once.
        let mut seen = vec![0usize; 5];
        for class in &classes {
            for &v in class {
                seen[v] += 1;
            }
        }
        assert_eq!(seen, vec![1; 5]);
        // No edge inside a class.
        for class in &classes {
            for &(u, v) in &edges {
                assert!(
                    !(class.contains(&u) && class.contains(&v)),
                    "edge ({u},{v}) inside class {class:?}"
                );
            }
        }
        // Deterministic: a second run is identical.
        assert_eq!(classes, color_classes(5, edges.iter().copied()));
        // Edge-free graph collapses to a single class in index order.
        assert_eq!(color_classes(4, std::iter::empty()), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let truth = ground_truth();
        let mask = column_mask(&truth, &[1, 5, 9]);
        let noisy_prior = truth.map(|v| v + 0.8 * (v * 17.0).sin());
        let g = NeighborGraph::new(12, (0..11).map(|j| (j, j + 1)));
        let h = NeighborGraph::new(6, (0..5).map(|i| (i, i + 1)));
        let problem = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&noisy_prior),
            location_graph: Some(&g),
            link_graph: Some(&h),
            empty_rss: None,
            distortion: None,
        };
        let cfg = LoliIrConfig { max_iters: 10, tol: 0.0, ..Default::default() };
        let fresh = reconstruct(&problem, &cfg).unwrap();
        let mut ws = SolverWorkspace::new();
        // Warm the workspace on a different problem shape first, then solve the
        // real one twice: a dirty, resized workspace must not leak state.
        let small_mask = Mask::trues(3, 4);
        let small = Matrix::from_fn(3, 4, |i, j| -(40.0 + i as f64 + j as f64));
        let small_problem = ReconstructionProblem::completion_only(&small, &small_mask);
        reconstruct_with(&small_problem, &LoliIrConfig { rank: 2, ..cfg }, &mut ws).unwrap();
        for _ in 0..2 {
            let reused = reconstruct_with(&problem, &cfg, &mut ws).unwrap();
            assert_eq!(fresh.matrix.as_slice(), reused.matrix.as_slice());
            assert_eq!(fresh.l.as_slice(), reused.l.as_slice());
            assert_eq!(fresh.r.as_slice(), reused.r.as_slice());
            assert_eq!(fresh.objective_trace, reused.objective_trace);
        }
    }

    #[test]
    fn diagnostics_rank_observed_columns_above_unobserved() {
        let truth = ground_truth();
        let observed_cols = [0usize, 3, 7, 11];
        let mask = column_mask(&truth, &observed_cols);
        let problem = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&truth),
            location_graph: None,
            link_graph: None,
            empty_rss: None,
            distortion: None,
        };
        let rec = reconstruct(&problem, &LoliIrConfig::default()).unwrap();
        let d = &rec.diagnostics;
        assert_eq!(d.cell_confidence.len(), 12);
        assert_eq!(d.cell_rms_residual_db.len(), 12);
        assert_eq!(d.cell_leverage.len(), 12);
        assert_eq!(d.cell_observed.len(), 12);
        assert_eq!(d.link_rms_residual_db.len(), 6);
        assert!(d.rms_residual_db.is_finite());
        for j in 0..12 {
            assert!((0.0..=1.0).contains(&d.cell_confidence[j]), "{}", d.cell_confidence[j]);
            assert!((0.0..=1.0).contains(&d.cell_leverage[j]));
            assert_eq!(d.cell_observed[j], if observed_cols.contains(&j) { 6 } else { 0 });
        }
        // Every observed column must outrank every unobserved one: the
        // coverage term alone separates 6/6 from 0/6 observed entries.
        let min_observed =
            observed_cols.iter().map(|&j| d.cell_confidence[j]).fold(f64::INFINITY, f64::min);
        let max_unobserved = (0..12)
            .filter(|j| !observed_cols.contains(j))
            .map(|j| d.cell_confidence[j])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            min_observed > max_unobserved,
            "observed {min_observed} must beat unobserved {max_unobserved}"
        );
        // Deterministic: a second identical solve reproduces them bit for bit.
        let again = reconstruct(&problem, &LoliIrConfig::default()).unwrap();
        assert_eq!(*d, again.diagnostics);
    }

    #[test]
    fn diagnostics_unaffected_by_debug_bias() {
        let truth = ground_truth();
        let mask = column_mask(&truth, &[0, 4, 8]);
        let problem = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&truth),
            location_graph: None,
            link_graph: None,
            empty_rss: None,
            distortion: None,
        };
        let clean = reconstruct(&problem, &LoliIrConfig::default()).unwrap();
        let cfg = LoliIrConfig { debug_bias_db: 3.0, ..Default::default() };
        let biased = reconstruct(&problem, &cfg).unwrap();
        assert_eq!(clean.diagnostics, biased.diagnostics);
    }

    #[test]
    fn fill_from_observed_uses_row_means() {
        let obs = Matrix::from_rows(&[&[2.0, 0.0, 4.0], &[0.0, 0.0, 0.0]]).unwrap();
        let mut mask = Mask::falses(2, 3);
        mask.set(0, 0, true);
        mask.set(0, 2, true);
        let filled = fill_from_observed(&obs, &mask);
        assert_eq!(filled[(0, 1)], 3.0); // row mean of {2, 4}
        assert_eq!(filled[(1, 0)], 3.0); // global mean fallback
        assert_eq!(filled[(0, 0)], 2.0);
    }

    fn smoothed_problem_parts() -> (Matrix, Mask, Matrix, NeighborGraph, NeighborGraph) {
        let truth = ground_truth();
        let mask = column_mask(&truth, &[1, 5, 9]);
        let noisy_prior = truth.map(|v| v + 0.8 * (v * 17.0).sin());
        let g = NeighborGraph::new(12, (0..11).map(|j| (j, j + 1)));
        let h = NeighborGraph::new(6, (0..5).map(|i| (i, i + 1)));
        (truth, mask, noisy_prior, g, h)
    }

    #[test]
    fn stall_iters_demands_sustained_tolerance() {
        let (truth, mask, prior, g, h) = smoothed_problem_parts();
        let problem = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&prior),
            location_graph: Some(&g),
            link_graph: Some(&h),
            empty_rss: None,
            distortion: None,
        };
        let quick = LoliIrConfig { max_iters: 200, tol: 1e-6, ..Default::default() };
        let patient = LoliIrConfig { stall_iters: 4, ..quick };
        let one = reconstruct(&problem, &quick).unwrap();
        let four = reconstruct(&problem, &patient).unwrap();
        assert!(one.converged && four.converged);
        // The counter resets on any non-small decrement, so holding the
        // tolerance for four consecutive iterations costs at least three more.
        assert!(
            four.iterations >= one.iterations + 3,
            "stall_iters=4 stopped after {} iterations, stall_iters=1 after {}",
            four.iterations,
            one.iterations
        );
        // The tail of the longer trace keeps honoring the tolerance.
        for w in four.objective_trace[one.iterations..].windows(2) {
            assert!((w[0] - w[1]).abs() <= quick.tol * w[0].abs().max(1.0) + 1e-9);
        }
    }

    #[test]
    fn stall_iters_zero_is_rejected() {
        let cfg = LoliIrConfig { stall_iters: 0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn accelerate_preserves_monotonicity_and_fixed_point() {
        let (truth, mask, prior, g, h) = smoothed_problem_parts();
        let problem = ReconstructionProblem {
            observed: &truth,
            mask: &mask,
            lrr_prior: Some(&prior),
            location_graph: Some(&g),
            link_graph: Some(&h),
            empty_rss: None,
            distortion: None,
        };
        let plain_cfg = LoliIrConfig { max_iters: 600, tol: 1e-7, ..Default::default() };
        let accel_cfg = LoliIrConfig { accelerate: true, ..plain_cfg };
        let plain = reconstruct(&problem, &plain_cfg).unwrap();
        let accel = reconstruct(&problem, &accel_cfg).unwrap();
        assert!(plain.converged && accel.converged);
        // The safeguard only ever accepts an extrapolation that lowers the
        // objective, so the trace stays monotone exactly like the plain run.
        for w in accel.objective_trace.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-10) + 1e-9,
                "accelerated objective increased: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(
            accel.iterations <= plain.iterations,
            "acceleration took {} iterations vs {} plain",
            accel.iterations,
            plain.iterations
        );
        let err = accel.matrix.sub(&plain.matrix).unwrap().map(f64::abs).mean();
        assert!(err < 1e-2, "accelerated fixed point drifted {err} dB from the plain one");
    }
}
