//! Evaluation metrics shared by the experiments.
//!
//! The paper reports two kinds of curves: CDFs of **fingerprint reconstruction
//! error** in dBm (Fig. 3) and CDFs of **localization error** in meters (Fig. 5),
//! plus summary means/medians in the text. This module turns raw results into
//! those quantities.

use crate::error::TaflocError;
use crate::Result;
use serde::{Deserialize, Serialize};
use taf_linalg::stats::Ecdf;
use taf_linalg::Matrix;
use taf_rfsim::geometry::Point;

/// Per-entry absolute reconstruction errors `|X̂ − X|` flattened to a vector —
/// the sample behind one Fig. 3 curve.
pub fn reconstruction_errors(estimate: &Matrix, truth: &Matrix) -> Result<Vec<f64>> {
    if estimate.shape() != truth.shape() {
        return Err(TaflocError::DimensionMismatch {
            op: "reconstruction_errors",
            expected: truth.shape(),
            actual: estimate.shape(),
        });
    }
    Ok(estimate.sub(truth)?.iter().map(f64::abs).collect())
}

/// Builds the ECDF of per-entry reconstruction errors.
pub fn reconstruction_error_cdf(estimate: &Matrix, truth: &Matrix) -> Result<Ecdf> {
    let errs = reconstruction_errors(estimate, truth)?;
    Ecdf::new(&errs).map_err(TaflocError::from)
}

/// Root-mean-square per-entry reconstruction error (dB) — the single scalar
/// the regression gates compare across runs.
pub fn reconstruction_rmse(estimate: &Matrix, truth: &Matrix) -> Result<f64> {
    let errs = reconstruction_errors(estimate, truth)?;
    let n = errs.len().max(1);
    Ok((errs.iter().map(|e| e * e).sum::<f64>() / n as f64).sqrt())
}

/// Euclidean localization error (meters) between an estimate and the truth.
pub fn localization_error(estimate: &Point, truth: &Point) -> f64 {
    estimate.distance(truth)
}

/// Summary of one experiment's error sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Arithmetic mean error.
    pub mean: f64,
    /// Median error.
    pub median: f64,
    /// 90th-percentile error.
    pub p90: f64,
    /// Maximum error.
    pub max: f64,
    /// Sample size.
    pub count: usize,
}

impl ErrorSummary {
    /// Summarizes a non-empty error sample.
    pub fn from_errors(errors: &[f64]) -> Result<Self> {
        let ecdf = Ecdf::new(errors).map_err(TaflocError::from)?;
        Ok(ErrorSummary {
            mean: ecdf.mean(),
            median: ecdf.median(),
            p90: ecdf.quantile(0.9),
            max: ecdf.max(),
            count: ecdf.len(),
        })
    }
}

impl std::fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.3}, median {:.3}, p90 {:.3}, max {:.3} (n = {})",
            self.mean, self.median, self.p90, self.max, self.count
        )
    }
}

/// Renders a per-cell scalar field (localization image, error map, fingerprint
/// row) as an ASCII heat map, one character per grid cell, brightest value `#`.
///
/// Rows are printed top-to-bottom (highest `y` first) so the output matches a
/// floor plan viewed from above. Returns the multi-line string.
pub fn ascii_heatmap(values: &[f64], grid: &taf_rfsim::grid::FloorGrid) -> Result<String> {
    if values.len() != grid.num_cells() {
        return Err(TaflocError::DimensionMismatch {
            op: "ascii_heatmap",
            expected: (grid.num_cells(), 1),
            actual: (values.len(), 1),
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(TaflocError::InvalidConfig {
            field: "values",
            reason: "heat map values must be finite".into(),
        });
    }
    const RAMP: &[u8] = b" .:-=+*%@#";
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let mut out = String::with_capacity((grid.nx() + 1) * grid.ny());
    for iy in (0..grid.ny()).rev() {
        for ix in 0..grid.nx() {
            let v = values[iy * grid.nx() + ix];
            let t = ((v - lo) / span * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[t.min(RAMP.len() - 1)] as char);
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_errors_absolute() {
        let truth = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let est = Matrix::from_rows(&[&[1.5, 1.0], &[3.0, 6.0]]).unwrap();
        let errs = reconstruction_errors(&est, &truth).unwrap();
        assert_eq!(errs, vec![0.5, 1.0, 0.0, 2.0]);
        assert!(reconstruction_errors(&est, &Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn cdf_of_reconstruction_errors() {
        let truth = Matrix::zeros(1, 4);
        let est = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        let cdf = reconstruction_error_cdf(&est, &truth).unwrap();
        assert_eq!(cdf.eval(2.0), 0.5);
        assert_eq!(cdf.eval(4.0), 1.0);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        let truth = Matrix::zeros(1, 4);
        let est = Matrix::from_rows(&[&[3.0, 4.0, 0.0, 0.0]]).unwrap();
        let rmse = reconstruction_rmse(&est, &truth).unwrap();
        assert!((rmse - (25.0f64 / 4.0).sqrt()).abs() < 1e-12);
        assert!(reconstruction_rmse(&est, &Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn localization_error_is_distance() {
        let e = localization_error(&Point::new(0.0, 0.0), &Point::new(3.0, 4.0));
        assert!((e - 5.0).abs() < 1e-12);
    }

    #[test]
    fn summary_statistics() {
        let s = ErrorSummary::from_errors(&[1.0, 2.0, 3.0, 4.0, 10.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 10.0);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!(s.p90 > 4.0 && s.p90 <= 10.0);
        assert!(ErrorSummary::from_errors(&[]).is_err());
    }

    #[test]
    fn summary_display() {
        let s = ErrorSummary::from_errors(&[1.0, 1.0]).unwrap();
        let out = s.to_string();
        assert!(out.contains("median"));
        assert!(out.contains("n = 2"));
    }

    #[test]
    fn heatmap_renders_grid_shape() {
        use taf_rfsim::geometry::Point as P;
        let grid = taf_rfsim::grid::FloorGrid::new(P::new(0.0, 0.0), 1.0, 3, 2);
        // Max in cell 5 (top-right), min in cell 0 (bottom-left).
        let values = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let map = ascii_heatmap(&values, &grid).unwrap();
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 3);
        // Top row printed first contains the maximum marker '#'.
        assert!(lines[0].ends_with('#'), "{map}");
        // Bottom row starts with the minimum marker ' '.
        assert!(lines[1].starts_with(' '), "{map}");
    }

    #[test]
    fn heatmap_constant_field_and_errors() {
        use taf_rfsim::geometry::Point as P;
        let grid = taf_rfsim::grid::FloorGrid::new(P::new(0.0, 0.0), 1.0, 2, 2);
        let map = ascii_heatmap(&[3.0; 4], &grid).unwrap();
        // Constant field: all characters identical.
        let chars: Vec<char> = map.chars().filter(|c| *c != '\n').collect();
        assert!(chars.windows(2).all(|w| w[0] == w[1]));
        assert!(ascii_heatmap(&[1.0; 3], &grid).is_err());
        assert!(ascii_heatmap(&[f64::NAN, 0.0, 0.0, 0.0], &grid).is_err());
    }
}
