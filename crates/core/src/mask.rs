//! Boolean entry masks over the fingerprint matrix.
//!
//! Two masks drive the reconstruction:
//!
//! * the **observation mask** `B` — which entries were actually measured during a
//!   reference-location update (whole columns, at the reference cells), and
//! * the **distortion mask** `D` — which entries are "largely distorted" by the
//!   target (a clear RSS decrease below the empty-room level), the region where
//!   the continuity/similarity priors apply.

use crate::error::TaflocError;
use crate::Result;
use serde::{Deserialize, Serialize};
use taf_linalg::Matrix;

/// A dense boolean mask with matrix shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mask {
    rows: usize,
    cols: usize,
    data: Vec<bool>,
}

impl Mask {
    /// All-false mask.
    pub fn falses(rows: usize, cols: usize) -> Self {
        Mask { rows, cols, data: vec![false; rows * cols] }
    }

    /// All-true mask.
    pub fn trues(rows: usize, cols: usize) -> Self {
        Mask { rows, cols, data: vec![true; rows * cols] }
    }

    /// Observation mask for a reference-location update: every entry of the given
    /// columns is observed, everything else is not.
    pub fn from_columns(rows: usize, cols: usize, observed_cols: &[usize]) -> Result<Self> {
        let mut m = Mask::falses(rows, cols);
        for &j in observed_cols {
            if j >= cols {
                return Err(TaflocError::IndexOutOfBounds {
                    op: "Mask::from_columns",
                    index: j,
                    bound: cols,
                });
            }
            for i in 0..rows {
                m.data[i * cols + j] = true;
            }
        }
        Ok(m)
    }

    /// Builds a mask from a predicate over matrix entries.
    pub fn from_matrix(m: &Matrix, pred: impl Fn(f64) -> bool) -> Self {
        Mask { rows: m.rows(), cols: m.cols(), data: m.iter().map(pred).collect() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Value at `(i, j)`. Panics when out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.rows && j < self.cols, "mask index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the value at `(i, j)`. Panics when out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        assert!(i < self.rows && j < self.cols, "mask index out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// Number of `true` entries.
    pub fn count(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }

    /// Fraction of `true` entries (`0.0` for an empty mask).
    pub fn fraction(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.count() as f64 / self.data.len() as f64
        }
    }

    /// Logical complement.
    pub fn complement(&self) -> Mask {
        Mask { rows: self.rows, cols: self.cols, data: self.data.iter().map(|b| !b).collect() }
    }

    /// Elementwise AND. Errors on shape mismatch.
    pub fn and(&self, other: &Mask) -> Result<Mask> {
        if self.shape() != other.shape() {
            return Err(TaflocError::DimensionMismatch {
                op: "Mask::and",
                expected: self.shape(),
                actual: other.shape(),
            });
        }
        Ok(Mask {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(a, b)| *a && *b).collect(),
        })
    }

    /// `B ∘ M`: zeroes the entries of `m` where the mask is false.
    pub fn apply(&self, m: &Matrix) -> Result<Matrix> {
        if self.shape() != m.shape() {
            return Err(TaflocError::DimensionMismatch {
                op: "Mask::apply",
                expected: self.shape(),
                actual: m.shape(),
            });
        }
        let mut out = m.clone();
        for (k, keep) in self.data.iter().enumerate() {
            if !keep {
                out.as_mut_slice()[k] = 0.0;
            }
        }
        Ok(out)
    }

    /// The mask as a 0/1 matrix (the paper's binary matrix `B`).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
        )
        .expect("mask data sized to shape")
    }

    /// Iterator over `(i, j)` positions of `true` entries.
    pub fn true_positions(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cols = self.cols;
        self.data.iter().enumerate().filter(|(_, &b)| b).map(move |(k, _)| (k / cols, k % cols))
    }
}

/// Flags the "largely distorted" entries of a fingerprint matrix: positions where
/// the RSS drops more than `threshold_db` below the link's empty-room level
/// (`empty[i] − x[i][j] > threshold_db`).
///
/// This is the paper's `X_D` region — the entries where the target blocks the
/// direct path and the continuity/similarity structure holds.
pub fn detect_distorted(x: &Matrix, empty_rss: &[f64], threshold_db: f64) -> Result<Mask> {
    if empty_rss.len() != x.rows() {
        return Err(TaflocError::DimensionMismatch {
            op: "detect_distorted",
            expected: (x.rows(), 1),
            actual: (empty_rss.len(), 1),
        });
    }
    let mut m = Mask::falses(x.rows(), x.cols());
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            if empty_rss[i] - x[(i, j)] > threshold_db {
                m.set(i, j, true);
            }
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Mask::falses(2, 3).count(), 0);
        assert_eq!(Mask::trues(2, 3).count(), 6);
    }

    #[test]
    fn from_columns_marks_whole_columns() {
        let m = Mask::from_columns(3, 4, &[1, 3]).unwrap();
        assert_eq!(m.count(), 6);
        for i in 0..3 {
            assert!(m.get(i, 1));
            assert!(m.get(i, 3));
            assert!(!m.get(i, 0));
        }
        assert!(Mask::from_columns(3, 4, &[4]).is_err());
    }

    #[test]
    fn from_matrix_predicate() {
        let x = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, -0.5]]).unwrap();
        let m = Mask::from_matrix(&x, |v| v > 0.0);
        assert_eq!(m.count(), 2);
        assert!(m.get(0, 0) && m.get(1, 0));
    }

    #[test]
    fn fraction_and_complement() {
        let m = Mask::from_columns(2, 4, &[0]).unwrap();
        assert!((m.fraction() - 0.25).abs() < 1e-12);
        let c = m.complement();
        assert!((c.fraction() - 0.75).abs() < 1e-12);
        assert_eq!(Mask::falses(0, 0).fraction(), 0.0);
    }

    #[test]
    fn and_combination() {
        let a = Mask::from_columns(2, 3, &[0, 1]).unwrap();
        let b = Mask::from_columns(2, 3, &[1, 2]).unwrap();
        let c = a.and(&b).unwrap();
        assert_eq!(c.count(), 2); // only column 1
        assert!(c.get(0, 1));
        assert!(a.and(&Mask::falses(1, 1)).is_err());
    }

    #[test]
    fn apply_zeroes_unobserved() {
        let m = Mask::from_columns(2, 2, &[0]).unwrap();
        let x = Matrix::filled(2, 2, 3.0);
        let applied = m.apply(&x).unwrap();
        assert_eq!(applied[(0, 0)], 3.0);
        assert_eq!(applied[(0, 1)], 0.0);
        assert!(m.apply(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn to_matrix_is_binary() {
        let m = Mask::from_columns(2, 2, &[1]).unwrap();
        let b = m.to_matrix();
        assert_eq!(b[(0, 0)], 0.0);
        assert_eq!(b[(0, 1)], 1.0);
    }

    #[test]
    fn true_positions_iteration() {
        let m = Mask::from_columns(2, 3, &[2]).unwrap();
        let pos: Vec<_> = m.true_positions().collect();
        assert_eq!(pos, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn detect_distorted_thresholds() {
        // empty = -40; entries at -41 (1 dB drop) and -46 (6 dB drop).
        let x = Matrix::from_rows(&[&[-41.0, -46.0]]).unwrap();
        let d = detect_distorted(&x, &[-40.0], 3.0).unwrap();
        assert!(!d.get(0, 0));
        assert!(d.get(0, 1));
        assert!(detect_distorted(&x, &[-40.0, -40.0], 3.0).is_err());
    }

    #[test]
    #[should_panic]
    fn get_out_of_bounds_panics() {
        Mask::falses(1, 1).get(1, 0);
    }
}
