//! Presence detection: deciding *whether* a device-free target is in the area
//! before asking *where*.
//!
//! The paper's intruder-detection motivation needs this step. Two detectors are
//! provided:
//!
//! * a **snapshot detector** — alarm when any link's RSS drops more than a
//!   threshold below the empty-room baseline (a person on a link's LoS shadows
//!   it by ~10 dB, far above the 1-4 dBm noise); and
//! * a **CUSUM detector** — a per-link cumulative-sum changepoint test that
//!   accumulates weak evidence across time, catching targets that never stand
//!   directly on a LoS (where the per-snapshot drop may sit inside the noise).

use crate::error::TaflocError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Detection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Snapshot alarm threshold (dB): max per-link drop that triggers instantly.
    pub snapshot_threshold_db: f64,
    /// CUSUM reference value `k` (dB): drops below this are ignored.
    pub cusum_k_db: f64,
    /// CUSUM decision threshold `h` (dB-seconds of accumulated evidence).
    pub cusum_h: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { snapshot_threshold_db: 4.0, cusum_k_db: 1.0, cusum_h: 6.0 }
    }
}

/// Outcome of feeding one measurement to the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Detection {
    /// No evidence of a target.
    Absent,
    /// A single snapshot crossed the instant threshold.
    PresentInstant {
        /// The triggering link.
        link: usize,
        /// Its RSS drop in dB.
        drop_db: f64,
    },
    /// The accumulated CUSUM statistic crossed its threshold.
    PresentAccumulated {
        /// The triggering link.
        link: usize,
        /// The accumulated statistic value.
        statistic: f64,
    },
}

impl Detection {
    /// `true` for either kind of presence.
    pub fn is_present(&self) -> bool {
        !matches!(self, Detection::Absent)
    }
}

/// A stateful presence detector bound to an empty-room baseline.
///
/// ```
/// use tafloc_core::detection::{Detection, DetectorConfig, PresenceDetector};
/// let mut d = PresenceDetector::new(vec![-40.0, -45.0], DetectorConfig::default()).unwrap();
/// assert_eq!(d.update(&[-40.1, -44.9]).unwrap(), Detection::Absent);
/// assert!(d.update(&[-40.0, -53.0]).unwrap().is_present()); // 8 dB drop on link 1
/// ```
#[derive(Debug, Clone)]
pub struct PresenceDetector {
    config: DetectorConfig,
    baseline: Vec<f64>,
    cusum: Vec<f64>,
}

impl PresenceDetector {
    /// Creates a detector from the current empty-room RSS baseline.
    pub fn new(baseline: Vec<f64>, config: DetectorConfig) -> Result<Self> {
        if baseline.is_empty() {
            return Err(TaflocError::InvalidConfig {
                field: "baseline",
                reason: "need at least one link".into(),
            });
        }
        if !(config.snapshot_threshold_db > 0.0)
            || !(config.cusum_h > 0.0)
            || config.cusum_k_db < 0.0
        {
            return Err(TaflocError::InvalidConfig {
                field: "detector",
                reason: "thresholds must be positive (k >= 0)".into(),
            });
        }
        let n = baseline.len();
        Ok(PresenceDetector { config, baseline, cusum: vec![0.0; n] })
    }

    /// Replaces the baseline (e.g. after a TafLoc update's fresh empty-room
    /// snapshot) and resets the accumulated statistics.
    pub fn rebaseline(&mut self, baseline: Vec<f64>) -> Result<()> {
        if baseline.len() != self.baseline.len() {
            return Err(TaflocError::DimensionMismatch {
                op: "PresenceDetector::rebaseline",
                expected: (self.baseline.len(), 1),
                actual: (baseline.len(), 1),
            });
        }
        self.baseline = baseline;
        self.reset();
        Ok(())
    }

    /// Clears the CUSUM state (after an alarm has been handled).
    pub fn reset(&mut self) {
        self.cusum.iter_mut().for_each(|s| *s = 0.0);
    }

    /// The instantaneous anomaly score: the largest per-link RSS drop (dB).
    pub fn score(&self, y: &[f64]) -> Result<f64> {
        if y.len() != self.baseline.len() {
            return Err(TaflocError::DimensionMismatch {
                op: "PresenceDetector::score",
                expected: (self.baseline.len(), 1),
                actual: (y.len(), 1),
            });
        }
        Ok(self.baseline.iter().zip(y).map(|(b, v)| b - v).fold(f64::NEG_INFINITY, f64::max))
    }

    /// Feeds one measurement; updates the CUSUM state and returns the decision.
    pub fn update(&mut self, y: &[f64]) -> Result<Detection> {
        if y.len() != self.baseline.len() {
            return Err(TaflocError::DimensionMismatch {
                op: "PresenceDetector::update",
                expected: (self.baseline.len(), 1),
                actual: (y.len(), 1),
            });
        }
        let mut best_instant: Option<(usize, f64)> = None;
        let mut best_cusum: Option<(usize, f64)> = None;
        for (i, (&b, &v)) in self.baseline.iter().zip(y).enumerate() {
            let drop = b - v;
            if drop > self.config.snapshot_threshold_db
                && best_instant.map_or(true, |(_, d)| drop > d)
            {
                best_instant = Some((i, drop));
            }
            // One-sided CUSUM on positive drops.
            self.cusum[i] = (self.cusum[i] + drop - self.config.cusum_k_db).max(0.0);
            if self.cusum[i] > self.config.cusum_h
                && best_cusum.map_or(true, |(_, s)| self.cusum[i] > s)
            {
                best_cusum = Some((i, self.cusum[i]));
            }
        }
        if let Some((link, drop_db)) = best_instant {
            return Ok(Detection::PresentInstant { link, drop_db });
        }
        if let Some((link, statistic)) = best_cusum {
            return Ok(Detection::PresentAccumulated { link, statistic });
        }
        Ok(Detection::Absent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> PresenceDetector {
        PresenceDetector::new(vec![-40.0, -45.0, -50.0], DetectorConfig::default()).unwrap()
    }

    #[test]
    fn quiet_room_stays_absent() {
        let mut d = detector();
        for _ in 0..50 {
            let r = d.update(&[-40.2, -44.9, -50.1]).unwrap();
            assert_eq!(r, Detection::Absent);
        }
    }

    #[test]
    fn big_drop_triggers_instantly() {
        let mut d = detector();
        let r = d.update(&[-40.0, -53.0, -50.0]).unwrap();
        match r {
            Detection::PresentInstant { link, drop_db } => {
                assert_eq!(link, 1);
                assert!((drop_db - 8.0).abs() < 1e-12);
            }
            other => panic!("expected instant detection, got {other:?}"),
        }
        assert!(r.is_present());
    }

    #[test]
    fn weak_persistent_drop_accumulates() {
        let mut d = detector();
        // 2.5 dB drop: below the 4 dB snapshot threshold, above CUSUM k = 1.
        let mut detected_at = None;
        for step in 0..20 {
            let r = d.update(&[-42.5, -45.0, -50.0]).unwrap();
            if r.is_present() {
                detected_at = Some((step, r));
                break;
            }
        }
        let (step, r) = detected_at.expect("CUSUM must eventually fire");
        assert!(step >= 2, "needs a few samples to accumulate, fired at {step}");
        assert!(matches!(r, Detection::PresentAccumulated { link: 0, .. }));
    }

    #[test]
    fn cusum_resets() {
        let mut d = detector();
        for _ in 0..10 {
            let _ = d.update(&[-42.5, -45.0, -50.0]).unwrap();
        }
        d.reset();
        let r = d.update(&[-42.5, -45.0, -50.0]).unwrap();
        assert_eq!(r, Detection::Absent, "fresh CUSUM must not fire immediately");
    }

    #[test]
    fn rebaseline_swaps_reference() {
        let mut d = detector();
        d.rebaseline(vec![-45.0, -50.0, -55.0]).unwrap();
        assert_eq!(d.update(&[-45.0, -50.0, -55.0]).unwrap(), Detection::Absent);
        assert!(d.rebaseline(vec![-40.0]).is_err());
    }

    #[test]
    fn score_is_max_drop() {
        let d = detector();
        let s = d.score(&[-41.0, -49.0, -50.0]).unwrap();
        assert!((s - 4.0).abs() < 1e-12);
        assert!(d.score(&[-41.0]).is_err());
    }

    #[test]
    fn validates_construction() {
        assert!(PresenceDetector::new(vec![], DetectorConfig::default()).is_err());
        let bad = DetectorConfig { snapshot_threshold_db: 0.0, ..Default::default() };
        assert!(PresenceDetector::new(vec![-40.0], bad).is_err());
        let bad = DetectorConfig { cusum_k_db: -1.0, ..Default::default() };
        assert!(PresenceDetector::new(vec![-40.0], bad).is_err());
    }

    #[test]
    fn update_validates_length() {
        let mut d = detector();
        assert!(d.update(&[-40.0]).is_err());
    }

    #[test]
    fn noise_within_band_does_not_false_alarm() {
        // Zero-mean noise within the paper's 1-4 dBm band, averaged over 100
        // samples as the campaigns do, must not trip the detector.
        let mut d = detector();
        for k in 0..200 {
            let jitter = 0.4 * ((k as f64) * 0.7).sin();
            let r = d.update(&[-40.0 + jitter, -45.0 - jitter, -50.0 + jitter]).unwrap();
            assert_eq!(r, Detection::Absent, "false alarm at step {k}");
        }
    }
}
