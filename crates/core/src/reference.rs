//! Reference-location selection.
//!
//! TafLoc refreshes the fingerprint database by measuring only `n ≪ N` reference
//! locations; everything hinges on choosing columns that span the fingerprint
//! matrix well. The paper selects *"locations with RSS measurements corresponding
//! to the maximum linearly independent vectors"* — numerically, the leading pivots
//! of a column-pivoted QR factorization. Two alternatives are provided for the
//! ablation study.

use crate::error::TaflocError;
use crate::Result;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use taf_linalg::Matrix;

/// How to pick reference locations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReferenceStrategy {
    /// Column-pivoted QR: greedy maximal linear independence (the paper's choice).
    QrPivot,
    /// Uniformly random distinct cells (ablation lower bound).
    Random {
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Statistical leverage scores from the truncated SVD (a spectral
    /// alternative: columns with the largest projection onto the top right
    /// singular subspace).
    LeverageScore,
}

/// Selects `n` reference cells (column indices of `x`) using `strategy`.
///
/// Errors when `n` is zero or exceeds the number of columns.
pub fn select_references(x: &Matrix, n: usize, strategy: ReferenceStrategy) -> Result<Vec<usize>> {
    if n == 0 {
        return Err(TaflocError::InvalidConfig {
            field: "ref_count",
            reason: "must select at least one reference location".into(),
        });
    }
    if n > x.cols() {
        return Err(TaflocError::InsufficientReferences { requested: n, available: x.cols() });
    }
    match strategy {
        ReferenceStrategy::QrPivot => {
            let f = x.col_piv_qr()?;
            Ok(f.leading_columns(n)?)
        }
        ReferenceStrategy::Random { seed } => {
            let mut all: Vec<usize> = (0..x.cols()).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            all.shuffle(&mut rng);
            all.truncate(n);
            Ok(all)
        }
        ReferenceStrategy::LeverageScore => {
            let k = n.min(x.rows());
            let svd = x.svd()?.truncate(k);
            // Leverage of column j: squared norm of row j of V (N x k).
            let mut scored: Vec<(usize, f64)> = (0..x.cols())
                .map(|j| {
                    let lev: f64 = (0..svd.v.cols()).map(|c| svd.v[(j, c)].powi(2)).sum();
                    (j, lev)
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite leverage"));
            Ok(scored.into_iter().take(n).map(|(j, _)| j).collect())
        }
    }
}

/// Quality diagnostic for a selection: the relative residual of projecting `x`
/// onto the span of the selected columns (`0` = selection spans the matrix,
/// `1` = selection explains nothing). Used by tests and the ablation bench.
pub fn selection_residual(x: &Matrix, selected: &[usize]) -> Result<f64> {
    let xr = x.select_cols(selected)?;
    // Least-squares fit of all columns on the selection: Z = (XrᵀXr + εI)⁻¹XrᵀX.
    let z = taf_linalg::solve::ridge_multi(&xr, x, 1e-8)?;
    let approx = xr.matmul(&z)?;
    let denom = x.frobenius_norm();
    if denom == 0.0 {
        return Ok(0.0);
    }
    Ok(x.sub(&approx)?.frobenius_norm() / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A rank-3 matrix with clearly distinguishable column subsets.
    fn low_rank() -> Matrix {
        let u = Matrix::from_fn(6, 3, |i, j| ((i + 1) * (j + 2)) as f64 / 7.0);
        let v = Matrix::from_fn(3, 12, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
        u.matmul(&v).unwrap()
    }

    #[test]
    fn qr_pivot_selection_spans_low_rank_matrix() {
        let x = low_rank();
        let sel = select_references(&x, 3, ReferenceStrategy::QrPivot).unwrap();
        assert_eq!(sel.len(), 3);
        let res = selection_residual(&x, &sel).unwrap();
        assert!(res < 1e-6, "rank-3 matrix must be spanned by 3 QR pivots, residual {res}");
    }

    #[test]
    fn selected_indices_are_distinct_and_in_range() {
        let x = low_rank();
        for strat in [
            ReferenceStrategy::QrPivot,
            ReferenceStrategy::Random { seed: 1 },
            ReferenceStrategy::LeverageScore,
        ] {
            let sel = select_references(&x, 5, strat).unwrap();
            assert_eq!(sel.len(), 5);
            let mut s = sel.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 5, "{strat:?} returned duplicates: {sel:?}");
            assert!(sel.iter().all(|&j| j < x.cols()));
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let x = low_rank();
        let a = select_references(&x, 4, ReferenceStrategy::Random { seed: 9 }).unwrap();
        let b = select_references(&x, 4, ReferenceStrategy::Random { seed: 9 }).unwrap();
        assert_eq!(a, b);
        let c = select_references(&x, 4, ReferenceStrategy::Random { seed: 10 }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn qr_pivot_beats_worst_case_random() {
        // On a matrix with many duplicate columns, QR pivoting avoids picking the
        // same direction twice.
        let base = low_rank();
        // Duplicate column 0 many times.
        let mut cols: Vec<usize> = vec![0; 9];
        cols.extend(0..base.cols());
        let x = base.select_cols(&cols).unwrap();
        let qr_sel = select_references(&x, 3, ReferenceStrategy::QrPivot).unwrap();
        let qr_res = selection_residual(&x, &qr_sel).unwrap();
        assert!(qr_res < 1e-6, "QR selection must still span, got {qr_res}");
    }

    #[test]
    fn leverage_score_spans_reasonably() {
        let x = low_rank();
        let sel = select_references(&x, 6, ReferenceStrategy::LeverageScore).unwrap();
        let res = selection_residual(&x, &sel).unwrap();
        assert!(res < 0.2, "leverage selection residual {res}");
    }

    #[test]
    fn rejects_bad_counts() {
        let x = low_rank();
        assert!(matches!(
            select_references(&x, 0, ReferenceStrategy::QrPivot),
            Err(TaflocError::InvalidConfig { .. })
        ));
        assert!(matches!(
            select_references(&x, 13, ReferenceStrategy::QrPivot),
            Err(TaflocError::InsufficientReferences { .. })
        ));
    }

    #[test]
    fn residual_bounds() {
        let x = low_rank();
        let all: Vec<usize> = (0..x.cols()).collect();
        assert!(selection_residual(&x, &all).unwrap() < 1e-6);
        let zero = Matrix::zeros(3, 3);
        assert_eq!(selection_residual(&zero, &[0]).unwrap(), 0.0);
    }
}
