//! # tafloc-core
//!
//! A from-scratch reproduction of **TafLoc** (SIGCOMM '16): time-adaptive,
//! fine-grained device-free localization with little fingerprint-maintenance
//! cost.
//!
//! TafLoc localizes a person who carries no device by matching live per-link RSS
//! vectors against a fingerprint database — an `M x N` matrix of the RSS of `M`
//! links with a target standing in each of `N` location cells. Its contribution
//! is making that database cheap to maintain: instead of re-surveying all `N`
//! cells when fingerprints expire, TafLoc measures `n ≪ N` *reference* cells and
//! reconstructs the rest with a structured low-rank solver (**LoLi-IR**).
//!
//! ## Crate map
//!
//! | Module | Paper concept |
//! |---|---|
//! | [`db`] | the fingerprint matrix `X` (Fig. 1) |
//! | [`mod@reference`] | "maximum linearly independent" reference-location selection |
//! | [`mask`] | the binary observation matrix `B` and the largely-distorted region `X_D` |
//! | [`operators`] | the continuity (`G`) and similarity (`H`) structure operators |
//! | [`lrr`] | the low-rank representation `X = X_R·Z` |
//! | [`svt`] | the rank-minimization completion baseline (property (i) alone) |
//! | [`loli_ir`] | the full reconstruction objective and alternating solver |
//! | [`matcher`] | matching live `Y` against the database columns |
//! | [`system`] | the calibrate → update → localize lifecycle |
//! | [`eval`] | error CDFs and summaries (Figs. 3 and 5) |
//! | [`detection`] | presence detection (snapshot + CUSUM) for the intruder scenario |
//! | [`tracking`] | particle-filter tracking of moving targets |
//! | [`monitor`] | reference-cell spot checks driving time-adaptive update scheduling |
//!
//! ## Quickstart
//!
//! ```
//! use taf_rfsim::{campaign, World, WorldConfig};
//! use tafloc_core::db::FingerprintDb;
//! use tafloc_core::system::{TafLoc, TafLocConfig};
//!
//! // Simulated site survey at day 0.
//! let world = World::new(WorldConfig::small_test(), 7);
//! let x0 = campaign::full_calibration(&world, 0.0, 20);
//! let e0 = campaign::empty_snapshot(&world, 0.0, 20);
//! let db = FingerprintDb::from_world(x0, &world).unwrap();
//!
//! // Calibrate, then later refresh from reference cells only.
//! let config = TafLocConfig { ref_count: 6, ..Default::default() };
//! let mut tafloc = TafLoc::calibrate(config, db, e0).unwrap();
//! let fresh = campaign::measure_columns(&world, 45.0, tafloc.reference_cells(), 20);
//! let empty = campaign::empty_snapshot(&world, 45.0, 20);
//! tafloc.update(&fresh, &empty).unwrap();
//!
//! // Localize a live measurement.
//! let y = campaign::snapshot_at_cell(&world, 45.0, 12, 20);
//! let fix = tafloc.localize(&y).unwrap();
//! assert!(fix.cell < world.num_cells());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` deliberately rejects NaN along with non-positive values in
// config validation — the clippy lint suggesting `x <= 0.0` would silently
// accept NaN. Indexed loops are used where two or more parallel buffers are
// driven by one index; rewriting them as iterator chains hurts readability in
// the numerical kernels.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod db;
pub mod detection;
pub mod error;
pub mod eval;
pub mod loli_ir;
pub mod lrr;
pub mod mask;
pub mod matcher;
pub mod monitor;
pub mod operators;
pub mod reference;
pub mod svt;
pub mod system;
pub mod tracking;

pub use db::FingerprintDb;
pub use detection::{Detection, DetectorConfig, PresenceDetector};
pub use error::TaflocError;
pub use loli_ir::{
    LoliIrConfig, Reconstruction, ReconstructionProblem, SolverWorkspace, WarmState,
};
pub use lrr::LrrModel;
pub use mask::Mask;
pub use matcher::{MatchMethod, MatchResult};
pub use monitor::{DriftMonitor, MonitorConfig, Recommendation};
pub use system::{SolverCache, SystemSnapshot, TafLoc, TafLocConfig, UpdateReport, ZRefreshPolicy};
pub use tracking::{ParticleFilter, TrackEstimate, TrackerConfig};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TaflocError>;
