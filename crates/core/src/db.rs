//! The fingerprint database: the `M x N` RSS matrix plus the geometry that gives
//! its rows (links) and columns (location cells) meaning.

use crate::error::TaflocError;
use crate::Result;
use serde::{Deserialize, Serialize};
use taf_linalg::Matrix;
use taf_rfsim::geometry::Segment;
use taf_rfsim::grid::FloorGrid;

/// A fingerprint database.
///
/// Row `i` holds the RSS of link `i` over every location cell; column `j` holds
/// the RSS of every link when the target stands in cell `j` — exactly Fig. 1 of
/// the paper. The struct also carries the link segments and the floor grid so the
/// continuity/similarity operators and localization can reason geometrically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FingerprintDb {
    rss: Matrix,
    links: Vec<Segment>,
    grid: FloorGrid,
}

impl FingerprintDb {
    /// Creates a database, validating that the matrix shape matches the geometry
    /// (`rows == links.len()`, `cols == grid.num_cells()`).
    pub fn new(rss: Matrix, links: Vec<Segment>, grid: FloorGrid) -> Result<Self> {
        if rss.rows() != links.len() || rss.cols() != grid.num_cells() {
            return Err(TaflocError::DimensionMismatch {
                op: "FingerprintDb::new",
                expected: (links.len(), grid.num_cells()),
                actual: rss.shape(),
            });
        }
        if rss.has_non_finite() {
            return Err(TaflocError::InvalidConfig {
                field: "rss",
                reason: "fingerprint matrix contains NaN or infinite values".into(),
            });
        }
        Ok(FingerprintDb { rss, links, grid })
    }

    /// Convenience constructor taking the geometry from a simulated world.
    pub fn from_world(rss: Matrix, world: &taf_rfsim::World) -> Result<Self> {
        let links = world.deployment().links().iter().map(|l| l.segment).collect();
        FingerprintDb::new(rss, links, world.grid().clone())
    }

    /// Number of links `M`.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of location cells `N`.
    pub fn num_cells(&self) -> usize {
        self.grid.num_cells()
    }

    /// The RSS matrix.
    pub fn rss(&self) -> &Matrix {
        &self.rss
    }

    /// Link segments, in row order.
    pub fn links(&self) -> &[Segment] {
        &self.links
    }

    /// The location grid.
    pub fn grid(&self) -> &FloorGrid {
        &self.grid
    }

    /// Fingerprint column for cell `j` (the `M`-vector to match `Y` against).
    pub fn fingerprint(&self, cell: usize) -> Result<Vec<f64>> {
        if cell >= self.num_cells() {
            return Err(TaflocError::IndexOutOfBounds {
                op: "FingerprintDb::fingerprint",
                index: cell,
                bound: self.num_cells(),
            });
        }
        Ok(self.rss.col(cell))
    }

    /// Replaces the RSS matrix (after a reconstruction), keeping the geometry.
    /// Validates the new matrix the same way as [`FingerprintDb::new`].
    pub fn with_rss(&self, rss: Matrix) -> Result<Self> {
        FingerprintDb::new(rss, self.links.clone(), self.grid.clone())
    }

    /// Measures how well another matrix approximates this database: the mean
    /// absolute entry difference in dB (the paper's Fig. 3 metric).
    pub fn mean_abs_error(&self, other: &Matrix) -> Result<f64> {
        if other.shape() != self.rss.shape() {
            return Err(TaflocError::DimensionMismatch {
                op: "FingerprintDb::mean_abs_error",
                expected: self.rss.shape(),
                actual: other.shape(),
            });
        }
        Ok(self.rss.sub(other)?.map(f64::abs).mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taf_rfsim::geometry::Point;

    fn grid() -> FloorGrid {
        FloorGrid::new(Point::new(0.0, 0.0), 1.0, 2, 3)
    }

    fn links(m: usize) -> Vec<Segment> {
        (0..m)
            .map(|i| Segment::new(Point::new(-1.0, i as f64), Point::new(3.0, i as f64)))
            .collect()
    }

    fn db() -> FingerprintDb {
        let rss = Matrix::from_fn(4, 6, |i, j| -(40.0 + i as f64 + j as f64));
        FingerprintDb::new(rss, links(4), grid()).unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        let rss = Matrix::zeros(3, 6);
        assert!(matches!(
            FingerprintDb::new(rss, links(4), grid()),
            Err(TaflocError::DimensionMismatch { .. })
        ));
        let rss = Matrix::zeros(4, 5);
        assert!(FingerprintDb::new(rss, links(4), grid()).is_err());
    }

    #[test]
    fn construction_rejects_non_finite() {
        let mut rss = Matrix::zeros(4, 6);
        rss[(0, 0)] = f64::NAN;
        assert!(matches!(
            FingerprintDb::new(rss, links(4), grid()),
            Err(TaflocError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn accessors() {
        let d = db();
        assert_eq!(d.num_links(), 4);
        assert_eq!(d.num_cells(), 6);
        assert_eq!(d.links().len(), 4);
        assert_eq!(d.grid().num_cells(), 6);
    }

    #[test]
    fn fingerprint_column() {
        let d = db();
        let f = d.fingerprint(2).unwrap();
        assert_eq!(f.len(), 4);
        assert_eq!(f[0], -(40.0 + 2.0));
        assert!(d.fingerprint(6).is_err());
    }

    #[test]
    fn with_rss_swaps_matrix() {
        let d = db();
        let new = Matrix::filled(4, 6, -50.0);
        let d2 = d.with_rss(new).unwrap();
        assert_eq!(d2.rss()[(0, 0)], -50.0);
        assert_eq!(d2.num_links(), 4);
        assert!(d.with_rss(Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn mean_abs_error_computation() {
        let d = db();
        let shifted = d.rss().map(|v| v + 2.0);
        assert!((d.mean_abs_error(&shifted).unwrap() - 2.0).abs() < 1e-12);
        assert!(d.mean_abs_error(&Matrix::zeros(1, 1)).is_err());
        assert_eq!(d.mean_abs_error(d.rss()).unwrap(), 0.0);
    }

    #[test]
    fn from_world_wires_geometry() {
        let w = taf_rfsim::World::new(taf_rfsim::WorldConfig::small_test(), 1);
        let rss = w.fingerprint_truth(0.0);
        let d = FingerprintDb::from_world(rss, &w).unwrap();
        assert_eq!(d.num_links(), w.num_links());
        assert_eq!(d.num_cells(), w.num_cells());
    }
}
