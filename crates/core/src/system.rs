//! The end-to-end TafLoc system.
//!
//! Lifecycle (mirroring the paper's deployment):
//!
//! 1. [`TafLoc::calibrate`] — one full site survey builds the initial fingerprint
//!    database; TafLoc selects the reference locations (column-pivoted QR), learns
//!    the LRR correlation matrix `Z`, and builds the continuity/similarity graphs.
//! 2. Time passes; RSS drifts; the stored fingerprints expire.
//! 3. [`TafLoc::update`] — a surveyor measures **only** the `n` reference cells
//!    (plus one empty-room snapshot); LoLi-IR reconstructs the entire database.
//! 4. [`TafLoc::localize`] — live RSS vectors are matched against the
//!    reconstructed database.

use crate::db::FingerprintDb;
use crate::error::TaflocError;
use crate::loli_ir::{
    reconstruct_warm, LoliIrConfig, Reconstruction, ReconstructionProblem, SolverWorkspace,
    WarmState,
};
use crate::lrr::LrrModel;
use crate::mask::{detect_distorted, Mask};
use crate::matcher::{localize, MatchMethod, MatchResult};
use crate::operators::NeighborGraph;
use crate::reference::{select_references, ReferenceStrategy};
use crate::Result;
use serde::{Deserialize, Serialize};
use taf_linalg::Matrix;

/// TafLoc system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TafLocConfig {
    /// Number of reference locations `n` (the paper uses 10).
    pub ref_count: usize,
    /// Reference-selection strategy.
    pub ref_strategy: ReferenceStrategy,
    /// Ridge regularizer for fitting the LRR correlation matrix `Z`.
    pub lrr_lambda: f64,
    /// RSS drop (dB) below the empty-room level that marks an entry as
    /// "largely distorted" (the `X_D` region).
    pub distortion_threshold_db: f64,
    /// Each link is connected to its `k` nearest links in the similarity graph.
    pub link_graph_k: usize,
    /// LoLi-IR solver parameters.
    pub loli: LoliIrConfig,
    /// Online matching method.
    pub matcher: MatchMethod,
    /// Blocking-pattern consistency gate for localization. A link dropping
    /// `gate_hi_db` below the empty-room baseline means the target is shadowing
    /// it; a candidate cell whose stored fingerprint shows (almost) no drop on
    /// that link is physically impossible and is excluded — and vice versa: a
    /// cell whose fingerprint predicts a deep drop on a link that is currently
    /// quiet is excluded too. This suppresses fingerprint-aliasing outliers (a
    /// far cell with a coincidentally similar signature cannot reproduce the
    /// live blocking pattern).
    pub consistency_gate: bool,
    /// Drop (dB) that positively identifies a blocked link.
    pub gate_hi_db: f64,
    /// Drop (dB) below which a link counts as clearly unblocked. Must be below
    /// `gate_hi_db`; the band in between is left undecided (noise + drift).
    pub gate_lo_db: f64,
    /// What happens to the LRR correlation matrix `Z` after each update.
    pub z_policy: ZRefreshPolicy,
}

/// Lifecycle policy for the LRR correlation matrix `Z`.
///
/// The paper's position is that `Z` captures *stable* spatial structure and is
/// learned once from the full day-0 calibration. Refitting it on reconstructed
/// data after each update is the obvious alternative — and a feedback loop:
/// reconstruction errors leak into `Z` and compound across updates. The
/// `ablation_zpolicy` experiment quantifies this.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ZRefreshPolicy {
    /// Keep the day-0 `Z` forever (the paper's choice).
    Fixed,
    /// Refit `Z` on the reconstructed database after every update.
    RefitAfterUpdate,
}

impl Default for TafLocConfig {
    fn default() -> Self {
        TafLocConfig {
            ref_count: 10,
            ref_strategy: ReferenceStrategy::QrPivot,
            lrr_lambda: 1e-3,
            distortion_threshold_db: 2.0,
            link_graph_k: 2,
            loli: LoliIrConfig::default(),
            matcher: MatchMethod::default(),
            consistency_gate: true,
            gate_hi_db: 7.0,
            gate_lo_db: 1.0,
            z_policy: ZRefreshPolicy::Fixed,
        }
    }
}

/// Serializable snapshot of a calibrated [`TafLoc`] instance.
///
/// Contains exactly the state that cannot be re-derived — configuration,
/// database, reference cells, the fitted LRR model and the current empty-room
/// baseline. Graphs and the distortion mask are rebuilt on load. This is what
/// a deployment writes to disk between surveys (and what the `tafloc` CLI
/// stores as its `system.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// System configuration.
    pub config: TafLocConfig,
    /// Current fingerprint database.
    pub db: FingerprintDb,
    /// Selected reference cells (selection order).
    pub ref_cells: Vec<usize>,
    /// Fitted LRR correlation model.
    pub lrr: LrrModel,
    /// Most recent empty-room RSS baseline.
    pub empty_rss: Vec<f64>,
}

fn default_max_ref_rmse_db() -> f64 {
    6.0
}

fn default_max_mean_delta_db() -> f64 {
    25.0
}

/// Sanity ceilings a reconstructed database must clear before it may replace
/// the served one.
///
/// The defaults are calibrated against the regression suite: a legitimate
/// refresh reproduces its own measured reference columns to well under 1 dB
/// RMSE and moves the database by a few dB at most, while a poisoned solve
/// (NaN propagation, a runaway bias, garbage reference measurements) blows
/// through one of the ceilings. The ceilings sit far above honest-run values
/// so the guard never vetoes a refresh the accuracy gates would accept.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconstructionGuard {
    /// Ceiling (dB) on the RMSE between the reconstruction's reference
    /// columns and the freshly *measured* reference columns that drove it.
    /// A reconstruction that cannot reproduce its own inputs is garbage.
    #[serde(default = "default_max_ref_rmse_db")]
    pub max_ref_rmse_db: f64,
    /// Ceiling (dB) on the mean absolute change vs. the currently served
    /// database — bounds how far one refresh may move the deployment.
    #[serde(default = "default_max_mean_delta_db")]
    pub max_mean_delta_db: f64,
}

impl Default for ReconstructionGuard {
    fn default() -> Self {
        ReconstructionGuard {
            max_ref_rmse_db: default_max_ref_rmse_db(),
            max_mean_delta_db: default_max_mean_delta_db(),
        }
    }
}

/// Diagnostics from one database update.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// LoLi-IR outer iterations performed.
    pub iterations: usize,
    /// Whether LoLi-IR met its tolerance.
    pub converged: bool,
    /// Objective trace (initial value plus one entry per iteration).
    pub objective_trace: Vec<f64>,
    /// Mean absolute change (dB) this update applied to the stored database.
    pub mean_abs_change_db: f64,
}

/// Solver state carried between refreshes: the allocation-free
/// [`SolverWorkspace`] plus the last *accepted* solution as a [`WarmState`].
///
/// Ownership of the warm state is deliberately one-way: the cache only learns
/// a solution through [`SolverCache::adopt`], which callers invoke after the
/// reconstruction has cleared whatever guard stands between solve and commit.
/// A rejected reconstruction must never seed the next solve — it failed
/// validation precisely because something about it is suspect — so rollback
/// paths call [`SolverCache::invalidate`] and the next refresh cold-starts
/// from the SVD initialization.
#[derive(Debug, Default)]
pub struct SolverCache {
    ws: SolverWorkspace,
    warm: Option<WarmState>,
}

impl SolverCache {
    /// An empty cache: first solve through it is a cold start.
    pub fn new() -> Self {
        SolverCache::default()
    }

    /// Whether the next solve through this cache will attempt a warm start.
    pub fn has_warm(&self) -> bool {
        self.warm.is_some()
    }

    /// Records an accepted reconstruction as the seed for the next solve.
    pub fn adopt(&mut self, rec: &Reconstruction) {
        self.warm = Some(WarmState::from_reconstruction(rec));
    }

    /// The warm state that would seed the next solve, if any. Persistence
    /// reads it here so an accepted solution survives a restart.
    pub fn warm_state(&self) -> Option<&WarmState> {
        self.warm.as_ref()
    }

    /// Seeds the cache with a previously *accepted* (and since persisted)
    /// solution. Only recovery paths should call this: the warm state must
    /// have gone through [`SolverCache::adopt`] in a prior process.
    pub fn restore(&mut self, warm: WarmState) {
        self.warm = Some(warm);
    }

    /// Drops the warm state (keeps the workspace buffers): the next solve
    /// cold-starts. Call on rejection, rollback, or any doubt about the
    /// provenance of the last solution.
    pub fn invalidate(&mut self) {
        self.warm = None;
    }
}

/// A calibrated TafLoc instance.
#[derive(Debug, Clone)]
pub struct TafLoc {
    config: TafLocConfig,
    db: FingerprintDb,
    lrr: LrrModel,
    ref_cells: Vec<usize>,
    location_graph: NeighborGraph,
    link_graph: NeighborGraph,
    empty_rss: Vec<f64>,
    distortion: Mask,
}

impl TafLoc {
    /// Builds the system from the initial full calibration.
    ///
    /// `initial_db` is the surveyed fingerprint database and `empty_rss` the
    /// per-link empty-room RSS measured at the same time.
    pub fn calibrate(
        config: TafLocConfig,
        initial_db: FingerprintDb,
        empty_rss: Vec<f64>,
    ) -> Result<Self> {
        if empty_rss.len() != initial_db.num_links() {
            return Err(TaflocError::DimensionMismatch {
                op: "TafLoc::calibrate",
                expected: (initial_db.num_links(), 1),
                actual: (empty_rss.len(), 1),
            });
        }
        if config.link_graph_k == 0 {
            return Err(TaflocError::InvalidConfig {
                field: "link_graph_k",
                reason: "similarity graph needs k >= 1".into(),
            });
        }
        let ref_cells = select_references(initial_db.rss(), config.ref_count, config.ref_strategy)?;
        let lrr = LrrModel::fit(initial_db.rss(), &ref_cells, config.lrr_lambda)?;
        let location_graph = NeighborGraph::locations(initial_db.grid());
        let link_graph =
            NeighborGraph::links_from_segments(initial_db.links(), config.link_graph_k);
        let distortion =
            detect_distorted(initial_db.rss(), &empty_rss, config.distortion_threshold_db)?;
        Ok(TafLoc {
            config,
            db: initial_db,
            lrr,
            ref_cells,
            location_graph,
            link_graph,
            empty_rss,
            distortion,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &TafLocConfig {
        &self.config
    }

    /// The current (possibly reconstructed) fingerprint database.
    pub fn db(&self) -> &FingerprintDb {
        &self.db
    }

    /// The selected reference cells, in selection order.
    pub fn reference_cells(&self) -> &[usize] {
        &self.ref_cells
    }

    /// The fitted LRR model.
    pub fn lrr(&self) -> &LrrModel {
        &self.lrr
    }

    /// The most recent empty-room RSS vector.
    pub fn empty_rss(&self) -> &[f64] {
        &self.empty_rss
    }

    /// The current largely-distorted entry mask.
    pub fn distortion(&self) -> &Mask {
        &self.distortion
    }

    /// Runs the reconstruction for freshly measured reference columns without
    /// mutating the system — the reusable core the paper applies to RASS as well
    /// ("the proposed method can be efficiently applied on other localization
    /// systems").
    pub fn reconstruct_db(
        &self,
        fresh_refs: &Matrix,
        fresh_empty: &[f64],
    ) -> Result<Reconstruction> {
        let entries = Mask::trues(self.db.num_links(), self.ref_cells.len());
        self.reconstruct_db_masked(fresh_refs, fresh_empty, &entries)
    }

    /// Like [`TafLoc::reconstruct_db`], but with an explicit per-entry
    /// observation mask over the reference columns (`M x n`, same layout as
    /// `fresh_refs`). An entry marked false is still fed to the LRR prior —
    /// the prior needs complete reference columns — but is excluded from the
    /// data-fit term, so LoLi-IR treats it as unobserved and reconstructs it.
    ///
    /// This is the entry point for *budgeted* refreshes: a measurement plan
    /// re-surveys only a subset of reference cells/links, fills the rest from
    /// a survey-history window, and marks exactly the entries backed by a
    /// real measurement as observed.
    pub fn reconstruct_db_masked(
        &self,
        fresh_refs: &Matrix,
        fresh_empty: &[f64],
        observed_entries: &Mask,
    ) -> Result<Reconstruction> {
        self.reconstruct_db_masked_cached(
            fresh_refs,
            fresh_empty,
            observed_entries,
            &mut SolverCache::new(),
        )
    }

    /// Like [`TafLoc::reconstruct_db`], but solving through a [`SolverCache`]:
    /// workspace buffers are reused and, when the cache holds an adopted
    /// previous solution, the solve warm-starts from it.
    pub fn reconstruct_db_cached(
        &self,
        fresh_refs: &Matrix,
        fresh_empty: &[f64],
        cache: &mut SolverCache,
    ) -> Result<Reconstruction> {
        let entries = Mask::trues(self.db.num_links(), self.ref_cells.len());
        self.reconstruct_db_masked_cached(fresh_refs, fresh_empty, &entries, cache)
    }

    /// Cached variant of [`TafLoc::reconstruct_db_masked`] — the workhorse
    /// behind the daemon's steady-state refresh loop. The caller owns the
    /// [`SolverCache`] lifecycle: [`SolverCache::adopt`] after the guard
    /// accepts, [`SolverCache::invalidate`] on rejection.
    pub fn reconstruct_db_masked_cached(
        &self,
        fresh_refs: &Matrix,
        fresh_empty: &[f64],
        observed_entries: &Mask,
        cache: &mut SolverCache,
    ) -> Result<Reconstruction> {
        let (m, n) = self.db.rss().shape();
        if fresh_refs.shape() != (m, self.ref_cells.len()) {
            return Err(TaflocError::DimensionMismatch {
                op: "TafLoc::reconstruct_db(refs)",
                expected: (m, self.ref_cells.len()),
                actual: fresh_refs.shape(),
            });
        }
        if fresh_empty.len() != m {
            return Err(TaflocError::DimensionMismatch {
                op: "TafLoc::reconstruct_db(empty)",
                expected: (m, 1),
                actual: (fresh_empty.len(), 1),
            });
        }
        if observed_entries.shape() != (m, self.ref_cells.len()) {
            return Err(TaflocError::DimensionMismatch {
                op: "TafLoc::reconstruct_db(observed_entries)",
                expected: (m, self.ref_cells.len()),
                actual: observed_entries.shape(),
            });
        }

        // Observed matrix: fresh reference columns in place, zeros elsewhere;
        // the mask admits exactly the plan-backed entries of those columns.
        let mut observed = Matrix::zeros(m, n);
        let mut mask = Mask::falses(m, n);
        for (k, &cell) in self.ref_cells.iter().enumerate() {
            observed.set_col(cell, &fresh_refs.col(k))?;
            for i in 0..m {
                if observed_entries.get(i, k) {
                    mask.set(i, cell, true);
                }
            }
        }

        // LRR prior from the *stable* correlation matrix and the fresh references.
        let prior = self.lrr.predict(fresh_refs)?;

        // Distortion support estimated from the prior against the fresh baseline.
        let distortion =
            detect_distorted(&prior, fresh_empty, self.config.distortion_threshold_db)?;

        let problem = ReconstructionProblem {
            observed: &observed,
            mask: &mask,
            lrr_prior: Some(&prior),
            location_graph: Some(&self.location_graph),
            link_graph: Some(&self.link_graph),
            empty_rss: Some(fresh_empty),
            distortion: Some(&distortion),
        };
        reconstruct_warm(&problem, &self.config.loli, &mut cache.ws, cache.warm.as_ref())
    }

    /// Checks a reconstruction against `guard` before it is allowed to
    /// replace the served database. `fresh_refs` must be the measured
    /// reference columns that drove the solve. Returns the rejection reason
    /// on failure — the caller decides what rollback means (for `taflocd`:
    /// keep the old snapshot live and count the rejection).
    pub fn validate_reconstruction(
        &self,
        rec: &Reconstruction,
        fresh_refs: &Matrix,
        guard: &ReconstructionGuard,
    ) -> std::result::Result<(), String> {
        let entries = Mask::trues(self.db.num_links(), self.ref_cells.len());
        self.validate_reconstruction_masked(rec, fresh_refs, &entries, guard)
    }

    /// Like [`TafLoc::validate_reconstruction`], but the reference-column
    /// RMSE is computed only over the entries of `observed_entries` that are
    /// true. A budgeted refresh only has fresh ground truth where the plan
    /// actually measured; the carried-forward entries are themselves
    /// reconstruction targets and must not count against the guard.
    pub fn validate_reconstruction_masked(
        &self,
        rec: &Reconstruction,
        fresh_refs: &Matrix,
        observed_entries: &Mask,
        guard: &ReconstructionGuard,
    ) -> std::result::Result<(), String> {
        if observed_entries.shape() != (self.db.num_links(), self.ref_cells.len()) {
            return Err(format!(
                "observation mask shape {:?} does not match the reference columns ({}, {})",
                observed_entries.shape(),
                self.db.num_links(),
                self.ref_cells.len()
            ));
        }
        if rec.matrix.shape() != self.db.rss().shape() {
            return Err(format!(
                "reconstruction shape {:?} does not match the database {:?}",
                rec.matrix.shape(),
                self.db.rss().shape()
            ));
        }
        if rec.matrix.has_non_finite() {
            return Err("reconstruction contains non-finite entries".into());
        }
        // RMSE of the reconstruction at the reference cells vs. what was
        // actually measured there.
        let mut sq_sum = 0.0;
        let mut count = 0usize;
        for (k, &cell) in self.ref_cells.iter().enumerate() {
            for i in 0..rec.matrix.rows() {
                if !observed_entries.get(i, k) {
                    continue;
                }
                let d = rec.matrix[(i, cell)] - fresh_refs[(i, k)];
                sq_sum += d * d;
                count += 1;
            }
        }
        let ref_rmse = (sq_sum / count.max(1) as f64).sqrt();
        if !(ref_rmse <= guard.max_ref_rmse_db) {
            return Err(format!(
                "reconstruction misses its measured reference columns by {ref_rmse:.2} dB RMSE \
                 (ceiling {:.2} dB)",
                guard.max_ref_rmse_db
            ));
        }
        let delta =
            self.db.mean_abs_error(&rec.matrix).map_err(|e| format!("delta check failed: {e}"))?;
        if !(delta <= guard.max_mean_delta_db) {
            return Err(format!(
                "reconstruction moves the database by {delta:.2} dB mean absolute change \
                 (ceiling {:.2} dB)",
                guard.max_mean_delta_db
            ));
        }
        Ok(())
    }

    /// Commits an already-validated reconstruction: swaps the database,
    /// adopts the fresh empty-room baseline and rebuilds the derived state.
    /// Split out of [`TafLoc::update`] so callers can run
    /// [`TafLoc::validate_reconstruction`] between solve and commit.
    pub fn apply_reconstruction(
        &mut self,
        rec: Reconstruction,
        fresh_empty: &[f64],
    ) -> Result<UpdateReport> {
        if fresh_empty.len() != self.db.num_links() {
            return Err(TaflocError::DimensionMismatch {
                op: "TafLoc::apply_reconstruction",
                expected: (self.db.num_links(), 1),
                actual: (fresh_empty.len(), 1),
            });
        }
        let change = self.db.mean_abs_error(&rec.matrix)?;
        self.db = self.db.with_rss(rec.matrix)?;
        self.empty_rss = fresh_empty.to_vec();
        self.distortion =
            detect_distorted(self.db.rss(), &self.empty_rss, self.config.distortion_threshold_db)?;
        if self.config.z_policy == ZRefreshPolicy::RefitAfterUpdate {
            self.lrr = self.lrr.refit(self.db.rss())?;
        }
        Ok(UpdateReport {
            iterations: rec.iterations,
            converged: rec.converged,
            objective_trace: rec.objective_trace,
            mean_abs_change_db: change,
        })
    }

    /// Refreshes the stored database from freshly measured reference columns
    /// (`M x n`, column order = [`TafLoc::reference_cells`]) and a fresh
    /// empty-room snapshot.
    pub fn update(&mut self, fresh_refs: &Matrix, fresh_empty: &[f64]) -> Result<UpdateReport> {
        let rec = self.reconstruct_db(fresh_refs, fresh_empty)?;
        self.apply_reconstruction(rec, fresh_empty)
    }

    /// Budgeted variant of [`TafLoc::update`]: reference entries whose mask
    /// bit is false (carried from an earlier survey rather than freshly
    /// measured) feed the LRR prior but are excluded from the data fit. See
    /// [`TafLoc::reconstruct_db_masked`].
    pub fn update_masked(
        &mut self,
        fresh_refs: &Matrix,
        fresh_empty: &[f64],
        observed_entries: &Mask,
    ) -> Result<UpdateReport> {
        let rec = self.reconstruct_db_masked(fresh_refs, fresh_empty, observed_entries)?;
        self.apply_reconstruction(rec, fresh_empty)
    }

    /// [`TafLoc::update`] through a [`SolverCache`]. Applying *is* accepting
    /// here (no guard stands between solve and commit), so the solution is
    /// adopted as the next warm seed on success; on any error the cache is
    /// invalidated instead.
    pub fn update_cached(
        &mut self,
        fresh_refs: &Matrix,
        fresh_empty: &[f64],
        cache: &mut SolverCache,
    ) -> Result<UpdateReport> {
        let entries = Mask::trues(self.db.num_links(), self.ref_cells.len());
        self.update_masked_cached(fresh_refs, fresh_empty, &entries, cache)
    }

    /// [`TafLoc::update_masked`] through a [`SolverCache`]; see
    /// [`TafLoc::update_cached`] for the adopt/invalidate contract.
    pub fn update_masked_cached(
        &mut self,
        fresh_refs: &Matrix,
        fresh_empty: &[f64],
        observed_entries: &Mask,
        cache: &mut SolverCache,
    ) -> Result<UpdateReport> {
        match self.reconstruct_db_masked_cached(fresh_refs, fresh_empty, observed_entries, cache) {
            Ok(rec) => {
                // Adopt first — it copies only the small factors — then let a
                // failed commit revoke it.
                cache.adopt(&rec);
                self.apply_reconstruction(rec, fresh_empty).map_err(|e| {
                    cache.invalidate();
                    e
                })
            }
            Err(e) => {
                cache.invalidate();
                Err(e)
            }
        }
    }

    /// Localizes a live RSS vector against the current database.
    ///
    /// With [`TafLocConfig::consistency_gate`] enabled (the default),
    /// fingerprint matching is restricted to cells whose stored blocking
    /// pattern is compatible with the live one: a cell is excluded when the
    /// live measurement shows a deep drop (`> gate_hi_db`) on a link where the
    /// cell's fingerprint shows almost none (`< gate_lo_db`), or the reverse.
    /// When the gate empties the candidate set (conflicting evidence), the
    /// full database is searched.
    pub fn localize(&self, y: &[f64]) -> Result<MatchResult> {
        if self.config.consistency_gate && y.len() == self.db.num_links() {
            let m = self.db.num_links();
            let live_drop: Vec<f64> = self.empty_rss.iter().zip(y).map(|(e, v)| e - v).collect();
            let x = self.db.rss();
            let (hi, lo) = (self.config.gate_hi_db, self.config.gate_lo_db);
            let candidates: Vec<usize> = (0..self.db.num_cells())
                .filter(|&j| {
                    (0..m).all(|i| {
                        let db_drop = self.empty_rss[i] - x[(i, j)];
                        !((live_drop[i] > hi && db_drop < lo)
                            || (db_drop > hi && live_drop[i] < lo))
                    })
                })
                .collect();
            if !candidates.is_empty() {
                return crate::matcher::localize_among(
                    &self.db,
                    y,
                    self.config.matcher,
                    Some(&candidates),
                );
            }
        }
        localize(&self.db, y, self.config.matcher)
    }

    /// Captures the persistent state of this system as a [`SystemSnapshot`].
    pub fn snapshot(&self) -> SystemSnapshot {
        SystemSnapshot {
            config: self.config,
            db: self.db.clone(),
            ref_cells: self.ref_cells.clone(),
            lrr: self.lrr.clone(),
            empty_rss: self.empty_rss.clone(),
        }
    }

    /// Restores a system from a snapshot, rebuilding the derived state
    /// (graphs, distortion mask) and re-validating shapes.
    pub fn from_snapshot(snapshot: SystemSnapshot) -> Result<Self> {
        let SystemSnapshot { config, db, ref_cells, lrr, empty_rss } = snapshot;
        if empty_rss.len() != db.num_links() {
            return Err(TaflocError::DimensionMismatch {
                op: "TafLoc::from_snapshot",
                expected: (db.num_links(), 1),
                actual: (empty_rss.len(), 1),
            });
        }
        for &c in &ref_cells {
            if c >= db.num_cells() {
                return Err(TaflocError::IndexOutOfBounds {
                    op: "TafLoc::from_snapshot",
                    index: c,
                    bound: db.num_cells(),
                });
            }
        }
        if lrr.ref_cells() != ref_cells.as_slice() {
            return Err(TaflocError::InvalidConfig {
                field: "lrr",
                reason: "LRR model's reference cells disagree with the snapshot's".into(),
            });
        }
        let location_graph = NeighborGraph::locations(db.grid());
        let link_graph = NeighborGraph::links_from_segments(db.links(), config.link_graph_k.max(1));
        let distortion = detect_distorted(db.rss(), &empty_rss, config.distortion_threshold_db)?;
        Ok(TafLoc { config, db, lrr, ref_cells, location_graph, link_graph, empty_rss, distortion })
    }

    /// Builds a [`crate::monitor::DriftMonitor`] spot-checking the first
    /// `num_cells` reference cells of this system, baselined on the current
    /// database as of `day`.
    ///
    /// The monitor closes the "time-adaptive" loop: spot-check a couple of
    /// reference cells periodically, and run [`TafLoc::update`] when it
    /// recommends one.
    pub fn monitor(
        &self,
        num_cells: usize,
        day: f64,
        config: crate::monitor::MonitorConfig,
    ) -> Result<crate::monitor::DriftMonitor> {
        if num_cells == 0 || num_cells > self.ref_cells.len() {
            return Err(TaflocError::InvalidConfig {
                field: "num_cells",
                reason: format!(
                    "must be in 1..={} (the reference-cell count), got {num_cells}",
                    self.ref_cells.len()
                ),
            });
        }
        let cells = self.ref_cells[..num_cells].to_vec();
        let stored = self.db.rss().select_cols(&cells)?;
        crate::monitor::DriftMonitor::new(stored, cells, day, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taf_rfsim::{campaign, World, WorldConfig};

    fn setup(seed: u64) -> (World, TafLoc) {
        let world = World::new(WorldConfig::small_test(), seed);
        let x0 = campaign::full_calibration(&world, 0.0, 20);
        let e0 = campaign::empty_snapshot(&world, 0.0, 20);
        let db = FingerprintDb::from_world(x0, &world).unwrap();
        let config = TafLocConfig { ref_count: 6, ..Default::default() };
        let sys = TafLoc::calibrate(config, db, e0).unwrap();
        (world, sys)
    }

    #[test]
    fn calibrate_selects_references_and_fits_lrr() {
        let (_, sys) = setup(1);
        assert_eq!(sys.reference_cells().len(), 6);
        assert_eq!(sys.lrr().z().shape(), (6, 30));
        assert_eq!(sys.empty_rss().len(), 6);
    }

    #[test]
    fn calibrate_validates_inputs() {
        let world = World::new(WorldConfig::small_test(), 2);
        let x0 = campaign::full_calibration(&world, 0.0, 5);
        let db = FingerprintDb::from_world(x0, &world).unwrap();
        // Wrong empty length.
        assert!(TafLoc::calibrate(TafLocConfig::default(), db.clone(), vec![0.0; 3]).is_err());
        // Zero link_graph_k.
        let cfg = TafLocConfig { link_graph_k: 0, ref_count: 4, ..Default::default() };
        assert!(TafLoc::calibrate(cfg, db.clone(), vec![-40.0; 6]).is_err());
        // More references than cells.
        let cfg = TafLocConfig { ref_count: 999, ..Default::default() };
        assert!(TafLoc::calibrate(cfg, db, vec![-40.0; 6]).is_err());
    }

    #[test]
    fn update_improves_stale_database() {
        let (world, mut sys) = setup(3);
        let t = 45.0;
        // Stale DB error vs the drifted truth.
        let truth_t = world.fingerprint_truth(t);
        let stale_err = sys.db().mean_abs_error(&truth_t).unwrap();

        // Measure only the reference cells and update.
        let fresh = campaign::measure_columns(&world, t, sys.reference_cells(), 20);
        let empty = campaign::empty_snapshot(&world, t, 20);
        let report = sys.update(&fresh, &empty).unwrap();
        assert!(report.mean_abs_change_db > 0.0);

        let rec_err = sys.db().mean_abs_error(&truth_t).unwrap();
        assert!(
            rec_err < stale_err,
            "reconstruction ({rec_err:.2} dB) must beat the stale DB ({stale_err:.2} dB)"
        );
    }

    #[test]
    fn masked_reconstruction_generalizes_the_full_survey_path() {
        let (world, sys) = setup(7);
        let t = 45.0;
        let fresh = campaign::measure_columns(&world, t, sys.reference_cells(), 20);
        let empty = campaign::empty_snapshot(&world, t, 20);

        // All-trues entry mask must be bit-identical to the unmasked path.
        let full = sys.reconstruct_db(&fresh, &empty).unwrap();
        let all = Mask::trues(sys.db().num_links(), sys.reference_cells().len());
        let masked = sys.reconstruct_db_masked(&fresh, &empty, &all).unwrap();
        assert!(full.matrix.approx_eq(&masked.matrix, 0.0));
        assert_eq!(full.diagnostics, masked.diagnostics);

        // A partial mask still reconstructs, and the dropped entries register
        // as unobserved in the diagnostics.
        let mut partial = all.clone();
        for i in 0..sys.db().num_links() {
            partial.set(i, 0, false);
        }
        let rec = sys.reconstruct_db_masked(&fresh, &empty, &partial).unwrap();
        let slot0_cell = sys.reference_cells()[0];
        assert_eq!(rec.diagnostics.cell_observed[slot0_cell], 0);
        assert!(rec.matrix.iter().all(|v| v.is_finite()));

        // Shape mismatch on the entry mask is rejected.
        let bad = Mask::trues(2, 2);
        assert!(sys.reconstruct_db_masked(&fresh, &empty, &bad).is_err());
    }

    #[test]
    fn update_validates_shapes() {
        let (_, mut sys) = setup(4);
        let bad_refs = Matrix::zeros(6, 2);
        assert!(sys.update(&bad_refs, &[-40.0; 6]).is_err());
        let ok_refs = Matrix::filled(6, 6, -50.0);
        assert!(sys.update(&ok_refs, &[-40.0; 2]).is_err());
    }

    #[test]
    fn localize_finds_target_cell_at_calibration_time() {
        let (world, sys) = setup(5);
        let mut errors = Vec::new();
        for cell in 0..world.num_cells() {
            let y = campaign::snapshot_at_cell(&world, 0.0, cell, 20);
            let r = sys.localize(&y).unwrap();
            let truth = world.grid().cell_center(cell);
            errors.push(r.point.distance(&truth));
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        // The small test world has only 6 links over 30 cells, so cells far from
        // every link are distinguished mostly by the weak multipath field —
        // sub-cell accuracy is not achievable there. The paper-scale accuracy is
        // asserted by the integration tests on the 10-link/96-cell deployment.
        assert!(mean < 1.5, "fresh-DB mean localization error {mean:.2} m too large");
    }

    #[test]
    fn localize_after_update_beats_stale_db() {
        let (world, mut sys) = setup(6);
        let stale = sys.clone();
        let t = 90.0;
        let fresh = campaign::measure_columns(&world, t, sys.reference_cells(), 20);
        let empty = campaign::empty_snapshot(&world, t, 20);
        sys.update(&fresh, &empty).unwrap();

        let err_of = |s: &TafLoc| -> f64 {
            let mut acc = 0.0;
            for cell in 0..world.num_cells() {
                let y = campaign::snapshot_at_cell(&world, t, cell, 20);
                let r = s.localize(&y).unwrap();
                acc += r.point.distance(&world.grid().cell_center(cell));
            }
            acc / world.num_cells() as f64
        };
        let stale_err = err_of(&stale);
        let updated_err = err_of(&sys);
        assert!(updated_err < stale_err, "updated {updated_err:.2} m vs stale {stale_err:.2} m");
    }

    #[test]
    fn snapshot_round_trip_preserves_behavior() {
        let (world, mut sys) = setup(9);
        let fresh = campaign::measure_columns(&world, 20.0, sys.reference_cells(), 20);
        let empty = campaign::empty_snapshot(&world, 20.0, 20);
        sys.update(&fresh, &empty).unwrap();

        let restored = TafLoc::from_snapshot(sys.snapshot()).unwrap();
        assert_eq!(restored.reference_cells(), sys.reference_cells());
        let y = campaign::snapshot_at_cell(&world, 20.0, 7, 20);
        let a = sys.localize(&y).unwrap();
        let b = restored.localize(&y).unwrap();
        assert_eq!(a.cell, b.cell);
        assert!(a.point.distance(&b.point) < 1e-12);
    }

    #[test]
    fn snapshot_validation_rejects_corruption() {
        let (_, sys) = setup(10);
        let mut snap = sys.snapshot();
        snap.empty_rss.pop();
        assert!(TafLoc::from_snapshot(snap).is_err());

        let mut snap = sys.snapshot();
        snap.ref_cells[0] = 9999;
        assert!(TafLoc::from_snapshot(snap).is_err());

        let mut snap = sys.snapshot();
        snap.ref_cells.swap(0, 1); // now disagrees with the LRR model's order
        assert!(TafLoc::from_snapshot(snap).is_err());
    }

    #[test]
    fn z_refresh_policy_refits_correlation() {
        let world = World::new(WorldConfig::small_test(), 8);
        let x0 = campaign::full_calibration(&world, 0.0, 20);
        let e0 = campaign::empty_snapshot(&world, 0.0, 20);
        let db = FingerprintDb::from_world(x0, &world).unwrap();
        let fixed_cfg = TafLocConfig { ref_count: 6, ..Default::default() };
        let refit_cfg = TafLocConfig {
            ref_count: 6,
            z_policy: ZRefreshPolicy::RefitAfterUpdate,
            ..Default::default()
        };
        let mut fixed = TafLoc::calibrate(fixed_cfg, db.clone(), e0.clone()).unwrap();
        let mut refit = TafLoc::calibrate(refit_cfg, db, e0).unwrap();
        assert!(fixed.lrr().z().approx_eq(refit.lrr().z(), 0.0));

        let fresh = campaign::measure_columns(&world, 30.0, fixed.reference_cells(), 20);
        let empty = campaign::empty_snapshot(&world, 30.0, 20);
        let z_before = fixed.lrr().z().clone();
        fixed.update(&fresh, &empty).unwrap();
        refit.update(&fresh, &empty).unwrap();
        assert!(fixed.lrr().z().approx_eq(&z_before, 0.0), "Fixed policy must keep Z");
        assert!(!refit.lrr().z().approx_eq(&z_before, 1e-12), "Refit policy must change Z");
    }

    #[test]
    fn reconstruct_db_is_side_effect_free() {
        let (world, sys) = setup(7);
        let before = sys.db().rss().clone();
        let fresh = campaign::measure_columns(&world, 10.0, sys.reference_cells(), 10);
        let empty = campaign::empty_snapshot(&world, 10.0, 10);
        let _ = sys.reconstruct_db(&fresh, &empty).unwrap();
        assert!(sys.db().rss().approx_eq(&before, 0.0));
    }

    #[test]
    fn guard_passes_honest_solves_and_rejects_poison() {
        let (world, sys) = setup(8);
        let fresh = campaign::measure_columns(&world, 30.0, sys.reference_cells(), 20);
        let empty = campaign::empty_snapshot(&world, 30.0, 20);
        let rec = sys.reconstruct_db(&fresh, &empty).unwrap();
        let guard = ReconstructionGuard::default();
        sys.validate_reconstruction(&rec, &fresh, &guard).unwrap();

        // A single NaN entry fails the non-finite gate.
        let mut poisoned = rec.clone();
        poisoned.matrix.set(0, 0, f64::NAN).unwrap();
        let reason = sys.validate_reconstruction(&poisoned, &fresh, &guard).unwrap_err();
        assert!(reason.contains("non-finite"), "{reason}");

        // A runaway bias misses the measured reference columns.
        let mut biased = rec.clone();
        biased.matrix.map_inplace(|v| v + 40.0);
        let reason = sys.validate_reconstruction(&biased, &fresh, &guard).unwrap_err();
        assert!(reason.contains("reference columns"), "{reason}");

        // A near-zero delta ceiling trips the bounded-delta gate even on an
        // honest solve (the DB did drift between day 0 and day 30).
        let tight = ReconstructionGuard { max_mean_delta_db: 1e-9, ..Default::default() };
        let reason = sys.validate_reconstruction(&rec, &fresh, &tight).unwrap_err();
        assert!(reason.contains("moves the database"), "{reason}");

        // Shape mismatch is caught before anything else.
        let mut wrong = rec.clone();
        wrong.matrix = Matrix::zeros(1, 1);
        assert!(sys.validate_reconstruction(&wrong, &fresh, &guard).is_err());
    }

    #[test]
    fn apply_reconstruction_matches_update() {
        let (world, mut a) = setup(9);
        let mut b = a.clone();
        let fresh = campaign::measure_columns(&world, 45.0, a.reference_cells(), 20);
        let empty = campaign::empty_snapshot(&world, 45.0, 20);
        let ra = a.update(&fresh, &empty).unwrap();
        let rec = b.reconstruct_db(&fresh, &empty).unwrap();
        let rb = b.apply_reconstruction(rec, &empty).unwrap();
        assert!(a.db().rss().approx_eq(b.db().rss(), 0.0));
        assert_eq!(ra.mean_abs_change_db, rb.mean_abs_change_db);
        assert_eq!(ra.iterations, rb.iterations);
        // Bad empty length is rejected before any mutation.
        let rec = b.reconstruct_db(&fresh, &empty).unwrap();
        assert!(b.apply_reconstruction(rec, &[0.0; 1]).is_err());
    }
}
