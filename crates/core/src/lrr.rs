//! Low-Rank Representation (LRR) of the fingerprint matrix.
//!
//! Property (ii) of the poster: the fingerprint matrix can be written as a linear
//! combination of its reference columns, `X = X_R · Z`. Crucially, the
//! *correlation matrix* `Z` encodes spatial propagation structure that is stable
//! over time, while the raw RSS in `X_R` drifts. TafLoc therefore:
//!
//! 1. learns `Z` once from the initial full calibration
//!    (`Z = (X_Rᵀ X_R + λI)⁻¹ X_Rᵀ X₀`, a ridge solve), and
//! 2. at update time plugs in the **freshly measured** reference columns:
//!    `X̂(t) ≈ X_R(t) · Z`.
//!
//! The prediction is the LRR prior inside LoLi-IR's objective
//! (`‖LRᵀ − X_R·Z‖²_F`) and is itself a decent reconstruction (the `+LRR`
//! ablation).

use crate::error::TaflocError;
use crate::Result;
use serde::{Deserialize, Serialize};
use taf_linalg::{solve, Matrix};

/// A fitted low-rank-representation model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LrrModel {
    ref_cells: Vec<usize>,
    /// Correlation matrix, `n x N`.
    z: Matrix,
    lambda: f64,
}

impl LrrModel {
    /// Fits `Z` from a full fingerprint matrix `x0` and the chosen reference
    /// columns, with ridge regularizer `lambda > 0`.
    pub fn fit(x0: &Matrix, ref_cells: &[usize], lambda: f64) -> Result<Self> {
        if ref_cells.is_empty() {
            return Err(TaflocError::InvalidConfig {
                field: "ref_cells",
                reason: "LRR needs at least one reference column".into(),
            });
        }
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(TaflocError::InvalidConfig {
                field: "lambda",
                reason: format!("must be finite and > 0, got {lambda}"),
            });
        }
        for &c in ref_cells {
            if c >= x0.cols() {
                return Err(TaflocError::IndexOutOfBounds {
                    op: "LrrModel::fit",
                    index: c,
                    bound: x0.cols(),
                });
            }
        }
        let xr = x0.select_cols(ref_cells)?;
        let z = solve::ridge_multi(&xr, x0, lambda)?;
        Ok(LrrModel { ref_cells: ref_cells.to_vec(), z, lambda })
    }

    /// Reassembles a model from its stored parts (the persistence path:
    /// `taflocd`'s snapshot store round-trips `Z` without refitting it).
    /// Validates the same invariants [`LrrModel::fit`] establishes.
    pub fn from_parts(ref_cells: Vec<usize>, z: Matrix, lambda: f64) -> Result<Self> {
        if ref_cells.is_empty() {
            return Err(TaflocError::InvalidConfig {
                field: "ref_cells",
                reason: "LRR needs at least one reference column".into(),
            });
        }
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(TaflocError::InvalidConfig {
                field: "lambda",
                reason: format!("must be finite and > 0, got {lambda}"),
            });
        }
        if z.rows() != ref_cells.len() {
            return Err(TaflocError::DimensionMismatch {
                op: "LrrModel::from_parts",
                expected: (ref_cells.len(), z.cols()),
                actual: z.shape(),
            });
        }
        if z.has_non_finite() {
            return Err(TaflocError::InvalidConfig {
                field: "z",
                reason: "correlation matrix contains NaN or infinite values".into(),
            });
        }
        Ok(LrrModel { ref_cells, z, lambda })
    }

    /// The reference cells this model was fitted on.
    pub fn ref_cells(&self) -> &[usize] {
        &self.ref_cells
    }

    /// The learned correlation matrix (`n x N`).
    pub fn z(&self) -> &Matrix {
        &self.z
    }

    /// The ridge regularizer used at fit time.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Predicts the full fingerprint matrix from freshly measured reference
    /// columns (`M x n`, same column order as [`LrrModel::ref_cells`]).
    pub fn predict(&self, fresh_refs: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(fresh_refs.rows(), self.z.cols());
        self.predict_into(fresh_refs, &mut out)?;
        Ok(out)
    }

    /// [`LrrModel::predict`] into a caller-owned `M x N` buffer — the
    /// allocation-free form for callers predicting every refresh (`out` is
    /// resized only when its shape is wrong, so a reused buffer settles after
    /// the first call).
    pub fn predict_into(&self, fresh_refs: &Matrix, out: &mut Matrix) -> Result<()> {
        if fresh_refs.cols() != self.ref_cells.len() {
            return Err(TaflocError::DimensionMismatch {
                op: "LrrModel::predict",
                expected: (fresh_refs.rows(), self.ref_cells.len()),
                actual: fresh_refs.shape(),
            });
        }
        if out.shape() != (fresh_refs.rows(), self.z.cols()) {
            *out = Matrix::zeros(fresh_refs.rows(), self.z.cols());
        }
        fresh_refs.matmul_into(&self.z, out)?;
        Ok(())
    }

    /// Re-estimates `Z` against a new full matrix (the optional `Z-refresh`
    /// ablation), keeping the same reference cells and regularizer.
    pub fn refit(&self, x_new: &Matrix) -> Result<Self> {
        LrrModel::fit(x_new, &self.ref_cells, self.lambda)
    }

    /// In-sample relative error of the representation on the matrix it would
    /// predict from `x`'s own reference columns — a diagnostic for how well
    /// property (ii) holds.
    pub fn representation_error(&self, x: &Matrix) -> Result<f64> {
        let xr = x.select_cols(&self.ref_cells)?;
        let approx = self.predict(&xr)?;
        if approx.shape() != x.shape() {
            return Err(TaflocError::DimensionMismatch {
                op: "LrrModel::representation_error",
                expected: x.shape(),
                actual: approx.shape(),
            });
        }
        let denom = x.frobenius_norm();
        if denom == 0.0 {
            return Ok(0.0);
        }
        Ok(x.sub(&approx)?.frobenius_norm() / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact rank-2 matrix: LRR with 2 good references is exact.
    fn rank2() -> Matrix {
        let u = Matrix::from_cols(&[&[1.0, 2.0, -1.0, 0.5], &[0.0, 1.0, 1.0, -2.0]]).unwrap();
        let v = Matrix::from_rows(&[
            &[1.0, 0.0, 2.0, 1.0, -1.0, 3.0],
            &[0.0, 1.0, 1.0, -1.0, 2.0, 0.5],
        ])
        .unwrap();
        u.matmul(&v).unwrap()
    }

    #[test]
    fn exact_representation_of_low_rank() {
        let x = rank2();
        // Columns 0 and 1 are [u1 | u2] directions — independent.
        let model = LrrModel::fit(&x, &[0, 1], 1e-9).unwrap();
        let err = model.representation_error(&x).unwrap();
        assert!(err < 1e-5, "rank-2 matrix with 2 refs must be exact, err = {err}");
    }

    #[test]
    fn prediction_tracks_scaled_references() {
        // If the whole matrix doubles, predicting from doubled references doubles
        // the output (linearity).
        let x = rank2();
        let model = LrrModel::fit(&x, &[0, 1], 1e-9).unwrap();
        let xr = x.select_cols(&[0, 1]).unwrap();
        let pred = model.predict(&xr.scale(2.0)).unwrap();
        let expect = model.predict(&xr).unwrap().scale(2.0);
        assert!(pred.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn z_shape_and_accessors() {
        let x = rank2();
        let model = LrrModel::fit(&x, &[2, 4, 5], 1e-6).unwrap();
        assert_eq!(model.z().shape(), (3, 6));
        assert_eq!(model.ref_cells(), &[2, 4, 5]);
        assert_eq!(model.lambda(), 1e-6);
    }

    #[test]
    fn fit_validates_inputs() {
        let x = rank2();
        assert!(matches!(LrrModel::fit(&x, &[], 1e-6), Err(TaflocError::InvalidConfig { .. })));
        assert!(matches!(LrrModel::fit(&x, &[0], 0.0), Err(TaflocError::InvalidConfig { .. })));
        assert!(matches!(
            LrrModel::fit(&x, &[0], f64::NAN),
            Err(TaflocError::InvalidConfig { .. })
        ));
        assert!(matches!(
            LrrModel::fit(&x, &[99], 1e-6),
            Err(TaflocError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn predict_validates_shape() {
        let x = rank2();
        let model = LrrModel::fit(&x, &[0, 1], 1e-6).unwrap();
        assert!(model.predict(&Matrix::zeros(4, 3)).is_err());
    }

    #[test]
    fn refit_keeps_configuration() {
        let x = rank2();
        let model = LrrModel::fit(&x, &[0, 1], 1e-6).unwrap();
        let x2 = x.scale(1.5);
        let model2 = model.refit(&x2).unwrap();
        assert_eq!(model2.ref_cells(), model.ref_cells());
        assert!(model2.representation_error(&x2).unwrap() < 1e-5);
    }

    #[test]
    fn stable_z_predicts_drifted_matrix() {
        // The core TafLoc assumption: when the matrix drifts in a structured way
        // (here: global gain change), Z learned at t=0 still predicts X(t) from
        // fresh references.
        let x0 = rank2();
        let model = LrrModel::fit(&x0, &[0, 1], 1e-9).unwrap();
        let xt = x0.scale(1.3); // structured drift preserving column space
        let fresh = xt.select_cols(&[0, 1]).unwrap();
        let pred = model.predict(&fresh).unwrap();
        assert!(pred.approx_eq(&xt, 1e-6));
    }

    #[test]
    fn representation_error_of_zero_matrix() {
        let z = Matrix::zeros(3, 4);
        let model = LrrModel::fit(&z, &[0], 1e-6).unwrap();
        assert_eq!(model.representation_error(&z).unwrap(), 0.0);
    }
}
