//! Online localization: matching a live RSS vector `Y` against the fingerprint
//! database columns.
//!
//! The paper's final step: *"the real-time RSS measurements are collected as
//! `Y = (y_i)_{M x 1}`. Then the target location can be estimated by matching `Y`
//! with `X`."* Three matchers are provided, from the simplest to the one TafLoc
//! uses by default:
//!
//! * [`MatchMethod::NearestNeighbor`] — the cell whose fingerprint is closest in
//!   Euclidean RSS distance.
//! * [`MatchMethod::Knn`] — inverse-distance-weighted centroid of the `k` best
//!   cells (sub-cell accuracy; the default).
//! * [`MatchMethod::Probabilistic`] — Gaussian-likelihood weighting over all
//!   cells with a noise scale `σ`.

use crate::db::FingerprintDb;
use crate::error::TaflocError;
use crate::Result;
use serde::{Deserialize, Serialize};
use taf_rfsim::geometry::Point;

/// Matching method for localization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MatchMethod {
    /// Single nearest fingerprint column.
    NearestNeighbor,
    /// Inverse-distance weighted centroid of the `k` nearest columns.
    Knn {
        /// Number of neighbors (clamped to the cell count, must be >= 1).
        k: usize,
    },
    /// Gaussian likelihood `exp(−‖Y − x_j‖² / (2σ²M))` weighted centroid.
    Probabilistic {
        /// RSS noise scale in dB (must be > 0).
        sigma_db: f64,
    },
}

impl Default for MatchMethod {
    fn default() -> Self {
        MatchMethod::Knn { k: 3 }
    }
}

/// Result of one localization query.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// Best-matching cell index.
    pub cell: usize,
    /// Estimated position (cell center for NN; weighted centroid otherwise).
    pub point: Point,
    /// Euclidean RSS distance to the best-matching fingerprint (dB).
    pub best_distance: f64,
}

/// Localizes a live RSS vector against the database.
pub fn localize(db: &FingerprintDb, y: &[f64], method: MatchMethod) -> Result<MatchResult> {
    localize_among(db, y, method, None)
}

/// Localizes like [`localize`], but restricted to an optional candidate-cell
/// set (used by the geometry gate in [`crate::system::TafLoc::localize`]).
///
/// `candidates = None` considers every cell; an empty candidate list is an
/// error (the caller should fall back to the unrestricted search instead).
pub fn localize_among(
    db: &FingerprintDb,
    y: &[f64],
    method: MatchMethod,
    candidates: Option<&[usize]>,
) -> Result<MatchResult> {
    if y.len() != db.num_links() {
        return Err(TaflocError::DimensionMismatch {
            op: "localize",
            expected: (db.num_links(), 1),
            actual: (y.len(), 1),
        });
    }
    if y.iter().any(|v| !v.is_finite()) {
        return Err(TaflocError::InvalidConfig {
            field: "y",
            reason: "RSS vector contains non-finite values".into(),
        });
    }

    let n = db.num_cells();
    let x = db.rss();
    // Resolve the candidate set.
    let all: Vec<usize>;
    let cells: &[usize] = match candidates {
        Some(c) => {
            if c.is_empty() {
                return Err(TaflocError::InvalidConfig {
                    field: "candidates",
                    reason: "candidate set is empty".into(),
                });
            }
            for &j in c {
                if j >= n {
                    return Err(TaflocError::IndexOutOfBounds {
                        op: "localize_among",
                        index: j,
                        bound: n,
                    });
                }
            }
            c
        }
        None => {
            all = (0..n).collect();
            &all
        }
    };
    // Euclidean RSS distance of Y to every candidate fingerprint column.
    let mut dists: Vec<f64> = vec![f64::INFINITY; n];
    for &j in cells {
        let mut acc = 0.0;
        for (i, &yi) in y.iter().enumerate() {
            let d = yi - x[(i, j)];
            acc += d * d;
        }
        dists[j] = acc.sqrt();
    }
    let (best_cell, best_distance) = cells
        .iter()
        .map(|&j| (j, dists[j]))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
        .expect("candidate set verified non-empty");

    let point = match method {
        MatchMethod::NearestNeighbor => db.grid().cell_center(best_cell),
        MatchMethod::Knn { k } => {
            if k == 0 {
                return Err(TaflocError::InvalidConfig {
                    field: "k",
                    reason: "KNN needs k >= 1".into(),
                });
            }
            let k = k.min(n);
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| dists[a].partial_cmp(&dists[b]).expect("finite distances"));
            // RSS fingerprints alias: two far-apart cells can match almost
            // equally well. Averaging such matches would place the estimate in
            // the empty middle, so only neighbors spatially close to the best
            // match join the centroid.
            let best_center = db.grid().cell_center(best_cell);
            let gate_m = 2.5 * db.grid().cell_size();
            let mut wx = 0.0;
            let mut wy = 0.0;
            let mut wsum = 0.0;
            for &j in order.iter().take(k) {
                let c = db.grid().cell_center(j);
                if c.distance(&best_center) > gate_m {
                    continue;
                }
                let w = 1.0 / (dists[j] + 1e-6);
                wx += w * c.x;
                wy += w * c.y;
                wsum += w;
            }
            Point::new(wx / wsum, wy / wsum)
        }
        MatchMethod::Probabilistic { sigma_db } => {
            if !(sigma_db > 0.0) {
                return Err(TaflocError::InvalidConfig {
                    field: "sigma_db",
                    reason: format!("must be > 0, got {sigma_db}"),
                });
            }
            // Log-likelihoods, stabilized by the best distance. The posterior is
            // restricted to the spatial neighborhood of the MAP cell for the same
            // aliasing reason as in KNN: a far-away cell with a coincidentally
            // similar fingerprint must not drag the centroid across the room.
            let m = db.num_links() as f64;
            let scale = 2.0 * sigma_db * sigma_db * m;
            let best_center = db.grid().cell_center(best_cell);
            let gate_m = 2.5 * db.grid().cell_size();
            let mut wx = 0.0;
            let mut wy = 0.0;
            let mut wsum = 0.0;
            for j in 0..n {
                let c = db.grid().cell_center(j);
                if c.distance(&best_center) > gate_m {
                    continue;
                }
                let ll = -(dists[j] * dists[j] - best_distance * best_distance) / scale;
                let w = ll.exp();
                wx += w * c.x;
                wy += w * c.y;
                wsum += w;
            }
            Point::new(wx / wsum, wy / wsum)
        }
    };

    Ok(MatchResult { cell: best_cell, point, best_distance })
}

#[cfg(test)]
mod tests {
    use super::*;
    use taf_linalg::Matrix;
    use taf_rfsim::geometry::Segment;
    use taf_rfsim::grid::FloorGrid;

    /// 3-link, 2x2-cell database with well-separated fingerprints.
    fn db() -> FingerprintDb {
        let grid = FloorGrid::new(Point::new(0.0, 0.0), 1.0, 2, 2);
        let links = vec![
            Segment::new(Point::new(-1.0, 0.0), Point::new(3.0, 0.0)),
            Segment::new(Point::new(-1.0, 1.0), Point::new(3.0, 1.0)),
            Segment::new(Point::new(0.0, -1.0), Point::new(0.0, 3.0)),
        ];
        let rss = Matrix::from_cols(&[
            &[-40.0, -50.0, -60.0],
            &[-45.0, -52.0, -58.0],
            &[-50.0, -44.0, -61.0],
            &[-55.0, -47.0, -52.0],
        ])
        .unwrap();
        FingerprintDb::new(rss, links, grid).unwrap()
    }

    #[test]
    fn exact_fingerprint_matches_its_cell() {
        let d = db();
        for j in 0..4 {
            let y = d.fingerprint(j).unwrap();
            let r = localize(&d, &y, MatchMethod::NearestNeighbor).unwrap();
            assert_eq!(r.cell, j);
            assert_eq!(r.point, d.grid().cell_center(j));
            assert!(r.best_distance < 1e-12);
        }
    }

    #[test]
    fn noisy_fingerprint_still_matches() {
        let d = db();
        let mut y = d.fingerprint(2).unwrap();
        y[0] += 1.0;
        y[2] -= 0.5;
        let r = localize(&d, &y, MatchMethod::NearestNeighbor).unwrap();
        assert_eq!(r.cell, 2);
        assert!(r.best_distance > 0.0);
    }

    #[test]
    fn knn_interpolates_between_cells() {
        let d = db();
        // Midway between fingerprints 0 and 1 in RSS space.
        let f0 = d.fingerprint(0).unwrap();
        let f1 = d.fingerprint(1).unwrap();
        let y: Vec<f64> = f0.iter().zip(&f1).map(|(a, b)| (a + b) / 2.0).collect();
        let r = localize(&d, &y, MatchMethod::Knn { k: 2 }).unwrap();
        let c0 = d.grid().cell_center(0);
        let c1 = d.grid().cell_center(1);
        // The centroid should lie between the two cell centers.
        assert!(r.point.x > c0.x.min(c1.x) - 1e-9 && r.point.x < c0.x.max(c1.x) + 1e-9);
        assert!((r.point.y - c0.y).abs() < 1e-9);
    }

    #[test]
    fn knn_with_k1_matches_nn_cell() {
        let d = db();
        let y = d.fingerprint(3).unwrap();
        let r = localize(&d, &y, MatchMethod::Knn { k: 1 }).unwrap();
        assert_eq!(r.cell, 3);
        let c = d.grid().cell_center(3);
        assert!((r.point.x - c.x).abs() < 1e-9 && (r.point.y - c.y).abs() < 1e-9);
    }

    #[test]
    fn knn_k_clamped_to_cell_count() {
        let d = db();
        let y = d.fingerprint(0).unwrap();
        assert!(localize(&d, &y, MatchMethod::Knn { k: 100 }).is_ok());
    }

    #[test]
    fn probabilistic_weights_concentrate_with_small_sigma() {
        let d = db();
        let y = d.fingerprint(1).unwrap();
        let tight = localize(&d, &y, MatchMethod::Probabilistic { sigma_db: 0.1 }).unwrap();
        let c1 = d.grid().cell_center(1);
        assert!((tight.point.x - c1.x).abs() < 0.05);
        assert!((tight.point.y - c1.y).abs() < 0.05);
        // Large sigma spreads the estimate toward the global centroid.
        let loose = localize(&d, &y, MatchMethod::Probabilistic { sigma_db: 50.0 }).unwrap();
        let dist_tight = tight.point.distance(&c1);
        let dist_loose = loose.point.distance(&c1);
        assert!(dist_loose > dist_tight);
    }

    #[test]
    fn validates_inputs() {
        let d = db();
        assert!(localize(&d, &[-40.0], MatchMethod::NearestNeighbor).is_err());
        assert!(localize(&d, &[-40.0, f64::NAN, -60.0], MatchMethod::NearestNeighbor).is_err());
        let y = d.fingerprint(0).unwrap();
        assert!(localize(&d, &y, MatchMethod::Knn { k: 0 }).is_err());
        assert!(localize(&d, &y, MatchMethod::Probabilistic { sigma_db: 0.0 }).is_err());
    }
}
