//! Drift monitoring: *when* should the database be updated?
//!
//! The paper updates on a schedule it evaluates post hoc (3 d / 15 d / 45 d /
//! 3 mo). A deployed system can do better: the reference cells are cheap to
//! spot-check, and the discrepancy between a freshly measured reference column
//! and the stored one is an unbiased probe of how far the whole database has
//! drifted (the same structural properties that make reconstruction work make
//! the reference columns representative). This module implements that
//! "time-adaptive" scheduling loop — measure a couple of reference cells,
//! estimate the current database error, and recommend an update when it
//! crosses a threshold.

use crate::error::TaflocError;
use crate::Result;
use serde::{Deserialize, Serialize};
use taf_linalg::Matrix;

/// Monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Estimated database error (dB) above which an update is recommended.
    pub error_threshold_db: f64,
    /// Minimum days between recommended updates (hysteresis).
    pub min_interval_days: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig { error_threshold_db: 3.0, min_interval_days: 2.0 }
    }
}

/// The monitor's verdict after a spot check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Recommendation {
    /// The database still matches reality well enough.
    Healthy {
        /// Estimated mean absolute database error in dB.
        estimated_error_db: f64,
    },
    /// Time to run a reference-location update.
    UpdateRecommended {
        /// Estimated mean absolute database error in dB.
        estimated_error_db: f64,
    },
    /// Error is high but the minimum interval since the last update has not
    /// elapsed yet (avoids thrashing on a noisy spot check).
    Cooldown {
        /// Estimated mean absolute database error in dB.
        estimated_error_db: f64,
        /// Days remaining until an update may be recommended again.
        days_remaining: f64,
    },
}

impl Recommendation {
    /// The error estimate carried by any variant.
    pub fn estimated_error_db(&self) -> f64 {
        match *self {
            Recommendation::Healthy { estimated_error_db }
            | Recommendation::UpdateRecommended { estimated_error_db }
            | Recommendation::Cooldown { estimated_error_db, .. } => estimated_error_db,
        }
    }
}

/// Tracks database staleness from cheap reference-cell spot checks.
///
/// ```
/// use taf_linalg::Matrix;
/// use tafloc_core::monitor::{DriftMonitor, MonitorConfig, Recommendation};
/// let stored = Matrix::filled(4, 2, -50.0); // columns at the 2 monitored cells
/// let m = DriftMonitor::new(stored, vec![3, 7], 0.0, MonitorConfig::default()).unwrap();
/// // A fresh spot check that drifted 5 dB triggers an update recommendation.
/// let fresh = Matrix::filled(4, 2, -55.0);
/// assert!(matches!(m.check(10.0, &fresh).unwrap(), Recommendation::UpdateRecommended { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: MonitorConfig,
    /// Stored fingerprint columns at the monitored reference cells (`M x k`).
    stored: Matrix,
    /// Which reference cells the stored columns correspond to.
    cells: Vec<usize>,
    /// Day of the last completed update.
    last_update_day: f64,
}

impl DriftMonitor {
    /// Creates a monitor from the database columns at the chosen spot-check
    /// cells (a subset of the reference cells), as of the last update at
    /// `last_update_day`.
    pub fn new(
        stored_columns: Matrix,
        cells: Vec<usize>,
        last_update_day: f64,
        config: MonitorConfig,
    ) -> Result<Self> {
        if cells.is_empty() || stored_columns.cols() != cells.len() {
            return Err(TaflocError::InvalidConfig {
                field: "cells",
                reason: format!(
                    "need one stored column per monitored cell ({} columns, {} cells)",
                    stored_columns.cols(),
                    cells.len()
                ),
            });
        }
        if !(config.error_threshold_db > 0.0) || config.min_interval_days < 0.0 {
            return Err(TaflocError::InvalidConfig {
                field: "monitor",
                reason: "threshold must be > 0 and interval >= 0".into(),
            });
        }
        Ok(DriftMonitor { config, stored: stored_columns, cells, last_update_day })
    }

    /// The monitored cells.
    pub fn cells(&self) -> &[usize] {
        &self.cells
    }

    /// The stored comparison baseline (`M x k`, one column per monitored
    /// cell). Exposed so the serving layer can persist monitor state.
    pub fn stored(&self) -> &Matrix {
        &self.stored
    }

    /// Day of the last completed update (the cooldown anchor).
    pub fn last_update_day(&self) -> f64 {
        self.last_update_day
    }

    /// The thresholds in force.
    pub fn config(&self) -> MonitorConfig {
        self.config
    }

    /// Feeds a spot check: freshly measured columns at the monitored cells
    /// (`M x k`, same order), on day `day`. Returns the recommendation.
    pub fn check(&self, day: f64, fresh_columns: &Matrix) -> Result<Recommendation> {
        if fresh_columns.shape() != self.stored.shape() {
            return Err(TaflocError::DimensionMismatch {
                op: "DriftMonitor::check",
                expected: self.stored.shape(),
                actual: fresh_columns.shape(),
            });
        }
        let estimated_error_db = self.stored.sub(fresh_columns)?.map(f64::abs).mean();
        if estimated_error_db <= self.config.error_threshold_db {
            return Ok(Recommendation::Healthy { estimated_error_db });
        }
        let elapsed = day - self.last_update_day;
        if elapsed < self.config.min_interval_days {
            return Ok(Recommendation::Cooldown {
                estimated_error_db,
                days_remaining: self.config.min_interval_days - elapsed,
            });
        }
        Ok(Recommendation::UpdateRecommended { estimated_error_db })
    }

    /// Records that an update completed on `day` with the given refreshed
    /// columns (the new comparison baseline).
    pub fn record_update(&mut self, day: f64, refreshed_columns: Matrix) -> Result<()> {
        if refreshed_columns.shape() != self.stored.shape() {
            return Err(TaflocError::DimensionMismatch {
                op: "DriftMonitor::record_update",
                expected: self.stored.shape(),
                actual: refreshed_columns.shape(),
            });
        }
        self.stored = refreshed_columns;
        self.last_update_day = day;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> DriftMonitor {
        let stored = Matrix::filled(4, 2, -50.0);
        DriftMonitor::new(stored, vec![3, 7], 0.0, MonitorConfig::default()).unwrap()
    }

    #[test]
    fn healthy_when_columns_match() {
        let m = monitor();
        let fresh = Matrix::filled(4, 2, -50.5);
        let r = m.check(5.0, &fresh).unwrap();
        assert!(matches!(r, Recommendation::Healthy { .. }));
        assert!((r.estimated_error_db() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recommends_update_past_threshold() {
        let m = monitor();
        let fresh = Matrix::filled(4, 2, -55.0);
        let r = m.check(5.0, &fresh).unwrap();
        assert!(matches!(r, Recommendation::UpdateRecommended { .. }));
        assert!((r.estimated_error_db() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cooldown_respects_min_interval() {
        let m = monitor();
        let fresh = Matrix::filled(4, 2, -55.0);
        // Last update at day 0, min interval 2: day 1 is inside the cooldown.
        let r = m.check(1.0, &fresh).unwrap();
        match r {
            Recommendation::Cooldown { days_remaining, .. } => {
                assert!((days_remaining - 1.0).abs() < 1e-12);
            }
            other => panic!("expected cooldown, got {other:?}"),
        }
    }

    #[test]
    fn record_update_resets_baseline_and_clock() {
        let mut m = monitor();
        m.record_update(10.0, Matrix::filled(4, 2, -55.0)).unwrap();
        // Fresh data equals the new baseline: healthy again.
        let r = m.check(10.5, &Matrix::filled(4, 2, -55.0)).unwrap();
        assert!(matches!(r, Recommendation::Healthy { .. }));
        // Large error shortly after the update: cooldown, not recommendation.
        let r = m.check(11.0, &Matrix::filled(4, 2, -65.0)).unwrap();
        assert!(matches!(r, Recommendation::Cooldown { .. }));
        assert!(m.record_update(11.0, Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn validates_construction_and_input() {
        assert!(
            DriftMonitor::new(Matrix::zeros(4, 2), vec![1], 0.0, MonitorConfig::default()).is_err()
        );
        assert!(
            DriftMonitor::new(Matrix::zeros(4, 0), vec![], 0.0, MonitorConfig::default()).is_err()
        );
        let bad = MonitorConfig { error_threshold_db: 0.0, ..Default::default() };
        assert!(DriftMonitor::new(Matrix::zeros(4, 1), vec![0], 0.0, bad).is_err());
        let m = monitor();
        assert!(m.check(1.0, &Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn spot_check_tracks_real_drift() {
        // Against the simulator: the spot-check estimate must grow with the
        // true database error as the world drifts.
        use taf_rfsim::{campaign, World, WorldConfig};
        let world = World::new(WorldConfig::paper_default(), 77);
        let x0 = campaign::full_calibration(&world, 0.0, 50);
        let cells = vec![10, 50, 90];
        let stored = x0.select_cols(&cells).unwrap();
        let monitor =
            DriftMonitor::new(stored, cells.clone(), 0.0, MonitorConfig::default()).unwrap();

        let mut prev = 0.0;
        for &t in &[5.0, 45.0, 90.0] {
            let fresh = campaign::measure_columns(&world, t, &cells, 50);
            let est = monitor.check(t, &fresh).unwrap().estimated_error_db();
            assert!(est > prev, "estimate must grow with drift: {est:.2} at day {t}");
            prev = est;
        }
        // And the day-90 estimate is in the ballpark of the true mean error.
        let truth = world.fingerprint_truth(90.0);
        let true_err = x0.sub(&truth).unwrap().map(f64::abs).mean();
        let fresh = campaign::measure_columns(&world, 90.0, &cells, 50);
        let est = monitor.check(90.0, &fresh).unwrap().estimated_error_db();
        assert!(
            (est - true_err).abs() / true_err < 0.6,
            "spot-check {est:.2} dB vs true {true_err:.2} dB"
        );
    }
}
