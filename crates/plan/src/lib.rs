//! # taf-plan
//!
//! Uncertainty-driven adaptive sensing: decide *where to spend scarce
//! measurements* when refreshing a fingerprint database.
//!
//! TafLoc's refresh path re-surveys a handful of reference cells and
//! reconstructs the rest (LoLi-IR). This crate closes the remaining cost
//! loop: instead of re-surveying every reference cell on every refresh, a
//! [`Planner`] reads the reconstruction's own per-cell confidence (from
//! `tafloc_core`'s `ReconstructionDiagnostics`) plus the live/stale/dead
//! link census (from `tafloc-ingest`) and emits an explicit
//! [`MeasurementPlan`] under a hard link-measurement budget:
//!
//! * [`PlanPolicy::UncertaintyGreedy`] — re-survey the cells the last
//!   reconstruction was least sure about, staleness-tie-broken;
//! * [`PlanPolicy::FixedSchedule`] — round-robin rotation, the non-adaptive
//!   baseline the greedy policy is measured against;
//! * [`HistoryWindow`] — a bounded (reference slot × epoch) ring of past
//!   survey columns that seeds the entries a budgeted plan skips, so a
//!   partial survey still yields a complete reference matrix with an honest
//!   per-entry observation mask.
//!
//! The crate is deliberately small and dependency-light: plans are pure
//! deterministic functions of their inputs (no clocks, no RNG), which is
//! what lets the testkit pin cost-vs-accuracy goldens byte-for-byte.
//!
//! ## Quick tour
//!
//! ```
//! use taf_plan::{PlanInputs, PlanPolicy, Planner, PlannerConfig};
//! use tafloc_ingest::LinkStatus;
//!
//! // 4 reference cells over 3 live links; budget = half a full survey.
//! let planner = Planner::new(PlannerConfig::new(6, PlanPolicy::UncertaintyGreedy)).unwrap();
//! let health = vec![LinkStatus::Live; 3];
//! let confidence = [0.9, 0.2, 0.85, 0.4]; // cells 1 and 3 look shaky
//! let plan = planner
//!     .plan(&PlanInputs {
//!         epoch: 7,
//!         n_refs: 4,
//!         link_health: &health,
//!         confidence: Some(&confidence),
//!         last_surveyed: None,
//!     })
//!     .unwrap();
//! assert_eq!(plan.planned_cost, 6);
//! assert!(plan.is_planned(1) && plan.is_planned(3));
//! assert_eq!(plan.full_cost, 12); // vs 12 for the full survey
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod history;
mod planner;

pub use error::{PlanError, Result};
pub use history::{HistoryWindow, SurveyRecord};
pub use planner::{MeasurementPlan, PlanEntry, PlanInputs, PlanPolicy, Planner, PlannerConfig};
