//! Bounded survey history.
//!
//! A budgeted refresh only re-measures part of the reference matrix; the
//! rest must come from somewhere. [`HistoryWindow`] keeps a bounded
//! (reference slot × epoch) ring of past survey columns so the serving plane
//! can seed every unplanned entry from the newest value it has actually
//! seen, while the per-entry `fresh` flags record which values were measured
//! this cycle and which are carried forward.

use std::collections::VecDeque;

use crate::error::{PlanError, Result};

/// One reference-cell survey column as retained in history.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyRecord {
    /// Refresh epoch the column was captured in.
    pub epoch: u64,
    /// Per-link RSS values (dBm), length `n_links`.
    pub y: Vec<f64>,
    /// Per-link provenance: `true` where `y` came from a measurement taken
    /// in `epoch`, `false` where it was carried forward from older history.
    pub fresh: Vec<bool>,
}

/// Bounded per-reference-slot ring of past surveys.
#[derive(Debug, Clone)]
pub struct HistoryWindow {
    n_links: usize,
    depth: usize,
    rings: Vec<VecDeque<SurveyRecord>>,
}

impl HistoryWindow {
    /// Empty history for `n_slots` reference slots over `n_links` links,
    /// retaining at most `depth` surveys per slot.
    pub fn new(n_slots: usize, n_links: usize, depth: usize) -> Result<Self> {
        if depth == 0 {
            return Err(PlanError::InvalidConfig {
                field: "depth",
                reason: "must be at least 1".into(),
            });
        }
        Ok(HistoryWindow { n_links, depth, rings: vec![VecDeque::new(); n_slots] })
    }

    /// Number of reference slots tracked.
    pub fn n_slots(&self) -> usize {
        self.rings.len()
    }

    /// Number of links per survey column.
    pub fn n_links(&self) -> usize {
        self.n_links
    }

    /// Maximum surveys retained per slot.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Retained surveys for `slot`, oldest first. Persistence walks this and
    /// restoration replays the records through [`HistoryWindow::record`] in
    /// the same order, so a round trip preserves ring order exactly.
    pub fn records(&self, slot: usize) -> impl Iterator<Item = &SurveyRecord> {
        self.rings.get(slot).into_iter().flatten()
    }

    /// Appends a survey for `slot`, evicting the oldest once `depth` is
    /// exceeded.
    pub fn record(&mut self, slot: usize, record: SurveyRecord) -> Result<()> {
        if slot >= self.rings.len() {
            return Err(PlanError::DimensionMismatch {
                what: "history slot",
                expected: self.rings.len(),
                actual: slot,
            });
        }
        if record.y.len() != self.n_links || record.fresh.len() != self.n_links {
            return Err(PlanError::DimensionMismatch {
                what: "survey record",
                expected: self.n_links,
                actual: record.y.len().max(record.fresh.len()),
            });
        }
        let ring = &mut self.rings[slot];
        ring.push_back(record);
        while ring.len() > self.depth {
            ring.pop_front();
        }
        Ok(())
    }

    /// Newest retained survey for `slot`, if any.
    pub fn latest(&self, slot: usize) -> Option<&SurveyRecord> {
        self.rings.get(slot).and_then(|r| r.back())
    }

    /// Epoch of the newest retained survey for `slot`, if any.
    pub fn last_epoch(&self, slot: usize) -> Option<u64> {
        self.latest(slot).map(|r| r.epoch)
    }

    /// Per-slot last-surveyed epochs for [`PlanInputs::last_surveyed`],
    /// defaulting empty slots to epoch 0.
    ///
    /// [`PlanInputs::last_surveyed`]: crate::PlanInputs::last_surveyed
    pub fn last_surveyed(&self) -> Vec<u64> {
        (0..self.rings.len()).map(|s| self.last_epoch(s).unwrap_or(0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: u64, value: f64) -> SurveyRecord {
        SurveyRecord { epoch, y: vec![value; 3], fresh: vec![true; 3] }
    }

    #[test]
    fn ring_is_bounded_and_latest_wins() {
        let mut h = HistoryWindow::new(2, 3, 2).unwrap();
        assert!(h.latest(0).is_none());
        for e in 1..=5 {
            h.record(0, rec(e, -40.0 - e as f64)).unwrap();
        }
        assert_eq!(h.last_epoch(0), Some(5));
        assert_eq!(h.latest(0).unwrap().y, vec![-45.0; 3]);
        assert_eq!(h.rings[0].len(), 2, "depth bound must hold");
        assert_eq!(h.last_surveyed(), vec![5, 0]);
    }

    #[test]
    fn shape_violations_are_rejected() {
        let mut h = HistoryWindow::new(1, 3, 1).unwrap();
        assert!(h.record(1, rec(0, -40.0)).is_err(), "slot out of range");
        let short = SurveyRecord { epoch: 0, y: vec![-40.0; 2], fresh: vec![true; 2] };
        assert!(h.record(0, short).is_err(), "wrong column length");
        assert!(HistoryWindow::new(1, 3, 0).is_err(), "zero depth");
    }
}
