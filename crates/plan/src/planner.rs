//! Budgeted measurement planning.
//!
//! A [`Planner`] turns "how sure is the reconstruction about each reference
//! cell" plus "which links are actually alive" into an explicit
//! [`MeasurementPlan`]: the set of (reference slot, link) pairs worth
//! re-surveying in the next refresh, under a hard per-refresh budget counted
//! in link-measurements.

use std::cmp::Ordering;
use std::str::FromStr;

use serde::{Deserialize, Serialize};
use tafloc_ingest::LinkStatus;

use crate::error::{PlanError, Result};

/// How the planner spends its measurement budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum PlanPolicy {
    /// Spend the budget on the reference cells the reconstruction is least
    /// confident about (lowest confidence first; ties broken by survey
    /// staleness, then slot index).
    UncertaintyGreedy,
    /// Ignore confidence and rotate through the reference cells on a fixed
    /// round-robin schedule — the non-adaptive baseline.
    FixedSchedule,
}

impl PlanPolicy {
    /// Stable wire/CLI name of the policy.
    pub fn as_str(&self) -> &'static str {
        match self {
            PlanPolicy::UncertaintyGreedy => "uncertainty-greedy",
            PlanPolicy::FixedSchedule => "fixed-schedule",
        }
    }
}

impl std::fmt::Display for PlanPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for PlanPolicy {
    type Err = PlanError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "uncertainty" | "uncertainty-greedy" => Ok(PlanPolicy::UncertaintyGreedy),
            "fixed" | "fixed-schedule" => Ok(PlanPolicy::FixedSchedule),
            other => Err(PlanError::InvalidConfig {
                field: "policy",
                reason: format!(
                    "unknown policy `{other}` (expected `uncertainty-greedy` or `fixed-schedule`)"
                ),
            }),
        }
    }
}

/// Static planner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Per-refresh measurement budget in link-measurements (one re-surveyed
    /// (reference cell, link) pair costs one unit). A full survey of `n`
    /// reference cells over `m` links costs `n * m`.
    pub budget: usize,
    /// Spending policy.
    pub policy: PlanPolicy,
    /// How many past surveys the serving plane retains per reference slot to
    /// fill in the entries a budgeted plan skips.
    pub history_depth: usize,
}

impl PlannerConfig {
    /// Config with the default history depth.
    pub fn new(budget: usize, policy: PlanPolicy) -> Self {
        PlannerConfig { budget, policy, history_depth: 4 }
    }
}

/// Everything the planner looks at for one refresh cycle.
#[derive(Debug, Clone, Copy)]
pub struct PlanInputs<'a> {
    /// Refresh epoch the plan is for (drives the fixed-schedule rotation).
    pub epoch: u64,
    /// Number of reference slots (columns of the fresh-reference matrix).
    pub n_refs: usize,
    /// Current health of every link, indexed by link id. Dead links cannot
    /// produce a measurement and are excluded from the budget — unless every
    /// link is dead, in which case the census is treated as uninformative
    /// and all links stay measurable.
    pub link_health: &'a [LinkStatus],
    /// Per-reference-slot reconstruction confidence in `[0, 1]` from the last
    /// refresh's diagnostics; `None` on the first refresh, before any
    /// diagnostics exist.
    pub confidence: Option<&'a [f64]>,
    /// Epoch each reference slot was last actually surveyed, for staleness
    /// tie-breaking; `None` when the serving plane has no history yet.
    pub last_surveyed: Option<&'a [u64]>,
}

/// One planned reference-cell survey: which links to measure at that cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanEntry {
    /// Reference slot (column index into the fresh-reference matrix).
    pub ref_slot: usize,
    /// Link ids to measure at this cell, ascending.
    pub links: Vec<usize>,
}

/// An explicit budgeted measurement plan for one refresh cycle.
///
/// Entries are sorted by `ref_slot`; slots absent from `entries` are not
/// re-surveyed this cycle and must be filled from survey history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementPlan {
    /// Epoch this plan targets.
    pub epoch: u64,
    /// Policy that produced the plan.
    pub policy: PlanPolicy,
    /// Planned surveys, sorted by reference slot.
    pub entries: Vec<PlanEntry>,
    /// Total planned link-measurements (sum of `entries[..].links.len()`).
    pub planned_cost: usize,
    /// Cost of a full survey (`n_refs * n_links`), the baseline this plan is
    /// saving against.
    pub full_cost: usize,
}

impl MeasurementPlan {
    /// Whether `ref_slot` is scheduled for any measurement this cycle.
    pub fn is_planned(&self, ref_slot: usize) -> bool {
        self.links_for(ref_slot).is_some()
    }

    /// The links planned at `ref_slot`, if any.
    pub fn links_for(&self, ref_slot: usize) -> Option<&[usize]> {
        self.entries
            .binary_search_by_key(&ref_slot, |e| e.ref_slot)
            .ok()
            .map(|i| self.entries[i].links.as_slice())
    }
}

/// Budgeted measurement planner.
#[derive(Debug, Clone)]
pub struct Planner {
    config: PlannerConfig,
}

impl Planner {
    /// Builds a planner after validating the config.
    pub fn new(config: PlannerConfig) -> Result<Self> {
        if config.history_depth == 0 {
            return Err(PlanError::InvalidConfig {
                field: "history_depth",
                reason: "must be at least 1".into(),
            });
        }
        Ok(Planner { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Builds the measurement plan for one refresh cycle.
    ///
    /// Both policies spend the budget in whole reference cells (every
    /// measurable link at the chosen cell), with at most one partial cell
    /// when the budget does not divide evenly. Cells are visited in policy
    /// order; within a cell, links are taken in ascending id order, so the
    /// plan is a pure deterministic function of its inputs.
    pub fn plan(&self, inputs: &PlanInputs<'_>) -> Result<MeasurementPlan> {
        let PlanInputs { epoch, n_refs, link_health, confidence, last_surveyed } = *inputs;
        if n_refs == 0 {
            return Err(PlanError::InvalidConfig {
                field: "n_refs",
                reason: "must be at least 1".into(),
            });
        }
        if link_health.is_empty() {
            return Err(PlanError::InvalidConfig {
                field: "link_health",
                reason: "must cover at least 1 link".into(),
            });
        }
        if let Some(c) = confidence {
            if c.len() != n_refs {
                return Err(PlanError::DimensionMismatch {
                    what: "confidence",
                    expected: n_refs,
                    actual: c.len(),
                });
            }
            if let Some(slot) = c.iter().position(|v| !v.is_finite()) {
                return Err(PlanError::NonFiniteConfidence { slot });
            }
        }
        if let Some(l) = last_surveyed {
            if l.len() != n_refs {
                return Err(PlanError::DimensionMismatch {
                    what: "last_surveyed",
                    expected: n_refs,
                    actual: l.len(),
                });
            }
        }

        // Dead links cannot return a measurement; spend the budget on the
        // rest. An all-dead census carries no information (e.g. ingest has
        // not seen traffic yet), so fall back to every link.
        let mut measurable: Vec<usize> =
            (0..link_health.len()).filter(|&l| link_health[l] != LinkStatus::Dead).collect();
        if measurable.is_empty() {
            measurable = (0..link_health.len()).collect();
        }
        let links_per_cell = measurable.len();

        let order = match self.config.policy {
            PlanPolicy::UncertaintyGreedy => {
                let conf = |s: usize| confidence.map_or(0.0, |c| c[s]);
                let last = |s: usize| last_surveyed.map_or(0, |l| l[s]);
                let mut order: Vec<usize> = (0..n_refs).collect();
                order.sort_by(|&a, &b| {
                    conf(a)
                        .partial_cmp(&conf(b))
                        .unwrap_or(Ordering::Equal)
                        .then_with(|| last(a).cmp(&last(b)))
                        .then_with(|| a.cmp(&b))
                });
                order
            }
            PlanPolicy::FixedSchedule => {
                let cells_per_epoch =
                    (self.config.budget / links_per_cell).clamp(1, n_refs) as u128;
                let start = ((epoch as u128 * cells_per_epoch) % n_refs as u128) as usize;
                (0..n_refs).map(|k| (start + k) % n_refs).collect()
            }
        };

        let mut entries = Vec::new();
        let mut remaining = self.config.budget;
        for slot in order {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(links_per_cell);
            entries.push(PlanEntry { ref_slot: slot, links: measurable[..take].to_vec() });
            remaining -= take;
        }
        entries.sort_by_key(|e| e.ref_slot);
        let planned_cost = entries.iter().map(|e| e.links.len()).sum();

        Ok(MeasurementPlan {
            epoch,
            policy: self.config.policy,
            entries,
            planned_cost,
            full_cost: n_refs * link_health.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(m: usize) -> Vec<LinkStatus> {
        vec![LinkStatus::Live; m]
    }

    fn planner(budget: usize, policy: PlanPolicy) -> Planner {
        Planner::new(PlannerConfig::new(budget, policy)).unwrap()
    }

    #[test]
    fn greedy_targets_the_least_confident_cells_first() {
        let health = live(4);
        let conf = [0.9, 0.2, 0.8, 0.1];
        let p = planner(8, PlanPolicy::UncertaintyGreedy);
        let plan = p
            .plan(&PlanInputs {
                epoch: 5,
                n_refs: 4,
                link_health: &health,
                confidence: Some(&conf),
                last_surveyed: None,
            })
            .unwrap();
        let slots: Vec<usize> = plan.entries.iter().map(|e| e.ref_slot).collect();
        assert_eq!(slots, vec![1, 3], "budget of 2 cells must go to the two weakest");
        assert_eq!(plan.planned_cost, 8);
        assert_eq!(plan.full_cost, 16);
        assert!(plan.is_planned(3) && !plan.is_planned(0));
        assert_eq!(plan.links_for(1), Some(&[0, 1, 2, 3][..]));
    }

    #[test]
    fn staleness_breaks_confidence_ties() {
        let health = live(2);
        let conf = [0.5, 0.5];
        let last = [7, 3];
        let p = planner(2, PlanPolicy::UncertaintyGreedy);
        let plan = p
            .plan(&PlanInputs {
                epoch: 8,
                n_refs: 2,
                link_health: &health,
                confidence: Some(&conf),
                last_surveyed: Some(&last),
            })
            .unwrap();
        assert_eq!(plan.entries.len(), 1);
        assert_eq!(plan.entries[0].ref_slot, 1, "the staler slot wins the tie");
    }

    #[test]
    fn fixed_schedule_rotates_with_the_epoch() {
        let health = live(3);
        let p = planner(3, PlanPolicy::FixedSchedule);
        let slot_at = |epoch| {
            let plan = p
                .plan(&PlanInputs {
                    epoch,
                    n_refs: 5,
                    link_health: &health,
                    confidence: None,
                    last_surveyed: None,
                })
                .unwrap();
            assert_eq!(plan.planned_cost, 3);
            plan.entries[0].ref_slot
        };
        // One whole cell per epoch: the rotation visits every slot in turn.
        let visited: Vec<usize> = (0..5).map(slot_at).collect();
        let mut sorted = visited.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert_eq!(slot_at(0), slot_at(5), "rotation period is n_refs");
    }

    #[test]
    fn dead_links_are_excluded_unless_all_are_dead() {
        let mut health = live(4);
        health[2] = LinkStatus::Dead;
        let p = planner(100, PlanPolicy::UncertaintyGreedy);
        let plan = p
            .plan(&PlanInputs {
                epoch: 0,
                n_refs: 2,
                link_health: &health,
                confidence: None,
                last_surveyed: None,
            })
            .unwrap();
        for e in &plan.entries {
            assert_eq!(e.links, vec![0, 1, 3], "dead link 2 must not be planned");
        }
        assert_eq!(plan.planned_cost, 6);
        assert_eq!(plan.full_cost, 8, "the savings baseline stays the full survey");

        let all_dead = vec![LinkStatus::Dead; 4];
        let plan = p
            .plan(&PlanInputs {
                epoch: 0,
                n_refs: 2,
                link_health: &all_dead,
                confidence: None,
                last_surveyed: None,
            })
            .unwrap();
        assert_eq!(plan.planned_cost, 8, "an all-dead census falls back to every link");
    }

    #[test]
    fn partial_budget_produces_one_partial_cell() {
        let health = live(4);
        let conf = [0.1, 0.9];
        let p = planner(6, PlanPolicy::UncertaintyGreedy);
        let plan = p
            .plan(&PlanInputs {
                epoch: 0,
                n_refs: 2,
                link_health: &health,
                confidence: Some(&conf),
                last_surveyed: None,
            })
            .unwrap();
        assert_eq!(plan.links_for(0).unwrap().len(), 4);
        assert_eq!(plan.links_for(1).unwrap().len(), 2);
        assert_eq!(plan.planned_cost, 6);
    }

    #[test]
    fn zero_budget_plans_nothing() {
        let health = live(3);
        let p = planner(0, PlanPolicy::UncertaintyGreedy);
        let plan = p
            .plan(&PlanInputs {
                epoch: 1,
                n_refs: 3,
                link_health: &health,
                confidence: None,
                last_surveyed: None,
            })
            .unwrap();
        assert!(plan.entries.is_empty());
        assert_eq!(plan.planned_cost, 0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let health = live(2);
        let p = planner(4, PlanPolicy::UncertaintyGreedy);
        let base = PlanInputs {
            epoch: 0,
            n_refs: 2,
            link_health: &health,
            confidence: None,
            last_surveyed: None,
        };
        assert!(p.plan(&PlanInputs { n_refs: 0, ..base }).is_err());
        assert!(p.plan(&PlanInputs { link_health: &[], ..base }).is_err());
        assert!(p.plan(&PlanInputs { confidence: Some(&[0.5]), ..base }).is_err());
        let nan = [0.5, f64::NAN];
        assert!(p.plan(&PlanInputs { confidence: Some(&nan), ..base }).is_err());
        assert!(p.plan(&PlanInputs { last_surveyed: Some(&[1]), ..base }).is_err());
        assert!(Planner::new(PlannerConfig {
            history_depth: 0,
            ..PlannerConfig::new(1, PlanPolicy::FixedSchedule)
        })
        .is_err());
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in [PlanPolicy::UncertaintyGreedy, PlanPolicy::FixedSchedule] {
            assert_eq!(policy.as_str().parse::<PlanPolicy>().unwrap(), policy);
        }
        assert_eq!("uncertainty".parse::<PlanPolicy>().unwrap(), PlanPolicy::UncertaintyGreedy);
        assert_eq!("fixed".parse::<PlanPolicy>().unwrap(), PlanPolicy::FixedSchedule);
        assert!("adaptive".parse::<PlanPolicy>().is_err());
    }

    #[test]
    fn plans_serialize_deterministically() {
        let health = live(3);
        let p = planner(5, PlanPolicy::UncertaintyGreedy);
        let inputs = PlanInputs {
            epoch: 2,
            n_refs: 3,
            link_health: &health,
            confidence: Some(&[0.3, 0.1, 0.9]),
            last_surveyed: Some(&[1, 1, 2]),
        };
        let a = serde_json::to_string(&p.plan(&inputs).unwrap()).unwrap();
        let b = serde_json::to_string(&p.plan(&inputs).unwrap()).unwrap();
        assert_eq!(a, b);
        let back: MeasurementPlan = serde_json::from_str(&a).unwrap();
        assert_eq!(back, p.plan(&inputs).unwrap());
    }
}
