//! Error type shared across the planning crate.

use std::fmt;

/// Everything that can go wrong while building a measurement plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A configuration field is out of range.
    InvalidConfig {
        /// Which field was rejected.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// An input slice disagrees with the declared problem size.
    DimensionMismatch {
        /// Which input was rejected.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A confidence score was NaN or infinite.
    NonFiniteConfidence {
        /// Reference slot holding the bad score.
        slot: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::InvalidConfig { field, reason } => {
                write!(f, "invalid plan config `{field}`: {reason}")
            }
            PlanError::DimensionMismatch { what, expected, actual } => {
                write!(f, "{what}: expected length {expected}, got {actual}")
            }
            PlanError::NonFiniteConfidence { slot } => {
                write!(f, "confidence for reference slot {slot} is not finite")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PlanError>;
