//! Property-based tests of the planner invariants the serving plane and
//! testkit rely on:
//!
//! * a plan never spends more than its budget,
//! * when the budget affords at least one whole cell, every live link is
//!   measured at least once,
//! * planning is a pure function — the serialized plan is byte-identical
//!   across repeated evaluation and across thread counts for the same seed.

use std::thread;

use proptest::prelude::*;
use taf_plan::{MeasurementPlan, PlanInputs, PlanPolicy, Planner, PlannerConfig};
use tafloc_ingest::LinkStatus;

/// Strategy: a link-health census with a mix of live/stale/dead links.
fn census() -> impl Strategy<Value = Vec<LinkStatus>> {
    proptest::collection::vec(0usize..3, 1..12).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                0 => LinkStatus::Live,
                1 => LinkStatus::Stale,
                _ => LinkStatus::Dead,
            })
            .collect()
    })
}

/// Strategy: full planner inputs plus a config, sized so that every branch
/// (zero budget, partial cells, over-budget, both policies) is exercised.
/// Confidence/staleness vectors are drawn at the maximum slot count and
/// truncated to `n_refs`.
#[allow(clippy::type_complexity)]
fn scenario() -> impl Strategy<Value = (Vec<LinkStatus>, Vec<f64>, Vec<u64>, u64, usize, usize)> {
    (
        census(),
        (1usize..9, 0usize..80, 0u64..20, 0usize..2),
        (proptest::collection::vec(0.0..1.0f64, 8..9), proptest::collection::vec(0u64..10, 8..9)),
    )
        .prop_map(|(health, (n_refs, budget, epoch, policy), (mut conf, mut last))| {
            conf.truncate(n_refs);
            last.truncate(n_refs);
            (health, conf, last, epoch, budget, policy)
        })
}

fn planner_for(budget: usize, policy_code: usize) -> Planner {
    let policy =
        if policy_code == 0 { PlanPolicy::UncertaintyGreedy } else { PlanPolicy::FixedSchedule };
    Planner::new(PlannerConfig::new(budget, policy)).unwrap()
}

fn plan_of(
    health: &[LinkStatus],
    conf: &[f64],
    last: &[u64],
    epoch: u64,
    budget: usize,
    policy: usize,
) -> MeasurementPlan {
    planner_for(budget, policy)
        .plan(&PlanInputs {
            epoch,
            n_refs: conf.len(),
            link_health: health,
            confidence: Some(conf),
            last_surveyed: Some(last),
        })
        .unwrap()
}

proptest! {
    /// The budget is a hard ceiling: total planned link-measurements never
    /// exceed it, the advertised `planned_cost` matches the entries, and no
    /// slot is planned twice.
    #[test]
    fn plan_never_exceeds_budget(
        (health, conf, last, epoch, budget, policy) in scenario()
    ) {
        let plan = plan_of(&health, &conf, &last, epoch, budget, policy);
        let spent: usize = plan.entries.iter().map(|e| e.links.len()).sum();
        prop_assert_eq!(spent, plan.planned_cost);
        prop_assert!(spent <= budget, "spent {} over budget {}", spent, budget);
        prop_assert_eq!(plan.full_cost, conf.len() * health.len());
        for pair in plan.entries.windows(2) {
            prop_assert!(pair[0].ref_slot < pair[1].ref_slot, "entries sorted, no duplicates");
        }
        for e in &plan.entries {
            prop_assert!(e.ref_slot < conf.len());
            for pair in e.links.windows(2) {
                prop_assert!(pair[0] < pair[1], "links sorted, no duplicates");
            }
            for &l in &e.links {
                prop_assert!(l < health.len());
            }
        }
    }

    /// Whenever the budget affords at least one whole cell, the plan
    /// measures every live link at least once (the first planned cell alone
    /// covers them), regardless of policy.
    #[test]
    fn live_links_are_covered_when_budget_permits(
        (health, conf, last, epoch, _budget, policy) in scenario()
    ) {
        let measurable = health.iter().filter(|&&s| s != LinkStatus::Dead).count();
        prop_assume!(measurable > 0);
        let plan = plan_of(&health, &conf, &last, epoch, measurable, policy);
        let mut covered = vec![false; health.len()];
        for e in &plan.entries {
            for &l in &e.links {
                covered[l] = true;
            }
        }
        for (l, &status) in health.iter().enumerate() {
            if status == LinkStatus::Live {
                prop_assert!(covered[l], "live link {} not covered by {:?}", l, plan);
            }
        }
    }

    /// Planning is deterministic and thread-count-independent: the same
    /// inputs serialize to byte-identical JSON whether planned once, twice,
    /// or concurrently from many threads.
    #[test]
    fn plans_are_byte_identical_across_thread_counts(
        (health, conf, last, epoch, budget, policy) in scenario()
    ) {
        let reference =
            serde_json::to_string(&plan_of(&health, &conf, &last, epoch, budget, policy)).unwrap();
        for threads in [1usize, 4] {
            let outputs: Vec<String> = thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        s.spawn(|| {
                            serde_json::to_string(
                                &plan_of(&health, &conf, &last, epoch, budget, policy),
                            )
                            .unwrap()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for out in outputs {
                prop_assert_eq!(&out, &reference);
            }
        }
    }
}
