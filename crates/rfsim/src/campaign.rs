//! Measurement campaigns: what a human surveyor (or the live system) collects.
//!
//! Three kinds of measurement exist in the TafLoc workflow:
//!
//! * **Full calibration** — the expensive one: walk to every grid cell, stand
//!   there while the system records `S` samples per link, average. The paper costs
//!   this at 100 s per cell.
//! * **Reference update** — TafLoc's cheap alternative: visit only the `n` chosen
//!   reference cells.
//! * **Online snapshot** — one averaged RSS vector while the (unknown) target is
//!   somewhere; the input to localization.
//!
//! All campaigns are deterministic given `(world seed, time, campaign kind)`: the
//! per-campaign RNG is derived by hashing those, so repeating a call reproduces
//! the same noisy measurements, while different times or kinds are independent.

use crate::geometry::Point;
use crate::rng::hash_u64;
use crate::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;
use taf_linalg::Matrix;

/// Campaign kinds, used to separate RNG streams.
const KIND_CALIBRATION: u64 = 0x01;
const KIND_SNAPSHOT: u64 = 0x02;
const KIND_EMPTY: u64 = 0x03;

fn campaign_rng(world: &World, kind: u64, t_days: f64, extra: u64) -> StdRng {
    let t_key = (t_days * 1000.0).round() as i64 as u64;
    StdRng::seed_from_u64(hash_u64(world.seed() ^ kind.wrapping_mul(0x9E37_79B9), t_key, extra))
}

/// Surveys **every** cell at time `t_days`, `samples` RSS samples per (link, cell),
/// returning the measured `M x N` fingerprint matrix.
pub fn full_calibration(world: &World, t_days: f64, samples: usize) -> Matrix {
    let cols: Vec<usize> = (0..world.num_cells()).collect();
    measure_columns(world, t_days, &cols, samples)
}

/// Surveys only the given cells (TafLoc's reference-location update), returning an
/// `M x cells.len()` matrix in the given column order.
///
/// Panics if a cell index is out of range (campaigns are driven by validated
/// selections).
pub fn measure_columns(world: &World, t_days: f64, cells: &[usize], samples: usize) -> Matrix {
    assert!(samples > 0, "need at least one sample per measurement");
    let m = world.num_links();
    let noise = world.config().noise;
    let mut out = Matrix::zeros(m, cells.len());
    for (k, &cell) in cells.iter().enumerate() {
        assert!(cell < world.num_cells(), "cell {cell} out of range");
        let mut rng = campaign_rng(world, KIND_CALIBRATION, t_days, cell as u64);
        for link in 0..m {
            let truth = world.fingerprint_rss(link, cell, t_days);
            out[(link, k)] = noise.observe_averaged(truth, samples, &mut rng);
        }
    }
    out
}

/// One online measurement with the target standing in `cell`: the averaged
/// `M`-vector `Y` the paper matches against the fingerprint database.
pub fn snapshot_at_cell(world: &World, t_days: f64, cell: usize, samples: usize) -> Vec<f64> {
    assert!(cell < world.num_cells(), "cell {cell} out of range");
    let p = world.grid().cell_center(cell);
    snapshot_at_point(world, t_days, &p, samples)
}

/// One online measurement with the target at an arbitrary point (tracking
/// scenarios, off-grid test positions).
pub fn snapshot_at_point(world: &World, t_days: f64, p: &Point, samples: usize) -> Vec<f64> {
    assert!(samples > 0, "need at least one sample per measurement");
    let noise = world.config().noise;
    let extra = (p.x * 8191.0).round() as i64 as u64 ^ ((p.y * 8191.0).round() as i64 as u64) << 20;
    let mut rng = campaign_rng(world, KIND_SNAPSHOT, t_days, extra);
    (0..world.num_links())
        .map(|link| {
            let truth = world.rss_with_target_at(link, p, t_days);
            noise.observe_averaged(truth, samples, &mut rng)
        })
        .collect()
}

/// One online measurement with **several** simultaneous targets (the
/// multi-target extension; see [`crate::World::rss_with_targets_at`]).
pub fn snapshot_at_points(
    world: &World,
    t_days: f64,
    positions: &[crate::geometry::Point],
    samples: usize,
) -> Vec<f64> {
    assert!(samples > 0, "need at least one sample per measurement");
    let noise = world.config().noise;
    let mut extra = 0u64;
    for p in positions {
        extra = extra
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((p.x * 8191.0).round() as i64 as u64)
            .wrapping_add(((p.y * 8191.0).round() as i64 as u64) << 20);
    }
    let mut rng = campaign_rng(world, KIND_SNAPSHOT, t_days, extra ^ positions.len() as u64);
    (0..world.num_links())
        .map(|link| {
            let truth = world.rss_with_targets_at(link, positions, t_days);
            noise.observe_averaged(truth, samples, &mut rng)
        })
        .collect()
}

/// One measurement of the empty room (no target): the baseline RSS vector used
/// for distortion detection and by the RTI baseline.
pub fn empty_snapshot(world: &World, t_days: f64, samples: usize) -> Vec<f64> {
    assert!(samples > 0, "need at least one sample per measurement");
    let noise = world.config().noise;
    let mut rng = campaign_rng(world, KIND_EMPTY, t_days, 0);
    (0..world.num_links())
        .map(|link| noise.observe_averaged(world.empty_rss(link, t_days), samples, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::new(WorldConfig::small_test(), 17)
    }

    #[test]
    fn full_calibration_shape() {
        let w = world();
        let x = full_calibration(&w, 0.0, 5);
        assert_eq!(x.shape(), (w.num_links(), w.num_cells()));
        assert!(!x.has_non_finite());
    }

    #[test]
    fn calibration_is_reproducible() {
        let w = world();
        let a = full_calibration(&w, 0.0, 5);
        let b = full_calibration(&w, 0.0, 5);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn different_times_differ() {
        let w = world();
        let a = full_calibration(&w, 0.0, 5);
        let b = full_calibration(&w, 3.0, 5);
        assert!(!a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn measure_columns_matches_full_calibration_columns() {
        let w = world();
        let full = full_calibration(&w, 0.0, 5);
        let subset = measure_columns(&w, 0.0, &[3, 7], 5);
        assert_eq!(subset.shape(), (w.num_links(), 2));
        for link in 0..w.num_links() {
            assert_eq!(subset[(link, 0)], full[(link, 3)]);
            assert_eq!(subset[(link, 1)], full[(link, 7)]);
        }
    }

    #[test]
    fn measurements_near_truth() {
        let w = world();
        let x = full_calibration(&w, 0.0, 100);
        let truth = w.fingerprint_truth(0.0);
        let err = x.sub(&truth).unwrap().map(f64::abs).mean();
        // 100-sample averages of ~1.8 dB per-sample noise: error well under 1 dB.
        assert!(err < 1.0, "mean measurement error {err} dB too large");
    }

    #[test]
    fn snapshot_matches_cell_truth() {
        let w = world();
        let y = snapshot_at_cell(&w, 0.0, 4, 100);
        assert_eq!(y.len(), w.num_links());
        for (link, &v) in y.iter().enumerate() {
            let truth = w.rss_with_target_at(link, &w.grid().cell_center(4), 0.0);
            assert!((v - truth).abs() < 1.5, "link {link}: {v} vs {truth}");
        }
    }

    #[test]
    fn snapshots_at_distinct_points_differ() {
        let w = world();
        let a = snapshot_at_point(&w, 0.0, &w.grid().cell_center(0), 10);
        let b = snapshot_at_point(&w, 0.0, &w.grid().cell_center(20), 10);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_snapshot_near_empty_truth() {
        let w = world();
        let y = empty_snapshot(&w, 0.0, 100);
        for (link, &v) in y.iter().enumerate() {
            assert!((v - w.empty_rss(link, 0.0)).abs() < 1.5);
        }
    }

    #[test]
    fn multi_snapshot_reduces_to_empty_and_single() {
        let w = world();
        let p = w.grid().cell_center(3);
        let two = snapshot_at_points(&w, 0.0, &[p, w.grid().cell_center(20)], 50);
        assert_eq!(two.len(), w.num_links());
        // With no positions, the truth equals the empty room (modulo noise).
        let none = snapshot_at_points(&w, 0.0, &[], 100);
        for (link, v) in none.iter().enumerate() {
            assert!((v - w.empty_rss(link, 0.0)).abs() < 1.5);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_cell_panics() {
        let w = world();
        snapshot_at_cell(&w, 0.0, 10_000, 1);
    }

    #[test]
    #[should_panic]
    fn zero_samples_panics() {
        let w = world();
        full_calibration(&w, 0.0, 0);
    }
}
