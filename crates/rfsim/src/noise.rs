//! Measurement noise: per-sample Gaussian dBm noise with hardware quantization.
//!
//! The paper notes that RSS noise "is usually within 1~4 dBm" and that each grid
//! is surveyed with 100 samples collected at 1 Hz. Atheros NICs report RSS as
//! integers, so samples are quantized to 1 dBm before averaging.

use crate::rng::GaussianSource;
use serde::{Deserialize, Serialize};

/// Measurement-noise parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Per-sample Gaussian noise standard deviation (dB).
    pub sigma_db: f64,
    /// Quantization step (dB); `0` disables quantization. Atheros hardware
    /// reports integer dBm, i.e. a step of 1.
    pub quantization_db: f64,
    /// Probability of a burst outlier per sample (interference spike).
    pub outlier_prob: f64,
    /// Magnitude of an outlier (dB, applied with random sign).
    pub outlier_db: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig { sigma_db: 1.5, quantization_db: 1.0, outlier_prob: 0.01, outlier_db: 6.0 }
    }
}

impl NoiseConfig {
    /// Noise-free configuration (tests, ablations).
    pub fn none() -> Self {
        NoiseConfig { sigma_db: 0.0, quantization_db: 0.0, outlier_prob: 0.0, outlier_db: 0.0 }
    }

    /// One noisy, quantized observation of a true RSS value.
    pub fn observe<R: rand::Rng>(&self, true_rss: f64, rng: &mut R) -> f64 {
        let mut v = true_rss;
        if self.sigma_db > 0.0 {
            let mut g = GaussianSource::new(&mut *rng);
            v += self.sigma_db * g.sample();
        }
        if self.outlier_prob > 0.0 && rng.random::<f64>() < self.outlier_prob {
            let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
            v += sign * self.outlier_db;
        }
        if self.quantization_db > 0.0 {
            v = (v / self.quantization_db).round() * self.quantization_db;
        }
        v
    }

    /// Mean of `samples` independent observations — the paper's "100 continuous
    /// RSS, one per second" survey of a single grid.
    pub fn observe_averaged<R: rand::Rng>(
        &self,
        true_rss: f64,
        samples: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(samples > 0, "need at least one sample");
        let sum: f64 = (0..samples).map(|_| self.observe(true_rss, rng)).sum();
        sum / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity_except_quantization() {
        let cfg = NoiseConfig::none();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(cfg.observe(-47.3, &mut rng), -47.3);
    }

    #[test]
    fn quantization_rounds_to_step() {
        let cfg =
            NoiseConfig { sigma_db: 0.0, quantization_db: 1.0, outlier_prob: 0.0, outlier_db: 0.0 };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(cfg.observe(-47.3, &mut rng), -47.0);
        assert_eq!(cfg.observe(-47.6, &mut rng), -48.0);
    }

    #[test]
    fn noise_spread_matches_sigma() {
        let cfg =
            NoiseConfig { sigma_db: 2.0, quantization_db: 0.0, outlier_prob: 0.0, outlier_db: 0.0 };
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| cfg.observe(-50.0, &mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let sd = (samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64).sqrt();
        assert!((mean + 50.0).abs() < 0.05, "mean = {mean}");
        assert!((sd - 2.0).abs() < 0.05, "sd = {sd}");
    }

    #[test]
    fn default_noise_within_paper_band() {
        // "noise is usually within 1~4 dBm": the default per-sample std (noise +
        // quantization) must land in that band.
        let cfg = NoiseConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| cfg.observe(-50.0, &mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let sd = (samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64).sqrt();
        assert!((1.0..=4.0).contains(&sd), "per-sample noise std {sd} outside 1-4 dBm");
    }

    #[test]
    fn averaging_reduces_noise() {
        let cfg = NoiseConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 500;
        let singles: Vec<f64> = (0..n).map(|_| cfg.observe(-50.0, &mut rng)).collect();
        let averaged: Vec<f64> =
            (0..n).map(|_| cfg.observe_averaged(-50.0, 100, &mut rng)).collect();
        let spread = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        };
        assert!(spread(&averaged) < spread(&singles) / 3.0);
    }

    #[test]
    fn outliers_present_at_configured_rate() {
        let cfg = NoiseConfig {
            sigma_db: 0.0,
            quantization_db: 0.0,
            outlier_prob: 0.5,
            outlier_db: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let n = 10_000;
        let count = (0..n).filter(|_| cfg.observe(0.0, &mut rng).abs() > 5.0).count();
        let rate = count as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.03, "outlier rate = {rate}");
    }

    #[test]
    #[should_panic]
    fn zero_samples_panics() {
        let cfg = NoiseConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        cfg.observe_averaged(0.0, 0, &mut rng);
    }
}
