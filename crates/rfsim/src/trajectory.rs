//! Target motion: waypoint paths across the monitored area.
//!
//! The localization paper evaluates static positions, but its motivating
//! applications (elderly care, intruder detection) involve *moving* targets.
//! This module generates continuous trajectories for the tracking extension:
//! a random-waypoint walk clipped to the monitored region, sampled at a fixed
//! measurement period.

use crate::geometry::Point;
use crate::grid::FloorGrid;
use crate::rng::hash_u64;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Random-waypoint motion parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaypointConfig {
    /// Walking speed in m/s (human indoor pace ≈ 0.5-1.5).
    pub speed_mps: f64,
    /// Pause at each waypoint, in seconds.
    pub pause_s: f64,
    /// Measurement period in seconds (one RSS snapshot per period).
    pub sample_period_s: f64,
    /// Keep-out margin from the region boundary, in meters.
    pub margin_m: f64,
}

impl Default for WaypointConfig {
    fn default() -> Self {
        WaypointConfig { speed_mps: 1.0, pause_s: 2.0, sample_period_s: 1.0, margin_m: 0.3 }
    }
}

/// A sampled trajectory: positions at consecutive measurement instants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Time between consecutive samples, in seconds.
    pub sample_period_s: f64,
    /// Positions, one per sample instant.
    pub points: Vec<Point>,
}

impl Trajectory {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the trajectory has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total path length in meters.
    pub fn path_length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(&w[1])).sum()
    }

    /// Maximum displacement between consecutive samples (m) — bounded by
    /// `speed x period` for a physical walk.
    pub fn max_step(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(&w[1])).fold(0.0, f64::max)
    }
}

/// Generates a random-waypoint trajectory of `num_samples` positions inside
/// `grid` (deterministic per `seed`).
///
/// Panics if the keep-out margin leaves no room to walk in — a configuration
/// error, not a runtime condition.
pub fn random_waypoint(
    grid: &FloorGrid,
    config: &WaypointConfig,
    num_samples: usize,
    seed: u64,
) -> Trajectory {
    let o = grid.origin();
    let (x0, y0) = (o.x + config.margin_m, o.y + config.margin_m);
    let (x1, y1) = (o.x + grid.width() - config.margin_m, o.y + grid.height() - config.margin_m);
    assert!(x1 > x0 && y1 > y0, "margin {} leaves no walkable area", config.margin_m);
    assert!(
        config.speed_mps > 0.0 && config.sample_period_s > 0.0,
        "speed and period must be positive"
    );

    let mut rng = StdRng::seed_from_u64(hash_u64(seed, 0x7261_6A65, 0));
    let mut draw = |lo: f64, hi: f64| lo + (hi - lo) * rng.random::<f64>();

    let mut points = Vec::with_capacity(num_samples);
    let mut pos = Point::new(draw(x0, x1), draw(y0, y1));
    let mut goal = Point::new(draw(x0, x1), draw(y0, y1));
    let mut pause_left = 0.0;
    let step = config.speed_mps * config.sample_period_s;

    while points.len() < num_samples {
        points.push(pos);
        if pause_left > 0.0 {
            pause_left -= config.sample_period_s;
            continue;
        }
        let d = pos.distance(&goal);
        if d <= step {
            pos = goal;
            goal = Point::new(draw(x0, x1), draw(y0, y1));
            pause_left = config.pause_s;
        } else {
            let f = step / d;
            pos = Point::new(pos.x + (goal.x - pos.x) * f, pos.y + (goal.y - pos.y) * f);
        }
    }
    Trajectory { sample_period_s: config.sample_period_s, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> FloorGrid {
        FloorGrid::new(Point::new(0.0, 0.0), 0.6, 8, 12)
    }

    #[test]
    fn trajectory_length_and_determinism() {
        let t1 = random_waypoint(&grid(), &WaypointConfig::default(), 100, 7);
        let t2 = random_waypoint(&grid(), &WaypointConfig::default(), 100, 7);
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 100);
        let t3 = random_waypoint(&grid(), &WaypointConfig::default(), 100, 8);
        assert_ne!(t1, t3);
    }

    #[test]
    fn stays_inside_margin() {
        let g = grid();
        let cfg = WaypointConfig { margin_m: 0.3, ..Default::default() };
        let t = random_waypoint(&g, &cfg, 500, 3);
        for p in &t.points {
            assert!(p.x >= 0.3 - 1e-9 && p.x <= g.width() - 0.3 + 1e-9, "x = {}", p.x);
            assert!(p.y >= 0.3 - 1e-9 && p.y <= g.height() - 0.3 + 1e-9, "y = {}", p.y);
        }
    }

    #[test]
    fn steps_bounded_by_speed() {
        let cfg = WaypointConfig { speed_mps: 1.2, sample_period_s: 1.0, ..Default::default() };
        let t = random_waypoint(&grid(), &cfg, 300, 5);
        assert!(t.max_step() <= 1.2 + 1e-9, "max step {}", t.max_step());
    }

    #[test]
    fn pauses_produce_repeated_points() {
        let cfg = WaypointConfig { pause_s: 3.0, ..Default::default() };
        let t = random_waypoint(&grid(), &cfg, 300, 5);
        let repeats = t.points.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 0, "waypoint pauses should hold position for a few samples");
    }

    #[test]
    fn path_metrics() {
        let t = Trajectory {
            sample_period_s: 1.0,
            points: vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0), Point::new(3.0, 4.0)],
        };
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!((t.path_length() - 5.0).abs() < 1e-12);
        assert!((t.max_step() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn excessive_margin_panics() {
        let cfg = WaypointConfig { margin_m: 10.0, ..Default::default() };
        random_waypoint(&grid(), &cfg, 10, 1);
    }
}
