//! The monitored area's location grid.
//!
//! TafLoc divides the monitored region into `N` square cells ("location grids" in
//! the paper): the fingerprint matrix has one column per cell, and localization
//! reports a cell index (or its center point).

use crate::geometry::Point;
use serde::{Deserialize, Serialize};

/// A rectangular monitored region partitioned into square cells.
///
/// The region's lower-left corner sits at `origin`; there are `nx` cells across
/// (x-direction) and `ny` cells up (y-direction), each `cell_size` meters on a
/// side. Cells are indexed row-major: `index = iy * nx + ix`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloorGrid {
    origin: Point,
    cell_size: f64,
    nx: usize,
    ny: usize,
}

impl FloorGrid {
    /// Creates a grid. Panics if `cell_size <= 0` or either cell count is zero —
    /// these are programming errors, not runtime conditions.
    pub fn new(origin: Point, cell_size: f64, nx: usize, ny: usize) -> Self {
        assert!(cell_size > 0.0, "cell_size must be positive");
        assert!(nx > 0 && ny > 0, "grid must have at least one cell");
        FloorGrid { origin, cell_size, nx, ny }
    }

    /// The paper's monitored area: 96 cells of 0.6 m x 0.6 m (8 x 12), matching
    /// "96 grids with each grid of 0.6m x 0.6m" inside the 9 m x 12 m room.
    /// The region is centered in the room.
    pub fn paper_default() -> Self {
        let (nx, ny) = (8, 12);
        let cell = 0.6;
        let (room_w, room_h) = (9.0, 12.0);
        let origin =
            Point::new((room_w - nx as f64 * cell) / 2.0, (room_h - ny as f64 * cell) / 2.0);
        FloorGrid::new(origin, cell, nx, ny)
    }

    /// Total number of cells `N = nx * ny`.
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Cells across (x-direction).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells up (y-direction).
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Cell edge length in meters.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Lower-left corner of the monitored region.
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Width of the monitored region in meters.
    pub fn width(&self) -> f64 {
        self.nx as f64 * self.cell_size
    }

    /// Height of the monitored region in meters.
    pub fn height(&self) -> f64 {
        self.ny as f64 * self.cell_size
    }

    /// Center point of cell `idx`. Panics when `idx >= num_cells()`.
    pub fn cell_center(&self, idx: usize) -> Point {
        assert!(idx < self.num_cells(), "cell index {idx} out of bounds ({})", self.num_cells());
        let ix = idx % self.nx;
        let iy = idx / self.nx;
        Point::new(
            self.origin.x + (ix as f64 + 0.5) * self.cell_size,
            self.origin.y + (iy as f64 + 0.5) * self.cell_size,
        )
    }

    /// Index of the cell containing `p`, or `None` when `p` is outside the region.
    pub fn cell_at(&self, p: &Point) -> Option<usize> {
        let fx = (p.x - self.origin.x) / self.cell_size;
        let fy = (p.y - self.origin.y) / self.cell_size;
        if fx < 0.0 || fy < 0.0 {
            return None;
        }
        let ix = fx as usize;
        let iy = fy as usize;
        if ix >= self.nx || iy >= self.ny {
            return None;
        }
        Some(iy * self.nx + ix)
    }

    /// 4-neighborhood (up/down/left/right) of cell `idx`, staying inside the grid.
    pub fn neighbors4(&self, idx: usize) -> Vec<usize> {
        assert!(idx < self.num_cells(), "cell index out of bounds");
        let ix = idx % self.nx;
        let iy = idx / self.nx;
        let mut out = Vec::with_capacity(4);
        if ix > 0 {
            out.push(idx - 1);
        }
        if ix + 1 < self.nx {
            out.push(idx + 1);
        }
        if iy > 0 {
            out.push(idx - self.nx);
        }
        if iy + 1 < self.ny {
            out.push(idx + self.nx);
        }
        out
    }

    /// Distance between the centers of two cells.
    pub fn cell_distance(&self, a: usize, b: usize) -> f64 {
        self.cell_center(a).distance(&self.cell_center(b))
    }

    /// Iterator over all cell center points, in index order.
    pub fn centers(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.num_cells()).map(|i| self.cell_center(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> FloorGrid {
        FloorGrid::new(Point::new(1.0, 2.0), 0.5, 4, 3)
    }

    #[test]
    fn counts_and_dimensions() {
        let g = grid();
        assert_eq!(g.num_cells(), 12);
        assert_eq!((g.nx(), g.ny()), (4, 3));
        assert_eq!(g.width(), 2.0);
        assert_eq!(g.height(), 1.5);
        assert_eq!(g.cell_size(), 0.5);
    }

    #[test]
    fn paper_default_matches_paper() {
        let g = FloorGrid::paper_default();
        assert_eq!(g.num_cells(), 96);
        assert_eq!(g.cell_size(), 0.6);
        // Monitored region must fit inside the 9 x 12 room.
        assert!(g.origin().x >= 0.0 && g.origin().y >= 0.0);
        assert!(g.origin().x + g.width() <= 9.0);
        assert!(g.origin().y + g.height() <= 12.0);
    }

    #[test]
    fn cell_center_round_trips_through_cell_at() {
        let g = grid();
        for idx in 0..g.num_cells() {
            let c = g.cell_center(idx);
            assert_eq!(g.cell_at(&c), Some(idx));
        }
    }

    #[test]
    fn cell_at_outside_region() {
        let g = grid();
        assert_eq!(g.cell_at(&Point::new(0.0, 0.0)), None);
        assert_eq!(g.cell_at(&Point::new(10.0, 2.1)), None);
        assert_eq!(g.cell_at(&Point::new(1.1, 10.0)), None);
        assert_eq!(g.cell_at(&Point::new(0.9, 2.1)), None);
    }

    #[test]
    fn first_cell_center() {
        let g = grid();
        let c = g.cell_center(0);
        assert!((c.x - 1.25).abs() < 1e-12);
        assert!((c.y - 2.25).abs() < 1e-12);
    }

    #[test]
    fn neighbors_of_corner_edge_interior() {
        let g = grid(); // 4 wide, 3 tall
        let corner = g.neighbors4(0);
        assert_eq!(corner.len(), 2);
        assert!(corner.contains(&1) && corner.contains(&4));
        let edge = g.neighbors4(1);
        assert_eq!(edge.len(), 3);
        let interior = g.neighbors4(5);
        assert_eq!(interior.len(), 4);
        assert!(interior.contains(&4) && interior.contains(&6));
        assert!(interior.contains(&1) && interior.contains(&9));
    }

    #[test]
    fn cell_distance_symmetric() {
        let g = grid();
        assert_eq!(g.cell_distance(0, 1), g.cell_distance(1, 0));
        assert!((g.cell_distance(0, 1) - 0.5).abs() < 1e-12);
        assert!((g.cell_distance(0, 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn centers_iterator_covers_all() {
        let g = grid();
        assert_eq!(g.centers().count(), 12);
    }

    #[test]
    #[should_panic]
    fn bad_cell_index_panics() {
        grid().cell_center(99);
    }

    #[test]
    #[should_panic]
    fn zero_cell_size_panics() {
        FloorGrid::new(Point::new(0.0, 0.0), 0.0, 2, 2);
    }
}
