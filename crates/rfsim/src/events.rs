//! Discrete environment changes: furniture moves, doors, new equipment.
//!
//! The paper's introduction lists *"the movement of furniture, door opening and
//! closing"* as fingerprint-expiry causes alongside slow drift. These are step
//! changes, not diffusion: at some instant a link's propagation environment
//! changes and stays changed. This module models them as per-link RSS offsets
//! that switch on at a given day, with a spatially smooth effect on the
//! target-present entries near the moved object.

use crate::geometry::Point;
use serde::{Deserialize, Serialize};

/// One environment-change event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentEvent {
    /// Day the change happens (effects apply for `t >= day`).
    pub day: f64,
    /// Where the object moved to (center of its new position).
    pub location: Point,
    /// Radius (m) within which fingerprint entries are affected.
    pub radius_m: f64,
    /// RSS change (dB) applied to links whose line-of-sight passes within
    /// `radius_m` of `location` (typically negative: a cabinet now blocks them).
    pub link_delta_db: f64,
    /// Peak extra change (dB) for fingerprint entries whose *cell* lies within
    /// `radius_m` of the object (the multipath around the object is reshaped).
    pub entry_delta_db: f64,
}

impl EnvironmentEvent {
    /// `true` when this event is active at time `t_days`.
    pub fn active_at(&self, t_days: f64) -> bool {
        t_days >= self.day
    }

    /// The event's contribution to a link's empty-room RSS at `t_days`, given
    /// the link's distance from the object's new location.
    pub fn link_effect(&self, link_distance_m: f64, t_days: f64) -> f64 {
        if !self.active_at(t_days) || link_distance_m > self.radius_m {
            0.0
        } else {
            self.link_delta_db
        }
    }

    /// The event's extra contribution to a fingerprint entry whose cell center
    /// is at `cell_pos`. Decays linearly to zero at `radius_m`.
    pub fn entry_effect(&self, cell_pos: &Point, t_days: f64) -> f64 {
        if !self.active_at(t_days) {
            return 0.0;
        }
        let d = cell_pos.distance(&self.location);
        if d > self.radius_m {
            0.0
        } else {
            self.entry_delta_db * (1.0 - d / self.radius_m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> EnvironmentEvent {
        EnvironmentEvent {
            day: 30.0,
            location: Point::new(2.0, 3.0),
            radius_m: 1.5,
            link_delta_db: -4.0,
            entry_delta_db: 2.0,
        }
    }

    #[test]
    fn inactive_before_day() {
        let e = event();
        assert!(!e.active_at(29.9));
        assert_eq!(e.link_effect(0.5, 29.9), 0.0);
        assert_eq!(e.entry_effect(&Point::new(2.0, 3.0), 29.9), 0.0);
    }

    #[test]
    fn link_effect_is_binary_within_radius() {
        let e = event();
        assert_eq!(e.link_effect(0.5, 31.0), -4.0);
        assert_eq!(e.link_effect(1.5, 31.0), -4.0);
        assert_eq!(e.link_effect(1.6, 31.0), 0.0);
    }

    #[test]
    fn entry_effect_decays_linearly() {
        let e = event();
        let at_center = e.entry_effect(&Point::new(2.0, 3.0), 31.0);
        assert!((at_center - 2.0).abs() < 1e-12);
        let half = e.entry_effect(&Point::new(2.75, 3.0), 31.0);
        assert!((half - 1.0).abs() < 1e-12);
        let outside = e.entry_effect(&Point::new(4.0, 3.0), 31.0);
        assert_eq!(outside, 0.0);
    }

    #[test]
    fn activation_boundary_inclusive() {
        let e = event();
        assert!(e.active_at(30.0));
        assert_eq!(e.link_effect(0.0, 30.0), -4.0);
    }
}
