//! 2-D geometry primitives: points, segments, and the elliptical (Fresnel-zone)
//! distance that drives the target-blocking model.

use serde::{Deserialize, Serialize};

/// A point in the floor plane, coordinates in meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Midpoint between this point and another.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

/// A line segment between two points — in this crate, always a radio link's
/// transmitter-receiver pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// One endpoint (transmitter).
    pub a: Point,
    /// Other endpoint (receiver).
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment (the link's line-of-sight distance).
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(&self.b)
    }

    /// Excess path length of `p` relative to the direct path:
    /// `|p - a| + |p - b| - |a - b|`.
    ///
    /// This is the quantity the radio-tomography literature uses to decide whether
    /// an object at `p` shadows the link: the locus `excess < ε` is an ellipse with
    /// the endpoints as foci. Always non-negative (triangle inequality).
    pub fn excess_path_length(&self, p: &Point) -> f64 {
        (p.distance(&self.a) + p.distance(&self.b) - self.length()).max(0.0)
    }

    /// `true` when `p` lies inside the ellipse with foci at the endpoints and
    /// excess-path parameter `epsilon` (meters).
    pub fn in_fresnel_ellipse(&self, p: &Point, epsilon: f64) -> bool {
        self.excess_path_length(p) <= epsilon
    }

    /// Shortest distance from `p` to the segment.
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let (dx, dy) = (self.b.x - self.a.x, self.b.y - self.a.y);
        let len_sq = dx * dx + dy * dy;
        if len_sq == 0.0 {
            return p.distance(&self.a);
        }
        let t = (((p.x - self.a.x) * dx + (p.y - self.a.y) * dy) / len_sq).clamp(0.0, 1.0);
        let proj = Point::new(self.a.x + t * dx, self.a.y + t * dy);
        p.distance(&proj)
    }

    /// Normalized projection of `p` onto the segment's axis, clamped to `[0, 1]`:
    /// `0` at endpoint `a`, `1` at endpoint `b`.
    ///
    /// Used to order locations "along a link" for the continuity operator `G`.
    pub fn projection_parameter(&self, p: &Point) -> f64 {
        let (dx, dy) = (self.b.x - self.a.x, self.b.y - self.a.y);
        let len_sq = dx * dx + dy * dy;
        if len_sq == 0.0 {
            return 0.0;
        }
        (((p.x - self.a.x) * dx + (p.y - self.a.y) * dy) / len_sq).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_and_midpoint() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(3.0, 4.0);
        assert!((p.distance(&q) - 5.0).abs() < 1e-12);
        let m = p.midpoint(&q);
        assert_eq!((m.x, m.y), (1.5, 2.0));
    }

    #[test]
    fn segment_length_and_midpoint() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(6.0, 0.0));
        assert_eq!(s.length(), 6.0);
        assert_eq!(s.midpoint(), Point::new(3.0, 0.0));
    }

    #[test]
    fn excess_path_zero_on_the_line() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.excess_path_length(&Point::new(5.0, 0.0)), 0.0);
        assert_eq!(s.excess_path_length(&Point::new(0.0, 0.0)), 0.0);
    }

    #[test]
    fn excess_path_grows_off_axis() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let near = s.excess_path_length(&Point::new(5.0, 0.5));
        let far = s.excess_path_length(&Point::new(5.0, 2.0));
        assert!(near > 0.0);
        assert!(far > near);
    }

    #[test]
    fn excess_path_known_value() {
        // Point directly above one focus: |p-a| = 1, |p-b| = sqrt(101), d = 10.
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let e = s.excess_path_length(&Point::new(0.0, 1.0));
        assert!((e - (1.0 + 101.0_f64.sqrt() - 10.0)).abs() < 1e-12);
    }

    #[test]
    fn fresnel_ellipse_membership() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert!(s.in_fresnel_ellipse(&Point::new(5.0, 0.1), 0.5));
        assert!(!s.in_fresnel_ellipse(&Point::new(5.0, 3.0), 0.5));
    }

    #[test]
    fn distance_to_point_cases() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        // Perpendicular foot inside the segment.
        assert!((s.distance_to_point(&Point::new(5.0, 2.0)) - 2.0).abs() < 1e-12);
        // Beyond endpoint a.
        assert!((s.distance_to_point(&Point::new(-3.0, 4.0)) - 5.0).abs() < 1e-12);
        // Beyond endpoint b.
        assert!((s.distance_to_point(&Point::new(13.0, 4.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert_eq!(s.length(), 0.0);
        assert!((s.distance_to_point(&Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
        assert_eq!(s.projection_parameter(&Point::new(9.0, 9.0)), 0.0);
    }

    #[test]
    fn projection_parameter_ordering() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let t1 = s.projection_parameter(&Point::new(2.0, 1.0));
        let t2 = s.projection_parameter(&Point::new(7.0, -1.0));
        assert!(t1 < t2);
        assert_eq!(s.projection_parameter(&Point::new(-5.0, 0.0)), 0.0);
        assert_eq!(s.projection_parameter(&Point::new(50.0, 0.0)), 1.0);
    }
}
