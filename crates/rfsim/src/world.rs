//! The simulated world: geometry + propagation + drift + noise, behind one handle.

use crate::deployment::Deployment;
use crate::drift::{DriftConfig, OuProcess};
use crate::events::EnvironmentEvent;
use crate::geometry::Point;
use crate::grid::FloorGrid;
use crate::noise::NoiseConfig;
use crate::pathloss::LogDistance;
use crate::shadowing::ShadowingConfig;
use crate::target::TargetModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use taf_linalg::Matrix;

/// Everything needed to instantiate a [`World`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Monitored-area grid.
    pub grid: FloorGrid,
    /// Number of deployed links `M`.
    pub num_links: usize,
    /// Distance (m) between the grid boundary and the transceivers.
    pub deployment_margin: f64,
    /// Large-scale path loss.
    pub pathloss: LogDistance,
    /// Static correlated shadowing.
    pub shadowing: ShadowingConfig,
    /// Target perturbation model.
    pub target: TargetModel,
    /// Temporal drift model.
    pub drift: DriftConfig,
    /// Measurement noise model.
    pub noise: NoiseConfig,
    /// Discrete environment changes (furniture moves, doors); empty by default
    /// — the paper's headline experiments isolate pure temporal drift ("even
    /// without any change in the environment").
    pub events: Vec<EnvironmentEvent>,
}

impl WorldConfig {
    /// The paper's deployment: 96 grids of 0.6 m in a 9 m x 12 m room, 10 links,
    /// drift calibrated to the in-text 2.5 dBm @ 5 d / 6 dBm @ 45 d figures.
    pub fn paper_default() -> Self {
        WorldConfig {
            grid: FloorGrid::paper_default(),
            num_links: 10,
            deployment_margin: 0.3,
            pathloss: LogDistance::indoor_2_4ghz(),
            shadowing: ShadowingConfig::default(),
            target: TargetModel::default(),
            drift: DriftConfig::paper_calibrated(),
            noise: NoiseConfig::default(),
            events: Vec::new(),
        }
    }

    /// A small, fast world for unit/integration tests: 5 x 6 grid, 6 links.
    pub fn small_test() -> Self {
        WorldConfig {
            grid: FloorGrid::new(Point::new(0.0, 0.0), 0.6, 5, 6),
            num_links: 6,
            deployment_margin: 0.3,
            pathloss: LogDistance::indoor_2_4ghz(),
            shadowing: ShadowingConfig::default(),
            target: TargetModel::default(),
            drift: DriftConfig::paper_calibrated(),
            noise: NoiseConfig::default(),
            events: Vec::new(),
        }
    }

    /// A square monitored region with the paper's 0.6 m cell size and `edge_m`
    /// meters on a side — the Fig. 4 area sweep. Link count stays at 10 as in the
    /// paper's deployment.
    pub fn square_area(edge_m: f64) -> Self {
        let cells = (edge_m / 0.6).round().max(1.0) as usize;
        WorldConfig {
            grid: FloorGrid::new(Point::new(0.0, 0.0), 0.6, cells, cells),
            ..WorldConfig::paper_default()
        }
    }
}

/// A fully instantiated simulated environment.
///
/// All randomness is derived from the construction `seed`: two `World`s built from
/// the same `(config, seed)` produce identical RSS forever, which is what makes
/// the paper-figure experiments reproducible.
#[derive(Debug)]
pub struct World {
    config: WorldConfig,
    seed: u64,
    deployment: Deployment,
    /// Per-link no-target RSS at day 0 (path loss + static shadowing).
    base_rss: Vec<f64>,
    /// Per-link drift processes.
    link_drift: Vec<OuProcess>,
    /// Slow entry-drift *temporal* processes: `SLOW_COMPONENTS` per link.
    ///
    /// The slow aging of the target-present multipath pattern is spatially
    /// smooth — a temperature or humidity change reshapes reflections over
    /// whole regions, not isolated 0.6 m cells. Each link's entry drift is a
    /// superposition of a few fixed low-frequency spatial waves whose
    /// amplitudes evolve as OU processes. (Smoothness also means the
    /// continuity/similarity priors in LoLi-IR have real structure to exploit,
    /// and that localization does not see the drift as per-cell white noise.)
    entry_slow: Vec<OuProcess>,
    /// Fixed spatial basis per (link, component): `(orientation, freq, phase)`.
    entry_basis: Vec<(f64, f64, f64)>,
    /// Fast per-(link, cell) channel-variation processes, row-major
    /// (`link * num_cells + cell`). Independent per entry: short-term fading
    /// decorrelates across cells.
    entry_fast: Vec<OuProcess>,
}

/// Number of spatial wave components per link in the slow entry-drift field.
const SLOW_COMPONENTS: usize = 3;

/// Stream identifiers partitioning the deterministic RNG space.
const STREAM_LINK_DRIFT: u64 = 1 << 32;
const STREAM_ENTRY_DRIFT: u64 = 2 << 32;
const STREAM_ENTRY_FAST: u64 = 3 << 32;
const STREAM_ENTRY_BASIS: u64 = 4 << 32;

impl World {
    /// Instantiates a world from a config and a seed.
    pub fn new(config: WorldConfig, seed: u64) -> Self {
        let deployment =
            Deployment::perimeter(&config.grid, config.num_links, config.deployment_margin);
        let mut rng = StdRng::seed_from_u64(crate::rng::hash_u64(seed, 0, 0));
        let shadow = config.shadowing.sample(&deployment, &mut rng);
        let base_rss: Vec<f64> = deployment
            .links()
            .iter()
            .zip(&shadow)
            .map(|(l, s)| config.pathloss.rss(l.segment.length()) + s)
            .collect();

        let m = deployment.num_links();
        let n = config.grid.num_cells();
        let link_drift = (0..m)
            .map(|i| {
                OuProcess::new(
                    seed,
                    STREAM_LINK_DRIFT + i as u64,
                    config.drift.link_sigma_db,
                    config.drift.tau_days,
                )
            })
            .collect();
        // Slow entry drift: per (link, component) unit-variance OU amplitudes on
        // fixed low-frequency spatial waves. The √(2/3) scale makes the field's
        // spatially averaged standard deviation equal `entry_sigma_db`
        // (SLOW_COMPONENTS sin² terms average 1/2 each).
        let amp = config.drift.entry_sigma_db * (2.0 / SLOW_COMPONENTS as f64).sqrt();
        let entry_slow = (0..m * SLOW_COMPONENTS)
            .map(|k| {
                OuProcess::new(seed, STREAM_ENTRY_DRIFT + k as u64, amp, config.drift.tau_days)
            })
            .collect();
        let entry_basis = (0..m * SLOW_COMPONENTS)
            .map(|k| {
                let theta = crate::rng::uniform(seed, STREAM_ENTRY_BASIS, 3 * k as u64)
                    * std::f64::consts::TAU;
                // Wavelengths of ~3-6 m: regional, not per-cell.
                let freq =
                    1.0 + 1.1 * crate::rng::uniform(seed, STREAM_ENTRY_BASIS, 3 * k as u64 + 1);
                let phase = crate::rng::uniform(seed, STREAM_ENTRY_BASIS, 3 * k as u64 + 2)
                    * std::f64::consts::TAU;
                (theta, freq, phase)
            })
            .collect();
        let entry_fast = (0..m * n)
            .map(|k| {
                OuProcess::new(
                    seed,
                    STREAM_ENTRY_FAST + k as u64,
                    config.drift.entry_fast_sigma_db,
                    config.drift.entry_fast_tau_days,
                )
            })
            .collect();

        World {
            config,
            seed,
            deployment,
            base_rss,
            link_drift,
            entry_slow,
            entry_basis,
            entry_fast,
        }
    }

    /// Slow entry-drift field of `link` at point `p` and time `t_days` (dB).
    fn entry_slow_drift(&self, link: usize, p: &Point, t_days: f64) -> f64 {
        if self.config.drift.entry_sigma_db == 0.0 {
            return 0.0;
        }
        (0..SLOW_COMPONENTS)
            .map(|k| {
                let idx = link * SLOW_COMPONENTS + k;
                let (theta, freq, phase) = self.entry_basis[idx];
                let wave = (freq * (p.x * theta.cos() + p.y * theta.sin()) + phase).sin();
                wave * self.entry_slow[idx].at(t_days)
            })
            .sum()
    }

    /// The paper's environment with the given seed.
    pub fn paper_default(seed: u64) -> Self {
        World::new(WorldConfig::paper_default(), seed)
    }

    /// Construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Configuration this world was built from.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Monitored-area grid.
    pub fn grid(&self) -> &FloorGrid {
        &self.config.grid
    }

    /// Transceiver deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Number of links `M`.
    pub fn num_links(&self) -> usize {
        self.deployment.num_links()
    }

    /// Number of location cells `N`.
    pub fn num_cells(&self) -> usize {
        self.config.grid.num_cells()
    }

    /// Noise-free RSS of `link` at time `t_days` with **no target present**.
    pub fn empty_rss(&self, link: usize, t_days: f64) -> f64 {
        let seg = &self.deployment.link(link).segment;
        let events: f64 = self
            .config
            .events
            .iter()
            .map(|e| e.link_effect(seg.distance_to_point(&e.location), t_days))
            .sum();
        self.base_rss[link] + self.link_drift[link].at(t_days) + events
    }

    /// Noise-free RSS of `link` at time `t_days` with the target standing at an
    /// arbitrary point `p` (not necessarily a cell center).
    ///
    /// Includes the per-entry drift of the grid cell containing `p` (zero outside
    /// the monitored region), so a live measurement with the target in cell `j`
    /// observes the same physical quantity a surveyor records for column `j` —
    /// the aging of the target-present multipath pattern affects both equally.
    pub fn rss_with_target_at(&self, link: usize, p: &Point, t_days: f64) -> f64 {
        let seg = &self.deployment.link(link).segment;
        let entry = match self.config.grid.cell_at(p) {
            Some(cell) => {
                let events: f64 =
                    self.config.events.iter().map(|e| e.entry_effect(p, t_days)).sum();
                self.entry_slow_drift(link, p, t_days)
                    + self.entry_fast[link * self.num_cells() + cell].at(t_days)
                    + events
            }
            None => 0.0,
        };
        self.empty_rss(link, t_days)
            + self.config.target.rss_delta_db(self.seed, link, seg, p)
            + entry
    }

    /// Noise-free RSS of `link` at time `t_days` with **several** simultaneous
    /// device-free targets.
    ///
    /// Each body's perturbation (shadowing + scattering + the entry variation of
    /// its cell) adds in dB — a standard approximation that is accurate while
    /// the bodies are separated by more than a couple of Fresnel-zone widths
    /// (each extra body on the same LoS removes a similar fraction of the
    /// remaining energy). The single-target paper never needs this; it powers
    /// the multi-target extension experiment.
    pub fn rss_with_targets_at(&self, link: usize, positions: &[Point], t_days: f64) -> f64 {
        let base = self.empty_rss(link, t_days);
        positions.iter().map(|p| self.rss_with_target_at(link, p, t_days) - base).sum::<f64>()
            + base
    }

    /// Noise-free fingerprint entry: RSS of `link` at `t_days` with the target in
    /// cell `cell` (equals [`World::rss_with_target_at`] at the cell center).
    pub fn fingerprint_rss(&self, link: usize, cell: usize, t_days: f64) -> f64 {
        let p = self.config.grid.cell_center(cell);
        self.rss_with_target_at(link, &p, t_days)
    }

    /// The full noise-free fingerprint matrix `X(t)` (`M x N`) — the ground truth
    /// against which reconstructions are scored (Fig. 3).
    pub fn fingerprint_truth(&self, t_days: f64) -> Matrix {
        Matrix::from_fn(self.num_links(), self.num_cells(), |i, j| {
            self.fingerprint_rss(i, j, t_days)
        })
    }

    /// Per-link no-target RSS vector at `t_days` (noise-free).
    pub fn empty_truth(&self, t_days: f64) -> Vec<f64> {
        (0..self.num_links()).map(|i| self.empty_rss(i, t_days)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_dimensions() {
        let w = World::paper_default(1);
        assert_eq!(w.num_links(), 10);
        assert_eq!(w.num_cells(), 96);
        let x = w.fingerprint_truth(0.0);
        assert_eq!(x.shape(), (10, 96));
        assert!(!x.has_non_finite());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = World::paper_default(7).fingerprint_truth(5.0);
        let b = World::paper_default(7).fingerprint_truth(5.0);
        assert!(a.approx_eq(&b, 0.0));
        let c = World::paper_default(8).fingerprint_truth(5.0);
        assert!(!a.approx_eq(&c, 1e-6));
    }

    #[test]
    fn rss_values_physically_plausible() {
        let w = World::paper_default(3);
        for link in 0..w.num_links() {
            let rss = w.empty_rss(link, 0.0);
            assert!((-95.0..=-20.0).contains(&rss), "link {link}: {rss} dBm");
        }
    }

    #[test]
    fn target_on_los_causes_clear_decrease() {
        let w = World::paper_default(3);
        // Find the cell nearest to some link's LoS.
        let seg = w.deployment().link(0).segment;
        let (cell, _) = (0..w.num_cells())
            .map(|c| (c, seg.distance_to_point(&w.grid().cell_center(c))))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let drop = w.empty_rss(0, 0.0) - w.fingerprint_rss(0, cell, 0.0);
        assert!(drop > 2.0, "LoS-adjacent cell should attenuate clearly, got {drop} dB");
    }

    #[test]
    fn drift_changes_rss_over_time() {
        let w = World::paper_default(3);
        let x0 = w.fingerprint_truth(0.0);
        let x45 = w.fingerprint_truth(45.0);
        let diff = x0.sub(&x45).unwrap();
        let mean_abs = diff.map(f64::abs).mean();
        // Calibrated to ~6 dBm at 45 days; one world realization has sampling
        // spread, accept a generous band.
        assert!((2.0..=12.0).contains(&mean_abs), "45-day mean |ΔRSS| = {mean_abs}");
    }

    #[test]
    fn no_drift_config_is_static() {
        let mut cfg = WorldConfig::small_test();
        cfg.drift = DriftConfig::none();
        let w = World::new(cfg, 5);
        let x0 = w.fingerprint_truth(0.0);
        let x90 = w.fingerprint_truth(90.0);
        assert!(x0.approx_eq(&x90, 1e-12));
    }

    #[test]
    fn fingerprint_matrix_is_approximately_low_rank() {
        // Property P1 from the poster: most of the energy concentrates in a few
        // singular values.
        let w = World::paper_default(11);
        let x = w.fingerprint_truth(0.0);
        // Center rows (remove the per-link base level) to expose the structure.
        let centered = Matrix::from_fn(x.rows(), x.cols(), |i, j| {
            x[(i, j)] - taf_linalg::stats::mean(x.row(i)).unwrap()
        });
        let svd = centered.svd().unwrap();
        // M = 10 bounds the rank at 10; "approximately low rank" here means the
        // spectrum is front-loaded: half the possible rank captures most energy.
        let frac5 = svd.energy_fraction(5);
        let frac8 = svd.energy_fraction(8);
        assert!(frac5 > 0.75, "top-5 singular values should capture >75% energy, got {frac5}");
        assert!(frac8 > 0.92, "top-8 singular values should capture >92% energy, got {frac8}");
    }

    #[test]
    fn square_area_config_scales() {
        let cfg = WorldConfig::square_area(6.0);
        assert_eq!(cfg.grid.num_cells(), 100);
        let cfg = WorldConfig::square_area(12.0);
        assert_eq!(cfg.grid.num_cells(), 400);
    }

    #[test]
    fn multi_target_superposition() {
        let w = World::paper_default(4);
        let p1 = w.grid().cell_center(10);
        let p2 = w.grid().cell_center(85);
        // No targets = empty room.
        assert_eq!(w.rss_with_targets_at(0, &[], 0.0), w.empty_rss(0, 0.0));
        // One target = the single-target model.
        assert_eq!(w.rss_with_targets_at(0, &[p1], 0.0), w.rss_with_target_at(0, &p1, 0.0));
        // Two targets: deltas add in dB.
        let base = w.empty_rss(0, 0.0);
        let d1 = w.rss_with_target_at(0, &p1, 0.0) - base;
        let d2 = w.rss_with_target_at(0, &p2, 0.0) - base;
        let both = w.rss_with_targets_at(0, &[p1, p2], 0.0);
        assert!((both - (base + d1 + d2)).abs() < 1e-12);
    }

    #[test]
    fn environment_event_steps_rss() {
        let mut cfg = WorldConfig::small_test();
        cfg.drift = DriftConfig::none();
        let grid_center = Point::new(1.5, 1.8);
        cfg.events.push(EnvironmentEvent {
            day: 10.0,
            location: grid_center,
            radius_m: 1.0,
            link_delta_db: -5.0,
            entry_delta_db: 3.0,
        });
        let w = World::new(cfg, 6);
        // Before the event nothing changes.
        assert_eq!(w.empty_rss(0, 0.0), w.empty_rss(0, 9.9));
        // After the event, at least one LoS-crossing link steps down by 5 dB.
        let stepped = (0..w.num_links())
            .any(|l| (w.empty_rss(l, 11.0) - w.empty_rss(l, 9.0) + 5.0).abs() < 1e-9);
        assert!(stepped, "some link must cross within 1 m of the room center");
        // Cells near the object gain the entry effect; far cells do not.
        let near_cell = w.grid().cell_at(&grid_center).unwrap();
        let far_cell = 0;
        let near_delta =
            w.fingerprint_rss(0, near_cell, 11.0) - w.fingerprint_rss(0, near_cell, 9.0);
        let far_delta = w.fingerprint_rss(0, far_cell, 11.0) - w.fingerprint_rss(0, far_cell, 9.0);
        // near includes link effect (if link 0 affected) + entry effect; compare
        // the difference of differences to isolate the entry term.
        assert!((near_delta - far_delta) > 0.5, "near {near_delta} vs far {far_delta}");
    }

    #[test]
    fn rss_with_target_far_away_is_near_empty() {
        let w = World::paper_default(3);
        // A point far outside every link's Fresnel zone barely changes RSS.
        let far = Point::new(-50.0, -50.0);
        for link in 0..w.num_links() {
            let delta = (w.rss_with_target_at(link, &far, 0.0) - w.empty_rss(link, 0.0)).abs();
            assert!(delta <= 2.5 * w.config().target.scatter_db + 1e-9);
        }
    }
}
