//! Deterministic fault schedules composed over raw sample streams.
//!
//! A [`FaultSchedule`] is a declarative list of adversities — loss bursts,
//! link death and flapping, drift ramps, reorder storms, clock skew — applied
//! as a pure transformation of an already-generated [`RawSample`] stream.
//! Because faults act on the delivered stream rather than inside the sample
//! generator, the *underlying* measurements are identical with and without
//! the schedule: a test can compare the faulted and clean runs of the same
//! `(world seed, stream seed)` pair and attribute every difference to the
//! schedule alone. All randomness (the reorder storm's shuffle) is
//! counter-based off the fault's own seed, so applying a schedule is
//! deterministic and independent of application order elsewhere.
//!
//! Time spans are in stream seconds, half-open `[start_s, end_s)`, matching
//! [`RawSample::t_s`]. Faults are applied in list order; later faults see the
//! stream as transformed by earlier ones (e.g. a clock skew before a loss
//! burst shifts which samples the burst catches).

use crate::rng::hash_u64;
use crate::stream::RawSample;
use serde::{Deserialize, Serialize};

/// One deterministic adversity applied to a raw sample stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "kebab-case")]
pub enum Fault {
    /// Every sample in `[start_s, end_s)` is lost — on one link, or on all
    /// links when `link` is `None` (a site-wide outage).
    LossBurst {
        /// Span start (stream seconds, inclusive).
        start_s: f64,
        /// Span end (stream seconds, exclusive).
        end_s: f64,
        /// Affected link, or `None` for every link.
        link: Option<usize>,
    },
    /// A link stops reporting permanently at `at_s` (radio death).
    LinkDeath {
        /// The dying link.
        link: usize,
        /// Stream time of the last delivered sample (exclusive).
        at_s: f64,
    },
    /// A link alternates `period_s` on / `period_s` off from `start_s` on
    /// (intermittent connectivity; each off phase drops its samples).
    LinkFlap {
        /// The flapping link.
        link: usize,
        /// Stream time the flapping starts.
        start_s: f64,
        /// Length of each on and each off phase (seconds, must be `> 0`).
        period_s: f64,
    },
    /// RSS bias ramping linearly from 0 dB at `start_s` to `bias_db` at
    /// `end_s`, constant afterwards — an environmental drift transient
    /// faster than the world's own day-scale drift.
    DriftRamp {
        /// Ramp start (stream seconds).
        start_s: f64,
        /// Ramp end; must be `> start_s`.
        end_s: f64,
        /// Bias reached at the end of the ramp (dB, may be negative).
        bias_db: f64,
        /// Affected link, or `None` for every link.
        link: Option<usize>,
    },
    /// Delivery order inside `[start_s, end_s)` is scrambled by a seeded
    /// Fisher-Yates shuffle (timestamps are untouched — this models severe
    /// transport reordering, far beyond `StreamConfig::reorder_prob`).
    ReorderStorm {
        /// Span start (stream seconds).
        start_s: f64,
        /// Span end (stream seconds).
        end_s: f64,
        /// Shuffle seed; the storm is deterministic in it.
        seed: u64,
    },
    /// A link's clock runs offset by `offset_s`: its timestamps are shifted
    /// (clamped at 0), so its samples age differently than its peers'.
    ClockSkew {
        /// The skewed link.
        link: usize,
        /// Clock offset added to every timestamp (seconds, may be negative).
        offset_s: f64,
    },
}

impl Fault {
    /// Panics on an internally inconsistent fault (empty or reversed span,
    /// non-positive flap period, non-finite parameters). Called by
    /// [`FaultSchedule::apply`] on every fault; public so scenario
    /// definitions can fail fast at construction instead.
    pub fn assert_valid(&self) {
        match *self {
            Fault::LossBurst { start_s, end_s, .. } => {
                assert!(
                    start_s.is_finite() && end_s.is_finite() && end_s >= start_s,
                    "loss burst needs a finite span with end >= start, got [{start_s}, {end_s})"
                );
            }
            Fault::LinkDeath { at_s, .. } => {
                assert!(at_s.is_finite(), "link death time must be finite");
            }
            Fault::LinkFlap { start_s, period_s, .. } => {
                assert!(start_s.is_finite(), "flap start must be finite");
                assert!(
                    period_s.is_finite() && period_s > 0.0,
                    "flap period must be positive, got {period_s}"
                );
            }
            Fault::DriftRamp { start_s, end_s, bias_db, .. } => {
                assert!(
                    start_s.is_finite() && end_s.is_finite() && end_s > start_s,
                    "drift ramp needs a finite span with end > start, got [{start_s}, {end_s})"
                );
                assert!(bias_db.is_finite(), "drift bias must be finite, got {bias_db}");
            }
            Fault::ReorderStorm { start_s, end_s, .. } => {
                assert!(
                    start_s.is_finite() && end_s.is_finite() && end_s >= start_s,
                    "reorder storm needs a finite span, got [{start_s}, {end_s})"
                );
            }
            Fault::ClockSkew { offset_s, .. } => {
                assert!(offset_s.is_finite(), "clock skew must be finite, got {offset_s}");
            }
        }
    }

    /// Applies this fault in place.
    fn apply(&self, samples: &mut Vec<RawSample>) {
        match *self {
            Fault::LossBurst { start_s, end_s, link } => {
                samples.retain(|s| {
                    !(s.t_s >= start_s && s.t_s < end_s && link.map_or(true, |l| s.link == l))
                });
            }
            Fault::LinkDeath { link, at_s } => {
                samples.retain(|s| !(s.link == link && s.t_s >= at_s));
            }
            Fault::LinkFlap { link, start_s, period_s } => {
                samples.retain(|s| {
                    if s.link != link || s.t_s < start_s {
                        return true;
                    }
                    // Phase 0 is on, phase 1 is off, alternating.
                    let phase = ((s.t_s - start_s) / period_s) as u64;
                    phase % 2 == 0
                });
            }
            Fault::DriftRamp { start_s, end_s, bias_db, link } => {
                for s in samples.iter_mut() {
                    if link.map_or(true, |l| s.link == l) {
                        let t = ((s.t_s - start_s) / (end_s - start_s)).clamp(0.0, 1.0);
                        s.rss_dbm += bias_db * t;
                    }
                }
            }
            Fault::ReorderStorm { start_s, end_s, seed } => {
                let span: Vec<usize> = (0..samples.len())
                    .filter(|&i| samples[i].t_s >= start_s && samples[i].t_s < end_s)
                    .collect();
                // Fisher-Yates over the span's positions, counter-based so the
                // shuffle is a pure function of (seed, span length).
                for k in (1..span.len()).rev() {
                    let j = (hash_u64(seed, span.len() as u64, k as u64) % (k as u64 + 1)) as usize;
                    samples.swap(span[k], span[j]);
                }
            }
            Fault::ClockSkew { link, offset_s } => {
                for s in samples.iter_mut() {
                    if s.link == link {
                        s.t_s = (s.t_s + offset_s).max(0.0);
                    }
                }
            }
        }
    }
}

/// An ordered list of faults applied to a stream as one transformation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Faults in application order.
    #[serde(default)]
    pub faults: Vec<Fault>,
}

impl FaultSchedule {
    /// The empty schedule (identity transformation).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from faults in application order.
    pub fn new(faults: impl Into<Vec<Fault>>) -> Self {
        FaultSchedule { faults: faults.into() }
    }

    /// Whether the schedule carries no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies every fault in order, in place. Panics on invalid fault
    /// parameters (mirroring `StreamConfig::assert_valid`).
    pub fn apply(&self, samples: &mut Vec<RawSample>) {
        for fault in &self.faults {
            fault.assert_valid();
            fault.apply(samples);
        }
    }

    /// Convenience: applies the schedule to a copy of `samples`.
    pub fn applied(&self, samples: &[RawSample]) -> Vec<RawSample> {
        let mut out = samples.to_vec();
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{empty_stream, StreamConfig};
    use crate::world::{World, WorldConfig};

    fn stream() -> Vec<RawSample> {
        let w = World::new(WorldConfig::small_test(), 7);
        empty_stream(&w, 0.0, &StreamConfig { duration_s: 30.0, ..Default::default() }, 3)
    }

    #[test]
    fn empty_schedule_is_identity() {
        let base = stream();
        assert_eq!(FaultSchedule::none().applied(&base), base);
        assert!(FaultSchedule::none().is_empty());
    }

    #[test]
    fn schedule_application_is_deterministic() {
        let sched = FaultSchedule::new(vec![
            Fault::LossBurst { start_s: 5.0, end_s: 10.0, link: None },
            Fault::ReorderStorm { start_s: 10.0, end_s: 20.0, seed: 9 },
            Fault::DriftRamp { start_s: 0.0, end_s: 30.0, bias_db: 4.0, link: Some(1) },
        ]);
        assert_eq!(sched.applied(&stream()), sched.applied(&stream()));
    }

    #[test]
    fn loss_burst_empties_the_span() {
        let sched =
            FaultSchedule::new(vec![Fault::LossBurst { start_s: 5.0, end_s: 10.0, link: None }]);
        let out = sched.applied(&stream());
        assert!(out.iter().all(|s| s.t_s < 5.0 || s.t_s >= 10.0));
        assert!(!out.is_empty());
    }

    #[test]
    fn single_link_loss_burst_spares_other_links() {
        let sched =
            FaultSchedule::new(vec![Fault::LossBurst { start_s: 0.0, end_s: 30.0, link: Some(2) }]);
        let out = sched.applied(&stream());
        assert!(out.iter().all(|s| s.link != 2));
        assert!(out.iter().any(|s| s.link == 0));
    }

    #[test]
    fn link_death_silences_the_tail() {
        let sched = FaultSchedule::new(vec![Fault::LinkDeath { link: 1, at_s: 12.0 }]);
        let out = sched.applied(&stream());
        assert!(out.iter().all(|s| s.link != 1 || s.t_s < 12.0));
        assert!(out.iter().any(|s| s.link == 1), "samples before death survive");
    }

    #[test]
    fn link_flap_alternates_phases() {
        let sched =
            FaultSchedule::new(vec![Fault::LinkFlap { link: 0, start_s: 0.0, period_s: 5.0 }]);
        let out = sched.applied(&stream());
        for s in out.iter().filter(|s| s.link == 0) {
            let phase = (s.t_s / 5.0) as u64;
            assert_eq!(phase % 2, 0, "off-phase sample survived at t={}", s.t_s);
        }
        assert!(out.iter().any(|s| s.link == 0));
    }

    #[test]
    fn drift_ramp_biases_monotonically() {
        let base = stream();
        let sched = FaultSchedule::new(vec![Fault::DriftRamp {
            start_s: 0.0,
            end_s: 30.0,
            bias_db: 6.0,
            link: None,
        }]);
        let out = sched.applied(&base);
        assert_eq!(out.len(), base.len());
        for (a, b) in base.iter().zip(&out) {
            let bias = b.rss_dbm - a.rss_dbm;
            let expected = 6.0 * (a.t_s / 30.0).clamp(0.0, 1.0);
            assert!((bias - expected).abs() < 1e-9, "t={} bias={bias}", a.t_s);
        }
    }

    #[test]
    fn reorder_storm_preserves_multiset() {
        let base = stream();
        let sched =
            FaultSchedule::new(vec![Fault::ReorderStorm { start_s: 0.0, end_s: 30.0, seed: 4 }]);
        let out = sched.applied(&base);
        assert_eq!(out.len(), base.len());
        let key = |s: &RawSample| (s.link, s.t_s.to_bits(), s.rss_dbm.to_bits());
        let mut a = base.clone();
        let mut b = out.clone();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b, "a storm must not add, drop or alter samples");
        assert_ne!(base, out, "a full-span storm must actually scramble");
    }

    #[test]
    fn clock_skew_shifts_one_link() {
        let base = stream();
        let sched = FaultSchedule::new(vec![Fault::ClockSkew { link: 3, offset_s: 7.5 }]);
        let out = sched.applied(&base);
        for (a, b) in base.iter().zip(&out) {
            if a.link == 3 {
                assert!((b.t_s - (a.t_s + 7.5)).abs() < 1e-12);
            } else {
                assert_eq!(a.t_s.to_bits(), b.t_s.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "flap period")]
    fn invalid_flap_period_panics() {
        let mut s = stream();
        FaultSchedule::new(vec![Fault::LinkFlap { link: 0, start_s: 0.0, period_s: 0.0 }])
            .apply(&mut s);
    }
}
