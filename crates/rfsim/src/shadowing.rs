//! Spatially correlated log-normal shadowing.
//!
//! Each link receives a static shadowing offset (dB) drawn from a zero-mean
//! Gaussian whose covariance decays exponentially with the distance between link
//! midpoints (the Gudmundson model). Correlated shadowing matters here: it is one
//! of the mechanisms that keeps the fingerprint matrix approximately low-rank —
//! links that run close to each other see similar environments.

use crate::deployment::Deployment;
use crate::rng::GaussianSource;
use serde::{Deserialize, Serialize};
use taf_linalg::Matrix;

/// Shadowing model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowingConfig {
    /// Standard deviation of the shadowing offset per link (dB).
    pub sigma_db: f64,
    /// Decorrelation distance (m): covariance between two links is
    /// `sigma² · exp(−d/δ)` for midpoint distance `d`.
    pub decorrelation_m: f64,
}

impl Default for ShadowingConfig {
    fn default() -> Self {
        ShadowingConfig { sigma_db: 3.0, decorrelation_m: 4.0 }
    }
}

impl ShadowingConfig {
    /// Builds the `M x M` covariance matrix over a deployment's links.
    pub fn covariance(&self, deployment: &Deployment) -> Matrix {
        let m = deployment.num_links();
        let mids: Vec<_> = deployment.links().iter().map(|l| l.segment.midpoint()).collect();
        Matrix::from_fn(m, m, |i, j| {
            let d = mids[i].distance(&mids[j]);
            self.sigma_db * self.sigma_db * (-d / self.decorrelation_m).exp()
        })
    }

    /// Samples one correlated shadowing offset per link.
    ///
    /// The covariance gets a tiny diagonal jitter before Cholesky so that exactly
    /// coincident midpoints (fully correlated links) remain factorable.
    pub fn sample<R: rand::Rng>(&self, deployment: &Deployment, rng: &mut R) -> Vec<f64> {
        let m = deployment.num_links();
        if self.sigma_db == 0.0 {
            return vec![0.0; m];
        }
        let mut cov = self.covariance(deployment);
        cov.add_diag(1e-9 * self.sigma_db * self.sigma_db).expect("square");
        let chol = cov.cholesky().expect("jittered covariance is SPD");
        let mut g = GaussianSource::new(rng);
        let z: Vec<f64> = (0..m).map(|_| g.sample()).collect();
        chol.correlate(&z).expect("length matches")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::FloorGrid;
    use crate::Point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn deployment() -> Deployment {
        let g = FloorGrid::new(Point::new(0.0, 0.0), 0.6, 8, 12);
        Deployment::perimeter(&g, 10, 0.3)
    }

    #[test]
    fn covariance_diagonal_is_sigma_squared() {
        let cfg = ShadowingConfig { sigma_db: 3.0, decorrelation_m: 4.0 };
        let cov = cfg.covariance(&deployment());
        for i in 0..10 {
            assert!((cov[(i, i)] - 9.0).abs() < 1e-12);
        }
    }

    #[test]
    fn covariance_decays_with_distance() {
        let cfg = ShadowingConfig::default();
        let d = deployment();
        let cov = cfg.covariance(&d);
        // Off-diagonal entries are positive and below the diagonal.
        for i in 0..d.num_links() {
            for j in 0..d.num_links() {
                if i != j {
                    assert!(cov[(i, j)] > 0.0);
                    assert!(cov[(i, j)] <= cov[(i, i)] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let cfg = ShadowingConfig::default();
        let d = deployment();
        let a = cfg.sample(&d, &mut StdRng::seed_from_u64(9));
        let b = cfg.sample(&d, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = cfg.sample(&d, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn sample_statistics_match_sigma() {
        let cfg = ShadowingConfig { sigma_db: 3.0, decorrelation_m: 4.0 };
        let d = deployment();
        let mut rng = StdRng::seed_from_u64(1);
        let mut all = Vec::new();
        for _ in 0..500 {
            all.extend(cfg.sample(&d, &mut rng));
        }
        let mean: f64 = all.iter().sum::<f64>() / all.len() as f64;
        let var: f64 = all.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / all.len() as f64;
        assert!(mean.abs() < 0.3, "mean = {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.3, "std = {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_yields_zero_offsets() {
        let cfg = ShadowingConfig { sigma_db: 0.0, decorrelation_m: 4.0 };
        let offsets = cfg.sample(&deployment(), &mut StdRng::seed_from_u64(4));
        assert!(offsets.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn nearby_links_more_correlated_than_distant() {
        let cfg = ShadowingConfig::default();
        let d = deployment();
        let cov = cfg.covariance(&d);
        // Find the closest and farthest pairs of link midpoints and compare.
        let mids: Vec<_> = d.links().iter().map(|l| l.segment.midpoint()).collect();
        let mut close = (0, 1);
        let mut far = (0, 1);
        for i in 0..mids.len() {
            for j in (i + 1)..mids.len() {
                if mids[i].distance(&mids[j]) < mids[close.0].distance(&mids[close.1]) {
                    close = (i, j);
                }
                if mids[i].distance(&mids[j]) > mids[far.0].distance(&mids[far.1]) {
                    far = (i, j);
                }
            }
        }
        assert!(cov[(close.0, close.1)] > cov[(far.0, far.1)]);
    }
}
