//! Transceiver placement and link enumeration.
//!
//! The paper deploys `M` links around the monitored area (Fig. 2 shows WiFi
//! transceivers along the room's sides). Two builders are provided:
//!
//! * [`Deployment::perimeter`] — nodes evenly spaced around the (slightly
//!   expanded) region boundary, each link connecting diametrically opposite
//!   nodes. Links cross the region at varied angles, which is what both the
//!   fingerprint model and the RTI baseline need. This is the paper-default.
//! * [`Deployment::two_sided`] — transmitters on the left edge, receivers on the
//!   right, half the links parallel and half crossing; matches the poster's
//!   "deploy M links on the two sides of the monitoring area" description.

use crate::geometry::{Point, Segment};
use crate::grid::FloorGrid;
use serde::{Deserialize, Serialize};

/// A directed radio link between two deployed nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Index of the transmitting node in the deployment's node list.
    pub tx: usize,
    /// Index of the receiving node.
    pub rx: usize,
    /// The link's line-of-sight segment.
    pub segment: Segment,
}

/// A set of deployed transceiver nodes and the links between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    nodes: Vec<Point>,
    links: Vec<Link>,
}

impl Deployment {
    /// Builds a deployment from explicit nodes and `(tx, rx)` index pairs.
    ///
    /// Panics if an index is out of range — deployments are constructed from
    /// static configuration, so this is a programming error.
    pub fn new(nodes: Vec<Point>, pairs: &[(usize, usize)]) -> Self {
        let links = pairs
            .iter()
            .map(|&(tx, rx)| {
                assert!(tx < nodes.len() && rx < nodes.len(), "link index out of range");
                Link { tx, rx, segment: Segment::new(nodes[tx], nodes[rx]) }
            })
            .collect();
        Deployment { nodes, links }
    }

    /// Places `2 * num_links` nodes evenly around the region boundary (expanded
    /// outward by `margin` meters) and links each node to the diametrically
    /// opposite one, yielding `num_links` crisscrossing links.
    pub fn perimeter(grid: &FloorGrid, num_links: usize, margin: f64) -> Self {
        assert!(num_links >= 1, "need at least one link");
        let o = grid.origin();
        let (x0, y0) = (o.x - margin, o.y - margin);
        let (w, h) = (grid.width() + 2.0 * margin, grid.height() + 2.0 * margin);
        let perimeter_len = 2.0 * (w + h);
        let n_nodes = 2 * num_links;
        let nodes: Vec<Point> = (0..n_nodes)
            .map(|k| {
                let s = (k as f64 + 0.5) * perimeter_len / n_nodes as f64;
                point_on_rect(x0, y0, w, h, s)
            })
            .collect();
        let pairs: Vec<(usize, usize)> = (0..num_links).map(|i| (i, i + num_links)).collect();
        Deployment::new(nodes, &pairs)
    }

    /// Transmitters on the left edge, receivers on the right; even-indexed links
    /// run straight across, odd-indexed links cross to the mirrored height.
    pub fn two_sided(grid: &FloorGrid, num_links: usize, margin: f64) -> Self {
        assert!(num_links >= 1, "need at least one link");
        let o = grid.origin();
        let left_x = o.x - margin;
        let right_x = o.x + grid.width() + margin;
        let mut nodes = Vec::with_capacity(2 * num_links);
        for i in 0..num_links {
            let y = o.y + (i as f64 + 0.5) * grid.height() / num_links as f64;
            nodes.push(Point::new(left_x, y));
        }
        for i in 0..num_links {
            let y = o.y + (i as f64 + 0.5) * grid.height() / num_links as f64;
            nodes.push(Point::new(right_x, y));
        }
        let pairs: Vec<(usize, usize)> = (0..num_links)
            .map(|i| {
                let rx = if i % 2 == 0 { num_links + i } else { num_links + (num_links - 1 - i) };
                (i, rx)
            })
            .collect();
        Deployment::new(nodes, &pairs)
    }

    /// Number of links `M`.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of deployed nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow link `i`. Panics when out of range.
    pub fn link(&self, i: usize) -> &Link {
        &self.links[i]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All node positions.
    pub fn nodes(&self) -> &[Point] {
        &self.nodes
    }

    /// Indices of the `k` links whose midpoints are nearest to link `i`'s midpoint
    /// (excluding `i` itself), nearest first. This defines "adjacent links" for the
    /// similarity operator `H`.
    pub fn adjacent_links(&self, i: usize, k: usize) -> Vec<usize> {
        assert!(i < self.links.len(), "link index out of range");
        let mi = self.links[i].segment.midpoint();
        let mut others: Vec<(usize, f64)> = self
            .links
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, l)| (j, l.segment.midpoint().distance(&mi)))
            .collect();
        others.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        others.into_iter().take(k).map(|(j, _)| j).collect()
    }
}

/// Point at arc-length `s` along the boundary of the axis-aligned rectangle with
/// lower-left `(x0, y0)`, width `w`, height `h`, walking counterclockwise from the
/// lower-left corner.
fn point_on_rect(x0: f64, y0: f64, w: f64, h: f64, s: f64) -> Point {
    let s = s.rem_euclid(2.0 * (w + h));
    if s < w {
        Point::new(x0 + s, y0)
    } else if s < w + h {
        Point::new(x0 + w, y0 + (s - w))
    } else if s < 2.0 * w + h {
        Point::new(x0 + w - (s - w - h), y0 + h)
    } else {
        Point::new(x0, y0 + h - (s - 2.0 * w - h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> FloorGrid {
        FloorGrid::new(Point::new(0.0, 0.0), 0.6, 8, 12)
    }

    #[test]
    fn point_on_rect_walks_all_sides() {
        // Unit square, perimeter 4.
        let bottom = point_on_rect(0.0, 0.0, 1.0, 1.0, 0.5);
        assert_eq!((bottom.x, bottom.y), (0.5, 0.0));
        let right = point_on_rect(0.0, 0.0, 1.0, 1.0, 1.5);
        assert_eq!((right.x, right.y), (1.0, 0.5));
        let top = point_on_rect(0.0, 0.0, 1.0, 1.0, 2.5);
        assert_eq!((top.x, top.y), (0.5, 1.0));
        let left = point_on_rect(0.0, 0.0, 1.0, 1.0, 3.5);
        assert_eq!((left.x, left.y), (0.0, 0.5));
        // Wraps around.
        let wrapped = point_on_rect(0.0, 0.0, 1.0, 1.0, 4.5);
        assert_eq!((wrapped.x, wrapped.y), (0.5, 0.0));
    }

    #[test]
    fn perimeter_counts() {
        let d = Deployment::perimeter(&grid(), 10, 0.3);
        assert_eq!(d.num_links(), 10);
        assert_eq!(d.num_nodes(), 20);
    }

    #[test]
    fn perimeter_links_cross_region() {
        let g = grid();
        let d = Deployment::perimeter(&g, 10, 0.3);
        let center = Point::new(g.origin().x + g.width() / 2.0, g.origin().y + g.height() / 2.0);
        // Diametric links pass near the center; all must come within half the
        // region diagonal.
        let diag = (g.width().powi(2) + g.height().powi(2)).sqrt();
        for l in d.links() {
            assert!(l.segment.distance_to_point(&center) < diag / 2.0);
            assert!(l.segment.length() > 0.0);
        }
    }

    #[test]
    fn perimeter_nodes_outside_region() {
        let g = grid();
        let d = Deployment::perimeter(&g, 8, 0.3);
        for n in d.nodes() {
            // Every node sits on the expanded boundary, i.e. outside the grid.
            assert!(g.cell_at(n).is_none());
        }
    }

    #[test]
    fn two_sided_structure() {
        let g = grid();
        let d = Deployment::two_sided(&g, 6, 0.3);
        assert_eq!(d.num_links(), 6);
        assert_eq!(d.num_nodes(), 12);
        // Even links are horizontal (same y at both ends).
        let l0 = d.link(0);
        assert!((l0.segment.a.y - l0.segment.b.y).abs() < 1e-12);
        // Odd links cross (different y).
        let l1 = d.link(1);
        assert!((l1.segment.a.y - l1.segment.b.y).abs() > 1e-6);
        // All transmitters left of all receivers.
        for l in d.links() {
            assert!(l.segment.a.x < l.segment.b.x);
        }
    }

    #[test]
    fn adjacent_links_sorted_and_excludes_self() {
        let d = Deployment::perimeter(&grid(), 10, 0.3);
        let adj = d.adjacent_links(3, 4);
        assert_eq!(adj.len(), 4);
        assert!(!adj.contains(&3));
        let m3 = d.link(3).segment.midpoint();
        let d0 = d.link(adj[0]).segment.midpoint().distance(&m3);
        let d3 = d.link(adj[3]).segment.midpoint().distance(&m3);
        assert!(d0 <= d3);
    }

    #[test]
    fn adjacent_links_clamps_k() {
        let d = Deployment::perimeter(&grid(), 4, 0.3);
        assert_eq!(d.adjacent_links(0, 100).len(), 3);
    }

    #[test]
    #[should_panic]
    fn bad_pair_index_panics() {
        Deployment::new(vec![Point::new(0.0, 0.0)], &[(0, 5)]);
    }
}
