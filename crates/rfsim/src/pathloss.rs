//! Large-scale path loss: the log-distance model.
//!
//! Baseline (no-target) RSS of each link is produced by the classic indoor
//! log-distance model: `RSS(d) = P₀ − 10·n·log₁₀(d / d₀)`, with `P₀` the received
//! power at reference distance `d₀` and `n` the path-loss exponent (≈ 2 free
//! space, 2.5-4 indoors).

use serde::{Deserialize, Serialize};

/// Log-distance path-loss model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogDistance {
    /// Received power (dBm) at the reference distance.
    pub p0_dbm: f64,
    /// Reference distance in meters (must be positive).
    pub d0: f64,
    /// Path-loss exponent.
    pub exponent: f64,
}

impl LogDistance {
    /// Typical 2.4 GHz indoor parameterization: −30 dBm at 1 m, exponent 3.0.
    pub fn indoor_2_4ghz() -> Self {
        LogDistance { p0_dbm: -30.0, d0: 1.0, exponent: 3.0 }
    }

    /// Received signal strength (dBm) at distance `d` meters.
    ///
    /// Distances below `d0` are clamped to `d0` — the model is not meaningful in
    /// the near field and the clamp keeps RSS finite for co-located nodes.
    pub fn rss(&self, d: f64) -> f64 {
        let d = d.max(self.d0);
        self.p0_dbm - 10.0 * self.exponent * (d / self.d0).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_at_reference_distance() {
        let m = LogDistance::indoor_2_4ghz();
        assert_eq!(m.rss(1.0), -30.0);
    }

    #[test]
    fn rss_decreases_with_distance() {
        let m = LogDistance::indoor_2_4ghz();
        assert!(m.rss(2.0) < m.rss(1.0));
        assert!(m.rss(10.0) < m.rss(2.0));
    }

    #[test]
    fn decade_slope_matches_exponent() {
        let m = LogDistance { p0_dbm: -30.0, d0: 1.0, exponent: 3.0 };
        // One decade of distance = 10 * n dB of loss.
        assert!((m.rss(1.0) - m.rss(10.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn near_field_clamped() {
        let m = LogDistance::indoor_2_4ghz();
        assert_eq!(m.rss(0.0), -30.0);
        assert_eq!(m.rss(0.5), -30.0);
    }

    #[test]
    fn custom_reference_distance() {
        let m = LogDistance { p0_dbm: -40.0, d0: 2.0, exponent: 2.0 };
        assert_eq!(m.rss(2.0), -40.0);
        assert!((m.rss(20.0) - (-60.0)).abs() < 1e-12);
    }
}
