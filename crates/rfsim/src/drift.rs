//! Temporal RSS drift.
//!
//! The paper's key observation is that fingerprints expire: *"even without any
//! change in the environment, the RSS measurements still change slowly in the
//! scale of days due to temperature and humidity changes. In our experiments, the
//! RSS values change 2.5 dBm and 6 dBm respectively after 5 and 45 days."*
//!
//! We model drift as Ornstein-Uhlenbeck (OU) processes sampled at daily
//! resolution, started from stationarity:
//!
//! * a **per-link** component (dominant; temperature/humidity affect a whole
//!   radio path and the transceiver electronics), and
//! * a smaller **per-entry** component (the target-present multipath pattern of
//!   each (link, cell) pair also ages), which is what makes reconstruction
//!   degrade gracefully with horizon length as in Fig. 3.
//!
//! For an OU process with stationary variance `σ²` and time constant `τ`, the
//! increment over `t` days has variance `2σ²(1 − e^{−t/τ})`, hence mean absolute
//! change `σ_Δ(t)·√(2/π)`. [`DriftConfig::paper_calibrated`] solves these for the
//! paper's (2.5 dBm @ 5 d, 6 dBm @ 45 d) pair, giving `τ ≈ 40` days and
//! `σ ≈ 6.4` dBm for the total drift, split between the two components.
//!
//! Evaluation is *random access*: `drift(t)` for any day is reproducible for a
//! given world seed regardless of query order, implemented with the counter-based
//! Gaussian generator in [`crate::rng`].

use crate::rng::gaussian;
use serde::{Deserialize, Serialize};

/// Drift model parameters.
///
/// Three OU components with different roles:
///
/// * **link** (`link_sigma_db`, `tau_days`) — the slow environmental drift of a
///   whole radio path (temperature/humidity, transceiver electronics). This is
///   what the paper's in-text anchors measure: *"the RSS values change 2.5 dBm
///   and 6 dBm respectively after 5 and 45 days"*.
/// * **entry, slow** (`entry_sigma_db`, `tau_days`) — the target-present
///   multipath pattern of each (link, cell) pair ages on the same timescale;
///   this is what makes reconstruction degrade with horizon length (Fig. 3's
///   growth).
/// * **entry, fast** (`entry_fast_sigma_db`, `entry_fast_tau_days`) — channel
///   variation that decorrelates within hours. It is why even a 3-day-old
///   correlation structure cannot reconstruct perfectly (the paper's ~2.7 dBm
///   floor at 3 days, against link drift of well under 2.5 dBm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Stationary standard deviation (dB) of the per-link OU component.
    pub link_sigma_db: f64,
    /// Stationary standard deviation (dB) of the slow per-entry OU component.
    pub entry_sigma_db: f64,
    /// OU time constant in days (link and slow-entry components).
    pub tau_days: f64,
    /// Stationary standard deviation (dB) of the fast per-entry OU component.
    pub entry_fast_sigma_db: f64,
    /// OU time constant (days) of the fast per-entry component.
    pub entry_fast_tau_days: f64,
}

impl DriftConfig {
    /// Calibration matching the paper's in-text drift magnitudes on the link
    /// level — mean |ΔRSS| ≈ 2.5 dBm after 5 days and ≈ 6 dBm after 45 days —
    /// plus entry-level aging consistent with the Fig. 3 reconstruction-error
    /// floor and growth.
    ///
    /// Derivation of the link component: with `r(t) = 2(1 − e^{−t/τ})`,
    /// matching the ratio `(6/2.5)² = r(45)/r(5)` gives `τ ≈ 40` days; the
    /// level then fixes the stationary σ at ≈ 6.5 dB.
    pub fn paper_calibrated() -> Self {
        let tau: f64 = 40.0;
        // E|Δ| = σ_Δ·√(2/π)  =>  σ_Δ(5) = 2.5 / √(2/π) ≈ 3.133.
        let sigma_delta_5 = 2.5 / (2.0 / std::f64::consts::PI).sqrt();
        let link_var = sigma_delta_5 * sigma_delta_5 / (2.0 * (1.0 - (-5.0 / tau).exp()));
        DriftConfig {
            link_sigma_db: link_var.sqrt(),
            entry_sigma_db: 2.2,
            tau_days: tau,
            entry_fast_sigma_db: 0.8,
            entry_fast_tau_days: 0.5,
        }
    }

    /// A drift-free configuration (for tests and ablations).
    pub fn none() -> Self {
        DriftConfig {
            link_sigma_db: 0.0,
            entry_sigma_db: 0.0,
            tau_days: 1.0,
            entry_fast_sigma_db: 0.0,
            entry_fast_tau_days: 1.0,
        }
    }

    /// Standard deviation of the change of the **link-level** drift between day
    /// 0 and day `t`, in dB.
    pub fn link_delta_sigma(&self, t_days: f64) -> f64 {
        (2.0 * self.link_sigma_db.powi(2) * (1.0 - (-t_days / self.tau_days).exp())).sqrt()
    }

    /// Expected mean absolute change of the **link-level** drift after `t`
    /// days, in dB (`E|Δ| = σ_Δ·√(2/π)` for a Gaussian increment) — the
    /// quantity the paper's 2.5 dBm / 6 dBm anchors refer to.
    pub fn expected_abs_change(&self, t_days: f64) -> f64 {
        self.link_delta_sigma(t_days) * (2.0 / std::f64::consts::PI).sqrt()
    }

    /// Standard deviation of the change of one fingerprint **entry** between
    /// day 0 and day `t` (all three components), in dB.
    pub fn entry_delta_sigma(&self, t_days: f64) -> f64 {
        let slow = 2.0
            * (self.link_sigma_db.powi(2) + self.entry_sigma_db.powi(2))
            * (1.0 - (-t_days / self.tau_days).exp());
        let fast = 2.0
            * self.entry_fast_sigma_db.powi(2)
            * (1.0 - (-t_days / self.entry_fast_tau_days).exp());
        (slow + fast).sqrt()
    }
}

/// One OU trajectory, addressed by integer day, evaluated deterministically from
/// `(seed, stream)` with an internal cache for cheap sequential access.
///
/// Day 0 is a stationary draw; day `d` follows the exact OU discretization
/// `x_d = ρ·x_{d−1} + σ·√(1−ρ²)·ξ_d` with `ρ = e^{−1/τ}`.
///
/// ```
/// use taf_rfsim::drift::OuProcess;
/// let p = OuProcess::new(42, 0, 2.0, 40.0);
/// // Random access is deterministic: any query order gives the same values.
/// let v = p.at_day(90);
/// assert_eq!(OuProcess::new(42, 0, 2.0, 40.0).at_day(90), v);
/// ```
#[derive(Debug, Clone)]
pub struct OuProcess {
    seed: u64,
    stream: u64,
    sigma: f64,
    rho: f64,
    /// Cache of the most recently evaluated `(day, value)`.
    cache: std::cell::Cell<(u64, f64)>,
    cache_valid: std::cell::Cell<bool>,
}

impl OuProcess {
    /// Creates the process for a `(seed, stream)` pair.
    pub fn new(seed: u64, stream: u64, sigma: f64, tau_days: f64) -> Self {
        assert!(tau_days > 0.0, "tau must be positive");
        OuProcess {
            seed,
            stream,
            sigma,
            rho: (-1.0 / tau_days).exp(),
            cache: std::cell::Cell::new((0, 0.0)),
            cache_valid: std::cell::Cell::new(false),
        }
    }

    /// Value at integer day `d` (deterministic, random-access).
    pub fn at_day(&self, d: u64) -> f64 {
        if self.sigma == 0.0 {
            return 0.0;
        }
        let (mut day, mut x) = if self.cache_valid.get() && self.cache.get().0 <= d {
            self.cache.get()
        } else {
            (0, self.sigma * gaussian(self.seed, self.stream, 0))
        };
        let step_scale = self.sigma * (1.0 - self.rho * self.rho).sqrt();
        while day < d {
            day += 1;
            x = self.rho * x + step_scale * gaussian(self.seed, self.stream, day);
        }
        self.cache.set((day, x));
        self.cache_valid.set(true);
        x
    }

    /// Value at (possibly fractional) `t` days, by linear interpolation between
    /// the surrounding integer days. Negative times evaluate at day 0.
    pub fn at(&self, t_days: f64) -> f64 {
        if t_days <= 0.0 {
            return self.at_day(0);
        }
        let lo = t_days.floor() as u64;
        let hi = lo + 1;
        let frac = t_days - lo as f64;
        if frac == 0.0 {
            self.at_day(lo)
        } else {
            self.at_day(lo) * (1.0 - frac) + self.at_day(hi) * frac
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_hits_both_anchors() {
        let cfg = DriftConfig::paper_calibrated();
        let at5 = cfg.expected_abs_change(5.0);
        let at45 = cfg.expected_abs_change(45.0);
        assert!((at5 - 2.5).abs() < 0.1, "5-day drift {at5} should be ~2.5 dBm");
        assert!((at45 - 6.0).abs() < 0.35, "45-day drift {at45} should be ~6 dBm");
    }

    #[test]
    fn expected_change_monotone_in_time() {
        let cfg = DriftConfig::paper_calibrated();
        let mut prev = 0.0;
        for d in [1.0, 3.0, 5.0, 15.0, 45.0, 90.0] {
            let v = cfg.expected_abs_change(d);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn none_config_is_zero() {
        let cfg = DriftConfig::none();
        assert_eq!(cfg.expected_abs_change(45.0), 0.0);
        let p = OuProcess::new(1, 2, cfg.link_sigma_db, cfg.tau_days);
        assert_eq!(p.at(45.0), 0.0);
    }

    #[test]
    fn ou_deterministic_random_access() {
        let p = OuProcess::new(11, 3, 2.0, 40.0);
        let q = OuProcess::new(11, 3, 2.0, 40.0);
        // Query q out of order; must agree with p's in-order evaluation.
        let v90 = q.at_day(90);
        let v5 = q.at_day(5);
        assert_eq!(p.at_day(5), v5);
        assert_eq!(p.at_day(90), v90);
    }

    #[test]
    fn ou_streams_independent() {
        let p = OuProcess::new(11, 0, 2.0, 40.0);
        let q = OuProcess::new(11, 1, 2.0, 40.0);
        assert_ne!(p.at_day(10), q.at_day(10));
    }

    #[test]
    fn ou_interpolates_fractional_days() {
        let p = OuProcess::new(5, 0, 2.0, 40.0);
        let a = p.at_day(3);
        let b = p.at_day(4);
        let mid = p.at(3.5);
        assert!((mid - (a + b) / 2.0).abs() < 1e-12);
        assert_eq!(p.at(-1.0), p.at_day(0));
        assert_eq!(p.at(3.0), a);
    }

    #[test]
    fn ou_increment_statistics_match_theory() {
        // Monte-Carlo over many independent streams: Var[x(t) − x(0)] must match
        // 2σ²(1 − e^{−t/τ}).
        let sigma = 3.0;
        let tau = 40.0;
        let t = 45u64;
        let n = 4000;
        let mut sq = 0.0;
        for s in 0..n {
            let p = OuProcess::new(99, s, sigma, tau);
            let d = p.at_day(t) - p.at_day(0);
            sq += d * d;
        }
        let var = sq / n as f64;
        let expect = 2.0 * sigma * sigma * (1.0 - (-(t as f64) / tau).exp());
        assert!((var - expect).abs() / expect < 0.1, "empirical {var:.3} vs theory {expect:.3}");
    }

    #[test]
    fn ou_stationary_variance() {
        let sigma = 2.0;
        let n = 4000;
        let mut sq = 0.0;
        for s in 0..n {
            let p = OuProcess::new(123, s, sigma, 40.0);
            let v = p.at_day(0);
            sq += v * v;
        }
        let var = sq / n as f64;
        assert!((var - 4.0).abs() < 0.4, "stationary var {var} should be ~4");
    }

    #[test]
    #[should_panic]
    fn non_positive_tau_panics() {
        OuProcess::new(1, 1, 1.0, 0.0);
    }
}
