//! # taf-rfsim
//!
//! Indoor RF propagation and RSS measurement-campaign simulator.
//!
//! The TafLoc paper evaluates on a physical testbed: Atheros AR9331 WiFi
//! transceivers around a 9 m x 12 m room, 10 links over a 96-grid monitored area,
//! observed for 3 months. That hardware and those traces are not available, so this
//! crate is the substitution: a physical-layer simulator that reproduces the
//! *structural properties* the TafLoc algorithms exploit:
//!
//! 1. **Approximate low rank** of the fingerprint matrix — RSS is generated from a
//!    smooth physical model (log-distance path loss + an elliptical Fresnel-zone
//!    blocking model), so nearby columns share structure.
//! 2. **Linear representability** — columns are smooth functions of target position,
//!    hence well approximated by combinations of a few reference columns.
//! 3. **Continuity / similarity** — the blocking model varies continuously along a
//!    link and similarly across adjacent links.
//! 4. **Temporal drift** — per-link and per-entry Ornstein-Uhlenbeck drift
//!    calibrated to the paper's in-text numbers (mean |ΔRSS| ≈ 2.5 dBm after 5 days
//!    and ≈ 6 dBm after 45 days).
//! 5. **Measurement noise** — Gaussian dBm noise with 1-dBm quantization, in the
//!    paper's stated 1-4 dBm range.
//!
//! The top-level entry point is [`World`]: build one (e.g.
//! [`World::paper_default`]), then run [`campaign`] functions against it to obtain
//! fingerprint matrices, reference updates and online snapshots.
//!
//! ```
//! use taf_rfsim::{World, WorldConfig};
//! use taf_rfsim::campaign;
//!
//! let world = World::new(WorldConfig::small_test(), 42);
//! let x0 = campaign::full_calibration(&world, 0.0, 7);
//! assert_eq!(x0.rows(), world.num_links());
//! assert_eq!(x0.cols(), world.num_cells());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` deliberately rejects NaN along with non-positive values in
// config validation — the clippy lint suggesting `x <= 0.0` would silently
// accept NaN. Indexed loops are used where two or more parallel buffers are
// driven by one index; rewriting them as iterator chains hurts readability in
// the numerical kernels.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod campaign;
pub mod deployment;
pub mod drift;
pub mod events;
pub mod faults;
pub mod geometry;
pub mod grid;
pub mod noise;
pub mod pathloss;
pub mod rng;
pub mod shadowing;
pub mod stream;
pub mod target;
pub mod trajectory;
pub mod world;

pub use deployment::{Deployment, Link};
pub use events::EnvironmentEvent;
pub use faults::{Fault, FaultSchedule};
pub use geometry::{Point, Segment};
pub use grid::FloorGrid;
pub use stream::{RawSample, StreamConfig};
pub use trajectory::{Trajectory, WaypointConfig};
pub use world::{World, WorldConfig};
