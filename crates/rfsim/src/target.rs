//! The target's effect on link RSS: elliptical shadowing plus diffuse multipath.
//!
//! A device-free target perturbs a link in two ways:
//!
//! * **Line-of-sight shadowing** — when the target stands inside the link's first
//!   Fresnel zone it attenuates the direct path. Following the radio-tomography
//!   literature (and RTI's weight model), the attenuation decays exponentially in
//!   the *excess path length* of the target position relative to the direct path,
//!   so it is largest on the LoS and fades smoothly — exactly the "largely
//!   distorted, continuous along the link, similar across adjacent links"
//!   structure the TafLoc poster describes.
//! * **Diffuse multipath scattering** — off the LoS the body still reflects
//!   energy, producing small positive or negative RSS changes. Modeled as a
//!   smooth, link-dependent pseudo-random field so that it is reproducible per
//!   world seed yet varies across links and positions.

use crate::geometry::{Point, Segment};
use serde::{Deserialize, Serialize};

/// Target perturbation model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetModel {
    /// Peak line-of-sight attenuation (dB) when the target stands on the direct
    /// path. Human bodies at 2.4 GHz typically shadow 5-15 dB.
    pub max_attenuation_db: f64,
    /// Exponential decay constant (meters of excess path length) of the
    /// shadowing — the "width" of the sensitive ellipse.
    pub decay_m: f64,
    /// Amplitude (dB) of the diffuse scattering field.
    pub scatter_db: f64,
    /// Spatial frequency (rad/m) of the scattering field.
    pub scatter_freq: f64,
}

impl Default for TargetModel {
    fn default() -> Self {
        TargetModel { max_attenuation_db: 10.0, decay_m: 0.5, scatter_db: 1.2, scatter_freq: 3.0 }
    }
}

impl TargetModel {
    /// Line-of-sight shadowing (dB, non-negative) caused by a target at `p` on the
    /// link with segment `seg`.
    pub fn shadowing_db(&self, seg: &Segment, p: &Point) -> f64 {
        let excess = seg.excess_path_length(p);
        self.max_attenuation_db * (-excess / self.decay_m).exp()
    }

    /// Diffuse scattering (dB, signed) for link `link_idx` of the world with
    /// `seed`, target at `p`.
    ///
    /// Modeled as a superposition of three plane waves with per-link
    /// deterministic orientations, frequencies and phases: smooth in `p` (so the
    /// continuity property survives), rich enough spatially that distinct cells
    /// produce distinct fingerprints (real indoor multipath makes every position
    /// perturb every link a little, which is what makes 0.6 m fingerprinting
    /// possible at all), and decorrelated across links and seeds.
    pub fn scatter_db(&self, seed: u64, link_idx: usize, p: &Point) -> f64 {
        if self.scatter_db == 0.0 {
            return 0.0;
        }
        let link = link_idx as u64;
        let mut acc = 0.0;
        for comp in 0..3u64 {
            let theta = phase(seed, link, 3 * comp); // wave orientation
            let jitter = phase(seed, link, 3 * comp + 1) / std::f64::consts::TAU; // [0,1)
            let f = self.scatter_freq * (0.6 + 0.9 * jitter);
            let phi = phase(seed, link, 3 * comp + 2);
            acc += (f * (p.x * theta.cos() + p.y * theta.sin()) + phi).sin();
        }
        // Normalize so the field's standard deviation is ~scatter_db
        // (each sin has variance 1/2; three independent components sum to 3/2).
        self.scatter_db * acc / 1.5_f64.sqrt()
    }

    /// Total RSS change (dB, typically negative) on a link when the target stands
    /// at `p`: `-(shadowing) + scattering`.
    pub fn rss_delta_db(&self, seed: u64, link_idx: usize, seg: &Segment, p: &Point) -> f64 {
        -self.shadowing_db(seg, p) + self.scatter_db(seed, link_idx, p)
    }
}

/// Deterministic phase in `[0, 2π)` for `(seed, link, which)`.
fn phase(seed: u64, link: u64, which: u64) -> f64 {
    crate::rng::uniform(seed ^ 0x7A4F_10C5_55AA_33CC, link, which) * std::f64::consts::TAU
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0))
    }

    #[test]
    fn shadowing_max_on_los() {
        let m = TargetModel::default();
        let on_los = m.shadowing_db(&seg(), &Point::new(5.0, 0.0));
        assert!((on_los - m.max_attenuation_db).abs() < 1e-12);
    }

    #[test]
    fn shadowing_decays_off_axis() {
        let m = TargetModel::default();
        let a = m.shadowing_db(&seg(), &Point::new(5.0, 0.3));
        let b = m.shadowing_db(&seg(), &Point::new(5.0, 1.0));
        let c = m.shadowing_db(&seg(), &Point::new(5.0, 4.0));
        assert!(a > b && b > c);
        assert!(c < 0.3, "far off-axis shadowing should be negligible, got {c}");
    }

    #[test]
    fn shadowing_continuous_along_link() {
        // Property P3 (continuity): moving the target along the link axis changes
        // shadowing smoothly.
        let m = TargetModel::default();
        let mut prev = m.shadowing_db(&seg(), &Point::new(1.0, 0.4));
        for k in 1..40 {
            let x = 1.0 + 8.0 * k as f64 / 40.0;
            let cur = m.shadowing_db(&seg(), &Point::new(x, 0.4));
            assert!((cur - prev).abs() < 1.0, "jump at x={x}: {prev} -> {cur}");
            prev = cur;
        }
    }

    #[test]
    fn scatter_is_bounded_and_deterministic() {
        let m = TargetModel::default();
        let p = Point::new(3.3, 4.4);
        let a = m.scatter_db(7, 2, &p);
        let b = m.scatter_db(7, 2, &p);
        assert_eq!(a, b);
        assert!(a.abs() <= m.scatter_db * 2.5, "scatter {a} out of range");
    }

    #[test]
    fn scatter_varies_across_links_and_seeds() {
        let m = TargetModel::default();
        let p = Point::new(2.0, 1.0);
        let by_link: Vec<f64> = (0..6).map(|l| m.scatter_db(7, l, &p)).collect();
        let distinct = by_link.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9);
        assert!(distinct, "scatter should differ across links: {by_link:?}");
        assert_ne!(m.scatter_db(7, 0, &p), m.scatter_db(8, 0, &p));
    }

    #[test]
    fn zero_scatter_config() {
        let m = TargetModel { scatter_db: 0.0, ..TargetModel::default() };
        assert_eq!(m.scatter_db(1, 0, &Point::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn rss_delta_negative_on_los() {
        let m = TargetModel::default();
        let delta = m.rss_delta_db(7, 0, &seg(), &Point::new(5.0, 0.0));
        let bound = -(m.max_attenuation_db - 2.5 * m.scatter_db);
        assert!(delta < bound, "LoS block must clearly decrease RSS, got {delta}");
    }

    #[test]
    fn rss_delta_small_far_away() {
        let m = TargetModel::default();
        let delta = m.rss_delta_db(7, 0, &seg(), &Point::new(5.0, 5.0));
        assert!(delta.abs() <= 2.5 * m.scatter_db + 0.1);
    }
}
