//! Deterministic random-access random numbers.
//!
//! Drift processes need Gaussian increments addressable by `(seed, stream, step)`
//! without storing trajectories: evaluating the drift of entry `(link, cell)` at day
//! `d` must give the same answer no matter the query order or what else was
//! sampled. A counter-based generator (SplitMix64 over a mixed key) provides that;
//! Box-Muller turns pairs of uniforms into standard normals.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic 64-bit value for `(seed, stream, step)`.
pub fn hash_u64(seed: u64, stream: u64, step: u64) -> u64 {
    // Mix the three keys through successive SplitMix rounds; each round fully
    // avalanches, so distinct inputs give effectively independent outputs.
    splitmix64(splitmix64(splitmix64(seed) ^ stream) ^ step)
}

/// Deterministic uniform sample in the open interval `(0, 1)`.
pub fn uniform(seed: u64, stream: u64, step: u64) -> f64 {
    // 53 random mantissa bits; +0.5 keeps the value strictly inside (0, 1).
    let bits = hash_u64(seed, stream, step) >> 11;
    (bits as f64 + 0.5) / (1u64 << 53) as f64
}

/// Deterministic standard-normal sample for `(seed, stream, step)` via Box-Muller.
pub fn gaussian(seed: u64, stream: u64, step: u64) -> f64 {
    let u1 = uniform(seed, stream, step.wrapping_mul(2));
    let u2 = uniform(seed, stream, step.wrapping_mul(2).wrapping_add(1));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A stateful Gaussian sampler over an `rand::Rng`, for the measurement-noise path
/// where sequential sampling is natural. Implements Box-Muller with caching of the
/// second variate.
#[derive(Debug)]
pub struct GaussianSource<R> {
    rng: R,
    spare: Option<f64>,
}

impl<R: rand::Rng> GaussianSource<R> {
    /// Wraps an RNG.
    pub fn new(rng: R) -> Self {
        GaussianSource { rng, spare: None }
    }

    /// Draws one standard-normal sample.
    pub fn sample(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Draw uniforms in (0,1); `random::<f64>()` yields [0,1), so flip to (0,1].
        let u1: f64 = 1.0 - self.rng.random::<f64>();
        let u2: f64 = self.rng.random::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a normal sample with the given mean and standard deviation.
    pub fn sample_scaled(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.sample()
    }

    /// Access the wrapped RNG (for interleaved non-Gaussian draws).
    pub fn rng_mut(&mut self) -> &mut R {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hash_is_deterministic_and_sensitive() {
        assert_eq!(hash_u64(1, 2, 3), hash_u64(1, 2, 3));
        assert_ne!(hash_u64(1, 2, 3), hash_u64(1, 2, 4));
        assert_ne!(hash_u64(1, 2, 3), hash_u64(1, 3, 3));
        assert_ne!(hash_u64(1, 2, 3), hash_u64(2, 2, 3));
    }

    #[test]
    fn uniform_in_open_interval() {
        for step in 0..10_000 {
            let u = uniform(7, 1, step);
            assert!(u > 0.0 && u < 1.0, "u = {u}");
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let n = 20_000;
        let mean: f64 = (0..n).map(|s| uniform(11, 0, s)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|s| gaussian(3, 9, s)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn gaussian_deterministic_random_access() {
        let a = gaussian(5, 2, 77);
        let b = gaussian(5, 2, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn gaussian_source_moments() {
        let mut g = GaussianSource::new(StdRng::seed_from_u64(1));
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample()).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn gaussian_source_scaled() {
        let mut g = GaussianSource::new(StdRng::seed_from_u64(2));
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| g.sample_scaled(10.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn gaussian_source_all_finite() {
        let mut g = GaussianSource::new(StdRng::seed_from_u64(3));
        for _ in 0..10_000 {
            assert!(g.sample().is_finite());
        }
    }
}
