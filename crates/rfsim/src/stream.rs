//! Raw per-link sample streams: what radios actually emit.
//!
//! The campaigns in [`crate::campaign`] return *averaged* fingerprint vectors —
//! the idealized input the paper's algorithms consume. Real deployments never
//! see that directly: each link reports individual RSS samples at some rate,
//! timestamps jitter, packets are lost, and delivery order is only
//! approximately chronological. This module simulates that raw layer so the
//! ingestion pipeline (`tafloc-ingest`) can be exercised end to end: a stream
//! here, windowed and aggregated there, should reproduce what
//! [`crate::campaign::snapshot_at_cell`] hands the localizer directly.
//!
//! Streams are deterministic given `(world seed, stream seed, kind)` — the same
//! discipline as campaigns — so tests and benches are replayable.

use crate::geometry::Point;
use crate::rng::hash_u64;
use crate::world::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Campaign-kind key for stream RNG separation (campaigns use 0x01–0x03).
const KIND_STREAM: u64 = 0x04;

/// Shape of a simulated raw sample stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Per-link sampling rate (Hz). The paper's testbed reports ~1 Hz.
    pub rate_hz: f64,
    /// Stream length in seconds; each link nominally emits
    /// `duration_s * rate_hz` samples.
    pub duration_s: f64,
    /// Timestamp jitter as a fraction of the sample period: each timestamp is
    /// perturbed by up to `±jitter_frac/2` periods around its nominal tick.
    pub jitter_frac: f64,
    /// Independent per-sample loss probability in `[0, 1)`.
    pub loss_rate: f64,
    /// Probability of swapping each adjacent pair in the delivered stream,
    /// simulating mild network reordering.
    pub reorder_prob: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            rate_hz: 1.0,
            duration_s: 60.0,
            jitter_frac: 0.05,
            loss_rate: 0.0,
            reorder_prob: 0.0,
        }
    }
}

impl StreamConfig {
    /// Panics on out-of-range parameters. Called by every stream generator;
    /// public so scenario definitions (taf-testkit) can fail fast too.
    pub fn assert_valid(&self) {
        assert!(self.rate_hz > 0.0 && self.rate_hz.is_finite(), "rate_hz must be positive");
        assert!(
            self.duration_s > 0.0 && self.duration_s.is_finite(),
            "duration_s must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.jitter_frac),
            "jitter_frac must be in [0, 1], got {}",
            self.jitter_frac
        );
        assert!(
            (0.0..1.0).contains(&self.loss_rate),
            "loss_rate must be in [0, 1), got {}",
            self.loss_rate
        );
        assert!(
            (0.0..=1.0).contains(&self.reorder_prob),
            "reorder_prob must be in [0, 1], got {}",
            self.reorder_prob
        );
    }

    /// Nominal number of samples each link emits before loss.
    pub fn samples_per_link(&self) -> usize {
        ((self.duration_s * self.rate_hz).round() as usize).max(1)
    }
}

/// One raw measurement as a radio would report it. Field-compatible with the
/// ingestion pipeline's wire sample type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawSample {
    /// Link index in `0..world.num_links()`.
    pub link: usize,
    /// Stream-clock timestamp in seconds from the start of the stream.
    pub t_s: f64,
    /// Observed RSS (dBm): truth + per-sample noise + quantization.
    pub rss_dbm: f64,
}

fn stream_rng(world: &World, t_days: f64, stream_seed: u64, link: u64) -> StdRng {
    let t_key = (t_days * 1000.0).round() as i64 as u64;
    StdRng::seed_from_u64(hash_u64(
        world.seed() ^ KIND_STREAM.wrapping_mul(0x9E37_79B9),
        t_key,
        stream_seed.wrapping_mul(0x517C_C1B7_2722_0A95) ^ link,
    ))
}

/// Simulates the raw sample stream for a stationary scene at `t_days`:
/// `target = Some(p)` for a person standing at `p`, `None` for the empty room.
///
/// Every link samples at `config.rate_hz` for `config.duration_s` seconds;
/// timestamps jitter around nominal ticks, samples are lost independently, and
/// the merged stream is delivered in near-chronological order with optional
/// adjacent swaps. Deterministic in all arguments.
pub fn sample_stream(
    world: &World,
    t_days: f64,
    target: Option<&Point>,
    config: &StreamConfig,
    stream_seed: u64,
) -> Vec<RawSample> {
    config.assert_valid();
    let noise = world.config().noise;
    let dt = 1.0 / config.rate_hz;
    let per_link = config.samples_per_link();
    let mut out: Vec<RawSample> = Vec::with_capacity(per_link * world.num_links());
    for link in 0..world.num_links() {
        let mut rng = stream_rng(world, t_days, stream_seed, link as u64);
        let truth = match target {
            Some(p) => world.rss_with_target_at(link, p, t_days),
            None => world.empty_rss(link, t_days),
        };
        for k in 0..per_link {
            // Draw per-sample randomness unconditionally so the kept samples'
            // values do not depend on which other samples were lost.
            let jitter = (rng.random::<f64>() - 0.5) * config.jitter_frac * dt;
            let rss = noise.observe(truth, &mut rng);
            let lost = rng.random::<f64>() < config.loss_rate;
            if lost {
                continue;
            }
            let t_s = (k as f64 * dt + jitter).max(0.0);
            out.push(RawSample { link, t_s, rss_dbm: rss });
        }
    }
    // Radios interleave: deliver globally by timestamp, then perturb with
    // adjacent swaps to model mild transport reordering.
    out.sort_by(|a, b| a.t_s.total_cmp(&b.t_s).then(a.link.cmp(&b.link)));
    if config.reorder_prob > 0.0 {
        let mut rng = stream_rng(world, t_days, stream_seed, u64::MAX);
        for i in 1..out.len() {
            if rng.random::<f64>() < config.reorder_prob {
                out.swap(i - 1, i);
            }
        }
    }
    out
}

/// Stream with the target standing at the center of `cell` — the raw-layer
/// analogue of [`crate::campaign::snapshot_at_cell`].
pub fn stream_at_cell(
    world: &World,
    t_days: f64,
    cell: usize,
    config: &StreamConfig,
    stream_seed: u64,
) -> Vec<RawSample> {
    assert!(cell < world.num_cells(), "cell {cell} out of range");
    let p = world.grid().cell_center(cell);
    sample_stream(world, t_days, Some(&p), config, stream_seed)
}

/// Stream of the empty room — the raw-layer analogue of
/// [`crate::campaign::empty_snapshot`].
pub fn empty_stream(
    world: &World,
    t_days: f64,
    config: &StreamConfig,
    stream_seed: u64,
) -> Vec<RawSample> {
    sample_stream(world, t_days, None, config, stream_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::new(WorldConfig::small_test(), 7)
    }

    fn cfg() -> StreamConfig {
        StreamConfig { duration_s: 30.0, ..Default::default() }
    }

    #[test]
    fn stream_is_deterministic() {
        let w = world();
        let a = stream_at_cell(&w, 3.0, 2, &cfg(), 11);
        let b = stream_at_cell(&w, 3.0, 2, &cfg(), 11);
        assert_eq!(a, b);
        let c = stream_at_cell(&w, 3.0, 2, &cfg(), 12);
        assert_ne!(a, c, "different stream seeds must differ");
    }

    #[test]
    fn lossless_stream_has_full_count_per_link() {
        let w = world();
        let s = empty_stream(&w, 0.0, &cfg(), 1);
        let per_link = cfg().samples_per_link();
        assert_eq!(s.len(), per_link * w.num_links());
        for link in 0..w.num_links() {
            let n = s.iter().filter(|r| r.link == link).count();
            assert_eq!(n, per_link, "link {link}");
        }
    }

    #[test]
    fn timestamps_are_bounded_and_near_sorted() {
        let c = cfg();
        let s = empty_stream(&world(), 0.0, &c, 2);
        for r in &s {
            assert!(r.t_s >= 0.0 && r.t_s <= c.duration_s + 1.0 / c.rate_hz, "t = {}", r.t_s);
            assert!(r.rss_dbm.is_finite());
        }
        let sorted = s.windows(2).all(|w| w[0].t_s <= w[1].t_s);
        assert!(sorted, "zero reorder_prob must deliver in timestamp order");
    }

    #[test]
    fn loss_rate_thins_the_stream() {
        let w = world();
        let c = StreamConfig { loss_rate: 0.3, duration_s: 120.0, ..Default::default() };
        let s = empty_stream(&w, 0.0, &c, 3);
        let expected = (c.samples_per_link() * w.num_links()) as f64 * 0.7;
        let got = s.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "kept {got} samples, expected about {expected}"
        );
        assert!(!s.is_empty());
    }

    #[test]
    fn loss_does_not_change_surviving_values() {
        // Same seed with and without loss: the kept samples must be a
        // subsequence of the lossless stream (loss draws are independent).
        let w = world();
        let lossless = empty_stream(&w, 0.0, &cfg(), 4);
        let lossy = empty_stream(&w, 0.0, &StreamConfig { loss_rate: 0.4, ..cfg() }, 4);
        let mut it = lossless.iter();
        for kept in &lossy {
            assert!(
                it.any(|r| r == kept),
                "lossy sample {kept:?} not found in order in the lossless stream"
            );
        }
    }

    #[test]
    fn reordering_perturbs_but_preserves_multiset() {
        let w = world();
        let base = empty_stream(&w, 0.0, &cfg(), 5);
        let shuffled = empty_stream(&w, 0.0, &StreamConfig { reorder_prob: 0.5, ..cfg() }, 5);
        assert_eq!(base.len(), shuffled.len());
        let mut a = base.clone();
        let mut b = shuffled.clone();
        let key = |r: &RawSample| (r.link, r.t_s.to_bits(), r.rss_dbm.to_bits());
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b, "reordering must not add, drop or alter samples");
        assert_ne!(base, shuffled, "with prob 0.5 some pair must have swapped");
    }

    #[test]
    fn target_presence_changes_the_stream() {
        let w = world();
        let empty = empty_stream(&w, 0.0, &cfg(), 6);
        let occupied = stream_at_cell(&w, 0.0, 0, &cfg(), 6);
        assert_eq!(empty.len(), occupied.len());
        assert_ne!(empty, occupied);
    }

    #[test]
    #[should_panic(expected = "loss_rate")]
    fn full_loss_is_rejected() {
        empty_stream(&world(), 0.0, &StreamConfig { loss_rate: 1.0, ..cfg() }, 0);
    }
}
