//! Property-based tests of the RF simulator: geometric invariants, physical
//! monotonicities, determinism, and the statistical contracts the TafLoc
//! algorithms rely on.

use proptest::prelude::*;
use taf_rfsim::drift::{DriftConfig, OuProcess};
use taf_rfsim::geometry::{Point, Segment};
use taf_rfsim::grid::FloorGrid;
use taf_rfsim::noise::NoiseConfig;
use taf_rfsim::pathloss::LogDistance;
use taf_rfsim::target::TargetModel;
use taf_rfsim::trajectory::{random_waypoint, WaypointConfig};
use taf_rfsim::{campaign, World, WorldConfig};

fn point() -> impl Strategy<Value = Point> {
    (-20.0..20.0f64, -20.0..20.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn segment() -> impl Strategy<Value = Segment> {
    (point(), point()).prop_map(|(a, b)| Segment::new(a, b))
}

proptest! {
    // ------------------------------------------------------------------
    // Geometry
    // ------------------------------------------------------------------

    #[test]
    fn distance_is_a_metric(a in point(), b in point(), c in point()) {
        prop_assert!(a.distance(&b) >= 0.0);
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        prop_assert!(a.distance(&a) == 0.0);
    }

    #[test]
    fn excess_path_non_negative_and_zero_on_segment(s in segment(), t in 0.0..1.0f64) {
        // Any point: non-negative.
        let p = Point::new(s.a.x + 3.0, s.a.y - 2.0);
        prop_assert!(s.excess_path_length(&p) >= 0.0);
        // Points on the segment: zero.
        let on = Point::new(s.a.x + t * (s.b.x - s.a.x), s.a.y + t * (s.b.y - s.a.y));
        prop_assert!(s.excess_path_length(&on) < 1e-9);
    }

    #[test]
    fn excess_path_bounded_by_detour(s in segment(), p in point()) {
        // excess = |pa| + |pb| - |ab| <= 2·distance(p, segment)·something…
        // The cheap, always-true bound: excess <= 2·max(|pa|, |pb|).
        let e = s.excess_path_length(&p);
        let bound = 2.0 * p.distance(&s.a).max(p.distance(&s.b));
        prop_assert!(e <= bound + 1e-9);
    }

    #[test]
    fn projection_parameter_in_unit_interval(s in segment(), p in point()) {
        let t = s.projection_parameter(&p);
        prop_assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn grid_round_trip(nx in 1usize..12, ny in 1usize..12, cell in 0.2..2.0f64) {
        let g = FloorGrid::new(Point::new(-3.0, 4.0), cell, nx, ny);
        for idx in 0..g.num_cells() {
            let c = g.cell_center(idx);
            prop_assert_eq!(g.cell_at(&c), Some(idx));
        }
    }

    #[test]
    fn grid_neighbors_symmetric(nx in 2usize..8, ny in 2usize..8, idx_seed in 0usize..64) {
        let g = FloorGrid::new(Point::new(0.0, 0.0), 0.5, nx, ny);
        let idx = idx_seed % g.num_cells();
        for n in g.neighbors4(idx) {
            prop_assert!(g.neighbors4(n).contains(&idx));
        }
    }

    // ------------------------------------------------------------------
    // Propagation physics
    // ------------------------------------------------------------------

    #[test]
    fn pathloss_monotone(d1 in 0.1..50.0f64, d2 in 0.1..50.0f64, n in 1.5..4.5f64) {
        let m = LogDistance { p0_dbm: -30.0, d0: 1.0, exponent: n };
        if d1.max(1.0) < d2.max(1.0) {
            prop_assert!(m.rss(d1) >= m.rss(d2));
        }
    }

    #[test]
    fn shadowing_attenuation_monotone_in_excess(s in segment(), y1 in 0.0..3.0f64, y2 in 0.0..3.0f64) {
        prop_assume!(s.length() > 1.0);
        let model = TargetModel::default();
        let mid = s.midpoint();
        // Perpendicular offsets from the midpoint.
        let (dx, dy) = (s.b.x - s.a.x, s.b.y - s.a.y);
        let len = s.length();
        let (nx, ny) = (-dy / len, dx / len);
        let p1 = Point::new(mid.x + nx * y1, mid.y + ny * y1);
        let p2 = Point::new(mid.x + nx * y2, mid.y + ny * y2);
        let (a1, a2) = (model.shadowing_db(&s, &p1), model.shadowing_db(&s, &p2));
        if y1 < y2 {
            prop_assert!(a1 >= a2 - 1e-9, "closer to LoS must shadow at least as much");
        }
        prop_assert!(a1 <= model.max_attenuation_db + 1e-12);
        prop_assert!(a1 >= 0.0);
    }

    #[test]
    fn noise_observation_finite_and_quantized(rss in -90.0..-30.0f64, seed in 0u64..1000) {
        use rand::SeedableRng;
        let cfg = NoiseConfig::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v = cfg.observe(rss, &mut rng);
        prop_assert!(v.is_finite());
        // Quantization step 1 dB: value must be integral.
        prop_assert!((v - v.round()).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Drift
    // ------------------------------------------------------------------

    #[test]
    fn ou_interpolation_between_days(seed in 0u64..500, frac in 0.0..1.0f64) {
        let p = OuProcess::new(seed, 1, 2.0, 40.0);
        let a = p.at_day(4);
        let b = p.at_day(5);
        let v = p.at(4.0 + frac);
        prop_assert!(v >= a.min(b) - 1e-12 && v <= a.max(b) + 1e-12);
    }

    #[test]
    fn drift_sigmas_monotone_in_time(t1 in 0.1..200.0f64, t2 in 0.1..200.0f64) {
        let cfg = DriftConfig::paper_calibrated();
        if t1 < t2 {
            prop_assert!(cfg.link_delta_sigma(t1) <= cfg.link_delta_sigma(t2) + 1e-12);
            prop_assert!(cfg.entry_delta_sigma(t1) <= cfg.entry_delta_sigma(t2) + 1e-12);
        }
        prop_assert!(cfg.entry_delta_sigma(t1) >= cfg.link_delta_sigma(t1) - 1e-12);
    }

    // ------------------------------------------------------------------
    // Whole-world contracts
    // ------------------------------------------------------------------

    #[test]
    fn world_fingerprints_deterministic_and_finite(seed in 0u64..50) {
        let w1 = World::new(WorldConfig::small_test(), seed);
        let w2 = World::new(WorldConfig::small_test(), seed);
        let x1 = w1.fingerprint_truth(7.5);
        let x2 = w2.fingerprint_truth(7.5);
        prop_assert!(x1.approx_eq(&x2, 0.0));
        prop_assert!(!x1.has_non_finite());
    }

    #[test]
    fn campaign_columns_consistent_with_full(seed in 0u64..30, cell_seed in 0usize..30) {
        let w = World::new(WorldConfig::small_test(), seed);
        let cell = cell_seed % w.num_cells();
        let full = campaign::full_calibration(&w, 2.0, 5);
        let cols = campaign::measure_columns(&w, 2.0, &[cell], 5);
        for link in 0..w.num_links() {
            prop_assert_eq!(cols[(link, 0)], full[(link, cell)]);
        }
    }

    #[test]
    fn trajectory_always_inside_grid(seed in 0u64..100, n in 1usize..150) {
        let g = FloorGrid::new(Point::new(1.0, -2.0), 0.6, 6, 9);
        let t = random_waypoint(&g, &WaypointConfig::default(), n, seed);
        prop_assert_eq!(t.len(), n);
        for p in &t.points {
            prop_assert!(g.cell_at(p).is_some(), "({}, {}) left the grid", p.x, p.y);
        }
    }
}
