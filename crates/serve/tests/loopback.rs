//! Loopback integration tests: a real `taflocd` server on an ephemeral port,
//! driven by real TCP clients against a simulated site.
//!
//! The headline test proves the snapshot swap is race-free under load:
//! concurrent `locate` streams keep running while a `refresh` reconstructs
//! and swaps the database, and every response must match the deterministic
//! single-threaded library path for one of the two snapshot versions.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use taf_rfsim::{campaign, stream, StreamConfig, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::monitor::MonitorConfig;
use tafloc_core::system::{TafLoc, TafLocConfig};
use tafloc_ingest::LinkSample;
use tafloc_serve::client::Client;
use tafloc_serve::maintenance::MaintenancePolicy;
use tafloc_serve::protocol::{Request, Response};
use tafloc_serve::server::{Server, ServerConfig};

const SAMPLES: usize = 20;
const UPDATE_DAY: f64 = 45.0;

/// A calibrated small-test site; each test pins its own world seed (11–16
/// below). Wall-clock appears in this file only as bounded *waits* (deadline
/// polls, a concurrency-overlap sleep) — every assertion is gated on the
/// snapshot version actually observed, never on timing.
fn calibrated_site(seed: u64) -> (World, TafLoc) {
    let world = World::new(WorldConfig::small_test(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, SAMPLES);
    let e0 = campaign::empty_snapshot(&world, 0.0, SAMPLES);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let config = TafLocConfig { ref_count: 6, ..Default::default() };
    let sys = TafLoc::calibrate(config, db, e0).unwrap();
    (world, sys)
}

fn manual_policy() -> MaintenancePolicy {
    // Monitor runs, but refreshes only on explicit request — the test
    // controls the swap instant itself.
    MaintenancePolicy { auto_refresh: false, ..Default::default() }
}

#[test]
fn concurrent_locates_survive_a_refresh_and_match_the_library_path() {
    let (world, sys) = calibrated_site(11);
    let num_cells = world.num_cells();

    // Deterministic library-path expectations for both snapshot versions.
    let queries: Vec<Vec<f64>> = (0..num_cells)
        .map(|c| campaign::snapshot_at_cell(&world, UPDATE_DAY, c, SAMPLES))
        .collect();
    let stale_expected: Vec<usize> =
        queries.iter().map(|y| sys.localize(y).unwrap().cell).collect();
    let fresh_refs = campaign::measure_columns(&world, UPDATE_DAY, sys.reference_cells(), SAMPLES);
    let fresh_empty = campaign::empty_snapshot(&world, UPDATE_DAY, SAMPLES);
    let mut updated = sys.clone();
    updated.update(&fresh_refs, &fresh_empty).unwrap();
    let fresh_expected: Vec<usize> =
        queries.iter().map(|y| updated.localize(y).unwrap().cell).collect();

    // More workers than persistent connections, so nobody starves.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 8, default_policy: manual_policy(), ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    server.add_site("lab", sys, 0.0).unwrap();
    let handle = server.spawn();

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 3;
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let mismatches = Arc::new(AtomicUsize::new(0));
    let queries = Arc::new(queries);
    let stale_expected = Arc::new(stale_expected);
    let fresh_expected = Arc::new(fresh_expected);

    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let mismatches = Arc::clone(&mismatches);
            let queries = Arc::clone(&queries);
            let stale_expected = Arc::clone(&stale_expected);
            let fresh_expected = Arc::clone(&fresh_expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                for _ in 0..ROUNDS {
                    for (c, y) in queries.iter().enumerate() {
                        let (cell, _, _, version) = client.locate("lab", y).unwrap();
                        let expected =
                            if version == 0 { stale_expected[c] } else { fresh_expected[c] };
                        if cell != expected {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    // While the clients hammer `locate`, ingest references and refresh.
    let mut admin = Client::connect(addr).unwrap();
    barrier.wait();
    std::thread::sleep(Duration::from_millis(20));
    match admin
        .call_ok(&Request::MeasureRefs {
            site: "lab".into(),
            day: UPDATE_DAY,
            columns: fresh_refs,
            empty: fresh_empty,
        })
        .unwrap()
    {
        Response::RefsAccepted { .. } => {}
        other => panic!("unexpected reply to measure-refs: {other:?}"),
    }
    match admin.call_ok(&Request::Refresh { site: "lab".into() }).unwrap() {
        Response::Refreshed { version, converged, .. } => {
            assert_eq!(version, 1);
            assert!(converged);
        }
        other => panic!("unexpected reply to refresh: {other:?}"),
    }

    for c in clients {
        c.join().unwrap();
    }
    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "every concurrent locate must match the library path for its snapshot version"
    );

    // After the swap, the served answers equal the updated library system's.
    for (c, y) in queries.iter().enumerate() {
        let (cell, _, _, version) = admin.locate("lab", y).unwrap();
        assert_eq!(version, 1);
        assert_eq!(cell, fresh_expected[c], "post-refresh mismatch at cell {c}");
    }

    // Stats must account for every request exactly.
    let expected_locates = (CLIENTS * ROUNDS * num_cells + num_cells) as u64;
    match admin.call_ok(&Request::Stats).unwrap() {
        Response::Stats { report } => {
            let locate = report
                .endpoints
                .iter()
                .find(|e| e.endpoint == "locate")
                .expect("locate endpoint must appear in stats");
            assert_eq!(locate.requests, expected_locates);
            assert_eq!(locate.errors, 0);
            let refresh = report.endpoints.iter().find(|e| e.endpoint == "refresh").unwrap();
            assert_eq!(refresh.requests, 1);
            let site = report.sites.iter().find(|s| s.site == "lab").unwrap();
            assert_eq!(site.version, 1);
            assert!(!site.pending_refs, "refresh must consume the pending refs");
        }
        other => panic!("unexpected reply to stats: {other:?}"),
    }

    match admin.call_ok(&Request::Shutdown).unwrap() {
        Response::ShuttingDown => {}
        other => panic!("unexpected reply to shutdown: {other:?}"),
    }
    handle.join();
}

#[test]
fn maintenance_loop_auto_refreshes_after_breach_streak() {
    let (world, sys) = calibrated_site(12);
    let policy = MaintenancePolicy {
        interval_ms: 25,
        auto_refresh: true,
        breach_streak: 2,
        monitor_cells: 2,
        monitor: MonitorConfig { error_threshold_db: 0.3, min_interval_days: 1.0 },
        ..Default::default()
    };
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 2, default_policy: policy, ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    server.add_site("lab", sys.clone(), 0.0).unwrap();
    let handle = server.spawn();

    let mut client = Client::connect(addr).unwrap();
    let refs = campaign::measure_columns(&world, 60.0, sys.reference_cells(), SAMPLES);
    let empty = campaign::empty_snapshot(&world, 60.0, SAMPLES);
    client
        .call_ok(&Request::MeasureRefs { site: "lab".into(), day: 60.0, columns: refs, empty })
        .unwrap();

    // The maintenance thread needs `breach_streak` ticks before it may act;
    // poll stats until the auto-refresh lands.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut refreshed = false;
    while Instant::now() < deadline {
        if let Response::Stats { report } = client.call_ok(&Request::Stats).unwrap() {
            let site = report.sites.iter().find(|s| s.site == "lab").unwrap();
            if site.version >= 1 {
                assert!(site.auto_refreshes >= 1, "version bumped by the maintenance loop");
                assert!(!site.pending_refs);
                assert!(site.maintenance_checks >= 2, "streak hysteresis needs >= 2 checks");
                refreshed = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(refreshed, "maintenance loop never auto-refreshed a badly drifted site");

    client.call_ok(&Request::Shutdown).unwrap();
    handle.join();
}

#[test]
fn protocol_errors_leave_the_connection_usable_and_are_counted() {
    let server =
        Server::bind("127.0.0.1:0", ServerConfig { workers: 2, ..Default::default() }).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut client = Client::connect(addr).unwrap();
    // Unknown site → error response, connection still fine.
    match client.call(&Request::Locate { site: "nowhere".into(), y: vec![-50.0] }).unwrap() {
        Response::Error { message } => assert!(message.contains("nowhere")),
        other => panic!("expected an error, got {other:?}"),
    }
    client.ping().unwrap();
    // Refresh without pending refs on an unknown site → error too.
    assert!(client.call_ok(&Request::Refresh { site: "nowhere".into() }).is_err());

    match client.call_ok(&Request::Stats).unwrap() {
        Response::Stats { report } => {
            let locate = report.endpoints.iter().find(|e| e.endpoint == "locate").unwrap();
            assert_eq!(locate.requests, 1);
            assert_eq!(locate.errors, 1);
        }
        other => panic!("unexpected reply to stats: {other:?}"),
    }

    client.call_ok(&Request::Shutdown).unwrap();
    handle.join();
}

fn to_link_samples(raw: &[taf_rfsim::RawSample]) -> Vec<LinkSample> {
    raw.iter().map(|r| LinkSample::new(r.link, r.t_s, r.rss_dbm)).collect()
}

#[test]
fn streaming_ingest_feeds_locate_stream_and_locate_batch() {
    let (world, sys) = calibrated_site(15);
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 2, default_policy: manual_policy(), ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    server.add_site("lab", sys.clone(), 0.0).unwrap();
    let handle = server.spawn();
    let mut client = Client::connect(addr).unwrap();

    // locate-stream before any sample is a clean error, not a panic.
    assert!(client.locate_stream("lab").is_err());

    // Stream raw samples of a target standing at a known cell, in a few
    // batches like a radio gateway would deliver them.
    let target_cell = 7;
    let cfg = StreamConfig { duration_s: 30.0, ..Default::default() };
    let raw = stream::stream_at_cell(&world, 0.0, target_cell, &cfg, 21);
    let samples = to_link_samples(&raw);
    let mut accepted = 0;
    for chunk in samples.chunks(64) {
        let report = client.ingest("lab", chunk.to_vec()).unwrap();
        assert_eq!(report.total() as usize, chunk.len());
        accepted += report.accepted;
    }
    assert!(accepted > 0, "samples must land in the live window");

    // The assembled live vector localizes to the same cell as the library
    // path fed with the averaged campaign snapshot.
    let y_avg = campaign::snapshot_at_cell(&world, 0.0, target_cell, SAMPLES);
    let expected = sys.localize(&y_avg).unwrap().cell;
    let (cell, _, _, version) = client.locate_stream("lab").unwrap();
    assert_eq!(version, 0);
    assert_eq!(cell, expected, "stream-assembled fix must match the averaged path");

    // The full reply carries the quality flags.
    match client.call_ok(&Request::LocateStream { site: "lab".into() }).unwrap() {
        Response::StreamLocated {
            missing_links, stale_links, window_samples, stream_t_s, ..
        } => {
            assert!(missing_links.is_empty(), "every link streamed: {missing_links:?}");
            assert!(stale_links.is_empty());
            assert!(window_samples > 0);
            assert!(stream_t_s > 0.0);
        }
        other => panic!("unexpected reply to locate-stream: {other:?}"),
    }

    // locate-batch answers every vector from one snapshot version.
    let ys: Vec<Vec<f64>> =
        (0..4).map(|c| campaign::snapshot_at_cell(&world, 0.0, c, SAMPLES)).collect();
    let single: Vec<usize> = ys.iter().map(|y| sys.localize(y).unwrap().cell).collect();
    let (fixes, version) = client.locate_batch("lab", ys).unwrap();
    assert_eq!(version, 0);
    let batch: Vec<usize> = fixes.iter().map(|f| f.cell).collect();
    assert_eq!(batch, single, "batch fixes must match one-at-a-time locate");

    // Bad input anywhere in the batch fails the whole batch.
    assert!(client.locate_batch("lab", vec![vec![-50.0; 2]]).is_err());

    // Stats surface the ingest counters and endpoints.
    match client.call_ok(&Request::Stats).unwrap() {
        Response::Stats { report } => {
            assert!(report.endpoints.iter().any(|e| e.endpoint == "ingest"));
            assert!(report.endpoints.iter().any(|e| e.endpoint == "locate-stream"));
            assert!(report.endpoints.iter().any(|e| e.endpoint == "locate-batch"));
            let site = report.sites.iter().find(|s| s.site == "lab").unwrap();
            assert_eq!(site.ingest.accepted, accepted);
            assert!(site.stream_clock_s > 0.0);
            assert_eq!(site.active_ref_captures, 0);
        }
        other => panic!("unexpected reply to stats: {other:?}"),
    }

    client.call_ok(&Request::Shutdown).unwrap();
    handle.join();
}

#[test]
fn streamed_reference_survey_promotes_to_pending_refs_and_auto_refreshes() {
    let (world, sys) = calibrated_site(16);
    let policy = MaintenancePolicy {
        interval_ms: 25,
        auto_refresh: true,
        breach_streak: 2,
        monitor_cells: 2,
        monitor: MonitorConfig { error_threshold_db: 0.3, min_interval_days: 1.0 },
        ..Default::default()
    };
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 2, default_policy: policy, ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    server.add_site("lab", sys.clone(), 0.0).unwrap();
    let handle = server.spawn();
    let mut client = Client::connect(addr).unwrap();

    // Survey every reference cell at day 60 as raw streams — no averaged
    // measure-refs call anywhere.
    let cfg = StreamConfig { duration_s: 30.0, ..Default::default() };
    let ref_cells: Vec<usize> = sys.reference_cells().to_vec();
    for (k, &cell) in ref_cells.iter().enumerate() {
        let raw = stream::stream_at_cell(&world, 60.0, cell, &cfg, 100 + k as u64);
        let report = client.ingest_for("lab", Some(k), 60.0, to_link_samples(&raw)).unwrap();
        assert!(report.accepted > 0, "ref capture {k} must accept samples");
    }

    // The maintenance loop promotes the captures to pending refs, the drift
    // monitor flags day-60 drift, and the auto-refresh lands.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut refreshed = false;
    while Instant::now() < deadline {
        if let Response::Stats { report } = client.call_ok(&Request::Stats).unwrap() {
            let site = report.sites.iter().find(|s| s.site == "lab").unwrap();
            if site.version >= 1 {
                assert!(site.auto_refreshes >= 1);
                assert_eq!(site.active_ref_captures, 0, "promotion must clear captures");
                refreshed = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(refreshed, "streamed reference survey never triggered an auto-refresh");

    client.call_ok(&Request::Shutdown).unwrap();
    handle.join();
}

#[test]
fn track_detect_and_multi_site_round_trip() {
    let (world, sys) = calibrated_site(13);
    let (_, sys_b) = calibrated_site(14);
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 2, default_policy: manual_policy(), ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    server.add_site("east", sys, 0.0).unwrap();
    let handle = server.spawn();

    let mut client = Client::connect(addr).unwrap();

    // Second site arrives over the wire.
    match client
        .call_ok(&Request::AddSite {
            site: "west".into(),
            snapshot: Box::new(sys_b.snapshot()),
            day: 0.0,
            policy: None,
        })
        .unwrap()
    {
        Response::SiteAdded { site, links, cells } => {
            assert_eq!(site, "west");
            assert_eq!(links, 6);
            assert_eq!(cells, 30);
        }
        other => panic!("unexpected reply to add-site: {other:?}"),
    }
    match client.call_ok(&Request::ListSites).unwrap() {
        Response::Sites { sites } => {
            let names: Vec<_> = sites.iter().map(|s| s.site.as_str()).collect();
            assert_eq!(names, ["east", "west"]);
        }
        other => panic!("unexpected reply to list-sites: {other:?}"),
    }

    // A few tracking steps on a static target converge near its cell.
    let target_cell = 12;
    let truth = world.grid().cell_center(target_cell);
    let mut final_est = (f64::NAN, f64::NAN);
    for k in 0..10 {
        let y = campaign::snapshot_at_cell(&world, 0.001 * k as f64, target_cell, 50);
        match client
            .call_ok(&Request::Track {
                site: "east".into(),
                stream: "badge-7".into(),
                y,
                dt_s: 1.0,
            })
            .unwrap()
        {
            Response::Tracked { x, y, effective_sample_size } => {
                assert!(effective_sample_size >= 1.0);
                final_est = (x, y);
            }
            other => panic!("unexpected reply to track: {other:?}"),
        }
    }
    let err = ((final_est.0 - truth.x).powi(2) + (final_est.1 - truth.y).powi(2)).sqrt();
    assert!(err < 2.0, "tracking estimate {err:.2} m from the static target");

    // Empty room stays absent; a deep shadow is detected.
    let empty = campaign::empty_snapshot(&world, 0.0, 50);
    match client
        .call_ok(&Request::Detect { site: "east".into(), stream: "door".into(), y: empty.clone() })
        .unwrap()
    {
        Response::Detected { present, .. } => assert!(!present),
        other => panic!("unexpected reply to detect: {other:?}"),
    }
    let mut shadowed = empty;
    shadowed[0] -= 12.0;
    match client
        .call_ok(&Request::Detect { site: "east".into(), stream: "door".into(), y: shadowed })
        .unwrap()
    {
        Response::Detected { present, detail } => {
            assert!(present, "12 dB shadow must be detected ({detail})");
        }
        other => panic!("unexpected reply to detect: {other:?}"),
    }

    // remove-site makes the name unknown again.
    client.call_ok(&Request::RemoveSite { site: "west".into() }).unwrap();
    assert!(client.call_ok(&Request::Locate { site: "west".into(), y: vec![-50.0; 6] }).is_err());

    client.call_ok(&Request::Shutdown).unwrap();
    handle.join();
}
