//! Sharded serving battery: a real `taflocd` run with `--shards N` owning
//! eight sites, hammered by concurrent ingest + locate clients, then
//! SIGKILLed and restarted on the same `--data-dir`.
//!
//! What must hold:
//!
//! * every site's `shard` field in `stats` matches a locally computed
//!   [`ShardRing`] with the default seed — the assignment is a pure function
//!   of `(seed, name, shards)`, so a client can predict placement;
//! * the admission gate conserves batches (`offered == admitted + deferred
//!   + rejected`) under concurrent wire traffic;
//! * after kill -9 + restart with the same flags, all sites come back on
//!   the *same* shards with bit-identical locate fixes.
//!
//! Runs at `--shards 4` (the interesting case) and `--shards 1` (the
//! degenerate ring must behave exactly like the unsharded daemon).

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig};
use tafloc_ingest::LinkSample;
use tafloc_serve::client::{Client, IngestOutcome, RetryPolicy};
use tafloc_serve::maintenance::MaintenancePolicy;
use tafloc_serve::protocol::{Request, Response, StatsReport};
use tafloc_serve::shard::{ShardRing, DEFAULT_SHARD_SEED};

const SAMPLES: usize = 20;
const NUM_SITES: usize = 8;
const QUERIES_PER_SITE: usize = 4;
const INGEST_ROUNDS: usize = 12;
const BATCH: usize = 16;

fn site_name(i: usize) -> String {
    format!("site-{i}")
}

fn calibrated(seed: u64) -> (World, TafLoc) {
    let world = World::new(WorldConfig::small_test(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, SAMPLES);
    let e0 = campaign::empty_snapshot(&world, 0.0, SAMPLES);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let config = TafLocConfig { ref_count: 6, ..Default::default() };
    let sys = TafLoc::calibrate(config, db, e0).unwrap();
    (world, sys)
}

fn spawn_daemon(data_dir: &Path, port_file: &Path, shards: usize) -> Child {
    let _ = std::fs::remove_file(port_file);
    Command::new(env!("CARGO_BIN_EXE_taflocd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--shards",
            &shards.to_string(),
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn taflocd")
}

fn await_port(port_file: &Path) -> u16 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(port) = text.trim().parse() {
                return port;
            }
        }
        assert!(Instant::now() < deadline, "taflocd never wrote {}", port_file.display());
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn temp_base(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tafloc-shard-{tag}-{}", std::process::id()))
}

fn stats(client: &mut Client) -> StatsReport {
    match client.call_ok(&Request::Stats).unwrap() {
        Response::Stats { report } => report,
        other => panic!("unexpected reply to stats: {other:?}"),
    }
}

/// Asserts the per-site `shard` fields match a locally computed ring and
/// returns the `site -> shard` map in site order.
fn check_placement(report: &StatsReport, shards: usize) -> Vec<usize> {
    let ring = ShardRing::new(shards, DEFAULT_SHARD_SEED);
    assert_eq!(report.shards.len(), shards, "one stats record per shard");
    assert_eq!(report.sites.len(), NUM_SITES, "all sites present: {report:?}");
    let mut placement = Vec::with_capacity(NUM_SITES);
    for i in 0..NUM_SITES {
        let name = site_name(i);
        let st = report.sites.iter().find(|s| s.site == name).unwrap();
        assert_eq!(
            st.shard,
            ring.shard_of(&name),
            "{name} must sit where the client-side ring predicts"
        );
        placement.push(st.shard);
    }
    let owned: usize = report.shards.iter().map(|s| s.sites).sum();
    assert_eq!(owned, NUM_SITES, "every site owned by exactly one shard");
    placement
}

fn sharded_battery(shards: usize, tag: &str) {
    let base = temp_base(tag);
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let data_dir = base.join("data");
    let port_file = base.join("port");

    let mut child = spawn_daemon(&data_dir, &port_file, shards);
    let addr = format!("127.0.0.1:{}", await_port(&port_file));
    let mut client = Client::connect(&addr).unwrap();

    // Eight sites, maintenance disabled so generations stay where this test
    // puts them (generation 0, persisted at add-site time).
    let manual = MaintenancePolicy { auto_refresh: false, manual_tick: true, ..Default::default() };
    let mut queries: Vec<Vec<Vec<f64>>> = Vec::new();
    for i in 0..NUM_SITES {
        let (world, sys) = calibrated(80 + i as u64);
        match client
            .call_ok(&Request::AddSite {
                site: site_name(i),
                snapshot: Box::new(sys.snapshot()),
                day: 0.0,
                policy: Some(manual),
            })
            .unwrap()
        {
            Response::SiteAdded { .. } => {}
            other => panic!("unexpected reply to add-site: {other:?}"),
        }
        let cells = world.num_cells().min(QUERIES_PER_SITE);
        queries.push(
            (0..cells).map(|c| campaign::snapshot_at_cell(&world, 0.0, c, SAMPLES)).collect(),
        );
    }

    // Concurrent phase: one ingest+locate client per site, all at once. The
    // gate verdicts must conserve batches and nothing may error out.
    let workers: Vec<_> = (0..NUM_SITES)
        .map(|i| {
            let addr = addr.clone();
            let qs = queries[i].clone();
            std::thread::spawn(move || {
                let name = site_name(i);
                let mut c = Client::connect(&addr).unwrap();
                let mut admitted = 0usize;
                for round in 0..INGEST_ROUNDS {
                    let batch: Vec<LinkSample> = (0..BATCH)
                        .map(|k| LinkSample::new(0, (round * BATCH + k) as f64 * 0.05, -52.0))
                        .collect();
                    match c.try_ingest(&name, None, 0.0, batch).unwrap() {
                        IngestOutcome::Ingested(_) => admitted += 1,
                        // A pushback is a legal verdict, not a failure.
                        IngestOutcome::Overloaded { .. } => {}
                    }
                    let y = &qs[round % qs.len()];
                    let (_, _, _, version) = c.locate(&name, y).unwrap();
                    assert_eq!(version, 0, "{name} never refreshed");
                }
                admitted
            })
        })
        .collect();
    let admitted_by_clients: usize = workers.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(admitted_by_clients > 0, "quota is roomy; some batches must land");

    let report = stats(&mut client);
    let placement_before = check_placement(&report, shards);
    let (mut offered, mut admitted, mut deferred, mut rejected) = (0u64, 0u64, 0u64, 0u64);
    for s in &report.shards {
        offered += s.offered_batches;
        admitted += s.admitted_batches;
        deferred += s.deferred_batches;
        rejected += s.rejected_batches;
        assert_eq!(s.queue_depth_samples, 0, "shard {} idle after the storm", s.shard);
    }
    assert_eq!(offered, (NUM_SITES * INGEST_ROUNDS) as u64, "every wire batch hit the gate");
    assert_eq!(offered, admitted + deferred + rejected, "gate verdicts conserve batches");
    assert_eq!(admitted, admitted_by_clients as u64, "client and server admission counts agree");

    // Ground truth, then pull the plug.
    let fixes: Vec<Vec<(usize, f64, f64)>> = (0..NUM_SITES)
        .map(|i| {
            let name = site_name(i);
            queries[i]
                .iter()
                .map(|y| {
                    let (cell, x, yy, _) = client.locate(&name, y).unwrap();
                    (cell, x, yy)
                })
                .collect()
        })
        .collect();
    child.kill().unwrap(); // SIGKILL: no destructors, no flush
    child.wait().unwrap();
    drop(client);

    // Same flags, same data dir: identical placement, bit-identical fixes.
    let mut child = spawn_daemon(&data_dir, &port_file, shards);
    let addr = format!("127.0.0.1:{}", await_port(&port_file));
    let mut client = Client::connect(&addr).unwrap();
    let report = stats(&mut client);
    let placement_after = check_placement(&report, shards);
    assert_eq!(placement_before, placement_after, "restart re-shards identically");

    let retry = RetryPolicy::default();
    for i in 0..NUM_SITES {
        let name = site_name(i);
        for (y, want) in queries[i].iter().zip(&fixes[i]) {
            let (cell, x, yy, version) = client.locate_with_retry(&name, y, &retry).unwrap();
            assert_eq!(version, 0, "{name} recovered at its committed generation");
            assert_eq!((cell, x, yy), *want, "{name} serves bit-identical fixes after restart");
        }
    }

    client.call(&Request::Shutdown).ok();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn four_shards_serve_ingest_crash_and_reshard_identically() {
    sharded_battery(4, "four");
}

#[test]
fn single_shard_ring_degenerates_to_the_unsharded_daemon() {
    sharded_battery(1, "one");
}
