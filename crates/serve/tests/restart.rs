//! Crash/restart durability: kill -9 a real `taflocd` process serving three
//! sites mid-refresh, restart it on the same `--data-dir`, and require every
//! site back at its last *committed* generation with bit-identical locate
//! responses.
//!
//! This drives the actual daemon binary (`CARGO_BIN_EXE_taflocd`) over TCP.
//! The wire codecs are hand-rolled in `taf-wire` (no serde_json at runtime),
//! so this runs — unskipped — even under the workspace's compile-only stubs.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig};
use tafloc_serve::client::{Client, RetryPolicy};
use tafloc_serve::maintenance::MaintenancePolicy;
use tafloc_serve::protocol::{Request, Response};
use tafloc_serve::wire::{write_request, WireVersion};

const SAMPLES: usize = 20;
const UPDATE_DAY: f64 = 45.0;
const SITES: [(&str, u64); 3] = [("alpha", 61), ("beta", 62), ("gamma", 63)];

fn calibrated(seed: u64) -> (World, TafLoc) {
    let world = World::new(WorldConfig::small_test(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, SAMPLES);
    let e0 = campaign::empty_snapshot(&world, 0.0, SAMPLES);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let config = TafLocConfig { ref_count: 6, ..Default::default() };
    let sys = TafLoc::calibrate(config, db, e0).unwrap();
    (world, sys)
}

fn spawn_daemon(data_dir: &Path, port_file: &Path) -> Child {
    let _ = std::fs::remove_file(port_file);
    Command::new(env!("CARGO_BIN_EXE_taflocd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn taflocd")
}

fn await_port(port_file: &Path) -> u16 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(port) = text.trim().parse() {
                return port;
            }
        }
        assert!(Instant::now() < deadline, "taflocd never wrote {}", port_file.display());
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn temp_base(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tafloc-restart-{tag}-{}", std::process::id()))
}

#[test]
fn kill_dash_nine_mid_refresh_recovers_every_committed_generation() {
    let base = temp_base("kill9");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let data_dir = base.join("data");
    let port_file = base.join("port");

    let mut child = spawn_daemon(&data_dir, &port_file);
    let addr = format!("127.0.0.1:{}", await_port(&port_file));
    let mut client = Client::connect(&addr).unwrap();

    // Three sites, each committed at generation 1 via a wire refresh. The
    // maintenance loop is disabled so the only generations are the ones this
    // test commits explicitly.
    let manual = MaintenancePolicy { auto_refresh: false, manual_tick: true, ..Default::default() };
    let mut worlds = Vec::new();
    for (name, seed) in SITES {
        let (world, sys) = calibrated(seed);
        match client
            .call_ok(&Request::AddSite {
                site: name.into(),
                snapshot: Box::new(sys.snapshot()),
                day: 0.0,
                policy: Some(manual),
            })
            .unwrap()
        {
            Response::SiteAdded { .. } => {}
            other => panic!("unexpected reply to add-site: {other:?}"),
        }
        let cols = campaign::measure_columns(&world, UPDATE_DAY, sys.reference_cells(), SAMPLES);
        let empty = campaign::empty_snapshot(&world, UPDATE_DAY, SAMPLES);
        client
            .call_ok(&Request::MeasureRefs {
                site: name.into(),
                day: UPDATE_DAY,
                columns: cols,
                empty,
            })
            .unwrap();
        match client.call_ok(&Request::Refresh { site: name.into() }).unwrap() {
            Response::Refreshed { version, .. } => assert_eq!(version, 1),
            other => panic!("unexpected reply to refresh: {other:?}"),
        }
        worlds.push((name, world, sys));
    }

    // Pre-crash ground truth: one locate per cell per site.
    type SiteTruth = (&'static str, Vec<Vec<f64>>, Vec<usize>);
    let mut expected: Vec<SiteTruth> = Vec::new();
    for (name, world, _) in &worlds {
        let queries: Vec<Vec<f64>> = (0..world.num_cells())
            .map(|c| campaign::snapshot_at_cell(world, UPDATE_DAY, c, SAMPLES))
            .collect();
        let fixes: Vec<usize> = queries
            .iter()
            .map(|y| {
                let (cell, _, _, version) = client.locate(name, y).unwrap();
                assert_eq!(version, 1);
                cell
            })
            .collect();
        expected.push((name, queries, fixes));
    }

    // Set a refresh in motion on "alpha" and SIGKILL the daemon without
    // waiting for the reply — the crash lands mid-refresh (or, at worst,
    // just beside it; both must recover to a committed generation).
    let (_, world_a, sys_a) = &worlds[0];
    let cols = campaign::measure_columns(world_a, 46.0, sys_a.reference_cells(), SAMPLES);
    let empty = campaign::empty_snapshot(world_a, 46.0, SAMPLES);
    client
        .call_ok(&Request::MeasureRefs {
            site: "alpha".into(),
            day: 46.0,
            columns: cols.clone(),
            empty: empty.clone(),
        })
        .unwrap();
    let mut raw = TcpStream::connect(&addr).unwrap();
    write_request(&mut raw, &Request::Refresh { site: "alpha".into() }, WireVersion::V1Json)
        .unwrap();
    raw.flush().unwrap();
    child.kill().unwrap(); // SIGKILL on unix: no destructors, no flush
    child.wait().unwrap();
    drop(client);
    drop(raw);

    // Restart on the same --data-dir: every site must come back.
    let mut child = spawn_daemon(&data_dir, &port_file);
    let addr = format!("127.0.0.1:{}", await_port(&port_file));
    let mut client = Client::connect(&addr).unwrap();

    let report = match client.call_ok(&Request::Stats).unwrap() {
        Response::Stats { report } => report,
        other => panic!("unexpected reply to stats: {other:?}"),
    };
    assert_eq!(report.sites.len(), 3, "all three sites recovered: {report:?}");

    // "alpha" may have committed generation 2 before the SIGKILL landed; if
    // so, its post-restart fixes must match a local replay of that refresh
    // (the refresh is a pure function of the persisted state + the measured
    // columns, which are deterministic).
    let mut replay = TafLoc::from_snapshot(sys_a.snapshot()).unwrap();
    // First the committed gen-1 refresh, then the in-flight gen-2 one.
    let c1 = campaign::measure_columns(world_a, UPDATE_DAY, sys_a.reference_cells(), SAMPLES);
    let e1 = campaign::empty_snapshot(world_a, UPDATE_DAY, SAMPLES);
    replay.update(&c1, &e1).unwrap();
    replay.update(&cols, &empty).unwrap();

    for (name, queries, fixes) in &expected {
        let site_stats = report.sites.iter().find(|s| &s.site == name).unwrap();
        let version = site_stats.version;
        if *name == "alpha" {
            assert!(
                (1..=2).contains(&version),
                "alpha must recover at a committed generation, got {version}"
            );
        } else {
            assert_eq!(version, 1, "{name} was committed exactly once");
        }
        for (y, want) in queries.iter().zip(fixes) {
            let (cell, _, _, v) =
                client.locate_with_retry(name, y, &RetryPolicy::default()).unwrap();
            assert_eq!(v, version);
            if *name == "alpha" && version == 2 {
                assert_eq!(cell, replay.localize(y).unwrap().cell, "alpha replayed gen 2");
            } else {
                assert_eq!(cell, *want, "{name} must serve pre-crash fixes");
            }
        }
    }

    client.call(&Request::Shutdown).ok();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn graceful_shutdown_persists_and_double_restart_is_stable() {
    let base = temp_base("graceful");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let data_dir = base.join("data");
    let port_file = base.join("port");

    let (world, sys) = calibrated(71);
    let queries: Vec<Vec<f64>> = (0..world.num_cells())
        .map(|c| campaign::snapshot_at_cell(&world, 0.0, c, SAMPLES))
        .collect();

    let mut child = spawn_daemon(&data_dir, &port_file);
    let mut client = Client::connect(format!("127.0.0.1:{}", await_port(&port_file))).unwrap();
    let manual = MaintenancePolicy { auto_refresh: false, manual_tick: true, ..Default::default() };
    client
        .call_ok(&Request::AddSite {
            site: "lab".into(),
            snapshot: Box::new(sys.snapshot()),
            day: 0.0,
            policy: Some(manual),
        })
        .unwrap();
    let fixes: Vec<usize> = queries.iter().map(|y| client.locate("lab", y).unwrap().0).collect();
    client.call(&Request::Shutdown).ok();
    let _ = child.wait();

    // Two consecutive restarts: recovery must be idempotent (re-persisting
    // the recovered state and pruning must not disturb anything).
    for round in 0..2 {
        let mut child = spawn_daemon(&data_dir, &port_file);
        let mut client = Client::connect(format!("127.0.0.1:{}", await_port(&port_file))).unwrap();
        for (y, want) in queries.iter().zip(&fixes) {
            let (cell, _, _, version) = client.locate("lab", y).unwrap();
            assert_eq!((cell, version), (*want, 0), "round {round}");
        }
        client.call(&Request::Shutdown).ok();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&base);
}
