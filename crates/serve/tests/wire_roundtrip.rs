//! Wire-format conformance: every `Request`/`Response` variant round-trips
//! through both codecs, the hand-rolled v1 encoder matches the serde derive
//! byte-for-byte, version negotiation works against a live server (including
//! a v1 client and a v2 client on the same server, and a version switch on
//! one connection), and error frames never break framing.

use std::io::{BufReader, Cursor, Write as _};
use std::net::TcpStream;
use taf_linalg::Matrix;
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{SystemSnapshot, TafLoc, TafLocConfig};
use tafloc_ingest::{BatchReport, IngestStats, LinkSample};
use tafloc_serve::client::Client;
use tafloc_serve::maintenance::MaintenancePolicy;
use tafloc_serve::protocol::{
    EndpointStats, Fix, Request, Response, ShardStats, SiteInfo, SiteStats, StatsReport,
};
use tafloc_serve::server::{Server, ServerConfig};
use tafloc_serve::wire::{self, read_response, write_request, WireVersion};

fn sample_snapshot() -> SystemSnapshot {
    let world = World::new(WorldConfig::small_test(), 97);
    let x0 = campaign::full_calibration(&world, 0.0, 6);
    let e0 = campaign::empty_snapshot(&world, 0.0, 6);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let config = TafLocConfig { ref_count: 6, ..Default::default() };
    TafLoc::calibrate(config, db, e0).unwrap().snapshot()
}

/// Every `Request` variant, with representative field values (negative RSS,
/// empty vectors, `None`/`Some` options, a full snapshot).
fn request_corpus() -> Vec<Request> {
    let snapshot = sample_snapshot();
    let policy = MaintenancePolicy { auto_refresh: false, manual_tick: true, ..Default::default() };
    vec![
        Request::AddSite {
            site: "lab".into(),
            snapshot: Box::new(snapshot.clone()),
            day: 12.5,
            policy: Some(policy),
        },
        Request::AddSite {
            site: "attic \"quoted\"\n".into(),
            snapshot: Box::new(snapshot),
            day: 0.0,
            policy: None,
        },
        Request::RemoveSite { site: "lab".into() },
        Request::ListSites,
        Request::Locate { site: "lab".into(), y: vec![-52.1, -48.7, -60.0] },
        Request::Locate { site: "empty".into(), y: vec![] },
        Request::LocateStream { site: "lab".into() },
        Request::LocateBatch { site: "lab".into(), ys: vec![vec![-50.0, -41.5], vec![]] },
        Request::Ingest {
            site: "lab".into(),
            ref_cell: Some(7),
            day: 45.0,
            samples: vec![
                LinkSample { link: 3, t_s: 1.25, rss_dbm: -61.5 },
                LinkSample { link: 0, t_s: 0.0, rss_dbm: -48.0 },
            ],
        },
        Request::Ingest { site: "lab".into(), ref_cell: None, day: 0.0, samples: vec![] },
        Request::Track { site: "lab".into(), stream: "cart-1".into(), y: vec![-55.0], dt_s: 0.5 },
        Request::Detect { site: "lab".into(), stream: "door".into(), y: vec![-55.0, -42.25] },
        Request::MeasureRefs {
            site: "lab".into(),
            day: 46.0,
            columns: Matrix::from_vec(2, 3, vec![-50.0, -51.0, -52.0, -53.0, -54.0, -55.0])
                .unwrap(),
            empty: vec![-70.0, -71.5],
        },
        Request::Refresh { site: "lab".into() },
        Request::Stats,
        Request::Ping,
        Request::Shutdown,
    ]
}

fn sample_stats_report() -> StatsReport {
    StatsReport {
        uptime_s: 12.75,
        conn_timeouts: 1,
        conn_resets: 2,
        conn_panics: 0,
        wire_frame_too_large: 3,
        wire_bad_magic: 4,
        wire_checksum_mismatch: 5,
        wire_bad_utf8: 6,
        wire_malformed: 7,
        endpoints: vec![EndpointStats {
            endpoint: "locate".into(),
            requests: 100,
            errors: 1,
            p50_us: 120,
            p95_us: 340,
            p99_us: 900,
            max_us: 1500,
        }],
        sites: vec![SiteStats {
            site: "lab".into(),
            version: 3,
            refreshed_day: 45.0,
            pending_refs: true,
            estimated_error_db: Some(1.25),
            maintenance_checks: 9,
            auto_refreshes: 2,
            refresh_rejections: 1,
            last_reject_reason: Some("guard: rmse".into()),
            consecutive_failures: 1,
            quarantined: false,
            tick_panics: 0,
            persist_failures: 0,
            active_trackers: 2,
            ingest: IngestStats {
                accepted: 500,
                dropped_late: 1,
                dropped_unknown_link: 2,
                dropped_non_finite: 3,
                dropped_queue_batches: 0,
                dropped_queue_samples: 0,
                rejected_outliers: 4,
                link_flaps: 5,
                live_links: 10,
                stale_links: 1,
                dead_links: 0,
                assemblies: 42,
            },
            stream_clock_s: 99.5,
            active_ref_captures: 1,
            planned_cost: 120,
            actual_cost: 80,
            full_survey_cost: 240,
            plan_policy: Some("uncertainty".into()),
            shard: 2,
        }],
        shards: vec![
            ShardStats {
                shard: 0,
                sites: 3,
                queue_depth_samples: 128,
                offered_batches: 40,
                offered_samples: 4000,
                admitted_batches: 30,
                admitted_samples: 3000,
                deferred_batches: 8,
                deferred_samples: 800,
                rejected_batches: 2,
                rejected_samples: 200,
            },
            ShardStats {
                shard: 1,
                sites: 0,
                queue_depth_samples: 0,
                offered_batches: 0,
                offered_samples: 0,
                admitted_batches: 0,
                admitted_samples: 0,
                deferred_batches: 0,
                deferred_samples: 0,
                rejected_batches: 0,
                rejected_samples: 0,
            },
        ],
    }
}

/// Every `Response` variant.
fn response_corpus() -> Vec<Response> {
    vec![
        Response::Error { message: "unknown site \"attic\"".into() },
        Response::SiteAdded { site: "lab".into(), links: 12, cells: 16 },
        Response::SiteRemoved { site: "lab".into() },
        Response::Sites {
            sites: vec![
                SiteInfo { site: "lab".into(), links: 12, cells: 16, version: 3 },
                SiteInfo { site: "attic".into(), links: 4, cells: 4, version: 0 },
            ],
        },
        Response::Sites { sites: vec![] },
        Response::Located { cell: 42, x: 3.9, y: 5.1, distance_db: 2.31, version: 1 },
        Response::StreamLocated {
            cell: 7,
            x: 0.5,
            y: 1.5,
            distance_db: 4.75,
            version: 2,
            missing_links: vec![1, 3],
            stale_links: vec![],
            stream_t_s: 12.25,
            window_samples: 240,
        },
        Response::LocatedBatch {
            fixes: vec![
                Fix { cell: 1, x: 0.0, y: 0.0, distance_db: 1.5 },
                Fix { cell: 2, x: 1.0, y: 0.0, distance_db: 2.5 },
            ],
            version: 4,
        },
        Response::Ingested {
            report: BatchReport {
                accepted: 10,
                dropped_late: 1,
                dropped_unknown_link: 0,
                dropped_non_finite: 2,
            },
        },
        Response::Tracked { x: 2.25, y: 3.5, effective_sample_size: 480.5 },
        Response::Detected { present: true, detail: "cusum fired at link 3".into() },
        Response::RefsAccepted {
            recommendation: "update-recommended".into(),
            estimated_error_db: 2.5,
        },
        Response::Refreshed {
            iterations: 12,
            converged: true,
            mean_abs_change_db: 0.75,
            version: 5,
        },
        Response::Stats { report: sample_stats_report() },
        Response::Pong,
        Response::ShuttingDown,
        Response::Overloaded {
            site: "lab".into(),
            shard: 3,
            reason: "deferred".into(),
            retry_after_ms: 25,
        },
        Response::Overloaded {
            site: "attic".into(),
            shard: 0,
            reason: "rejected".into(),
            retry_after_ms: 0,
        },
    ]
}

/// encode → decode → re-encode must reproduce the bytes exactly, in both
/// protocols. (The codecs are deterministic, so byte equality of the second
/// encode is a full structural-equality check without needing `PartialEq`.)
#[test]
fn every_variant_round_trips_in_both_protocols() {
    for req in request_corpus() {
        let mut v1 = Vec::new();
        wire::v1::encode_request(&req, &mut v1);
        let decoded = wire::v1::decode_request(std::str::from_utf8(&v1).unwrap())
            .unwrap_or_else(|e| panic!("v1 decode of {req:?}: {e}"));
        let mut again = Vec::new();
        wire::v1::encode_request(&decoded, &mut again);
        assert_eq!(v1, again, "v1 re-encode differs for {req:?}");

        let mut v2 = Vec::new();
        wire::v2::encode_request(&req, &mut v2);
        let decoded =
            wire::v2::decode_request(&v2).unwrap_or_else(|e| panic!("v2 decode of {req:?}: {e}"));
        let mut again = Vec::new();
        wire::v2::encode_request(&decoded, &mut again);
        assert_eq!(v2, again, "v2 re-encode differs for {req:?}");
    }
    for resp in response_corpus() {
        let mut v1 = Vec::new();
        wire::v1::encode_response(&resp, &mut v1);
        let decoded = wire::v1::decode_response(std::str::from_utf8(&v1).unwrap())
            .unwrap_or_else(|e| panic!("v1 decode of {resp:?}: {e}"));
        let mut again = Vec::new();
        wire::v1::encode_response(&decoded, &mut again);
        assert_eq!(v1, again, "v1 re-encode differs for {resp:?}");

        let mut v2 = Vec::new();
        wire::v2::encode_response(&resp, &mut v2);
        let decoded =
            wire::v2::decode_response(&v2).unwrap_or_else(|e| panic!("v2 decode of {resp:?}: {e}"));
        let mut again = Vec::new();
        wire::v2::encode_response(&decoded, &mut again);
        assert_eq!(v2, again, "v2 re-encode differs for {resp:?}");
    }
}

/// The serde derives are the reference encoding; the hand-rolled v1 codec
/// must reproduce them byte-for-byte for *every* variant, or pre-existing
/// JSON clients would notice the swap.
#[test]
fn v1_matches_the_serde_derive_for_every_variant() {
    for req in request_corpus() {
        let reference = serde_json::to_string(&req).expect("derive encode");
        let mut hand = Vec::new();
        wire::v1::encode_request(&req, &mut hand);
        assert_eq!(reference, String::from_utf8(hand).unwrap(), "request {req:?}");
    }
    for resp in response_corpus() {
        let reference = serde_json::to_string(&resp).expect("derive encode");
        let mut hand = Vec::new();
        wire::v1::encode_response(&resp, &mut hand);
        assert_eq!(reference, String::from_utf8(hand).unwrap(), "response {resp:?}");
    }
}

/// Declared-oversized and truncated v2 frames must error without panicking
/// and without yielding a message.
#[test]
fn oversized_and_truncated_v2_frames_error_cleanly() {
    // Header declaring a payload just over the cap, with no payload behind it.
    let mut oversized = vec![0xB2, 0x02];
    let mut len = (16 * 1024 * 1024 + 1) as u64;
    while len >= 0x80 {
        oversized.push((len as u8) | 0x80);
        len >>= 7;
    }
    oversized.push(len as u8);
    let mut reader = BufReader::new(Cursor::new(oversized));
    let mut version = WireVersion::V1Json;
    assert!(wire::read_request(&mut reader, &mut version).is_err());

    // A valid frame with its length prefix promising more than is there.
    let mut full = Vec::new();
    write_request(&mut full, &Request::Ping, WireVersion::V2Binary).unwrap();
    full.truncate(full.len() - 3);
    let mut reader = BufReader::new(Cursor::new(full));
    let mut version = WireVersion::V1Json;
    assert!(wire::read_request(&mut reader, &mut version).is_err());
}

/// A v1 client and a v2 client against the same live server: both get
/// identical answers, and one raw connection can switch versions mid-stream
/// because negotiation is per-message sniffing.
#[test]
fn v1_and_v2_clients_negotiate_against_one_server() {
    let world = World::new(WorldConfig::small_test(), 98);
    let x0 = campaign::full_calibration(&world, 0.0, 6);
    let e0 = campaign::empty_snapshot(&world, 0.0, 6);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let sys =
        TafLoc::calibrate(TafLocConfig { ref_count: 6, ..Default::default() }, db, e0).unwrap();
    let y = campaign::snapshot_at_cell(&world, 0.0, 3, 6);

    let server =
        Server::bind("127.0.0.1:0", ServerConfig { workers: 2, ..Default::default() }).unwrap();
    let addr = server.local_addr();
    server.add_site("lab", sys, 0.0).unwrap();
    let handle = server.spawn();

    let mut v1 = Client::connect(addr).unwrap();
    let mut v2 = Client::connect_v2(addr).unwrap();
    assert_eq!(v1.version(), WireVersion::V1Json);
    assert_eq!(v2.version(), WireVersion::V2Binary);
    v1.ping().unwrap();
    v2.ping().unwrap();
    let fix1 = v1.locate("lab", &y).unwrap();
    let fix2 = v2.locate("lab", &y).unwrap();
    assert_eq!(fix1.0, fix2.0, "both protocols must serve the same cell");
    assert_eq!(fix1.3, fix2.3, "and from the same snapshot version");

    // One raw connection, switching protocol per message.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for (send, expect) in
        [(WireVersion::V1Json, WireVersion::V1Json), (WireVersion::V2Binary, WireVersion::V2Binary)]
    {
        write_request(&mut writer, &Request::Ping, send).unwrap();
        writer.flush().unwrap();
        let mut replied = WireVersion::V1Json;
        match read_response(&mut reader, &mut replied) {
            Ok(Some(Response::Pong)) => {}
            other => panic!("expected pong in {send:?}, got {other:?}"),
        }
        assert_eq!(replied, expect, "the reply must use the request's framing");
    }
    drop(reader);
    drop(writer);

    let mut admin = Client::connect(addr).unwrap();
    admin.call(&Request::Shutdown).ok();
    handle.join();
}

/// Recoverable wire errors produce an error *response* in the sender's
/// framing, leave the connection usable, and are surfaced in `stats`.
#[test]
fn error_frames_never_break_framing_and_are_counted() {
    let server =
        Server::bind("127.0.0.1:0", ServerConfig { workers: 2, ..Default::default() }).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut replied = WireVersion::V1Json;

    // Malformed v1 line → error response, connection still framed.
    writer.write_all(b"this is not json\n").unwrap();
    writer.flush().unwrap();
    match read_response(&mut reader, &mut replied) {
        Ok(Some(Response::Error { message })) => {
            assert!(message.starts_with("malformed request:"), "got {message:?}")
        }
        other => panic!("expected an error response, got {other:?}"),
    }
    write_request(&mut writer, &Request::Ping, WireVersion::V1Json).unwrap();
    assert!(matches!(read_response(&mut reader, &mut replied), Ok(Some(Response::Pong))));

    // Corrupt v2 frame → error response framed in v2, connection still usable.
    let mut frame = Vec::new();
    write_request(&mut frame, &Request::Ping, WireVersion::V2Binary).unwrap();
    let idx = frame.len() - 5; // last payload byte, just before the crc
    frame[idx] ^= 0x40;
    writer.write_all(&frame).unwrap();
    writer.flush().unwrap();
    match read_response(&mut reader, &mut replied) {
        Ok(Some(Response::Error { message })) => {
            assert!(message.contains("checksum"), "got {message:?}")
        }
        other => panic!("expected a checksum error response, got {other:?}"),
    }
    assert_eq!(replied, WireVersion::V2Binary, "error reply must use v2 framing");
    write_request(&mut writer, &Request::Ping, WireVersion::V2Binary).unwrap();
    assert!(matches!(read_response(&mut reader, &mut replied), Ok(Some(Response::Pong))));
    drop(reader);
    drop(writer);

    let mut admin = Client::connect(addr).unwrap();
    let report = match admin.call_ok(&Request::Stats).unwrap() {
        Response::Stats { report } => report,
        other => panic!("unexpected reply to stats: {other:?}"),
    };
    assert!(report.wire_malformed >= 1, "malformed line counted: {report:?}");
    assert!(report.wire_checksum_mismatch >= 1, "checksum mismatch counted: {report:?}");
    admin.call(&Request::Shutdown).ok();
    handle.join();
}
