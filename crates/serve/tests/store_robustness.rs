//! Property tests for snapshot-store recovery under random corruption.
//!
//! The durability contract `SiteStore::recover_all` owes the daemon:
//!
//! 1. **Never panic** — whatever bytes are on disk, recovery returns a
//!    `Recovery`, it does not take the daemon down.
//! 2. **Skip exactly the damaged generations** — a truncated or bit-flipped
//!    snapshot is reported in `skipped` and recovery falls back to the next
//!    older valid generation of the same site (or recovers nothing if none
//!    is left), never serving corrupted state.
//! 3. **Prune to the newest [`KEEP_GENERATIONS`]** — saves retain exactly
//!    that many `.snap` files per site, newest-first, so fallback depth is
//!    bounded and disk usage cannot creep.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use taf_linalg::Matrix;
use taf_plan::{HistoryWindow, MeasurementPlan, PlanEntry, PlanPolicy, SurveyRecord};
use taf_rfsim::geometry::{Point, Segment};
use taf_rfsim::grid::FloorGrid;
use tafloc_core::db::FingerprintDb;
use tafloc_core::loli_ir::WarmState;
use tafloc_core::monitor::MonitorConfig;
use tafloc_core::reference::ReferenceStrategy;
use tafloc_core::system::{SystemSnapshot, TafLocConfig};
use tafloc_core::LrrModel;
use tafloc_ingest::IngestConfig;
use tafloc_serve::maintenance::MaintenancePolicy;
use tafloc_serve::store::{PersistedSite, SiteStore, KEEP_GENERATIONS};

/// A fresh scratch directory per generated case (cases run back to back in
/// one process; the directory must not leak state between them).
fn scratch() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("tafloc-store-robustness-{}-{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small hand-built site (2 links x 4 cells) exercising every codec field,
/// including the v2 durable hot state.
fn site(name: &str, generation: u64) -> PersistedSite {
    let rss =
        Matrix::from_vec(2, 4, vec![-50.0, -51.5, -49.0, -60.25, -40.0, -41.0, -42.5, -43.75])
            .unwrap();
    let links = vec![
        Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 0.0)),
        Segment::new(Point::new(0.0, 1.0), Point::new(3.0, 1.0)),
    ];
    let grid = FloorGrid::new(Point::new(-0.5, -0.5), 1.0, 4, 1);
    let db = FingerprintDb::new(rss, links, grid).unwrap();
    let z = Matrix::from_vec(2, 4, vec![1.0, 0.0, 0.25, -0.5, 0.0, 1.0, 0.75, 1.5]).unwrap();
    let lrr = LrrModel::from_parts(vec![0, 2], z, 1e-2).unwrap();
    let mut history = HistoryWindow::new(2, 2, 4).unwrap();
    history
        .record(0, SurveyRecord { epoch: 1, y: vec![-50.0, -40.0], fresh: vec![true; 2] })
        .unwrap();
    PersistedSite {
        name: name.to_string(),
        generation,
        refreshed_day: 45.5,
        snapshot: SystemSnapshot {
            config: TafLocConfig {
                ref_count: 2,
                ref_strategy: ReferenceStrategy::Random { seed: 99 },
                ..Default::default()
            },
            db,
            ref_cells: vec![0, 2],
            lrr,
            empty_rss: vec![-38.0, -39.5],
        },
        monitor_stored: Matrix::from_vec(2, 1, vec![-50.0, -40.0]).unwrap(),
        monitor_cells: vec![0],
        monitor_last_update_day: 44.0,
        monitor_config: MonitorConfig { error_threshold_db: 2.5, min_interval_days: 1.0 },
        breach_streak: 1,
        maintenance_checks: 17,
        auto_refreshes: 4,
        refresh_rejections: 2,
        consecutive_failures: 0,
        last_reject_reason: None,
        quarantined: false,
        quarantine_cooldown: 0,
        tick_panics: 0,
        policy: MaintenancePolicy::default(),
        ingest: IngestConfig::default(),
        journal_watermark: generation * 10,
        survey_epoch: generation,
        planned_cost: 5,
        actual_cost: 4,
        full_survey_cost: 8,
        current_plan: Some(MeasurementPlan {
            epoch: generation,
            policy: PlanPolicy::UncertaintyGreedy,
            entries: vec![PlanEntry { ref_slot: 0, links: vec![0, 1] }],
            planned_cost: 2,
            full_cost: 4,
        }),
        last_ref_confidence: Some(vec![0.9, 0.4]),
        history: Some(history),
        warm: Some(
            WarmState::from_parts(
                Matrix::from_vec(2, 1, vec![0.5, -0.25]).unwrap(),
                Matrix::from_vec(4, 1, vec![1.0, 0.5, 0.25, -1.0]).unwrap(),
            )
            .unwrap(),
        ),
    }
}

/// Saves generations `1..=n` of one site, returning the snapshot paths in
/// save order (only the newest [`KEEP_GENERATIONS`] still exist on disk).
fn save_generations(store: &SiteStore, name: &str, n: u64) -> Vec<PathBuf> {
    (1..=n).map(|g| store.save(&site(name, g)).unwrap()).collect()
}

/// The `.snap` files currently on disk, sorted.
fn snap_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    files.sort();
    files
}

proptest! {
    /// Truncating the newest generation anywhere short of its full length
    /// must skip exactly that file and fall back to the previous generation.
    fn truncation_is_skipped_and_recovery_falls_back(
        (gens, cut) in (1u64..4, 0u64..u64::MAX),
    ) {
        let dir = scratch();
        let store = SiteStore::open(&dir).unwrap();
        let paths = save_generations(&store, "alpha", gens);
        let newest = paths.last().unwrap();
        let len = std::fs::metadata(newest).unwrap().len();
        let keep = cut % len; // strictly shorter than the full file
        let bytes = std::fs::read(newest).unwrap();
        std::fs::write(newest, &bytes[..keep as usize]).unwrap();

        let recovery = store.recover_all().unwrap();
        prop_assert_eq!(recovery.skipped.len(), 1, "exactly the truncated file is skipped");
        prop_assert_eq!(&recovery.skipped[0].path, newest);
        if gens > 1 {
            prop_assert_eq!(recovery.sites.len(), 1);
            prop_assert_eq!(&recovery.sites[0].name, "alpha");
            prop_assert_eq!(recovery.sites[0].generation, gens - 1);
        } else {
            prop_assert!(recovery.sites.is_empty(), "no valid generation left to recover");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A single flipped bit anywhere in a snapshot file — magic, version,
    /// length, payload or checksum — must be detected: the generation is
    /// skipped, never decoded into served state.
    fn any_single_bit_flip_is_detected(
        (gens, target, pos, bit) in (1u64..4, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..8),
    ) {
        let dir = scratch();
        let store = SiteStore::open(&dir).unwrap();
        save_generations(&store, "alpha", gens);
        // Saves prune, so flip within a file that still exists.
        let files = snap_files(&dir);
        let victim = &files[(target % files.len() as u64) as usize];
        let mut bytes = std::fs::read(victim).unwrap();
        let at = (pos % bytes.len() as u64) as usize;
        bytes[at] ^= 1 << bit;
        std::fs::write(victim, &bytes).unwrap();

        let recovery = store.recover_all().unwrap();
        prop_assert_eq!(recovery.skipped.len(), 1, "the flipped file must be skipped");
        prop_assert_eq!(&recovery.skipped[0].path, victim);
        // Whatever survives is an untampered generation of the same site.
        for s in &recovery.sites {
            prop_assert_eq!(&s.name, "alpha");
            prop_assert_eq!(s.journal_watermark, s.generation * 10, "payload decoded intact");
        }
        let expected_sites = usize::from(files.len() > 1);
        prop_assert_eq!(recovery.sites.len(), expected_sites);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Damaging *every* retained generation still cannot panic recovery: it
    /// reports all of them skipped and recovers nothing.
    fn recovery_survives_total_corruption(
        (gens, bit) in (1u64..5, 0u64..8),
    ) {
        let dir = scratch();
        let store = SiteStore::open(&dir).unwrap();
        save_generations(&store, "alpha", gens);
        let files = snap_files(&dir);
        for f in &files {
            let mut bytes = std::fs::read(f).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 1 << bit;
            std::fs::write(f, &bytes).unwrap();
        }
        let recovery = store.recover_all().unwrap();
        prop_assert!(recovery.sites.is_empty());
        prop_assert_eq!(recovery.skipped.len(), files.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Saving `n` generations leaves exactly `min(n, KEEP_GENERATIONS)`
    /// `.snap` files on disk, and recovery serves the newest.
    fn pruning_keeps_exactly_the_newest_generations(
        gens in 1u64..9,
    ) {
        let dir = scratch();
        let store = SiteStore::open(&dir).unwrap();
        save_generations(&store, "alpha", gens);
        let files = snap_files(&dir);
        prop_assert_eq!(files.len(), (gens as usize).min(KEEP_GENERATIONS));
        let recovery = store.recover_all().unwrap();
        prop_assert!(recovery.skipped.is_empty());
        prop_assert_eq!(recovery.sites.len(), 1);
        prop_assert_eq!(recovery.sites[0].generation, gens);
        prop_assert_eq!(recovery.sites[0].journal_watermark, gens * 10);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
