//! Shared maintenance-scheduler behavior, exercised through the registry the
//! way the server drives it: sites scheduled on `add`, guaranteed-quiescent on
//! `remove`, shut down (and transparently restarted) around
//! `stop_maintenance`. Uses the registry API directly — no sockets, no JSON.

use std::time::{Duration, Instant};
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig};
use tafloc_serve::maintenance::MaintenancePolicy;
use tafloc_serve::registry::Registry;
use tafloc_serve::site::Site;

const SAMPLES: usize = 20;

fn calibrated_site(name: &str, seed: u64, policy: MaintenancePolicy) -> Site {
    let world = World::new(WorldConfig::small_test(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, SAMPLES);
    let e0 = campaign::empty_snapshot(&world, 0.0, SAMPLES);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let config = TafLocConfig { ref_count: 6, ..Default::default() };
    let sys = TafLoc::calibrate(config, db, e0).unwrap();
    Site::new(name, sys, 0.0, policy).unwrap()
}

fn fast_policy() -> MaintenancePolicy {
    MaintenancePolicy { interval_ms: 20, ..Default::default() }
}

fn checks(registry: &Registry, name: &str) -> u64 {
    registry.get(name).unwrap().stats().maintenance_checks
}

/// Polls until `cond` holds or the deadline passes.
fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn scheduler_ticks_all_sites_and_quiesces_on_remove() {
    let registry = Registry::with_maintenance_threads(2);
    registry.add(calibrated_site("alpha", 7, fast_policy())).unwrap();
    registry.add(calibrated_site("beta", 8, fast_policy())).unwrap();

    // Both sites get ticked by the shared scheduler.
    assert!(
        wait_for(|| checks(&registry, "alpha") >= 2 && checks(&registry, "beta") >= 2),
        "scheduler never ticked both sites"
    );

    // After remove() returns, no further tick may run for the removed site.
    let removed = registry.remove("alpha").unwrap();
    let frozen = removed.stats().maintenance_checks;
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(removed.stats().maintenance_checks, frozen, "tick after remove");

    // The surviving site keeps getting ticked.
    let before = checks(&registry, "beta");
    assert!(wait_for(|| checks(&registry, "beta") > before), "survivor starved");

    registry.stop_maintenance();
    let after_stop = checks(&registry, "beta");
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(checks(&registry, "beta"), after_stop, "tick after stop_maintenance");
}

#[test]
fn manual_tick_sites_are_never_scheduled() {
    let registry = Registry::with_maintenance_threads(1);
    let manual = MaintenancePolicy { manual_tick: true, interval_ms: 10, ..Default::default() };
    registry.add(calibrated_site("manual", 9, manual)).unwrap();
    registry.add(calibrated_site("auto", 10, fast_policy())).unwrap();
    // Wait until the scheduler demonstrably runs, then check the manual site
    // was left alone.
    assert!(wait_for(|| checks(&registry, "auto") >= 3));
    assert_eq!(checks(&registry, "manual"), 0);
    // The owner can still drive it explicitly.
    registry.get("manual").unwrap().maintenance_tick().unwrap();
    assert_eq!(checks(&registry, "manual"), 1);
    registry.stop_maintenance();
}

#[test]
fn scheduler_restarts_after_stop() {
    let registry = Registry::with_maintenance_threads(1);
    registry.add(calibrated_site("first", 11, fast_policy())).unwrap();
    assert!(wait_for(|| checks(&registry, "first") >= 1));
    registry.stop_maintenance();

    // A site added after shutdown gets a fresh scheduler thread.
    registry.add(calibrated_site("second", 12, fast_policy())).unwrap();
    assert!(wait_for(|| checks(&registry, "second") >= 1), "scheduler did not restart");
    registry.stop_maintenance();
}
