//! Property tests for the consistent-hash shard ring.
//!
//! Three invariants the sharded daemon leans on:
//!
//! 1. **Totality** — every site name maps to exactly one shard in
//!    `0..shards`, at any shard count.
//! 2. **Monotone resize** — growing the ring from `N` to `N + 1` shards only
//!    moves keys *onto* the new shard (never between old shards), and moves
//!    roughly `K / (N + 1)` of `K` keys.
//! 3. **Determinism** — two rings built with the same seed and count agree on
//!    every assignment; a restarted daemon therefore re-shards identically.

use proptest::collection::vec;
use proptest::prelude::*;
use tafloc_serve::shard::{ShardRing, DEFAULT_SHARD_SEED};

/// A synthetic site name from a raw 64-bit draw.
fn site_name(raw: u64) -> String {
    format!("site-{raw:016x}")
}

proptest! {
    fn every_site_maps_to_exactly_one_shard_in_range(
        (shards, keys) in (1usize..=64, vec(0u64..u64::MAX, 1..200)),
    ) {
        let ring = ShardRing::new(shards, DEFAULT_SHARD_SEED);
        prop_assert_eq!(ring.shards(), shards);
        for raw in keys {
            let name = site_name(raw);
            let shard = ring.shard_of(&name);
            prop_assert!(shard < shards, "site {} mapped to shard {} of {}", name, shard, shards);
            // Repeat lookups are pure: same ring, same name, same shard.
            prop_assert_eq!(ring.shard_of(&name), shard);
        }
    }

    fn resize_moves_only_onto_the_new_shard_and_few_keys(
        (shards, seed, keys) in (1usize..=16, 0u64..u64::MAX, vec(0u64..u64::MAX, 50..400)),
    ) {
        let before = ShardRing::new(shards, seed);
        let after = ShardRing::new(shards + 1, seed);
        let mut moved = 0usize;
        for raw in &keys {
            let name = site_name(*raw);
            let (old, new) = (before.shard_of(&name), after.shard_of(&name));
            if old != new {
                // Jump hash is monotone: a key that moves can only land on
                // the shard that was just added.
                prop_assert_eq!(new, shards, "site {} moved {} -> {}", name, old, new);
                moved += 1;
            }
        }
        // Expect ~K/(N+1) moves; allow generous slack for small samples.
        let bound = 2 * keys.len() / (shards + 1) + 16;
        prop_assert!(moved <= bound, "{} of {} keys moved (bound {})", moved, keys.len(), bound);
    }

    fn same_seed_rings_are_identical_and_different_seeds_are_not_degenerate(
        (shards, seed, keys) in (2usize..=16, 0u64..u64::MAX, vec(0u64..u64::MAX, 100..300)),
    ) {
        let a = ShardRing::new(shards, seed);
        let b = ShardRing::new(shards, seed);
        prop_assert_eq!(a.seed(), b.seed());
        let other = ShardRing::new(shards, seed ^ 0x5bd1_e995_9d1b_54a5);
        let mut disagreements = 0usize;
        for raw in &keys {
            let name = site_name(*raw);
            // Restart-identical: assignment is a pure function of (seed, N).
            prop_assert_eq!(a.shard_of(&name), b.shard_of(&name));
            if a.shard_of(&name) != other.shard_of(&name) {
                disagreements += 1;
            }
        }
        // The seed genuinely participates: a different seed reshuffles a
        // non-trivial fraction of keys (expected (N-1)/N of them).
        prop_assert!(
            disagreements > keys.len() / 4,
            "only {} of {} keys reassigned under a different seed",
            disagreements,
            keys.len()
        );
    }
}
