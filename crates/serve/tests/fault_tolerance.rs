//! Fault tolerance: refresh sanity gates with rollback, quarantine and
//! re-admission, panic isolation in the maintenance scheduler, and site
//! persistence round-trips — all at the library level (no sockets), so every
//! failure is injected deterministically.

use std::sync::Arc;
use std::time::{Duration, Instant};
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::loli_ir::LoliIrConfig;
use tafloc_core::system::{TafLoc, TafLocConfig};
use tafloc_serve::maintenance::MaintenancePolicy;
use tafloc_serve::registry::Registry;
use tafloc_serve::site::Site;
use tafloc_serve::store::SiteStore;
use tafloc_serve::ServeError;

const SAMPLES: usize = 20;
const UPDATE_DAY: f64 = 45.0;

fn calibrated(seed: u64, config: TafLocConfig) -> (World, TafLoc) {
    let world = World::new(WorldConfig::small_test(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, SAMPLES);
    let e0 = campaign::empty_snapshot(&world, 0.0, SAMPLES);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let sys = TafLoc::calibrate(config, db, e0).unwrap();
    (world, sys)
}

fn honest_config() -> TafLocConfig {
    TafLocConfig { ref_count: 6, ..Default::default() }
}

/// A system whose every reconstruction is poisoned: the test-only
/// `debug_bias_db` hook shifts the solve +40 dB, far past the guard's
/// reference-RMSE ceiling.
fn poisoned_config() -> TafLocConfig {
    TafLocConfig {
        ref_count: 6,
        loli: LoliIrConfig { debug_bias_db: 40.0, ..Default::default() },
        ..Default::default()
    }
}

fn fresh_refs(world: &World, sys: &TafLoc) -> (taf_linalg::Matrix, Vec<f64>) {
    let cols = campaign::measure_columns(world, UPDATE_DAY, sys.reference_cells(), SAMPLES);
    let empty = campaign::empty_snapshot(world, UPDATE_DAY, SAMPLES);
    (cols, empty)
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}

#[test]
fn guard_rejection_rolls_back_and_quarantines() {
    let (world, sys) = calibrated(41, poisoned_config());
    let policy = MaintenancePolicy {
        auto_refresh: false,
        manual_tick: true,
        quarantine_after: 2,
        ..Default::default()
    };
    let site = Site::new("lab", sys, 0.0, policy).unwrap();
    let (cols, empty) = fresh_refs(&world, &site.load().system);
    let query = campaign::snapshot_at_cell(&world, 0.0, 3, SAMPLES);
    let before = site.locate(&query).unwrap().0.cell;

    site.ingest_refs(UPDATE_DAY, cols, empty).unwrap();

    // First rejection: rolled back, counted, not yet quarantined.
    let err = site.refresh().unwrap_err();
    match &err {
        ServeError::RefreshRejected { reason, quarantined } => {
            assert!(reason.contains("reference columns"), "{reason}");
            assert!(!quarantined, "one strike is not enough");
        }
        other => panic!("expected RefreshRejected, got {other}"),
    }
    let stats = site.stats();
    assert_eq!(stats.version, 0, "old snapshot stays live");
    assert_eq!(stats.refresh_rejections, 1);
    assert_eq!(stats.consecutive_failures, 1);
    assert!(!stats.quarantined);
    assert!(stats.last_reject_reason.as_deref().unwrap().contains("reference columns"));
    assert!(stats.pending_refs, "pending refs are kept for a retried attempt");

    // The read path is untouched by the rejection.
    let (fix, version) = site.locate(&query).unwrap();
    assert_eq!((fix.cell, version), (before, 0));

    // Second strike crosses `quarantine_after`.
    let err = site.refresh().unwrap_err();
    assert!(
        matches!(err, ServeError::RefreshRejected { quarantined: true, .. }),
        "second strike must quarantine: {err}"
    );
    let stats = site.stats();
    assert!(stats.quarantined);
    assert_eq!(stats.refresh_rejections, 2);
    assert!(site.backoff_factor() > 1, "failures must back the scheduler off");

    // Quarantined sites are skipped by the scheduler gate and their manual
    // ticks are inert — but they keep serving reads.
    assert!(site.quarantine_tick());
    assert_eq!(site.locate(&query).unwrap().0.cell, before);
}

#[test]
fn quarantine_cooldown_re_admits_on_probation() {
    let (world, sys) = calibrated(42, poisoned_config());
    let policy = MaintenancePolicy {
        auto_refresh: false,
        manual_tick: true,
        quarantine_after: 1,
        quarantine_cooldown_ticks: 2,
        ..Default::default()
    };
    let site = Site::new("lab", sys, 0.0, policy).unwrap();
    let (cols, empty) = fresh_refs(&world, &site.load().system);
    site.ingest_refs(UPDATE_DAY, cols, empty).unwrap();
    assert!(site.refresh().is_err());
    assert!(site.is_quarantined(), "quarantine_after = 1: first strike quarantines");

    // Two scheduler passes burn the cooldown; the site comes back...
    assert!(site.quarantine_tick());
    assert!(site.quarantine_tick());
    assert!(!site.is_quarantined(), "cooldown elapsed");
    assert!(!site.quarantine_tick(), "no longer skipped");

    // ...on probation: the failure streak survives re-admission, so the very
    // next rejection re-quarantines instantly.
    assert!(site.refresh().is_err());
    assert!(site.is_quarantined(), "probation: one more strike re-quarantines");
}

#[test]
fn nan_poisoned_refs_never_commit() {
    let (world, sys) = calibrated(43, honest_config());
    let policy = MaintenancePolicy { auto_refresh: false, manual_tick: true, ..Default::default() };
    let site = Site::new("lab", sys, 0.0, policy).unwrap();
    let (mut cols, empty) = fresh_refs(&world, &site.load().system);
    cols.set(0, 0, f64::NAN).unwrap();
    let query = campaign::snapshot_at_cell(&world, 0.0, 2, SAMPLES);
    let before = site.locate(&query).unwrap().0.cell;

    site.ingest_refs(UPDATE_DAY, cols, empty).unwrap();
    // Whether the solver chokes or the guard catches the non-finite result,
    // a poisoned refresh must never commit.
    assert!(site.refresh().is_err());
    let (fix, version) = site.locate(&query).unwrap();
    assert_eq!((fix.cell, version), (before, 0), "rollback: old snapshot serves on");
}

#[test]
fn honest_refresh_clears_quarantine_and_failure_state() {
    let (world, sys) = calibrated(44, honest_config());
    let policy = MaintenancePolicy {
        auto_refresh: false,
        manual_tick: true,
        quarantine_after: 1,
        ..Default::default()
    };
    let site = Site::new("lab", sys, 0.0, policy).unwrap();

    // Poison via NaN reference measurements until quarantined.
    let (cols, empty) = fresh_refs(&world, &site.load().system);
    let mut bad = cols.clone();
    bad.set(0, 0, f64::NAN).unwrap();
    site.ingest_refs(UPDATE_DAY, bad, empty.clone()).unwrap();
    let _ = site.refresh();
    // NaN may surface as a solver error rather than a guard rejection; force
    // the quarantine path deterministically if it did not count.
    if !site.is_quarantined() {
        site.note_tick_panic();
    }
    assert!(site.is_quarantined());

    // An explicit refresh with honest measurements re-admits the site: new
    // measure-refs overwrite the poisoned pending columns.
    site.ingest_refs(UPDATE_DAY, cols, empty).unwrap();
    let (report, version) = site.refresh().unwrap();
    assert!(report.converged);
    assert_eq!(version, 1);
    let stats = site.stats();
    assert!(!stats.quarantined, "a committed refresh lifts quarantine");
    assert_eq!(stats.consecutive_failures, 0);
    assert!(stats.last_reject_reason.is_none());
    assert_eq!(site.backoff_factor(), 1, "backoff resets on success");
}

#[test]
fn panicking_ticks_are_isolated_and_the_site_recovers() {
    let (world, sys) = calibrated(45, honest_config());
    // The first 3 ticks panic (injected); 3 strikes quarantine; a 2-pass
    // cooldown re-admits. The scheduler thread must survive all of it.
    let policy = MaintenancePolicy {
        interval_ms: 10,
        auto_refresh: false,
        debug_panic_ticks: 3,
        quarantine_after: 3,
        quarantine_cooldown_ticks: 2,
        ..Default::default()
    };
    let registry = Registry::new();
    let site = registry.add(Site::new("lab", sys, 0.0, policy).unwrap()).unwrap();
    let query = campaign::snapshot_at_cell(&world, 0.0, 4, SAMPLES);

    // All three injected panics fire (each isolated by the panic boundary).
    assert!(
        wait_until(Duration::from_secs(20), || site.stats().tick_panics >= 3),
        "scheduler died before surviving 3 injected panics: {:?}",
        site.stats()
    );
    // Reads never stopped working.
    site.locate(&query).unwrap();

    // Quarantine, then cooldown-driven re-admission, then healthy ticks
    // (the panic budget is exhausted, so resumed ticks run for real).
    assert!(
        wait_until(Duration::from_secs(20), || {
            let s = site.stats();
            !s.quarantined && s.maintenance_checks >= 1
        }),
        "site never recovered from quarantine: {:?}",
        site.stats()
    );
    let stats = site.stats();
    assert_eq!(stats.tick_panics, 3, "no panics after the injected budget");

    // And an explicit honest refresh clears the failure streak entirely.
    let (cols, empty) = fresh_refs(&world, &site.load().system);
    site.ingest_refs(UPDATE_DAY, cols, empty).unwrap();
    let (_, version) = site.refresh().unwrap();
    assert_eq!(version, 1);
    assert_eq!(site.stats().consecutive_failures, 0);
    registry.stop_maintenance();
}

#[test]
fn persisted_site_survives_a_simulated_restart() {
    let dir = std::env::temp_dir().join(format!("tafloc-ft-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(SiteStore::open(&dir).unwrap());

    let (world, sys) = calibrated(46, honest_config());
    let policy = MaintenancePolicy { auto_refresh: false, manual_tick: true, ..Default::default() };
    let site =
        Site::new("lab", sys, 0.0, policy).unwrap().with_persistence(Arc::clone(&store)).unwrap();

    // Generation 0 was persisted on attach; commit generation 1 too.
    let (cols, empty) = fresh_refs(&world, &site.load().system);
    site.ingest_refs(UPDATE_DAY, cols, empty).unwrap();
    let (_, version) = site.refresh().unwrap();
    assert_eq!(version, 1);
    let queries: Vec<Vec<f64>> = (0..world.num_cells())
        .map(|c| campaign::snapshot_at_cell(&world, UPDATE_DAY, c, SAMPLES))
        .collect();
    let expected: Vec<usize> = queries.iter().map(|y| site.locate(y).unwrap().0.cell).collect();
    let stats_before = site.stats();
    drop(site);

    // "Restart": a fresh store over the same directory, recover, resurrect.
    let store2 = SiteStore::open(&dir).unwrap();
    let recovery = store2.recover_all().unwrap();
    assert!(recovery.skipped.is_empty(), "{:?}", recovery.skipped);
    assert_eq!(recovery.sites.len(), 1);
    let revived =
        Site::from_persisted(recovery.sites.into_iter().next().unwrap(), Default::default())
            .unwrap();
    let stats_after = revived.stats();
    assert_eq!(stats_after.version, 1, "recovered at the committed generation");
    assert_eq!(stats_after.refreshed_day, UPDATE_DAY);
    assert_eq!(stats_after.maintenance_checks, stats_before.maintenance_checks);
    let revived_fixes: Vec<usize> =
        queries.iter().map(|y| revived.locate(y).unwrap().0.cell).collect();
    assert_eq!(revived_fixes, expected, "locate must be bit-equal across the restart");
    let _ = std::fs::remove_dir_all(&dir);
}
