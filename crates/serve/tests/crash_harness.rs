//! Kill -9 battery for the durable-hot-state stack: write-ahead journal
//! replay, persisted plan/warm state, and torn-write recovery, all against
//! the real `taflocd` binary over TCP.
//!
//! Complements `restart.rs` (which pins committed-snapshot recovery): these
//! tests kill the daemon at points where the interesting state is *not* in a
//! committed snapshot yet — an acknowledged survey that never refreshed,
//! capture windows mid-round — and require the journal to carry it across.
//! Every restart also happens on a deliberately damaged data directory
//! (torn journal tail + orphaned snapshot temp file), so each run doubles
//! as a mid-write crash injection.
//!
//! The daemon runs with `--journal-flush-ms 0`: every acknowledged ingest is
//! fsynced before the reply, making "acknowledged" and "durable" the same
//! thing and the assertions deterministic.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig};
use tafloc_core::LoliIrConfig;
use tafloc_ingest::LinkSample;
use tafloc_serve::client::Client;
use tafloc_serve::maintenance::MaintenancePolicy;
use tafloc_serve::protocol::{Request, Response, SiteStats};

const SAMPLES: usize = 20;
const DAY1: f64 = 45.0;

fn calibrated(seed: u64) -> (World, TafLoc) {
    let world = World::new(WorldConfig::small_test(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, SAMPLES);
    let e0 = campaign::empty_snapshot(&world, 0.0, SAMPLES);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    // A tight solver tolerance makes the cold refresh run a meaningful
    // number of outer iterations, so the warm-start savings after a restart
    // are visible as a strict iteration drop rather than a wash.
    let loli = LoliIrConfig { tol: 1e-7, max_iters: 400, ..Default::default() };
    let config = TafLocConfig { ref_count: 6, loli, ..Default::default() };
    let sys = TafLoc::calibrate(config, db, e0).unwrap();
    (world, sys)
}

fn spawn_daemon(data_dir: &Path, port_file: &Path, extra: &[&str]) -> Child {
    let _ = std::fs::remove_file(port_file);
    let mut args = vec![
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--journal-flush-ms",
        "0",
        "--data-dir",
        data_dir.to_str().unwrap(),
        "--port-file",
        port_file.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    Command::new(env!("CARGO_BIN_EXE_taflocd"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn taflocd")
}

fn await_port(port_file: &Path) -> u16 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(port) = text.trim().parse() {
                return port;
            }
        }
        assert!(Instant::now() < deadline, "taflocd never wrote {}", port_file.display());
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn temp_base(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tafloc-crash-{tag}-{}", std::process::id()))
}

fn manual_policy() -> MaintenancePolicy {
    MaintenancePolicy { auto_refresh: false, manual_tick: true, ..Default::default() }
}

fn add_site(client: &mut Client, name: &str, sys: &TafLoc) {
    match client
        .call_ok(&Request::AddSite {
            site: name.into(),
            snapshot: Box::new(sys.snapshot()),
            day: 0.0,
            policy: Some(manual_policy()),
        })
        .unwrap()
    {
        Response::SiteAdded { .. } => {}
        other => panic!("unexpected reply to add-site: {other:?}"),
    }
}

fn measure_refs(client: &mut Client, name: &str, world: &World, sys: &TafLoc, day: f64) {
    let cols = campaign::measure_columns(world, day, sys.reference_cells(), SAMPLES);
    let empty = campaign::empty_snapshot(world, day, SAMPLES);
    client.call_ok(&Request::MeasureRefs { site: name.into(), day, columns: cols, empty }).unwrap();
}

fn refresh(client: &mut Client, name: &str) -> (usize, u64) {
    match client.call_ok(&Request::Refresh { site: name.into() }).unwrap() {
        Response::Refreshed { iterations, version, .. } => (iterations, version),
        other => panic!("unexpected reply to refresh: {other:?}"),
    }
}

fn site_stats(client: &mut Client, name: &str) -> SiteStats {
    match client.call_ok(&Request::Stats).unwrap() {
        Response::Stats { report } => {
            report.sites.into_iter().find(|s| s.site == name).expect("site in stats")
        }
        other => panic!("unexpected reply to stats: {other:?}"),
    }
}

/// SIGKILL: no destructors, no flushes — only what was fsynced survives.
fn kill_nine(child: &mut Child, client: Client) {
    child.kill().unwrap();
    child.wait().unwrap();
    drop(client);
}

/// Mid-write crash injection, applied to the dead daemon's data directory
/// before restart: a torn partial frame at the tail of the newest journal
/// segment (a kill mid-`write(2)` of an append) and an orphaned snapshot
/// temp file (a kill between `write(tmp)` and `rename`). Recovery must
/// truncate the former, ignore the latter, and lose nothing acknowledged.
fn inject_torn_writes(data_dir: &Path) {
    let mut wals: Vec<PathBuf> = std::fs::read_dir(data_dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    wals.sort();
    let active = wals.pop().expect("the site has an active journal segment");
    let mut torn = Vec::new();
    torn.extend_from_slice(&128u32.to_le_bytes()); // promises 128 payload bytes
    torn.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    torn.extend_from_slice(&[0xA5; 17]); // ...delivers 17
    let mut bytes = std::fs::read(&active).unwrap();
    bytes.extend_from_slice(&torn);
    std::fs::write(&active, &bytes).unwrap();
    std::fs::write(data_dir.join("lab-00000000000000000000.tmp"), b"half-written snapshot")
        .unwrap();
}

/// An acknowledged `measure-refs` survey that never reached a refresh lives
/// only in the journal when the kill lands. The restarted daemon must replay
/// it — pending refs present, refresh commits it, and the served fixes match
/// a local replay of the same deterministic survey. Zero acknowledged-data
/// loss, even with torn writes injected on top.
#[test]
fn acknowledged_survey_survives_kill_nine_via_journal_replay() {
    let base = temp_base("survey");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let data_dir = base.join("data");
    let port_file = base.join("port");

    let (world, sys) = calibrated(81);
    let mut child = spawn_daemon(&data_dir, &port_file, &[]);
    let mut client = Client::connect(format!("127.0.0.1:{}", await_port(&port_file))).unwrap();
    add_site(&mut client, "lab", &sys);
    measure_refs(&mut client, "lab", &world, &sys, DAY1);
    // The ack above means the survey record is fsynced in the journal; the
    // snapshot on disk still predates it (no refresh ran).
    kill_nine(&mut child, client);
    inject_torn_writes(&data_dir);

    let mut child = spawn_daemon(&data_dir, &port_file, &[]);
    let mut client = Client::connect(format!("127.0.0.1:{}", await_port(&port_file))).unwrap();
    let stats = site_stats(&mut client, "lab");
    assert_eq!(stats.version, 0, "no refresh ever committed");
    assert!(stats.pending_refs, "journal replay must resurrect the acknowledged survey");

    let (_, version) = refresh(&mut client, "lab");
    assert_eq!(version, 1);

    // The refresh is a pure function of the calibrated system plus the
    // deterministic survey columns, so a local replay pins the exact fixes
    // the recovered daemon must serve.
    let mut replay = TafLoc::from_snapshot(sys.snapshot()).unwrap();
    let cols = campaign::measure_columns(&world, DAY1, sys.reference_cells(), SAMPLES);
    let empty = campaign::empty_snapshot(&world, DAY1, SAMPLES);
    replay.update(&cols, &empty).unwrap();
    for cell in 0..world.num_cells() {
        let y = campaign::snapshot_at_cell(&world, DAY1, cell, SAMPLES);
        let (got, _, _, v) = client.locate("lab", &y).unwrap();
        assert_eq!(v, 1);
        assert_eq!(got, replay.localize(&y).unwrap().cell, "cell {cell}");
    }

    client.call(&Request::Shutdown).ok();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&base);
}

/// Admitted reference-capture batches (the incremental survey path) must
/// also ride the journal: a kill mid-round may not lose a single admitted
/// batch — the restarted daemon rebuilds every open capture window.
#[test]
fn admitted_capture_batches_survive_kill_nine() {
    let base = temp_base("captures");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let data_dir = base.join("data");
    let port_file = base.join("port");

    let (world, sys) = calibrated(82);
    let n_refs = sys.reference_cells().len();
    let mut child = spawn_daemon(&data_dir, &port_file, &[]);
    let mut client = Client::connect(format!("127.0.0.1:{}", await_port(&port_file))).unwrap();
    add_site(&mut client, "lab", &sys);

    // One admitted batch per reference slot: every ack is an fsynced
    // journal record.
    for k in 0..n_refs {
        let samples: Vec<LinkSample> = (0..world.num_links())
            .map(|l| LinkSample::new(l, 1.0 + k as f64, -50.0 - l as f64))
            .collect();
        client
            .call_ok(&Request::Ingest { site: "lab".into(), ref_cell: Some(k), day: DAY1, samples })
            .unwrap();
    }
    let before = site_stats(&mut client, "lab");
    assert_eq!(before.active_ref_captures, n_refs);
    kill_nine(&mut child, client);
    inject_torn_writes(&data_dir);

    let mut child = spawn_daemon(&data_dir, &port_file, &[]);
    let mut client = Client::connect(format!("127.0.0.1:{}", await_port(&port_file))).unwrap();
    let after = site_stats(&mut client, "lab");
    assert_eq!(
        after.active_ref_captures, n_refs,
        "replay must rebuild every admitted capture window"
    );
    assert_eq!(after.version, 0);

    client.call(&Request::Shutdown).ok();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&base);
}

/// Plan-and-warm durability: after a kill -9, the restarted daemon keeps its
/// measurement-plan schedule position (cumulative cost counters, active
/// policy) and its solver warm state — the first post-restart refresh runs
/// exactly like the uninterrupted daemon's (same iteration count) and
/// strictly cheaper than the cold first refresh.
///
/// Both runs re-survey the same drift day for the second refresh: the warm
/// seed then scores below the cold SVD-of-prior start and the solver accepts
/// it, which is the steady-state "re-confirm the environment" pattern where
/// warm state pays. (Losing the warm state across the restart would make the
/// second refresh re-earn the whole solution from the cold start.)
#[test]
fn plan_schedule_and_warm_state_resume_after_kill_nine() {
    let budget = ["--budget", "18"];

    // Control: the same sequence with no kill, to pin the uninterrupted
    // iteration counts and cost counters.
    let ctrl_base = temp_base("plan-ctrl");
    let _ = std::fs::remove_dir_all(&ctrl_base);
    std::fs::create_dir_all(&ctrl_base).unwrap();
    let (world, sys) = calibrated(83);
    let mut child = spawn_daemon(&ctrl_base.join("data"), &ctrl_base.join("port"), &budget);
    let mut client =
        Client::connect(format!("127.0.0.1:{}", await_port(&ctrl_base.join("port")))).unwrap();
    add_site(&mut client, "lab", &sys);
    measure_refs(&mut client, "lab", &world, &sys, DAY1);
    let (iters_cold, _) = refresh(&mut client, "lab");
    measure_refs(&mut client, "lab", &world, &sys, DAY1);
    let (iters_warm_ctrl, _) = refresh(&mut client, "lab");
    client.call(&Request::Shutdown).ok();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&ctrl_base);

    // Crash run: kill -9 between the two refreshes, restart on the damaged
    // directory, finish the sequence.
    let base = temp_base("plan");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let data_dir = base.join("data");
    let port_file = base.join("port");
    let mut child = spawn_daemon(&data_dir, &port_file, &budget);
    let mut client = Client::connect(format!("127.0.0.1:{}", await_port(&port_file))).unwrap();
    add_site(&mut client, "lab", &sys);
    measure_refs(&mut client, "lab", &world, &sys, DAY1);
    let (iters_first, version) = refresh(&mut client, "lab");
    assert_eq!(version, 1);
    assert_eq!(iters_first, iters_cold, "identical deterministic first refresh");
    let before = site_stats(&mut client, "lab");
    assert_eq!(before.plan_policy.as_deref(), Some("uncertainty-greedy"));
    kill_nine(&mut child, client);
    inject_torn_writes(&data_dir);

    let mut child = spawn_daemon(&data_dir, &port_file, &budget);
    let mut client = Client::connect(format!("127.0.0.1:{}", await_port(&port_file))).unwrap();
    let after = site_stats(&mut client, "lab");
    assert_eq!(after.version, 1, "recovered at the committed generation");
    assert_eq!(after.plan_policy.as_deref(), Some("uncertainty-greedy"));
    assert_eq!(after.planned_cost, before.planned_cost, "schedule position survives the kill");
    assert_eq!(after.actual_cost, before.actual_cost);
    assert_eq!(after.full_survey_cost, before.full_survey_cost);

    measure_refs(&mut client, "lab", &world, &sys, DAY1);
    let (iters_resumed, version) = refresh(&mut client, "lab");
    assert_eq!(version, 2);
    assert_eq!(
        iters_resumed, iters_warm_ctrl,
        "restored warm state must make the post-restart refresh identical to the uninterrupted one"
    );
    assert!(
        iters_resumed < iters_cold,
        "first post-restart refresh must warm-start: {iters_resumed} vs cold {iters_cold}"
    );

    client.call(&Request::Shutdown).ok();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&base);
}
