//! Randomized robustness fuzz for the wire decoder.
//!
//! The workspace's `proptest` is a compile-only stub, so this is a hand-rolled
//! xorshift fuzzer: hammer [`read_message`] with random byte soup — invalid
//! UTF-8, embedded NULs, half-formed JSON, pathological newline placement,
//! tiny `BufReader` capacities — and assert the decoder never panics and
//! always terminates: every line yields `Ok`/`Err` and the stream drains to
//! EOF in bounded steps.

use std::io::{BufReader, Cursor};
use tafloc_serve::protocol::{read_message, Request};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Random bytes, biased toward protocol-shaped trouble: newlines, braces,
/// quotes, backslashes, high bytes that break UTF-8 mid-sequence.
fn gen_input(state: &mut u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let r = xorshift(state);
        let b = match r % 10 {
            0 => b'\n',
            1 => b'{',
            2 => b'}',
            3 => b'"',
            4 => b'\\',
            5 => 0x00,
            6 => 0xC3, // first byte of a 2-byte UTF-8 sequence, often orphaned
            7 => 0xFF, // never valid in UTF-8
            _ => (r >> 8) as u8,
        };
        out.push(b);
    }
    out
}

/// Drain one fuzz input through `read_message` to EOF. Each call consumes at
/// least one line (or errors), so the loop is bounded by the newline count.
fn drain(input: Vec<u8>, buf_capacity: usize) -> (usize, usize) {
    let newlines = input.iter().filter(|&&b| b == b'\n').count();
    let mut reader = BufReader::with_capacity(buf_capacity.max(1), Cursor::new(input));
    let (mut oks, mut errs) = (0, 0);
    for _ in 0..newlines + 2 {
        match read_message::<_, Request>(&mut reader) {
            Ok(None) => return (oks, errs), // clean EOF
            Ok(Some(_)) => oks += 1,
            Err(_) => errs += 1,
        }
    }
    (oks, errs)
}

#[test]
fn random_byte_soup_never_panics_the_decoder() {
    let mut state = 0x5EED_F00D_u64 | 1;
    for round in 0..200 {
        let len = (xorshift(&mut state) % 4096) as usize;
        let cap = 1 + (xorshift(&mut state) % 64) as usize;
        let input = gen_input(&mut state, len);
        // The assertion is implicit: no panic, and drain() terminates.
        let (oks, errs) = drain(input, cap);
        // Random soup essentially never parses as a valid Request.
        assert!(oks <= errs + 1, "round {round}: {oks} parses from garbage?");
    }
}

#[test]
fn valid_json_islands_in_garbage_stay_framed() {
    // A malformed line must produce an error *and leave the stream framed*:
    // the ping that follows garbage on the same stream is still reachable.
    // (When the workspace runs with stub serde_json, even the valid ping
    // fails to parse — but the framing guarantee below still holds.)
    let mut state = 0xBAD_5EED_u64 | 1;
    for _ in 0..50 {
        let len = (xorshift(&mut state) % 512) as usize;
        let mut garbage = gen_input(&mut state, len);
        garbage.retain(|&b| b != b'\n');
        let mut input = garbage;
        input.push(b'\n');
        input.extend_from_slice(b"{\"cmd\":\"ping\"}\n");
        let mut reader = BufReader::with_capacity(7, Cursor::new(input));
        let _first = read_message::<_, Request>(&mut reader);
        // Whatever the garbage did, the reader must still deliver the next
        // line rather than hanging or tearing mid-line.
        let second = read_message::<_, Request>(&mut reader);
        if let Ok(Some(req)) = second {
            assert!(matches!(req, Request::Ping));
        }
        // EOF afterwards — nothing left over.
        let third = read_message::<_, Request>(&mut reader);
        assert!(!matches!(third, Ok(Some(_))), "stream must be drained");
    }
}

#[test]
fn pathological_newline_runs_terminate_quickly() {
    // Blank lines are skipped inside read_message; a megabyte of newlines
    // must collapse to a single clean EOF, not an error per line.
    let input = vec![b'\n'; 1 << 20];
    let mut reader = BufReader::with_capacity(13, Cursor::new(input));
    match read_message::<_, Request>(&mut reader) {
        Ok(None) => {}
        other => panic!("expected clean EOF through blank lines, got {other:?}"),
    }
}
