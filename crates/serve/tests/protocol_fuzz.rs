//! Randomized robustness fuzz for the wire decoder.
//!
//! The workspace's `proptest` is a compile-only stub, so this is a hand-rolled
//! xorshift fuzzer: hammer [`tafloc_serve::wire::read_request`] with random
//! byte soup — invalid UTF-8, embedded NULs, half-formed JSON, stray v2 magic
//! bytes, pathological newline placement, tiny `BufReader` capacities — and
//! assert the sniffing decoder never panics and always terminates: every
//! message attempt yields `Ok`/`Err` and the stream drains to EOF in bounded
//! steps.

use std::io::{BufReader, Cursor};
use tafloc_serve::protocol::Request;
use tafloc_serve::wire::{read_request, write_request, WireVersion};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Random bytes, biased toward protocol-shaped trouble: newlines, braces,
/// quotes, backslashes, high bytes that break UTF-8 mid-sequence, and the
/// v2 frame magic so the fuzzer exercises both sniffed paths.
fn gen_input(state: &mut u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let r = xorshift(state);
        let b = match r % 11 {
            0 => b'\n',
            1 => b'{',
            2 => b'}',
            3 => b'"',
            4 => b'\\',
            5 => 0x00,
            6 => 0xC3, // first byte of a 2-byte UTF-8 sequence, often orphaned
            7 => 0xFF, // never valid in UTF-8
            8 => 0xB2, // the v2 frame magic — drops the sniffer into binary mode
            _ => (r >> 8) as u8,
        };
        out.push(b);
    }
    out
}

/// Drain one fuzz input through `read_request` to EOF. Every non-EOF call
/// consumes at least one byte (the sniffed byte in v2 mode, a whole line in
/// v1 mode), so the loop is bounded by the input length.
fn drain(input: Vec<u8>, buf_capacity: usize) -> (usize, usize) {
    let bound = input.len() + 2;
    let mut reader = BufReader::with_capacity(buf_capacity.max(1), Cursor::new(input));
    let mut version = WireVersion::V1Json;
    let (mut oks, mut errs) = (0, 0);
    for _ in 0..bound {
        match read_request(&mut reader, &mut version) {
            Ok(None) => return (oks, errs), // clean EOF
            Ok(Some(_)) => oks += 1,
            Err(_) => errs += 1,
        }
    }
    (oks, errs)
}

#[test]
fn random_byte_soup_never_panics_the_decoder() {
    let mut state = 0x5EED_F00D_u64 | 1;
    for round in 0..200 {
        let len = (xorshift(&mut state) % 4096) as usize;
        let cap = 1 + (xorshift(&mut state) % 64) as usize;
        let input = gen_input(&mut state, len);
        // The assertion is implicit: no panic, and drain() terminates.
        let (oks, errs) = drain(input, cap);
        // Random soup essentially never parses as a valid Request.
        assert!(oks <= errs + 1, "round {round}: {oks} parses from garbage?");
    }
}

#[test]
fn valid_json_islands_in_garbage_stay_framed() {
    // A malformed v1 line must produce an error *and leave the stream framed*:
    // the ping that follows garbage on the same stream is still reachable.
    let mut state = 0xBAD_5EED_u64 | 1;
    for _ in 0..50 {
        let len = (xorshift(&mut state) % 512) as usize;
        let mut garbage = gen_input(&mut state, len);
        // Keep this stream in v1 territory: no newlines inside the garbage
        // line, and no v2 magic that would flip the sniffer into frame mode.
        garbage.retain(|&b| b != b'\n' && b != 0xB2);
        let mut input = garbage;
        input.push(b'\n');
        input.extend_from_slice(b"{\"cmd\":\"ping\"}\n");
        let mut reader = BufReader::with_capacity(7, Cursor::new(input));
        let mut version = WireVersion::V1Json;
        let _first = read_request(&mut reader, &mut version);
        // Whatever the garbage did, the reader must still deliver the next
        // line rather than hanging or tearing mid-line.
        let second = read_request(&mut reader, &mut version);
        if let Ok(Some(req)) = second {
            assert!(matches!(req, Request::Ping));
        }
        // EOF afterwards — nothing left over.
        let third = read_request(&mut reader, &mut version);
        assert!(!matches!(third, Ok(Some(_))), "stream must be drained");
    }
}

#[test]
fn corrupt_v2_frames_leave_the_stream_framed() {
    // Flip one payload byte in a v2 frame: the decoder must report a
    // checksum mismatch (recoverable) and leave the *next* frame readable.
    let mut state = 0xF4A3_u64 | 1;
    for _ in 0..50 {
        let mut first = Vec::new();
        write_request(&mut first, &Request::Shutdown, WireVersion::V2Binary).unwrap();
        // Corrupt a byte inside the payload. The frame is small, so the
        // length prefix is a single uvarint byte: payload = bytes [3, len-4).
        // (Corrupting the *length* would legitimately destroy framing.)
        let idx = 3 + (xorshift(&mut state) as usize) % (first.len() - 7);
        first[idx] ^= 0x41;
        let mut input = first;
        write_request(&mut input, &Request::Ping, WireVersion::V2Binary).unwrap();
        let mut reader = BufReader::with_capacity(5, Cursor::new(input));
        let mut version = WireVersion::V1Json;
        let first = read_request(&mut reader, &mut version);
        assert!(first.is_err(), "corrupted frame must not decode");
        assert_eq!(version, WireVersion::V2Binary, "sniffer must have seen v2");
        // The corrupted frame was length-delimited, so the follow-up ping
        // is intact.
        match read_request(&mut reader, &mut version) {
            Ok(Some(Request::Ping)) => {}
            other => panic!("expected the ping after a corrupt frame, got {other:?}"),
        }
        assert!(matches!(read_request(&mut reader, &mut version), Ok(None)));
    }
}

#[test]
fn truncated_v2_frames_error_cleanly() {
    // Every proper prefix of a valid v2 frame must yield an error or clean
    // EOF — never a panic, never a parsed message.
    let mut full = Vec::new();
    write_request(
        &mut full,
        &Request::Locate { site: "lab".into(), y: vec![-48.0, -51.5, -60.25] },
        WireVersion::V2Binary,
    )
    .unwrap();
    for cut in 0..full.len() {
        let mut reader = BufReader::with_capacity(3, Cursor::new(full[..cut].to_vec()));
        let mut version = WireVersion::V1Json;
        match read_request(&mut reader, &mut version) {
            Ok(Some(req)) => panic!("prefix of {cut} bytes decoded as {req:?}"),
            Ok(None) => assert_eq!(cut, 0, "only the empty prefix is a clean EOF"),
            Err(_) => {}
        }
    }
}

#[test]
fn pathological_newline_runs_terminate_quickly() {
    // Blank lines are skipped inside the v1 reader; a megabyte of newlines
    // must collapse to a single clean EOF, not an error per line.
    let input = vec![b'\n'; 1 << 20];
    let mut reader = BufReader::with_capacity(13, Cursor::new(input));
    let mut version = WireVersion::V1Json;
    match read_request(&mut reader, &mut version) {
        Ok(None) => {}
        other => panic!("expected clean EOF through blank lines, got {other:?}"),
    }
}
