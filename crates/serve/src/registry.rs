//! The site registry: shards daemon state by site id.
//!
//! Sites are independent — separate snapshots, separate maintenance threads,
//! separate mutable state — so the registry itself is just a name → `Arc<Site>`
//! map behind an `RwLock` that is only held for lookups and membership
//! changes. Request handling clones the `Arc` out and drops the lock before
//! doing any work.

use crate::maintenance::spawn_maintenance;
use crate::site::Site;
use crate::{Result, ServeError};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Name → site map plus the maintenance threads it owns.
#[derive(Debug, Default)]
pub struct Registry {
    sites: RwLock<HashMap<String, Arc<Site>>>,
    maintenance: Mutex<HashMap<String, JoinHandle<()>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers `site` and starts its maintenance thread (unless the site's
    /// policy requests manual ticks).
    pub fn add(&self, site: Site) -> Result<Arc<Site>> {
        let site = Arc::new(site);
        {
            let mut map = self.sites.write().unwrap_or_else(|p| p.into_inner());
            if map.contains_key(site.name()) {
                return Err(ServeError::SiteExists(site.name().to_string()));
            }
            map.insert(site.name().to_string(), Arc::clone(&site));
        }
        if !site.policy().manual_tick {
            let handle = spawn_maintenance(Arc::clone(&site));
            self.maintenance
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(site.name().to_string(), handle);
        }
        Ok(site)
    }

    /// Looks a site up by name.
    pub fn get(&self, name: &str) -> Result<Arc<Site>> {
        self.sites
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownSite(name.to_string()))
    }

    /// Unregisters a site, stops and joins its maintenance thread.
    pub fn remove(&self, name: &str) -> Result<Arc<Site>> {
        let site = {
            let mut map = self.sites.write().unwrap_or_else(|p| p.into_inner());
            map.remove(name).ok_or_else(|| ServeError::UnknownSite(name.to_string()))?
        };
        site.stop_flag().store(true, Ordering::Relaxed);
        if let Some(handle) =
            self.maintenance.lock().unwrap_or_else(|p| p.into_inner()).remove(name)
        {
            let _ = handle.join();
        }
        Ok(site)
    }

    /// All registered sites, name-sorted (stable output for `list-sites`).
    pub fn list(&self) -> Vec<Arc<Site>> {
        let mut sites: Vec<Arc<Site>> =
            self.sites.read().unwrap_or_else(|p| p.into_inner()).values().cloned().collect();
        sites.sort_by(|a, b| a.name().cmp(b.name()));
        sites
    }

    /// Raises every site's stop flag and joins all maintenance threads
    /// (server shutdown). Sites stay registered and readable.
    pub fn stop_maintenance(&self) {
        for site in self.list() {
            site.stop_flag().store(true, Ordering::Relaxed);
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut map = self.maintenance.lock().unwrap_or_else(|p| p.into_inner());
            map.drain().map(|(_, h)| h).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}
