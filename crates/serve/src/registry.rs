//! The site registry: shards daemon state by site id.
//!
//! Sites are independent — separate snapshots, separate mutable state — so
//! the registry itself is just a name → `Arc<Site>` map behind an `RwLock`
//! that is only held for lookups and membership changes. Request handling
//! clones the `Arc` out and drops the lock before doing any work.
//!
//! Background maintenance is delegated to one shared
//! [`MaintenanceScheduler`]: every automatically-ticked site is registered
//! with it, and its bounded pool (rather than a thread per site) runs the
//! ticks.

use crate::maintenance::MaintenanceScheduler;
use crate::site::Site;
use crate::{Result, ServeError};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, RwLock};

/// Pool workers the shared maintenance scheduler uses unless the server
/// configures otherwise. Deliberately small: background refreshes should not
/// crowd out request serving.
pub const DEFAULT_MAINTENANCE_THREADS: usize = 2;

/// Name → site map plus the shared maintenance scheduler.
#[derive(Debug)]
pub struct Registry {
    sites: RwLock<HashMap<String, Arc<Site>>>,
    scheduler: MaintenanceScheduler,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry with the default maintenance pool size.
    pub fn new() -> Self {
        Registry::with_maintenance_threads(DEFAULT_MAINTENANCE_THREADS)
    }

    /// Creates an empty registry whose maintenance pool has `threads` workers
    /// (0 = one per core). The pool and its scheduler thread only start when
    /// the first automatically-ticked site is added.
    pub fn with_maintenance_threads(threads: usize) -> Self {
        Registry {
            sites: RwLock::new(HashMap::new()),
            scheduler: MaintenanceScheduler::new(threads),
        }
    }

    /// Registers `site` and schedules its maintenance (unless the site's
    /// policy requests manual ticks).
    pub fn add(&self, site: Site) -> Result<Arc<Site>> {
        let site = Arc::new(site);
        {
            let mut map = self.sites.write().unwrap_or_else(|p| p.into_inner());
            if map.contains_key(site.name()) {
                return Err(ServeError::SiteExists(site.name().to_string()));
            }
            map.insert(site.name().to_string(), Arc::clone(&site));
        }
        if !site.policy().manual_tick {
            self.scheduler.schedule(Arc::clone(&site));
        }
        Ok(site)
    }

    /// Looks a site up by name.
    pub fn get(&self, name: &str) -> Result<Arc<Site>> {
        self.sites
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownSite(name.to_string()))
    }

    /// Unregisters a site and waits until no maintenance tick for it can run
    /// anymore.
    pub fn remove(&self, name: &str) -> Result<Arc<Site>> {
        let site = {
            let mut map = self.sites.write().unwrap_or_else(|p| p.into_inner());
            map.remove(name).ok_or_else(|| ServeError::UnknownSite(name.to_string()))?
        };
        site.stop_flag().store(true, Ordering::Relaxed);
        self.scheduler.unschedule(name);
        Ok(site)
    }

    /// All registered sites, name-sorted (stable output for `list-sites`).
    pub fn list(&self) -> Vec<Arc<Site>> {
        let mut sites: Vec<Arc<Site>> =
            self.sites.read().unwrap_or_else(|p| p.into_inner()).values().cloned().collect();
        sites.sort_by(|a, b| a.name().cmp(b.name()));
        sites
    }

    /// Raises every site's stop flag and stops the maintenance scheduler
    /// (server shutdown). Sites stay registered and readable.
    pub fn stop_maintenance(&self) {
        for site in self.list() {
            site.stop_flag().store(true, Ordering::Relaxed);
        }
        self.scheduler.stop_and_join();
    }
}
