//! Per-site serving state: an immutable, swappable snapshot for the read
//! path plus a small mutex-guarded block of genuinely mutable state.
//!
//! The split is the whole design:
//!
//! * [`SiteSnapshot`] (calibrated [`TafLoc`] + version) lives in a
//!   [`SnapshotCell`]; `locate` clones the `Arc` and runs entirely on
//!   immutable data — concurrent requests never contend with a refresh.
//! * [`SiteDynamic`] holds what must mutate between requests: the drift
//!   monitor, pending reference measurements, per-stream particle filters and
//!   presence detectors. Its mutex is only held for cheap state updates,
//!   never across LoLi-IR.
//! * a dedicated `refresh` mutex serializes refreshes; reconstruction runs
//!   while holding *only* that, then publishes with one pointer swap.

use crate::maintenance::MaintenancePolicy;
use crate::protocol::{SiteInfo, SiteStats};
use crate::snapshot::SnapshotCell;
use crate::{Result, ServeError};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, MutexGuard};
use taf_linalg::Matrix;
use tafloc_core::detection::{Detection, DetectorConfig, PresenceDetector};
use tafloc_core::matcher::MatchResult;
use tafloc_core::monitor::{DriftMonitor, Recommendation};
use tafloc_core::system::{TafLoc, UpdateReport};
use tafloc_core::tracking::{ParticleFilter, TrackEstimate, TrackerConfig};

/// The immutable state one `locate` needs, swapped wholesale on refresh.
#[derive(Debug)]
pub struct SiteSnapshot {
    /// The calibrated system (configuration, database, LRR model, graphs).
    pub system: TafLoc,
    /// Monotonic version; bumps by one on every refresh.
    pub version: u64,
    /// Deployment day of the last refresh (or of calibration for version 0).
    pub refreshed_day: f64,
}

/// Reference measurements awaiting reconstruction.
#[derive(Debug, Clone)]
pub struct PendingRefs {
    /// Deployment day of the measurement.
    pub day: f64,
    /// `M x n` fresh reference columns (site reference-cell order).
    pub columns: Matrix,
    /// Fresh empty-room baseline.
    pub empty: Vec<f64>,
}

/// The mutable half of a site.
#[derive(Debug)]
struct SiteDynamic {
    monitor: DriftMonitor,
    pending: Option<PendingRefs>,
    trackers: HashMap<String, ParticleFilter>,
    detectors: HashMap<String, PresenceDetector>,
    breach_streak: u32,
    last_estimate_db: Option<f64>,
    maintenance_checks: u64,
    auto_refreshes: u64,
}

/// One registered site.
#[derive(Debug)]
pub struct Site {
    name: String,
    cell: SnapshotCell<SiteSnapshot>,
    dynamic: Mutex<SiteDynamic>,
    /// Serializes refreshes; never held by the read path.
    refresh: Mutex<()>,
    policy: MaintenancePolicy,
    monitor_cells: usize,
    stop: AtomicBool,
}

fn stream_seed(site: &str, stream: &str) -> u64 {
    let mut h = DefaultHasher::new();
    site.hash(&mut h);
    stream.hash(&mut h);
    h.finish()
}

impl Site {
    /// Wraps a calibrated system for serving. `day` anchors the drift clock
    /// (the deployment day the system state corresponds to).
    pub fn new(name: &str, system: TafLoc, day: f64, policy: MaintenancePolicy) -> Result<Site> {
        let monitor_cells = policy.monitor_cells.max(1).min(system.reference_cells().len().max(1));
        let monitor = system.monitor(monitor_cells, day, policy.monitor)?;
        Ok(Site {
            name: name.to_string(),
            cell: SnapshotCell::new(SiteSnapshot { system, version: 0, refreshed_day: day }),
            dynamic: Mutex::new(SiteDynamic {
                monitor,
                pending: None,
                trackers: HashMap::new(),
                detectors: HashMap::new(),
                breach_streak: 0,
                last_estimate_db: None,
                maintenance_checks: 0,
                auto_refreshes: 0,
            }),
            refresh: Mutex::new(()),
            policy,
            monitor_cells,
            stop: AtomicBool::new(false),
        })
    }

    /// Site name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The maintenance policy in force.
    pub fn policy(&self) -> &MaintenancePolicy {
        &self.policy
    }

    /// Maintenance-thread stop flag (raised on removal/shutdown).
    pub fn stop_flag(&self) -> &AtomicBool {
        &self.stop
    }

    /// Current snapshot (read path — never blocks behind a refresh).
    pub fn load(&self) -> Arc<SiteSnapshot> {
        self.cell.load()
    }

    fn lock_dynamic(&self) -> MutexGuard<'_, SiteDynamic> {
        match self.dynamic.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Localizes one RSS vector on the current snapshot.
    pub fn locate(&self, y: &[f64]) -> Result<(MatchResult, u64)> {
        let snap = self.load();
        let fix = snap.system.localize(y)?;
        Ok((fix, snap.version))
    }

    /// Advances (creating on first use) the particle filter of `stream`.
    pub fn track(&self, stream: &str, y: &[f64], dt_s: f64) -> Result<TrackEstimate> {
        let snap = self.load();
        let mut d = self.lock_dynamic();
        let pf = match d.trackers.entry(stream.to_string()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => v.insert(ParticleFilter::new(
                snap.system.db(),
                TrackerConfig::default(),
                stream_seed(&self.name, stream),
            )?),
        };
        Ok(pf.step(snap.system.db(), y, dt_s)?)
    }

    /// Feeds (creating on first use) the presence detector of `stream`.
    pub fn detect(&self, stream: &str, y: &[f64]) -> Result<Detection> {
        let snap = self.load();
        let mut d = self.lock_dynamic();
        let det = match d.detectors.entry(stream.to_string()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => v.insert(PresenceDetector::new(
                snap.system.empty_rss().to_vec(),
                DetectorConfig::default(),
            )?),
        };
        Ok(det.update(y)?)
    }

    fn monitored_columns(&self, columns: &Matrix) -> Result<Matrix> {
        let idx: Vec<usize> = (0..self.monitor_cells).collect();
        Ok(columns.select_cols(&idx)?)
    }

    /// Stores fresh reference measurements as pending and returns the drift
    /// monitor's immediate verdict on them.
    pub fn ingest_refs(
        &self,
        day: f64,
        columns: Matrix,
        empty: Vec<f64>,
    ) -> Result<Recommendation> {
        let snap = self.load();
        let m = snap.system.db().num_links();
        let n = snap.system.reference_cells().len();
        if columns.shape() != (m, n) {
            return Err(ServeError::Protocol(format!(
                "measure-refs expects a {m}x{n} matrix, got {:?}",
                columns.shape()
            )));
        }
        if empty.len() != m {
            return Err(ServeError::Protocol(format!(
                "measure-refs expects an empty-room vector of length {m}, got {}",
                empty.len()
            )));
        }
        let monitored = self.monitored_columns(&columns)?;
        let mut d = self.lock_dynamic();
        let rec = d.monitor.check(day, &monitored)?;
        d.last_estimate_db = Some(rec.estimated_error_db());
        d.pending = Some(PendingRefs { day, columns, empty });
        Ok(rec)
    }

    /// Runs LoLi-IR on the pending reference measurements and publishes the
    /// reconstructed database as a new snapshot. The heavy solve happens off
    /// both the read path and the dynamic-state mutex.
    pub fn refresh(&self) -> Result<(UpdateReport, u64)> {
        let _serialized = match self.refresh.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let pending = self.lock_dynamic().pending.clone().ok_or_else(|| {
            ServeError::Protocol(
                "no pending reference measurements; send measure-refs first".into(),
            )
        })?;
        let snap = self.load();
        let mut system = snap.system.clone();
        let report = system.update(&pending.columns, &pending.empty)?;
        let monitored: Vec<usize> = system.reference_cells()[..self.monitor_cells].to_vec();
        let refreshed_cols = system.db().rss().select_cols(&monitored)?;
        let fresh_empty = system.empty_rss().to_vec();
        let version = snap.version + 1;
        {
            let mut d = self.lock_dynamic();
            d.monitor.record_update(pending.day, refreshed_cols)?;
            for det in d.detectors.values_mut() {
                det.rebaseline(fresh_empty.clone())?;
            }
            d.pending = None;
            d.breach_streak = 0;
        }
        self.cell.store(SiteSnapshot { system, version, refreshed_day: pending.day });
        Ok((report, version))
    }

    /// One pass of the background maintenance loop: re-check pending
    /// references against the monitor and auto-refresh when the breach streak
    /// and the monitor's cooldown both allow it. Returns the new version when
    /// a refresh was triggered.
    pub fn maintenance_tick(&self) -> Result<Option<u64>> {
        let trigger = {
            let mut d = self.lock_dynamic();
            d.maintenance_checks += 1;
            let Some(pending) = d.pending.clone() else {
                d.breach_streak = 0;
                return Ok(None);
            };
            let monitored = self.monitored_columns(&pending.columns)?;
            let rec = d.monitor.check(pending.day, &monitored)?;
            d.last_estimate_db = Some(rec.estimated_error_db());
            if matches!(rec, Recommendation::UpdateRecommended { .. }) {
                d.breach_streak += 1;
            } else {
                d.breach_streak = 0;
            }
            self.policy.auto_refresh && d.breach_streak >= self.policy.breach_streak.max(1)
        };
        if !trigger {
            return Ok(None);
        }
        let (_, version) = self.refresh()?;
        self.lock_dynamic().auto_refreshes += 1;
        Ok(Some(version))
    }

    /// Identity row for `list-sites`.
    pub fn info(&self) -> SiteInfo {
        let snap = self.load();
        SiteInfo {
            site: self.name.clone(),
            links: snap.system.db().num_links(),
            cells: snap.system.db().num_cells(),
            version: snap.version,
        }
    }

    /// Health row for `stats`.
    pub fn stats(&self) -> SiteStats {
        let snap = self.load();
        let d = self.lock_dynamic();
        SiteStats {
            site: self.name.clone(),
            version: snap.version,
            refreshed_day: snap.refreshed_day,
            pending_refs: d.pending.is_some(),
            estimated_error_db: d.last_estimate_db,
            maintenance_checks: d.maintenance_checks,
            auto_refreshes: d.auto_refreshes,
            active_trackers: d.trackers.len(),
        }
    }
}

/// Renders a [`Recommendation`] as its wire name.
pub fn recommendation_name(rec: &Recommendation) -> &'static str {
    match rec {
        Recommendation::Healthy { .. } => "healthy",
        Recommendation::UpdateRecommended { .. } => "update-recommended",
        Recommendation::Cooldown { .. } => "cooldown",
    }
}

/// Renders a [`Detection`] as a short human-readable description.
pub fn detection_detail(det: &Detection) -> String {
    match det {
        Detection::Absent => "absent".to_string(),
        Detection::PresentInstant { link, drop_db } => {
            format!("instant: link {link} dropped {drop_db:.1} dB")
        }
        Detection::PresentAccumulated { link, statistic } => {
            format!("accumulated: link {link} CUSUM {statistic:.1}")
        }
    }
}
