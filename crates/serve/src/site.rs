//! Per-site serving state: an immutable, swappable snapshot for the read
//! path plus a small mutex-guarded block of genuinely mutable state.
//!
//! The split is the whole design:
//!
//! * [`SiteSnapshot`] (calibrated [`TafLoc`] + version) lives in a
//!   [`SnapshotCell`]; `locate` clones the `Arc` and runs entirely on
//!   immutable data — concurrent requests never contend with a refresh.
//! * [`SiteDynamic`] holds what must mutate between requests: the drift
//!   monitor, pending reference measurements, per-stream particle filters and
//!   presence detectors. Its mutex is only held for cheap state updates,
//!   never across LoLi-IR.
//! * a dedicated `refresh` mutex serializes refreshes; reconstruction runs
//!   while holding *only* that, then publishes with one pointer swap.
//! * an [`Ingestor`] per site accepts raw timestamped link samples and
//!   assembles them into fingerprint vectors on demand (`locate-stream`);
//!   reference-cell capture windows accumulate survey streams and are
//!   promoted to [`PendingRefs`] by the maintenance loop once every
//!   reference cell has a complete vector.
//!
//! Refreshes are additionally *gated*: the reconstruction must pass the
//! policy's [`ReconstructionGuard`](tafloc_core::system::ReconstructionGuard)
//! before it is promoted. A failing solve is rolled back — the previous
//! snapshot stays live, the pending references are kept for a retried (and
//! backed-off) attempt, and enough consecutive rejections or panicking ticks
//! push the site into *quarantine*: it keeps answering `locate` from its last
//! good snapshot but sits out maintenance until a cooldown elapses or an
//! explicit `refresh` succeeds. When a [`SiteStore`] is attached, every
//! committed generation is persisted so a crash recovers to the last good
//! state.

use crate::journal::{Journal, JournalRecord};
use crate::maintenance::MaintenancePolicy;
use crate::protocol::{SiteInfo, SiteStats};
use crate::snapshot::SnapshotCell;
use crate::store::{PersistedSite, SiteStore};
use crate::{Result, ServeError};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, MutexGuard};
use taf_linalg::Matrix;
use taf_plan::{HistoryWindow, MeasurementPlan, PlanInputs, Planner, PlannerConfig, SurveyRecord};
use tafloc_core::detection::{Detection, DetectorConfig, PresenceDetector};
use tafloc_core::mask::Mask;
use tafloc_core::matcher::MatchResult;
use tafloc_core::monitor::{DriftMonitor, Recommendation};
use tafloc_core::system::{SolverCache, TafLoc, UpdateReport};
use tafloc_core::tracking::{ParticleFilter, TrackEstimate, TrackerConfig};
use tafloc_ingest::{
    AssembledVector, BatchReport, ClockMode, IngestConfig, Ingestor, LinkFlag, LinkSample,
};

/// The immutable state one `locate` needs, swapped wholesale on refresh.
#[derive(Debug)]
pub struct SiteSnapshot {
    /// The calibrated system (configuration, database, LRR model, graphs).
    pub system: TafLoc,
    /// Monotonic version; bumps by one on every refresh.
    pub version: u64,
    /// Deployment day of the last refresh (or of calibration for version 0).
    pub refreshed_day: f64,
}

/// Reference measurements awaiting reconstruction.
#[derive(Debug, Clone)]
pub struct PendingRefs {
    /// Deployment day of the measurement.
    pub day: f64,
    /// `M x n` fresh reference columns (site reference-cell order).
    pub columns: Matrix,
    /// Fresh empty-room baseline.
    pub empty: Vec<f64>,
    /// `M x n` per-entry observation mask for budgeted surveys: true where
    /// `columns` holds a measurement taken this round, false where it was
    /// carried forward from survey history. `None` means a full survey.
    pub mask: Option<Mask>,
}

/// The mutable half of a site.
#[derive(Debug)]
struct SiteDynamic {
    monitor: DriftMonitor,
    pending: Option<PendingRefs>,
    trackers: HashMap<String, ParticleFilter>,
    detectors: HashMap<String, PresenceDetector>,
    breach_streak: u32,
    last_estimate_db: Option<f64>,
    maintenance_checks: u64,
    auto_refreshes: u64,
    /// Refreshes the reconstruction guard rejected (lifetime).
    refresh_rejections: u64,
    /// Consecutive guard rejections / panicking ticks since the last success
    /// (drives backoff and quarantine; cleared by a committed refresh).
    consecutive_failures: u32,
    /// Why the most recent refresh was rejected, if any.
    last_reject_reason: Option<String>,
    /// Whether the site is quarantined (serving read-only, skipped by the
    /// maintenance scheduler).
    quarantined: bool,
    /// Scheduler passes left before a quarantined site is re-admitted.
    quarantine_cooldown: u32,
    /// Maintenance ticks that panicked (lifetime).
    tick_panics: u64,
    /// Snapshot saves that failed (lifetime; persistence is best-effort).
    persist_failures: u64,
    /// Remaining injected-panic budget (from `policy.debug_panic_ticks`).
    panic_budget: u32,
    /// Per-reference-cell capture ingestors (keyed by reference index, not
    /// cell id). `Arc` so a capture batch can be applied outside the mutex.
    ref_captures: HashMap<usize, Arc<Ingestor>>,
    /// Deployment day the current capture round belongs to; a batch tagged
    /// with a different day starts a fresh round.
    ref_capture_day: f64,
    /// Bounded per-reference-slot ring of past survey columns; present only
    /// once a planner is attached ([`Site::with_planning`] seeds it).
    history: Option<HistoryWindow>,
    /// The plan the next survey round should follow (produced by the last
    /// successful refresh when a planner is attached).
    current_plan: Option<MeasurementPlan>,
    /// Per-reference-slot reconstruction confidence from the last committed
    /// refresh's diagnostics.
    last_ref_confidence: Option<Vec<f64>>,
    /// Monotone survey counter: bumps once per promoted capture round or
    /// `measure-refs`, and orders the history records.
    survey_epoch: u64,
    /// Cumulative link-measurements the planner scheduled (full-survey cost
    /// when no planner is attached).
    planned_cost: u64,
    /// Cumulative link-measurements actually delivered by surveys.
    actual_cost: u64,
    /// Cumulative cost a full survey would have incurred over the same
    /// cycles.
    full_survey_cost: u64,
    /// Highest journal sequence whose record is consumed into `pending` (or
    /// superseded by a later promotion/survey); the watermark the next
    /// commit checkpoints. Stays 0 without an attached journal.
    wal_pending_seq: u64,
    /// See [`DurableView`].
    durable_view: DurableView,
}

/// The plan/journal state exactly as of the last committed refresh (or
/// restore). [`Site::to_persisted`] writes *this*, not the live values:
/// every persisted snapshot is then consistent with its `journal_watermark`
/// — the durable effects of records beyond the watermark are never in the
/// snapshot, so recovery can replay them without double-counting epochs,
/// history records, or survey costs.
#[derive(Debug, Default)]
struct DurableView {
    journal_watermark: u64,
    survey_epoch: u64,
    planned_cost: u64,
    actual_cost: u64,
    full_survey_cost: u64,
    current_plan: Option<MeasurementPlan>,
    last_ref_confidence: Option<Vec<f64>>,
    history: Option<HistoryWindow>,
}

impl SiteDynamic {
    /// Checkpoints the durable view at a refresh commit: this exact state
    /// (and watermark) goes into every snapshot persisted until the next
    /// commit.
    fn checkpoint_durable_view(&mut self) {
        self.durable_view = DurableView {
            journal_watermark: self.wal_pending_seq,
            survey_epoch: self.survey_epoch,
            planned_cost: self.planned_cost,
            actual_cost: self.actual_cost,
            full_survey_cost: self.full_survey_cost,
            current_plan: self.current_plan.clone(),
            last_ref_confidence: self.last_ref_confidence.clone(),
            history: self.history.clone(),
        };
    }
}

/// One registered site.
#[derive(Debug)]
pub struct Site {
    name: String,
    cell: SnapshotCell<SiteSnapshot>,
    dynamic: Mutex<SiteDynamic>,
    /// Serializes refreshes; never held by the read path.
    refresh: Mutex<()>,
    /// Solver workspace + warm state carried across refreshes. Only the
    /// refresh path locks it (and never while holding `dynamic`); rollback
    /// paths invalidate the warm state so a rejected solve can't seed the
    /// next one. The adopted factors ride along in every persisted snapshot,
    /// so a recovered site warm-starts its first refresh instead of paying a
    /// cold start.
    solver: Mutex<SolverCache>,
    /// Live streaming ingestion: raw link samples in, assembled vectors out.
    /// Internally sharded; callers never take the site mutexes to feed it.
    ingest: Ingestor,
    ingest_config: IngestConfig,
    ingest_shards: usize,
    policy: MaintenancePolicy,
    monitor_cells: usize,
    /// Attached snapshot store; when present, committed generations are
    /// persisted (best-effort) after every refresh and on graceful shutdown.
    store: Option<Arc<SiteStore>>,
    /// Attached measurement planner; when present, each committed refresh
    /// computes the next round's budgeted [`MeasurementPlan`].
    planner: Option<Planner>,
    /// Attached write-ahead journal; when present, every admitted
    /// survey-path record (reference-capture batch, `measure-refs` survey)
    /// is appended before it is applied, and [`Site::persist_now`] prunes
    /// records once the snapshot holding their effects is durable.
    journal: Option<Arc<Journal>>,
    stop: AtomicBool,
}

/// Rebuilds the `M x n` reference-column matrix of a journaled survey.
fn survey_matrix(columns: &[Vec<f64>]) -> Result<Matrix> {
    let n = columns.len();
    let m = columns.first().map_or(0, |c| c.len());
    let mut mat = Matrix::zeros(m, n);
    for (k, c) in columns.iter().enumerate() {
        mat.set_col(k, c).map_err(|e| ServeError::Protocol(format!("journal replay: {e}")))?;
    }
    Ok(mat)
}

fn stream_seed(site: &str, stream: &str) -> u64 {
    let mut h = DefaultHasher::new();
    site.hash(&mut h);
    stream.hash(&mut h);
    h.finish()
}

impl Site {
    /// Wraps a calibrated system for serving. `day` anchors the drift clock
    /// (the deployment day the system state corresponds to).
    pub fn new(name: &str, system: TafLoc, day: f64, policy: MaintenancePolicy) -> Result<Site> {
        Site::with_options(name, system, day, policy, IngestConfig::default(), ClockMode::default())
    }

    /// Like [`Site::new`] but with an explicit ingest configuration and stream
    /// clock mode. Deterministic harnesses pass [`ClockMode::Manual`] so the
    /// live ingestor's notion of "now" is pinned to scenario time via
    /// [`Site::advance_stream_clock`] instead of following sample arrival;
    /// reference-capture ingestors always stay sample-driven (a survey batch
    /// carries its own timeline).
    pub fn with_options(
        name: &str,
        system: TafLoc,
        day: f64,
        policy: MaintenancePolicy,
        ingest_config: IngestConfig,
        clock_mode: ClockMode,
    ) -> Result<Site> {
        let monitor_cells = policy.monitor_cells.max(1).min(system.reference_cells().len().max(1));
        let monitor = system.monitor(monitor_cells, day, policy.monitor)?;
        let num_links = system.db().num_links();
        let ingest_shards = num_links.clamp(1, 8);
        let ingest = Ingestor::with_clock(ingest_config, num_links, ingest_shards, clock_mode)?;
        Ok(Site {
            name: name.to_string(),
            cell: SnapshotCell::new(SiteSnapshot { system, version: 0, refreshed_day: day }),
            dynamic: Mutex::new(SiteDynamic {
                monitor,
                pending: None,
                trackers: HashMap::new(),
                detectors: HashMap::new(),
                breach_streak: 0,
                last_estimate_db: None,
                maintenance_checks: 0,
                auto_refreshes: 0,
                refresh_rejections: 0,
                consecutive_failures: 0,
                last_reject_reason: None,
                quarantined: false,
                quarantine_cooldown: 0,
                tick_panics: 0,
                persist_failures: 0,
                panic_budget: policy.debug_panic_ticks,
                ref_captures: HashMap::new(),
                ref_capture_day: 0.0,
                history: None,
                current_plan: None,
                last_ref_confidence: None,
                survey_epoch: 0,
                planned_cost: 0,
                actual_cost: 0,
                full_survey_cost: 0,
                wal_pending_seq: 0,
                durable_view: DurableView::default(),
            }),
            refresh: Mutex::new(()),
            solver: Mutex::new(SolverCache::new()),
            ingest,
            ingest_config,
            ingest_shards,
            policy,
            monitor_cells,
            store: None,
            planner: None,
            journal: None,
            stop: AtomicBool::new(false),
        })
    }

    /// Attaches a snapshot store: the current generation is persisted
    /// immediately (so even a site that crashes before its first refresh
    /// recovers), and every committed refresh persists the new one.
    pub fn with_persistence(mut self, store: Arc<SiteStore>) -> Result<Site> {
        self.store = Some(store);
        self.persist_now()?;
        Ok(self)
    }

    /// Attaches a measurement planner. The first survey round after this is
    /// still a full one (no diagnostics exist yet to plan from); every
    /// committed refresh then computes the next round's budgeted
    /// [`MeasurementPlan`], and subsequent capture rounds only wait for —
    /// and only count the cost of — the planned (cell, link) pairs, carrying
    /// everything else forward from the survey-history window seeded here
    /// with the current database's reference columns.
    ///
    /// On a site recovered via [`Site::from_persisted`] the persisted
    /// history window is kept as-is (and the recovered plan resumes
    /// mid-schedule) as long as its shape still matches the system and the
    /// configured depth; only a mismatch re-seeds from the database.
    pub fn with_planning(mut self, config: PlannerConfig) -> Result<Site> {
        let planner =
            Planner::new(config).map_err(|e| ServeError::Protocol(format!("planner: {e}")))?;
        let snap = self.load();
        let m = snap.system.db().num_links();
        let ref_cells = snap.system.reference_cells();
        let n = ref_cells.len();
        {
            let mut d = self.lock_dynamic();
            let restored = d.history.as_ref().is_some_and(|h| {
                h.n_slots() == n && h.n_links() == m && h.depth() == config.history_depth
            });
            if !restored {
                let mut history = HistoryWindow::new(n, m, config.history_depth)
                    .map_err(|e| ServeError::Protocol(format!("planner history: {e}")))?;
                for (k, &cell) in ref_cells.iter().enumerate() {
                    let record = SurveyRecord {
                        epoch: 0,
                        y: snap.system.db().rss().col(cell),
                        fresh: vec![true; m],
                    };
                    history
                        .record(k, record)
                        .map_err(|e| ServeError::Protocol(format!("planner history: {e}")))?;
                }
                d.history = Some(history);
                // A mismatched recovered plan can't be followed either.
                d.current_plan = None;
                d.durable_view.history = d.history.clone();
                d.durable_view.current_plan = None;
            }
        }
        self.planner = Some(planner);
        Ok(self)
    }

    /// Attaches a write-ahead journal. Admitted survey-path records
    /// (reference-capture batches, `measure-refs` surveys) are appended
    /// before they are applied; [`Site::persist_now`] prunes them once a
    /// snapshot holding their effects is durable. Attach before serving —
    /// records recovered by [`Journal::open`] are re-applied separately with
    /// [`Site::replay_journal`].
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Site {
        self.journal = Some(journal);
        self
    }

    /// The attached write-ahead journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// Re-applies records recovered by [`Journal::open`] through the same
    /// ingest code the live path uses, without re-appending them. Returns
    /// how many records applied cleanly; a record that no longer fits the
    /// recovered system (for example a reference slot out of range after an
    /// operator re-registered the site with a different layout) is skipped,
    /// never fatal — recovery always comes up.
    pub fn replay_journal(&self, records: &[(u64, JournalRecord)]) -> usize {
        let mut applied = 0;
        for (seq, record) in records {
            let ok = match record {
                JournalRecord::RefBatch { ref_slot, day, samples } => {
                    self.capture_batch(*ref_slot, *day, samples, false).is_ok()
                }
                JournalRecord::Survey { day, columns, empty } => survey_matrix(columns)
                    .and_then(|m| self.apply_survey(*day, m, empty.clone(), Some(*seq)))
                    .is_ok(),
            };
            if ok {
                applied += 1;
            }
        }
        applied
    }

    /// The attached measurement planner, if any.
    pub fn planner(&self) -> Option<&Planner> {
        self.planner.as_ref()
    }

    /// The measurement plan the next survey round should follow: present
    /// once a planner is attached and a committed refresh has produced
    /// diagnostics to plan from.
    pub fn current_plan(&self) -> Option<MeasurementPlan> {
        self.lock_dynamic().current_plan.clone()
    }

    /// Per-reference-slot reconstruction confidence from the last committed
    /// refresh, if any.
    pub fn last_ref_confidence(&self) -> Option<Vec<f64>> {
        self.lock_dynamic().last_ref_confidence.clone()
    }

    /// Resurrects a site from a recovered snapshot. Live stream state
    /// (ingestion windows, trackers, detectors) is inherently volatile and
    /// restarts empty; everything committed — the calibrated system at its
    /// last good generation, monitor baseline, hysteresis and health
    /// counters, quarantine state, plan schedule/history/costs, and the
    /// solver's warm factors — comes back exactly as persisted. Survey-path
    /// records admitted after the snapshot live in the write-ahead journal;
    /// the caller replays them via [`Site::replay_journal`] after attaching
    /// the journal and (when planning) re-attaching the planner.
    pub fn from_persisted(p: PersistedSite, clock_mode: ClockMode) -> Result<Site> {
        let system = TafLoc::from_snapshot(p.snapshot)?;
        let monitor_cells = p.monitor_cells.len();
        let monitor = DriftMonitor::new(
            p.monitor_stored,
            p.monitor_cells,
            p.monitor_last_update_day,
            p.monitor_config,
        )?;
        let num_links = system.db().num_links();
        let ingest_shards = num_links.clamp(1, 8);
        let ingest = Ingestor::with_clock(p.ingest, num_links, ingest_shards, clock_mode)?;
        let mut solver = SolverCache::new();
        if let Some(w) = p.warm {
            solver.restore(w);
        }
        Ok(Site {
            name: p.name,
            cell: SnapshotCell::new(SiteSnapshot {
                system,
                version: p.generation,
                refreshed_day: p.refreshed_day,
            }),
            dynamic: Mutex::new(SiteDynamic {
                monitor,
                pending: None,
                trackers: HashMap::new(),
                detectors: HashMap::new(),
                breach_streak: p.breach_streak,
                last_estimate_db: None,
                maintenance_checks: p.maintenance_checks,
                auto_refreshes: p.auto_refreshes,
                refresh_rejections: p.refresh_rejections,
                consecutive_failures: p.consecutive_failures,
                last_reject_reason: p.last_reject_reason,
                quarantined: p.quarantined,
                quarantine_cooldown: p.quarantine_cooldown,
                tick_panics: p.tick_panics,
                persist_failures: 0,
                panic_budget: p.policy.debug_panic_ticks,
                ref_captures: HashMap::new(),
                ref_capture_day: 0.0,
                history: p.history.clone(),
                current_plan: p.current_plan.clone(),
                last_ref_confidence: p.last_ref_confidence.clone(),
                survey_epoch: p.survey_epoch,
                planned_cost: p.planned_cost,
                actual_cost: p.actual_cost,
                full_survey_cost: p.full_survey_cost,
                wal_pending_seq: p.journal_watermark,
                durable_view: DurableView {
                    journal_watermark: p.journal_watermark,
                    survey_epoch: p.survey_epoch,
                    planned_cost: p.planned_cost,
                    actual_cost: p.actual_cost,
                    full_survey_cost: p.full_survey_cost,
                    current_plan: p.current_plan,
                    last_ref_confidence: p.last_ref_confidence,
                    history: p.history,
                },
            }),
            refresh: Mutex::new(()),
            solver: Mutex::new(solver),
            ingest,
            ingest_config: p.ingest,
            ingest_shards,
            policy: p.policy,
            monitor_cells,
            store: None,
            planner: None,
            journal: None,
            stop: AtomicBool::new(false),
        })
    }

    /// Site name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The maintenance policy in force.
    pub fn policy(&self) -> &MaintenancePolicy {
        &self.policy
    }

    /// Maintenance-thread stop flag (raised on removal/shutdown).
    pub fn stop_flag(&self) -> &AtomicBool {
        &self.stop
    }

    /// Current snapshot (read path — never blocks behind a refresh).
    pub fn load(&self) -> Arc<SiteSnapshot> {
        self.cell.load()
    }

    fn lock_dynamic(&self) -> MutexGuard<'_, SiteDynamic> {
        match self.dynamic.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_solver(&self) -> MutexGuard<'_, SolverCache> {
        match self.solver.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Localizes one RSS vector on the current snapshot.
    pub fn locate(&self, y: &[f64]) -> Result<(MatchResult, u64)> {
        let snap = self.load();
        let fix = snap.system.localize(y)?;
        Ok((fix, snap.version))
    }

    /// Localizes many RSS vectors against one snapshot, so a whole batch is
    /// answered with a single consistent version.
    pub fn locate_batch(&self, ys: &[Vec<f64>]) -> Result<(Vec<MatchResult>, u64)> {
        let snap = self.load();
        let fixes: Result<Vec<MatchResult>> =
            ys.iter().map(|y| snap.system.localize(y).map_err(ServeError::from)).collect();
        Ok((fixes?, snap.version))
    }

    /// The site's live streaming ingestor.
    pub fn ingestor(&self) -> &Ingestor {
        &self.ingest
    }

    /// Advances the live ingestor's stream clock to `t_s` (monotone; moves
    /// forward only). Under [`ClockMode::SampleDriven`] this composes with
    /// sample-driven advancement; under [`ClockMode::Manual`] it is the *only*
    /// thing that moves time, letting a harness age windows through a total
    /// outage deterministically.
    pub fn advance_stream_clock(&self, t_s: f64) {
        self.ingest.advance_clock_to(t_s);
    }

    /// Accepts one batch of raw link samples. `ref_cell: None` feeds the live
    /// window behind `locate-stream`; `Some(k)` feeds the capture window for
    /// reference cell `k` of a day-`day` survey (promoted to pending
    /// reference columns by the maintenance loop once complete).
    pub fn ingest_samples(
        &self,
        ref_cell: Option<usize>,
        day: f64,
        samples: &[LinkSample],
    ) -> Result<BatchReport> {
        let Some(k) = ref_cell else {
            // The live locate window is deliberately not journaled: its
            // samples age out within seconds, and replaying them after a
            // restart would serve stale radio state (DESIGN.md §9).
            return Ok(self.ingest.apply_batch(samples));
        };
        self.capture_batch(k, day, samples, true)
    }

    /// Applies one reference-capture batch. `journal` is `false` only on
    /// replay, where the record being applied already sits in the journal.
    fn capture_batch(
        &self,
        k: usize,
        day: f64,
        samples: &[LinkSample],
        journal: bool,
    ) -> Result<BatchReport> {
        let n_refs = self.load().system.reference_cells().len();
        if k >= n_refs {
            return Err(ServeError::Protocol(format!(
                "ref_cell {k} out of range: the site has {n_refs} reference cells"
            )));
        }
        let mut d = self.lock_dynamic();
        // A batch for a different day starts a new survey round; stale
        // partial captures from the previous round are discarded.
        if d.ref_capture_day != day {
            d.ref_captures.clear();
            d.ref_capture_day = day;
        }
        let capture = match d.ref_captures.entry(k) {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(v) => Arc::clone(v.insert(Arc::new(Ingestor::new(
                self.ingest_config,
                self.ingest.num_links(),
                self.ingest_shards,
            )?))),
        };
        match &self.journal {
            Some(j) => {
                if journal {
                    // Durability first: the batch is journaled before any of
                    // its samples become visible, so a crash at any later
                    // point replays it.
                    j.append(&JournalRecord::RefBatch {
                        ref_slot: k,
                        day,
                        samples: samples.to_vec(),
                    })?;
                }
                // Applied while still holding `dynamic`: sequence order must
                // equal apply order, or a concurrent promotion could consume
                // the round ahead of a batch the journal already admitted
                // and prune it unapplied.
                Ok(capture.apply_batch(samples))
            }
            None => {
                drop(d);
                Ok(capture.apply_batch(samples))
            }
        }
    }

    /// Assembles the live ingestion window into a fingerprint vector (links
    /// that never reported are imputed from the snapshot's empty-room
    /// baseline) and localizes it on the current snapshot.
    pub fn locate_stream(&self) -> Result<(MatchResult, AssembledVector, u64)> {
        let snap = self.load();
        let assembled = self.ingest.assemble(snap.system.empty_rss())?;
        if assembled.missing.len() == assembled.y.len() {
            return Err(ServeError::Protocol(
                "locate-stream before any samples arrived; send ingest first".into(),
            ));
        }
        let fix = snap.system.localize(&assembled.y)?;
        Ok((fix, assembled, snap.version))
    }

    /// Advances (creating on first use) the particle filter of `stream`.
    pub fn track(&self, stream: &str, y: &[f64], dt_s: f64) -> Result<TrackEstimate> {
        let snap = self.load();
        let mut d = self.lock_dynamic();
        let pf = match d.trackers.entry(stream.to_string()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => v.insert(ParticleFilter::new(
                snap.system.db(),
                TrackerConfig::default(),
                stream_seed(&self.name, stream),
            )?),
        };
        Ok(pf.step(snap.system.db(), y, dt_s)?)
    }

    /// Feeds (creating on first use) the presence detector of `stream`.
    pub fn detect(&self, stream: &str, y: &[f64]) -> Result<Detection> {
        let snap = self.load();
        let mut d = self.lock_dynamic();
        let det = match d.detectors.entry(stream.to_string()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => v.insert(PresenceDetector::new(
                snap.system.empty_rss().to_vec(),
                DetectorConfig::default(),
            )?),
        };
        Ok(det.update(y)?)
    }

    fn monitored_columns(&self, columns: &Matrix) -> Result<Matrix> {
        let idx: Vec<usize> = (0..self.monitor_cells).collect();
        Ok(columns.select_cols(&idx)?)
    }

    /// Stores fresh reference measurements as pending and returns the drift
    /// monitor's immediate verdict on them.
    pub fn ingest_refs(
        &self,
        day: f64,
        columns: Matrix,
        empty: Vec<f64>,
    ) -> Result<Recommendation> {
        self.apply_survey(day, columns, empty, None)
    }

    /// The `measure-refs` apply path. `replay_seq` is `Some` only when
    /// re-applying a recovered journal record (no re-append); on the live
    /// path the survey is journaled here when a journal is attached.
    fn apply_survey(
        &self,
        day: f64,
        columns: Matrix,
        empty: Vec<f64>,
        replay_seq: Option<u64>,
    ) -> Result<Recommendation> {
        let snap = self.load();
        let m = snap.system.db().num_links();
        let n = snap.system.reference_cells().len();
        if columns.shape() != (m, n) {
            return Err(ServeError::Protocol(format!(
                "measure-refs expects a {m}x{n} matrix, got {:?}",
                columns.shape()
            )));
        }
        if empty.len() != m {
            return Err(ServeError::Protocol(format!(
                "measure-refs expects an empty-room vector of length {m}, got {}",
                empty.len()
            )));
        }
        let monitored = self.monitored_columns(&columns)?;
        let mut d = self.lock_dynamic();
        // Durability first: the survey is journaled before any of its
        // effects are applied, so a crash at any later point replays it.
        let seq = match replay_seq {
            Some(seq) => Some(seq),
            None => match &self.journal {
                Some(j) => Some(j.append(&JournalRecord::Survey {
                    day,
                    columns: (0..n).map(|k| columns.col(k)).collect(),
                    empty: empty.clone(),
                })?),
                None => None,
            },
        };
        let rec = d.monitor.check(day, &monitored)?;
        d.last_estimate_db = Some(rec.estimated_error_db());
        // A full survey supersedes any in-flight capture round: promoting
        // stale partial captures over it would resurrect older radio state,
        // and the journal's watermark relies on records being consumed in
        // sequence order.
        d.ref_captures.clear();
        if let Some(seq) = seq {
            d.wal_pending_seq = seq;
        }
        // `measure-refs` is by definition a full survey: every entry was
        // measured, so the full cost was paid regardless of any plan.
        d.survey_epoch += 1;
        let epoch = d.survey_epoch;
        if let Some(h) = d.history.as_mut() {
            for k in 0..n {
                let record = SurveyRecord { epoch, y: columns.col(k), fresh: vec![true; m] };
                h.record(k, record)
                    .map_err(|e| ServeError::Protocol(format!("planner history: {e}")))?;
            }
        }
        let full = (m * n) as u64;
        d.planned_cost += full;
        d.actual_cost += full;
        d.full_survey_cost += full;
        d.pending = Some(PendingRefs { day, columns, empty, mask: None });
        Ok(rec)
    }

    /// Runs LoLi-IR on the pending reference measurements, validates the
    /// reconstruction against the policy's guard, and — only if it passes —
    /// publishes it as a new snapshot. The heavy solve happens off both the
    /// read path and the dynamic-state mutex.
    ///
    /// A guard failure *rolls back*: the previous snapshot stays live, the
    /// pending references are kept (a later `measure-refs` overwrites them;
    /// the maintenance loop retries with backoff), the rejection is counted,
    /// and enough consecutive rejections quarantine the site. A successful
    /// refresh clears the failure state, lifts any quarantine, and persists
    /// the new generation when a store is attached.
    pub fn refresh(&self) -> Result<(UpdateReport, u64)> {
        let _serialized = match self.refresh.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let pending = self.lock_dynamic().pending.clone().ok_or_else(|| {
            ServeError::Protocol(
                "no pending reference measurements; send measure-refs first".into(),
            )
        })?;
        let snap = self.load();
        let mut system = snap.system.clone();
        // Solve through the site's solver cache: reused buffers always, and a
        // warm start whenever the previous refresh's solution was adopted.
        // The guard is scoped so the solver lock is released before the
        // dynamic mutex is taken further down.
        let rec = {
            let mut solver = self.lock_solver();
            let solved = match &pending.mask {
                Some(mask) => system.reconstruct_db_masked_cached(
                    &pending.columns,
                    &pending.empty,
                    mask,
                    &mut solver,
                ),
                None => system.reconstruct_db_cached(&pending.columns, &pending.empty, &mut solver),
            };
            match solved {
                Ok(rec) => rec,
                Err(e) => {
                    // A solver failure says nothing good about the state it
                    // started from; make the retry a clean cold start.
                    solver.invalidate();
                    return Err(e.into());
                }
            }
        };
        let verdict = match &pending.mask {
            // Budgeted refresh: only the entries the plan actually measured
            // are ground truth; the carried-forward ones are reconstruction
            // targets and must not count against the guard.
            Some(mask) => system.validate_reconstruction_masked(
                &rec,
                &pending.columns,
                mask,
                &self.policy.guard,
            ),
            None => system.validate_reconstruction(&rec, &pending.columns, &self.policy.guard),
        };
        if let Err(reason) = verdict {
            // Rollback: the rejected solution must not seed the next solve.
            self.lock_solver().invalidate();
            let quarantined = self.note_failure(Some(reason.clone()));
            return Err(ServeError::RefreshRejected { reason, quarantined });
        }
        // Per-reference-slot confidence, read off before the reconstruction
        // is consumed: this is what the planner spends the next budget on.
        let ref_confidence: Vec<f64> = system
            .reference_cells()
            .iter()
            .map(|&cell| rec.diagnostics.cell_confidence[cell])
            .collect();
        // The guard accepted: this solution may seed the next refresh. Adopt
        // before `apply_reconstruction` consumes it; a failed commit revokes.
        self.lock_solver().adopt(&rec);
        let report = match system.apply_reconstruction(rec, &pending.empty) {
            Ok(report) => report,
            Err(e) => {
                self.lock_solver().invalidate();
                return Err(e.into());
            }
        };
        let monitored: Vec<usize> = system.reference_cells()[..self.monitor_cells].to_vec();
        let refreshed_cols = system.db().rss().select_cols(&monitored)?;
        let fresh_empty = system.empty_rss().to_vec();
        let n_refs = system.reference_cells().len();
        let version = snap.version + 1;
        {
            let mut d = self.lock_dynamic();
            d.monitor.record_update(pending.day, refreshed_cols)?;
            for det in d.detectors.values_mut() {
                det.rebaseline(fresh_empty.clone())?;
            }
            d.pending = None;
            d.breach_streak = 0;
            // Success wipes the failure record and lifts any quarantine: an
            // explicit `refresh` that passes the guard re-admits the site.
            d.consecutive_failures = 0;
            d.last_reject_reason = None;
            d.quarantined = false;
            d.quarantine_cooldown = 0;
            d.last_ref_confidence = Some(ref_confidence);
            if let Some(planner) = &self.planner {
                let link_health = self.ingest.link_statuses();
                let last_surveyed = d.history.as_ref().map(|h| h.last_surveyed());
                let plan = planner.plan(&PlanInputs {
                    epoch: d.survey_epoch + 1,
                    n_refs,
                    link_health: &link_health,
                    confidence: d.last_ref_confidence.as_deref(),
                    last_surveyed: last_surveyed.as_deref(),
                });
                // Planning must never fail a refresh that already committed;
                // a failed plan just means the next round is a full survey.
                d.current_plan = plan.ok();
            }
            // Commit point for durability: exactly this state (watermark
            // included) is what every snapshot persisted from here until the
            // next commit will carry, so journal records beyond the
            // watermark replay onto it without double-counting.
            d.checkpoint_durable_view();
        }
        self.cell.store(SiteSnapshot { system, version, refreshed_day: pending.day });
        // Best-effort: a full disk must not fail the refresh that already
        // committed in memory, but it is counted and visible in `stats`.
        if self.persist_now().is_err() {
            self.lock_dynamic().persist_failures += 1;
        }
        Ok((report, version))
    }

    /// Records one failure (a guard rejection when `reason` is set, a
    /// panicking tick otherwise) and returns whether the site is now
    /// quarantined. Crossing `quarantine_after` arms the cooldown.
    fn note_failure(&self, reason: Option<String>) -> bool {
        let mut d = self.lock_dynamic();
        d.consecutive_failures = d.consecutive_failures.saturating_add(1);
        if let Some(reason) = reason {
            d.refresh_rejections += 1;
            d.last_reject_reason = Some(reason);
        }
        if d.consecutive_failures >= self.policy.quarantine_after.max(1) {
            d.quarantined = true;
            d.quarantine_cooldown = self.policy.quarantine_cooldown_ticks;
        }
        d.quarantined
    }

    /// Called by the scheduler when a maintenance tick panicked. Panics count
    /// toward the same failure streak as guard rejections.
    pub fn note_tick_panic(&self) {
        self.lock_dynamic().tick_panics += 1;
        // A panic mid-tick may have left the solve half-done; whatever the
        // warm state was, it is no longer trustworthy.
        self.lock_solver().invalidate();
        self.note_failure(None);
    }

    /// The scheduler's quarantine gate: returns `true` when the site must be
    /// skipped this pass. Each skipped pass burns one cooldown tick; when the
    /// cooldown reaches zero the quarantine flag clears, but the failure
    /// streak does *not* — the site is on probation, and the next rejection
    /// re-quarantines it instantly. (A successful refresh clears everything.)
    pub fn quarantine_tick(&self) -> bool {
        let mut d = self.lock_dynamic();
        if !d.quarantined {
            return false;
        }
        if d.quarantine_cooldown > 0 {
            d.quarantine_cooldown -= 1;
            if d.quarantine_cooldown == 0 {
                d.quarantined = false;
            }
        }
        true
    }

    /// Whether the site is currently quarantined.
    pub fn is_quarantined(&self) -> bool {
        self.lock_dynamic().quarantined
    }

    /// Multiplier the scheduler applies to the site's tick interval:
    /// `2^min(consecutive_failures, backoff_cap)`. One committed refresh
    /// resets it to 1.
    pub fn backoff_factor(&self) -> u32 {
        let f = self.lock_dynamic().consecutive_failures;
        1u32 << f.min(self.policy.backoff_cap).min(16)
    }

    /// Captures everything a restart needs as a [`PersistedSite`]. Safe to
    /// call while [`Site::refresh`] holds the refresh mutex (it only reads
    /// the snapshot cell, the solver cache, and the dynamic mutex — the
    /// latter two one at a time, never nested).
    ///
    /// Plan/journal state is written from the [`DurableView`] checkpointed
    /// at the last commit, not from the live values: that keeps every
    /// snapshot consistent with its `journal_watermark` even when surveys
    /// landed after the last refresh.
    pub fn to_persisted(&self) -> PersistedSite {
        let warm = self.lock_solver().warm_state().cloned();
        let snap = self.load();
        let d = self.lock_dynamic();
        PersistedSite {
            name: self.name.clone(),
            generation: snap.version,
            refreshed_day: snap.refreshed_day,
            snapshot: snap.system.snapshot(),
            monitor_stored: d.monitor.stored().clone(),
            monitor_cells: d.monitor.cells().to_vec(),
            monitor_last_update_day: d.monitor.last_update_day(),
            monitor_config: d.monitor.config(),
            breach_streak: d.breach_streak,
            maintenance_checks: d.maintenance_checks,
            auto_refreshes: d.auto_refreshes,
            refresh_rejections: d.refresh_rejections,
            consecutive_failures: d.consecutive_failures,
            last_reject_reason: d.last_reject_reason.clone(),
            quarantined: d.quarantined,
            quarantine_cooldown: d.quarantine_cooldown,
            tick_panics: d.tick_panics,
            policy: self.policy,
            ingest: self.ingest_config,
            journal_watermark: d.durable_view.journal_watermark,
            survey_epoch: d.durable_view.survey_epoch,
            planned_cost: d.durable_view.planned_cost,
            actual_cost: d.durable_view.actual_cost,
            full_survey_cost: d.durable_view.full_survey_cost,
            current_plan: d.durable_view.current_plan.clone(),
            last_ref_confidence: d.durable_view.last_ref_confidence.clone(),
            history: d.durable_view.history.clone(),
            warm,
        }
    }

    /// Persists the current generation to the attached store, if any.
    /// Returns the snapshot path when a save happened. Once the snapshot is
    /// durable, journal records at or below its watermark are pruned
    /// (best-effort — a failed prune only delays reclamation).
    pub fn persist_now(&self) -> Result<Option<PathBuf>> {
        let Some(store) = &self.store else {
            return Ok(None);
        };
        let persisted = self.to_persisted();
        let watermark = persisted.journal_watermark;
        let path = store.save(&persisted)?;
        if let Some(j) = &self.journal {
            let _ = j.prune(watermark);
        }
        Ok(Some(path))
    }

    /// Promotes a finished reference-capture round into [`PendingRefs`].
    ///
    /// Without a measurement plan, a round is finished once every reference
    /// cell owns a capture window whose assembled vector is complete (no
    /// missing, no stale links); the vectors become the pending `M x n`
    /// reference columns, exactly as if they had arrived via `measure-refs`.
    ///
    /// With a plan (a planner is attached and a previous refresh produced
    /// one), only the *planned* (cell, link) pairs need live capture data;
    /// every other entry is carried forward from the survey-history window
    /// and marked unobserved in [`PendingRefs::mask`], so the refresh
    /// reconstructs it instead of trusting it. Only the planned pairs count
    /// toward the actual measurement cost.
    ///
    /// The empty-room baseline is carried forward from the current snapshot —
    /// the survey re-measures the occupied columns only. Returns whether a
    /// promotion happened.
    pub fn promote_ref_captures(&self) -> Result<bool> {
        let snap = self.load();
        let ref_cells = snap.system.reference_cells();
        let n_refs = ref_cells.len();
        let m = snap.system.db().num_links();
        let empty = snap.system.empty_rss();
        let mut d = self.lock_dynamic();
        let plan = if self.planner.is_some() { d.current_plan.clone() } else { None };

        // Completion check first: an unfinished round must change nothing.
        match &plan {
            Some(plan) => {
                if plan.entries.is_empty() {
                    // A zero-budget plan schedules no measurements; there is
                    // nothing a capture round could ever complete.
                    return Ok(false);
                }
                for e in &plan.entries {
                    let Some(capture) = d.ref_captures.get(&e.ref_slot) else {
                        return Ok(false);
                    };
                    let v = capture.assemble(empty)?;
                    if e.links.iter().any(|&l| v.flags[l] != LinkFlag::Live) {
                        return Ok(false);
                    }
                }
            }
            None => {
                if d.ref_captures.len() < n_refs {
                    return Ok(false);
                }
                for k in 0..n_refs {
                    let Some(capture) = d.ref_captures.get(&k) else {
                        return Ok(false);
                    };
                    if !capture.assemble(empty)?.is_complete() {
                        return Ok(false);
                    }
                }
            }
        }

        d.survey_epoch += 1;
        let epoch = d.survey_epoch;
        let full = (n_refs * m) as u64;
        let mut columns = Matrix::zeros(m, n_refs);
        let mask = match &plan {
            Some(plan) => {
                let mut mask = Mask::falses(m, n_refs);
                for (k, &ref_cell) in ref_cells.iter().enumerate() {
                    // Base: newest surveyed column from history (seeded at
                    // planner attach), falling back to the served database.
                    let mut y = match d.history.as_ref().and_then(|h| h.latest(k)) {
                        Some(r) => r.y.clone(),
                        None => snap.system.db().rss().col(ref_cell),
                    };
                    let mut fresh = vec![false; m];
                    if let Some(links) = plan.links_for(k) {
                        let capture = d.ref_captures.get(&k).expect("checked above");
                        let v = capture.assemble(empty)?;
                        for &l in links {
                            y[l] = v.y[l];
                            fresh[l] = true;
                            mask.set(l, k, true);
                        }
                    }
                    columns.set_col(k, &y)?;
                    if let Some(h) = d.history.as_mut() {
                        h.record(k, SurveyRecord { epoch, y, fresh })
                            .map_err(|e| ServeError::Protocol(format!("planner history: {e}")))?;
                    }
                }
                d.planned_cost += plan.planned_cost as u64;
                d.actual_cost += mask.count() as u64;
                d.full_survey_cost += full;
                Some(mask)
            }
            None => {
                for k in 0..n_refs {
                    let capture = d.ref_captures.get(&k).expect("checked above");
                    let v = capture.assemble(empty)?;
                    columns.set_col(k, &v.y)?;
                    if let Some(h) = d.history.as_mut() {
                        h.record(k, SurveyRecord { epoch, y: v.y, fresh: vec![true; m] })
                            .map_err(|e| ServeError::Protocol(format!("planner history: {e}")))?;
                    }
                }
                d.planned_cost += full;
                d.actual_cost += full;
                d.full_survey_cost += full;
                None
            }
        };
        d.pending =
            Some(PendingRefs { day: d.ref_capture_day, columns, empty: empty.to_vec(), mask });
        d.ref_captures.clear();
        if let Some(j) = &self.journal {
            // Every journaled capture batch so far is consumed into
            // `pending` (or superseded); appends happen under the dynamic
            // lock, so `last_seq` is exact here.
            d.wal_pending_seq = j.last_seq();
        }
        Ok(true)
    }

    /// One pass of the background maintenance loop: promote any finished
    /// reference-capture round, then re-check pending references against the
    /// monitor and auto-refresh when the breach streak and the monitor's
    /// cooldown both allow it. Returns the new version when a refresh was
    /// triggered.
    pub fn maintenance_tick(&self) -> Result<Option<u64>> {
        if let Some(j) = &self.journal {
            // The tick bounds the group-commit window even on an idle site:
            // anything buffered since the last flush becomes durable here.
            let _ = j.sync();
        }
        {
            let mut d = self.lock_dynamic();
            if d.panic_budget > 0 {
                // Test-only injected fault (`policy.debug_panic_ticks`); the
                // lock is released first so the panic does not poison it.
                d.panic_budget -= 1;
                drop(d);
                panic!("injected maintenance-tick panic (debug_panic_ticks)");
            }
            if d.quarantined {
                // Defense in depth: the scheduler already skips quarantined
                // sites, but a manual-tick harness reaches here directly.
                return Ok(None);
            }
        }
        self.promote_ref_captures()?;
        let trigger = {
            let mut d = self.lock_dynamic();
            d.maintenance_checks += 1;
            let Some(pending) = d.pending.clone() else {
                d.breach_streak = 0;
                return Ok(None);
            };
            let monitored = self.monitored_columns(&pending.columns)?;
            let rec = d.monitor.check(pending.day, &monitored)?;
            d.last_estimate_db = Some(rec.estimated_error_db());
            if matches!(rec, Recommendation::UpdateRecommended { .. }) {
                d.breach_streak += 1;
            } else {
                d.breach_streak = 0;
            }
            self.policy.auto_refresh && d.breach_streak >= self.policy.breach_streak.max(1)
        };
        if !trigger {
            return Ok(None);
        }
        let (_, version) = self.refresh()?;
        self.lock_dynamic().auto_refreshes += 1;
        Ok(Some(version))
    }

    /// Identity row for `list-sites`.
    pub fn info(&self) -> SiteInfo {
        let snap = self.load();
        SiteInfo {
            site: self.name.clone(),
            links: snap.system.db().num_links(),
            cells: snap.system.db().num_cells(),
            version: snap.version,
        }
    }

    /// Health row for `stats`.
    pub fn stats(&self) -> SiteStats {
        let snap = self.load();
        let d = self.lock_dynamic();
        SiteStats {
            site: self.name.clone(),
            version: snap.version,
            refreshed_day: snap.refreshed_day,
            pending_refs: d.pending.is_some(),
            estimated_error_db: d.last_estimate_db,
            maintenance_checks: d.maintenance_checks,
            auto_refreshes: d.auto_refreshes,
            refresh_rejections: d.refresh_rejections,
            last_reject_reason: d.last_reject_reason.clone(),
            consecutive_failures: d.consecutive_failures,
            quarantined: d.quarantined,
            tick_panics: d.tick_panics,
            persist_failures: d.persist_failures,
            active_trackers: d.trackers.len(),
            ingest: self.ingest.stats(),
            stream_clock_s: self.ingest.stream_clock_s(),
            active_ref_captures: d.ref_captures.len(),
            planned_cost: d.planned_cost,
            actual_cost: d.actual_cost,
            full_survey_cost: d.full_survey_cost,
            plan_policy: self.planner.as_ref().map(|p| p.config().policy.to_string()),
            // A site doesn't know its shard; the owning ShardSet fills this in.
            shard: 0,
        }
    }
}

/// Renders a [`Recommendation`] as its wire name.
pub fn recommendation_name(rec: &Recommendation) -> &'static str {
    match rec {
        Recommendation::Healthy { .. } => "healthy",
        Recommendation::UpdateRecommended { .. } => "update-recommended",
        Recommendation::Cooldown { .. } => "cooldown",
    }
}

/// Renders a [`Detection`] as a short human-readable description.
pub fn detection_detail(det: &Detection) -> String {
    match det {
        Detection::Absent => "absent".to_string(),
        Detection::PresentInstant { link, drop_db } => {
            format!("instant: link {link} dropped {drop_db:.1} dB")
        }
        Detection::PresentAccumulated { link, statistic } => {
            format!("accumulated: link {link} CUSUM {statistic:.1}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taf_rfsim::{campaign, stream, StreamConfig, World, WorldConfig};
    use tafloc_core::db::FingerprintDb;
    use tafloc_core::system::TafLocConfig;

    const SAMPLES: usize = 20;

    fn calibrated_site(seed: u64) -> (World, Site) {
        let world = World::new(WorldConfig::small_test(), seed);
        let x0 = campaign::full_calibration(&world, 0.0, SAMPLES);
        let e0 = campaign::empty_snapshot(&world, 0.0, SAMPLES);
        let db = FingerprintDb::from_world(x0, &world).unwrap();
        let config = TafLocConfig { ref_count: 6, ..Default::default() };
        let sys = TafLoc::calibrate(config, db, e0).unwrap();
        let site = Site::new("lab", sys, 0.0, MaintenancePolicy::default()).unwrap();
        (world, site)
    }

    fn link_samples(raw: &[taf_rfsim::RawSample]) -> Vec<LinkSample> {
        raw.iter().map(|r| LinkSample::new(r.link, r.t_s, r.rss_dbm)).collect()
    }

    #[test]
    fn live_samples_assemble_into_a_matching_fix() {
        let (world, site) = calibrated_site(31);
        let target_cell = 5;
        let cfg = StreamConfig { duration_s: 30.0, ..Default::default() };
        let raw = stream::stream_at_cell(&world, 0.0, target_cell, &cfg, 1);
        let report = site.ingest_samples(None, 0.0, &link_samples(&raw)).unwrap();
        assert_eq!(report.total() as usize, raw.len());
        assert!(report.accepted > 0);

        let (fix, assembled, version) = site.locate_stream().unwrap();
        assert_eq!(version, 0);
        assert!(assembled.is_complete(), "all links streamed");
        assert!(assembled.y.iter().all(|v| v.is_finite()));
        let y_avg = campaign::snapshot_at_cell(&world, 0.0, target_cell, SAMPLES);
        let expected = site.load().system.localize(&y_avg).unwrap().cell;
        assert_eq!(fix.cell, expected, "stream path must agree with the averaged path");
    }

    #[test]
    fn locate_stream_without_samples_is_an_error() {
        let (_, site) = calibrated_site(32);
        assert!(site.locate_stream().is_err());
    }

    #[test]
    fn manual_clock_site_ages_windows_through_an_outage() {
        let world = World::new(WorldConfig::small_test(), 77);
        let x0 = campaign::full_calibration(&world, 0.0, SAMPLES);
        let e0 = campaign::empty_snapshot(&world, 0.0, SAMPLES);
        let db = FingerprintDb::from_world(x0, &world).unwrap();
        let config = TafLocConfig { ref_count: 6, ..Default::default() };
        let sys = TafLoc::calibrate(config, db, e0).unwrap();
        let ingest_config = IngestConfig { stale_after_s: 5.0, ..Default::default() };
        let policy = MaintenancePolicy { manual_tick: true, ..Default::default() };
        let site =
            Site::with_options("lab", sys, 0.0, policy, ingest_config, ClockMode::Manual).unwrap();
        assert!(site.policy().manual_tick);

        let cfg = StreamConfig { duration_s: 10.0, ..Default::default() };
        let raw = stream::stream_at_cell(&world, 0.0, 3, &cfg, 1);
        site.ingest_samples(None, 0.0, &link_samples(&raw)).unwrap();
        // Under a manual clock, samples alone do not move "now": nothing is
        // stale yet because the clock is still at 0.
        site.advance_stream_clock(cfg.duration_s);
        let (_, assembled, _) = site.locate_stream().unwrap();
        assert!(assembled.stale.is_empty(), "fresh stream must not be stale");
        // A total outage: no new samples, only scripted time. Every link goes
        // stale — the exact condition a sample-driven clock would mask.
        site.advance_stream_clock(cfg.duration_s + 30.0);
        let (_, assembled, _) = site.locate_stream().unwrap();
        assert_eq!(assembled.stale.len(), world.num_links(), "all links stale after outage");
    }

    #[test]
    fn locate_batch_matches_single_locates_on_one_version() {
        let (world, site) = calibrated_site(33);
        let ys: Vec<Vec<f64>> =
            (0..4).map(|c| campaign::snapshot_at_cell(&world, 0.0, c, SAMPLES)).collect();
        let single: Vec<usize> = ys.iter().map(|y| site.locate(y).unwrap().0.cell).collect();
        let (fixes, version) = site.locate_batch(&ys).unwrap();
        assert_eq!(version, 0);
        let batch: Vec<usize> = fixes.iter().map(|f| f.cell).collect();
        assert_eq!(batch, single);
        // One bad vector fails the whole batch.
        assert!(site.locate_batch(&[vec![-50.0; 2]]).is_err());
    }

    #[test]
    fn out_of_range_ref_capture_is_rejected() {
        let (_, site) = calibrated_site(34);
        let n_refs = site.load().system.reference_cells().len();
        let err =
            site.ingest_samples(Some(n_refs), 0.0, &[LinkSample::new(0, 0.0, -50.0)]).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn complete_ref_captures_promote_to_pending_refs() {
        let (world, site) = calibrated_site(35);
        let ref_cells: Vec<usize> = site.load().system.reference_cells().to_vec();
        let cfg = StreamConfig { duration_s: 30.0, ..Default::default() };

        // A partial survey must not promote.
        let raw = stream::stream_at_cell(&world, 60.0, ref_cells[0], &cfg, 50);
        site.ingest_samples(Some(0), 60.0, &link_samples(&raw)).unwrap();
        assert!(!site.promote_ref_captures().unwrap());
        assert!(!site.stats().pending_refs);
        assert_eq!(site.stats().active_ref_captures, 1);

        // Completing every reference cell promotes and clears the captures.
        for (k, &cell) in ref_cells.iter().enumerate().skip(1) {
            let raw = stream::stream_at_cell(&world, 60.0, cell, &cfg, 50 + k as u64);
            site.ingest_samples(Some(k), 60.0, &link_samples(&raw)).unwrap();
        }
        assert!(site.promote_ref_captures().unwrap());
        let stats = site.stats();
        assert!(stats.pending_refs);
        assert_eq!(stats.active_ref_captures, 0);

        // The promoted columns drive a real refresh.
        let (report, version) = site.refresh().unwrap();
        assert!(report.converged);
        assert_eq!(version, 1);
        assert!(!site.stats().pending_refs);
    }

    fn survey_into(site: &Site, world: &World, day: f64, slots: &[usize], seed_base: u64) {
        let ref_cells: Vec<usize> = site.load().system.reference_cells().to_vec();
        let cfg = StreamConfig { duration_s: 30.0, ..Default::default() };
        for &k in slots {
            let raw = stream::stream_at_cell(world, day, ref_cells[k], &cfg, seed_base + k as u64);
            site.ingest_samples(Some(k), day, &link_samples(&raw)).unwrap();
        }
    }

    #[test]
    fn budgeted_round_promotes_with_history_fill_in() {
        use taf_plan::{PlanPolicy, PlannerConfig};
        let (world, site) = calibrated_site(37);
        let m = world.num_links();
        let n_refs = site.load().system.reference_cells().len();
        let full = (m * n_refs) as u64;
        // Budget = half a full survey, in whole cells.
        let budget = n_refs / 2 * m;
        let site =
            site.with_planning(PlannerConfig::new(budget, PlanPolicy::UncertaintyGreedy)).unwrap();
        assert!(site.current_plan().is_none(), "no diagnostics yet, so no plan");

        // Round 1: full survey (no plan exists), full cost.
        survey_into(&site, &world, 60.0, &(0..n_refs).collect::<Vec<_>>(), 50);
        assert!(site.promote_ref_captures().unwrap());
        let (_, version) = site.refresh().unwrap();
        assert_eq!(version, 1);
        let stats = site.stats();
        assert_eq!(
            (stats.planned_cost, stats.actual_cost, stats.full_survey_cost),
            (full, full, full)
        );
        assert_eq!(stats.plan_policy.as_deref(), Some("uncertainty-greedy"));
        let plan = site.current_plan().expect("a committed refresh must plan the next round");
        assert_eq!(plan.planned_cost, budget);
        assert!(site.last_ref_confidence().unwrap().iter().all(|c| (0.0..=1.0).contains(c)));

        // Round 2: survey only the planned cells; unplanned slots never get
        // a capture, yet the round promotes with history fill-in.
        let planned: Vec<usize> = plan.entries.iter().map(|e| e.ref_slot).collect();
        assert!(planned.len() < n_refs);
        survey_into(&site, &world, 120.0, &planned, 80);
        assert!(site.promote_ref_captures().unwrap());
        {
            let d = site.lock_dynamic();
            let pending = d.pending.as_ref().unwrap();
            let mask = pending.mask.as_ref().expect("budgeted round must carry a mask");
            assert_eq!(mask.count(), budget);
        }
        let (report, version) = site.refresh().unwrap();
        assert!(report.converged);
        assert_eq!(version, 2);
        let stats = site.stats();
        assert_eq!(stats.planned_cost, full + budget as u64);
        assert_eq!(stats.actual_cost, full + budget as u64);
        assert_eq!(stats.full_survey_cost, 2 * full);
    }

    #[test]
    fn partial_budgeted_round_does_not_promote_until_planned_cells_arrive() {
        use taf_plan::{PlanPolicy, PlannerConfig};
        let (world, site) = calibrated_site(38);
        let m = world.num_links();
        let n_refs = site.load().system.reference_cells().len();
        let site =
            site.with_planning(PlannerConfig::new(2 * m, PlanPolicy::FixedSchedule)).unwrap();
        survey_into(&site, &world, 60.0, &(0..n_refs).collect::<Vec<_>>(), 50);
        assert!(site.promote_ref_captures().unwrap());
        site.refresh().unwrap();
        let plan = site.current_plan().unwrap();
        let planned: Vec<usize> = plan.entries.iter().map(|e| e.ref_slot).collect();
        assert_eq!(planned.len(), 2);

        // Only one of the two planned cells surveyed: no promotion.
        survey_into(&site, &world, 120.0, &planned[..1], 90);
        assert!(!site.promote_ref_captures().unwrap());
        // The second arrives: the round completes.
        survey_into(&site, &world, 120.0, &planned[1..], 91);
        assert!(site.promote_ref_captures().unwrap());
    }

    #[test]
    fn planless_sites_account_full_survey_cost() {
        let (world, site) = calibrated_site(39);
        let m = world.num_links();
        let n_refs = site.load().system.reference_cells().len();
        survey_into(&site, &world, 60.0, &(0..n_refs).collect::<Vec<_>>(), 50);
        assert!(site.promote_ref_captures().unwrap());
        let stats = site.stats();
        let full = (m * n_refs) as u64;
        assert_eq!(
            (stats.planned_cost, stats.actual_cost, stats.full_survey_cost),
            (full, full, full)
        );
        assert_eq!(stats.plan_policy, None);
        assert!(site.current_plan().is_none());
    }

    #[test]
    fn a_new_survey_day_restarts_the_capture_round() {
        let (world, site) = calibrated_site(36);
        let cfg = StreamConfig { duration_s: 10.0, ..Default::default() };
        let ref_cells: Vec<usize> = site.load().system.reference_cells().to_vec();
        let raw = stream::stream_at_cell(&world, 30.0, ref_cells[0], &cfg, 9);
        site.ingest_samples(Some(0), 30.0, &link_samples(&raw)).unwrap();
        assert_eq!(site.stats().active_ref_captures, 1);
        // Same cell, different day: the stale partial round is discarded.
        let raw = stream::stream_at_cell(&world, 60.0, ref_cells[1], &cfg, 10);
        site.ingest_samples(Some(1), 60.0, &link_samples(&raw)).unwrap();
        let stats = site.stats();
        assert_eq!(stats.active_ref_captures, 1, "day change restarts the round");
    }
}
