//! The background maintenance scheduler: the daemon half of "time-adaptive".
//!
//! All registered sites share one scheduler thread and one bounded rayon pool.
//! The scheduler tracks a per-site deadline derived from the site's
//! `interval_ms`; when a tick is due it re-evaluates the most recently
//! ingested reference measurements against the site's
//! [`tafloc_core::monitor::DriftMonitor`] and — when the estimated database
//! error has stayed above threshold for `breach_streak` consecutive checks
//! *and* the monitor's own `min_interval_days` cooldown has elapsed — runs
//! LoLi-IR off the request path and atomically swaps the site snapshot. Two
//! layers of hysteresis (the streak and the cooldown) keep one noisy spot
//! check from thrashing the database.
//!
//! Ticks that fall due together fan out across the shared pool (behind the
//! `parallel` feature; the serial build runs them back to back), so
//! background CPU stays bounded by the pool size no matter how many sites the
//! daemon hosts — instead of one thread per site, each free to run a LoLi-IR
//! solve at the same time.

use crate::site::Site;
#[cfg(feature = "parallel")]
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tafloc_core::monitor::MonitorConfig;
use tafloc_core::system::ReconstructionGuard;

fn default_interval_ms() -> u64 {
    250
}

fn default_auto_refresh() -> bool {
    true
}

fn default_breach_streak() -> u32 {
    2
}

fn default_monitor_cells() -> usize {
    2
}

fn default_manual_tick() -> bool {
    false
}

fn default_quarantine_after() -> u32 {
    3
}

fn default_quarantine_cooldown_ticks() -> u32 {
    8
}

fn default_backoff_cap() -> u32 {
    6
}

/// Per-site maintenance policy (wire-configurable via `add-site`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenancePolicy {
    /// Milliseconds between maintenance ticks.
    #[serde(default = "default_interval_ms")]
    pub interval_ms: u64,
    /// Whether the loop may trigger refreshes on its own; when `false` the
    /// monitor still runs and `stats` reports its verdicts, but refreshes
    /// only happen on an explicit `refresh` request.
    #[serde(default = "default_auto_refresh")]
    pub auto_refresh: bool,
    /// Consecutive over-threshold checks required before an auto-refresh.
    #[serde(default = "default_breach_streak")]
    pub breach_streak: u32,
    /// How many of the site's reference cells the drift probe compares
    /// (clamped to the reference count at site creation).
    #[serde(default = "default_monitor_cells")]
    pub monitor_cells: usize,
    /// When `true` no maintenance thread is spawned for the site; the owner
    /// drives [`Site::maintenance_tick`](crate::site::Site::maintenance_tick)
    /// explicitly. Deterministic harnesses (taf-testkit) use this so ticks
    /// happen at scripted points in stream time instead of on a wall-clock
    /// cadence.
    #[serde(default = "default_manual_tick")]
    pub manual_tick: bool,
    /// Thresholds for the underlying [`DriftMonitor`](tafloc_core::monitor::DriftMonitor).
    #[serde(default)]
    pub monitor: MonitorConfig,
    /// Sanity ceilings a freshly reconstructed database must clear before
    /// it replaces the served snapshot; a failing refresh is rolled back.
    #[serde(default)]
    pub guard: ReconstructionGuard,
    /// Consecutive rejected refreshes (or panicking ticks) after which the
    /// site is quarantined: it keeps serving its last good snapshot
    /// read-only and the scheduler skips its maintenance until the cooldown
    /// elapses or an explicit `refresh` succeeds.
    #[serde(default = "default_quarantine_after")]
    pub quarantine_after: u32,
    /// Scheduler passes a quarantined site sits out before re-admission.
    #[serde(default = "default_quarantine_cooldown_ticks")]
    pub quarantine_cooldown_ticks: u32,
    /// Cap on the exponent of the per-site refresh backoff: after `f`
    /// consecutive failures the next tick is scheduled
    /// `interval_ms * 2^min(f, backoff_cap)` away instead of hot-looping
    /// the solver on poisoned inputs.
    #[serde(default = "default_backoff_cap")]
    pub backoff_cap: u32,
    /// Test-only fault-injection hook: the first `n` maintenance ticks of
    /// the site panic before doing any work. `0` (the default, and the only
    /// sane production value) is a strict no-op. The fault-tolerance tests
    /// use this to prove a panicking tick is isolated by the scheduler's
    /// panic boundary instead of killing the daemon.
    #[serde(default)]
    pub debug_panic_ticks: u32,
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy {
            interval_ms: default_interval_ms(),
            auto_refresh: default_auto_refresh(),
            breach_streak: default_breach_streak(),
            monitor_cells: default_monitor_cells(),
            manual_tick: default_manual_tick(),
            monitor: MonitorConfig::default(),
            guard: ReconstructionGuard::default(),
            quarantine_after: default_quarantine_after(),
            quarantine_cooldown_ticks: default_quarantine_cooldown_ticks(),
            backoff_cap: default_backoff_cap(),
            debug_panic_ticks: 0,
        }
    }
}

/// How often the scheduler thread wakes to look for due sites. Also bounds
/// how long shutdown can go unnoticed between batches.
const SCHEDULER_SLICE: Duration = Duration::from_millis(10);

/// A scheduled site and its next tick deadline.
#[derive(Debug)]
struct Entry {
    site: Arc<Site>,
    next_due: Instant,
}

/// State shared between the scheduler thread and its owner.
#[derive(Debug, Default)]
struct SchedulerShared {
    /// Sites with automatic maintenance, with their deadlines.
    entries: Mutex<Vec<Entry>>,
    /// Held by the scheduler for the whole of each batch (deadline collection
    /// through tick completion). [`MaintenanceScheduler::unschedule`] acquires
    /// it to wait out any batch that may still reference a removed site.
    running: Mutex<()>,
    /// Tells the scheduler thread to exit.
    stop: AtomicBool,
}

/// The shared maintenance scheduler: one thread that watches every
/// automatically-ticked site and fans due ticks out across a bounded rayon
/// pool.
///
/// The scheduler thread (and the pool) only exist while at least one site has
/// ever been scheduled; manual-tick-only deployments (the deterministic
/// test harness) spawn nothing.
#[derive(Debug)]
pub struct MaintenanceScheduler {
    /// Pool workers (0 = one per core).
    threads: usize,
    shared: Arc<SchedulerShared>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl MaintenanceScheduler {
    /// Creates a stopped scheduler whose pool, once started, has `threads`
    /// workers (0 = one per core).
    pub fn new(threads: usize) -> Self {
        MaintenanceScheduler {
            threads,
            shared: Arc::new(SchedulerShared::default()),
            handle: Mutex::new(None),
        }
    }

    /// Adds `site` to the schedule (first tick one interval from now) and
    /// starts the scheduler thread if it is not running.
    pub fn schedule(&self, site: Arc<Site>) {
        let interval = Duration::from_millis(site.policy().interval_ms.max(1));
        let entry = Entry { site, next_due: Instant::now() + interval };
        self.shared.entries.lock().unwrap_or_else(|p| p.into_inner()).push(entry);
        let mut handle = self.handle.lock().unwrap_or_else(|p| p.into_inner());
        if handle.is_none() {
            self.shared.stop.store(false, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            let threads = self.threads;
            *handle = Some(
                std::thread::Builder::new()
                    .name("taflocd-maint".to_string())
                    .spawn(move || scheduler_loop(&shared, threads))
                    .expect("spawning the maintenance scheduler cannot fail"),
            );
        }
    }

    /// Drops `name` from the schedule and waits for any in-flight batch, so
    /// that no tick for the site runs after this returns. (Callers raise the
    /// site's stop flag first; ticks re-check it as a second line of defense.)
    pub fn unschedule(&self, name: &str) {
        self.shared
            .entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .retain(|e| e.site.name() != name);
        drop(self.shared.running.lock().unwrap_or_else(|p| p.into_inner()));
    }

    /// Stops and joins the scheduler thread and clears the schedule. The
    /// scheduler restarts transparently if a site is scheduled afterwards.
    pub fn stop_and_join(&self) {
        let handle = self.handle.lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(h) = handle {
            self.shared.stop.store(true, Ordering::Relaxed);
            let _ = h.join();
        }
        self.shared.entries.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
}

/// One maintenance tick, skipped if the site was stopped in the meantime. A
/// failed tick (e.g. a solver hiccup) must not kill the loop; the next
/// ingested measurement gets a fresh chance. Quarantined sites get a
/// cooldown-bookkeeping pass instead of real work, and the tick body runs
/// inside a panic boundary so one poisoned site cannot take the scheduler
/// (and with it every other site's maintenance) down.
fn run_tick(site: &Arc<Site>) {
    if site.stop_flag().load(Ordering::Relaxed) {
        return;
    }
    if site.quarantine_tick() {
        return;
    }
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| site.maintenance_tick()));
    if outcome.is_err() {
        site.note_tick_panic();
    }
}

fn scheduler_loop(shared: &SchedulerShared, threads: usize) {
    // The pool lives on the scheduler thread; `threads` bounds how many site
    // refreshes can consume CPU simultaneously.
    #[cfg(feature = "parallel")]
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().ok();
    #[cfg(not(feature = "parallel"))]
    let _ = threads;

    let mut due: Vec<Arc<Site>> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::sleep(SCHEDULER_SLICE);
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        // Deadline collection and tick execution happen under the batch lock:
        // once `unschedule` has removed a site and taken this lock, no later
        // batch can see the site.
        let batch = shared.running.lock().unwrap_or_else(|p| p.into_inner());
        let now = Instant::now();
        due.clear();
        {
            let mut entries = shared.entries.lock().unwrap_or_else(|p| p.into_inner());
            entries.retain(|e| !e.site.stop_flag().load(Ordering::Relaxed));
            for e in entries.iter_mut() {
                if now >= e.next_due {
                    let interval = Duration::from_millis(e.site.policy().interval_ms.max(1));
                    // Exponential backoff: a site whose refreshes keep getting
                    // rejected (or whose ticks keep panicking) is rescheduled
                    // further and further out instead of hot-looping LoLi-IR
                    // on poisoned inputs. One success resets the factor to 1.
                    e.next_due = now + interval * e.site.backoff_factor();
                    due.push(Arc::clone(&e.site));
                }
            }
        }
        if due.is_empty() {
            continue;
        }
        #[cfg(feature = "parallel")]
        if let Some(pool) = &pool {
            if due.len() > 1 {
                pool.install(|| due.par_iter().for_each(run_tick));
                drop(batch);
                continue;
            }
        }
        for site in &due {
            run_tick(site);
        }
        drop(batch);
    }
}
