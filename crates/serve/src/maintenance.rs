//! The background maintenance loop: the daemon half of "time-adaptive".
//!
//! Each registered site gets one maintenance thread. On every tick it
//! re-evaluates the most recently ingested reference measurements against the
//! site's [`tafloc_core::monitor::DriftMonitor`] and — when the estimated
//! database error has stayed above threshold for `breach_streak` consecutive
//! checks *and* the monitor's own `min_interval_days` cooldown has elapsed —
//! runs LoLi-IR off the request path and atomically swaps the site snapshot.
//! Two layers of hysteresis (the streak and the cooldown) keep one noisy
//! spot check from thrashing the database.

use crate::site::Site;
use serde::{Deserialize, Serialize};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tafloc_core::monitor::MonitorConfig;

fn default_interval_ms() -> u64 {
    250
}

fn default_auto_refresh() -> bool {
    true
}

fn default_breach_streak() -> u32 {
    2
}

fn default_monitor_cells() -> usize {
    2
}

fn default_manual_tick() -> bool {
    false
}

/// Per-site maintenance policy (wire-configurable via `add-site`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenancePolicy {
    /// Milliseconds between maintenance ticks.
    #[serde(default = "default_interval_ms")]
    pub interval_ms: u64,
    /// Whether the loop may trigger refreshes on its own; when `false` the
    /// monitor still runs and `stats` reports its verdicts, but refreshes
    /// only happen on an explicit `refresh` request.
    #[serde(default = "default_auto_refresh")]
    pub auto_refresh: bool,
    /// Consecutive over-threshold checks required before an auto-refresh.
    #[serde(default = "default_breach_streak")]
    pub breach_streak: u32,
    /// How many of the site's reference cells the drift probe compares
    /// (clamped to the reference count at site creation).
    #[serde(default = "default_monitor_cells")]
    pub monitor_cells: usize,
    /// When `true` no maintenance thread is spawned for the site; the owner
    /// drives [`Site::maintenance_tick`](crate::site::Site::maintenance_tick)
    /// explicitly. Deterministic harnesses (taf-testkit) use this so ticks
    /// happen at scripted points in stream time instead of on a wall-clock
    /// cadence.
    #[serde(default = "default_manual_tick")]
    pub manual_tick: bool,
    /// Thresholds for the underlying [`DriftMonitor`](tafloc_core::monitor::DriftMonitor).
    #[serde(default)]
    pub monitor: MonitorConfig,
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy {
            interval_ms: default_interval_ms(),
            auto_refresh: default_auto_refresh(),
            breach_streak: default_breach_streak(),
            monitor_cells: default_monitor_cells(),
            manual_tick: default_manual_tick(),
            monitor: MonitorConfig::default(),
        }
    }
}

/// Spawns the maintenance thread for `site`. The thread exits promptly once
/// the site's stop flag is raised (at `remove-site` or server shutdown).
pub fn spawn_maintenance(site: Arc<Site>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("taflocd-maint-{}", site.name()))
        .spawn(move || {
            let interval = Duration::from_millis(site.policy().interval_ms.max(1));
            while !site.stop_flag().load(Ordering::Relaxed) {
                // Sleep in short slices so shutdown stays responsive even
                // under multi-second tick intervals.
                let mut remaining = interval;
                while !remaining.is_zero() && !site.stop_flag().load(Ordering::Relaxed) {
                    let slice = remaining.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
                if site.stop_flag().load(Ordering::Relaxed) {
                    break;
                }
                // A failed tick (e.g. a solver hiccup) must not kill the
                // loop; the next ingested measurement gets a fresh chance.
                let _ = site.maintenance_tick();
            }
        })
        .expect("spawning the maintenance thread cannot fail")
}
