//! `taflocd` — the standalone daemon binary.
//!
//! ```text
//! taflocd --addr 127.0.0.1:7777 [--workers 4] [--shards 4] [--data-dir DIR]
//!         [--site NAME --system system.json]...
//! ```
//!
//! `--site`/`--system` may repeat (pairwise) to pre-load several sites; more
//! can be added at runtime with an `add-site` request. With `--data-dir`,
//! every committed site generation is persisted as a checksummed snapshot
//! and recovered on the next start — a crashed daemon restarted on the same
//! directory comes back serving every site at its last committed state. The
//! daemon prints the bound address on startup and serves until a `shutdown`
//! request.

use tafloc_serve::server::{Server, ServerConfig};

const USAGE: &str = "\
taflocd — always-on TafLoc localization daemon (newline-delimited JSON over TCP)

USAGE: taflocd [--addr HOST:PORT] [--workers N] [--shards N] [--data-dir DIR]
               [--journal-flush-ms MS] [--budget N]
               [--max-inflight-per-site N] [--port-file PATH]
               [--site NAME --system PATH]...

  --addr       listen address (default 127.0.0.1:7777; port 0 = ephemeral)
  --workers    worker threads (default 4)
  --shards     consistent-hash worker shards owning the sites (default 1);
               same flags re-shard identically across restarts
  --max-inflight-per-site
               in-flight ingest sample quota per site; past it the daemon
               answers `overloaded` frames instead of silently queueing
  --data-dir   snapshot directory: persist every committed site generation
               (and a write-ahead journal of admitted survey batches) and
               recover all sites from it on startup (default: in-memory)
  --journal-flush-ms
               group-commit window of the write-ahead journal in
               milliseconds; 0 fsyncs every admitted batch (default 25)
  --budget     attach an adaptive-sensing planner with this per-round
               link-measurement budget to every site (default: full surveys)
  --port-file  write the bound port (just the number) to PATH once listening;
               lets scripts find an ephemeral port without parsing stdout
  --site       name for the next --system snapshot (repeatable)
  --system     path to a system.json written by `tafloc calibrate` (repeatable)
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let defaults = ServerConfig::default();
    let mut addr = "127.0.0.1:7777".to_string();
    let mut workers = 4usize;
    let mut shards = defaults.shards;
    let mut max_inflight_per_site = defaults.max_inflight_per_site;
    let mut data_dir: Option<String> = None;
    let mut journal_flush_ms: u64 = defaults.journal_flush.as_millis() as u64;
    let mut budget: Option<usize> = None;
    let mut port_file: Option<String> = None;
    let mut site_names: Vec<String> = Vec::new();
    let mut system_paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            "--addr"
            | "--workers"
            | "--shards"
            | "--max-inflight-per-site"
            | "--data-dir"
            | "--journal-flush-ms"
            | "--budget"
            | "--port-file"
            | "--site"
            | "--system" => {
                let Some(value) = args.get(i + 1) else {
                    fail(&format!("flag {} expects a value", args[i]));
                };
                match args[i].as_str() {
                    "--addr" => addr = value.clone(),
                    "--workers" => {
                        workers = value.parse().unwrap_or_else(|_| {
                            fail(&format!("--workers expects a number, got {value:?}"))
                        });
                    }
                    "--shards" => {
                        shards = value.parse().unwrap_or_else(|_| {
                            fail(&format!("--shards expects a number, got {value:?}"))
                        });
                    }
                    "--max-inflight-per-site" => {
                        max_inflight_per_site = value.parse().unwrap_or_else(|_| {
                            fail(&format!(
                                "--max-inflight-per-site expects a number, got {value:?}"
                            ))
                        });
                    }
                    "--data-dir" => data_dir = Some(value.clone()),
                    "--journal-flush-ms" => {
                        journal_flush_ms = value.parse().unwrap_or_else(|_| {
                            fail(&format!("--journal-flush-ms expects a number, got {value:?}"))
                        });
                    }
                    "--budget" => {
                        budget = Some(value.parse().unwrap_or_else(|_| {
                            fail(&format!("--budget expects a number, got {value:?}"))
                        }));
                    }
                    "--port-file" => port_file = Some(value.clone()),
                    "--site" => site_names.push(value.clone()),
                    _ => system_paths.push(value.clone()),
                }
                i += 2;
            }
            other => fail(&format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    if site_names.len() != system_paths.len() {
        fail("--site and --system must come in pairs");
    }

    let config = ServerConfig {
        workers,
        shards,
        max_inflight_per_site,
        // The shard budget scales with the per-site quota, mirroring the
        // default ratio.
        max_inflight_per_shard: max_inflight_per_site.saturating_mul(4),
        data_dir: data_dir.as_ref().map(std::path::PathBuf::from),
        journal_flush: std::time::Duration::from_millis(journal_flush_ms),
        plan: budget
            .map(|b| taf_plan::PlannerConfig::new(b, taf_plan::PlanPolicy::UncertaintyGreedy)),
        ..Default::default()
    };
    let server = match Server::bind(&addr, config) {
        Ok(s) => s,
        Err(e) => fail(&format!("cannot bind {addr}: {e}")),
    };
    // Recovery first: persisted sites come back at their last committed
    // generation. A `--site` for an already-recovered name then fails with
    // "already registered" rather than silently clobbering recovered state.
    match server.recover_sites() {
        Ok((names, skipped)) => {
            for name in &names {
                eprintln!("site {name:?} recovered from {}", data_dir.as_deref().unwrap_or("?"));
            }
            for issue in &skipped {
                eprintln!("warning: skipped snapshot {}: {}", issue.path.display(), issue.reason);
            }
        }
        Err(e) => {
            fail(&format!("cannot recover from {:?}: {e}", data_dir.as_deref().unwrap_or("")))
        }
    }
    for (name, path) in site_names.iter().zip(&system_paths) {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let snapshot = taf_wire::json::parse(&text)
            .and_then(|v| taf_wire::types::json_read_snapshot(&v, "system"))
            .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
        let system = tafloc_core::system::TafLoc::from_snapshot(snapshot)
            .unwrap_or_else(|e| fail(&format!("invalid system in {path}: {e}")));
        server
            .add_site(name, system, 0.0)
            .unwrap_or_else(|e| fail(&format!("cannot add site {name:?}: {e}")));
        eprintln!("site {name:?} loaded from {path}");
    }
    let local = server.local_addr();
    if let Some(path) = &port_file {
        std::fs::write(path, format!("{}\n", local.port()))
            .unwrap_or_else(|e| fail(&format!("cannot write port file {path}: {e}")));
    }
    println!("taflocd listening on {local}");
    if let Err(e) = server.run() {
        fail(&format!("server failed: {e}"));
    }
    eprintln!("taflocd: drained and shut down cleanly");
}
