//! `taflocd` — the standalone daemon binary.
//!
//! ```text
//! taflocd --addr 127.0.0.1:7777 [--workers 4] [--site NAME --system system.json]
//! ```
//!
//! `--site`/`--system` may repeat (pairwise) to pre-load several sites; more
//! can be added at runtime with an `add-site` request. The daemon prints the
//! bound address on startup and serves until a `shutdown` request.

use tafloc_serve::server::{Server, ServerConfig};

const USAGE: &str = "\
taflocd — always-on TafLoc localization daemon (newline-delimited JSON over TCP)

USAGE: taflocd [--addr HOST:PORT] [--workers N] [--site NAME --system PATH]...

  --addr     listen address (default 127.0.0.1:7777; port 0 = ephemeral)
  --workers  worker threads (default 4)
  --site     name for the next --system snapshot (repeatable)
  --system   path to a system.json written by `tafloc calibrate` (repeatable)
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7777".to_string();
    let mut workers = 4usize;
    let mut site_names: Vec<String> = Vec::new();
    let mut system_paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            "--addr" | "--workers" | "--site" | "--system" => {
                let Some(value) = args.get(i + 1) else {
                    fail(&format!("flag {} expects a value", args[i]));
                };
                match args[i].as_str() {
                    "--addr" => addr = value.clone(),
                    "--workers" => {
                        workers = value.parse().unwrap_or_else(|_| {
                            fail(&format!("--workers expects a number, got {value:?}"))
                        });
                    }
                    "--site" => site_names.push(value.clone()),
                    _ => system_paths.push(value.clone()),
                }
                i += 2;
            }
            other => fail(&format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    if site_names.len() != system_paths.len() {
        fail("--site and --system must come in pairs");
    }

    let server = match Server::bind(&addr, ServerConfig { workers, ..Default::default() }) {
        Ok(s) => s,
        Err(e) => fail(&format!("cannot bind {addr}: {e}")),
    };
    for (name, path) in site_names.iter().zip(&system_paths) {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let snapshot = serde_json::from_str(&text)
            .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
        let system = tafloc_core::system::TafLoc::from_snapshot(snapshot)
            .unwrap_or_else(|e| fail(&format!("invalid system in {path}: {e}")));
        server
            .add_site(name, system, 0.0)
            .unwrap_or_else(|e| fail(&format!("cannot add site {name:?}: {e}")));
        eprintln!("site {name:?} loaded from {path}");
    }
    println!("taflocd listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        fail(&format!("server failed: {e}"));
    }
    eprintln!("taflocd: drained and shut down cleanly");
}
