//! Worker shards: consistent-hash site ownership plus credit-based
//! admission control.
//!
//! A single [`crate::registry::Registry`] with one shared maintenance pool
//! serializes background work for every site in the daemon, and the ingest
//! path accepts unbounded concurrent work per site. This module splits the
//! serving plane into N **shards**:
//!
//! * [`ShardRing`] — a seeded jump-consistent-hash ring (Lamping–Veach)
//!   mapping site names to shard indices. Assignment is a pure function of
//!   `(seed, name, shard_count)`, so a restarted daemon re-shards
//!   *identically* by construction — no assignment table is persisted, and
//!   none is needed. Growing the ring from N to N+1 shards moves only ~K/N
//!   of K keys, and every moved key lands on the new shard.
//! * [`ShardSet`] — N shards, each owning its sites' snapshots in a private
//!   [`Registry`] with its own slice of the maintenance pool, plus a
//!   per-shard [`AdmissionGate`].
//! * [`AdmissionGate`] — credit-based backpressure for ingest: admission
//!   reserves sample credits against a per-site quota and a per-shard
//!   budget, *blocking up to a deadline* when credits are short instead of
//!   silently shedding. Past the deadline the offer is **deferred** (client
//!   told to retry) and a batch that can never fit is **rejected** — both
//!   surfaced as explicit overload frames on the wire and conserved in the
//!   counters: `admitted + deferred + rejected == offered`.

use crate::registry::Registry;
use crate::site::Site;
use crate::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default ring seed. Changing the seed re-shuffles site ownership, so a
/// persistent deployment must keep it stable across restarts; the default is
/// compiled in and used everywhere unless a config overrides it.
pub const DEFAULT_SHARD_SEED: u64 = 0x7461_666c_6f63_5f38; // "tafloc_8"

/// Default per-site in-flight ingest quota (samples). Generous: plain
/// unsharded deployments should never notice the gate.
pub const DEFAULT_MAX_INFLIGHT_PER_SITE: usize = 1 << 16;

/// How long an ingest admission blocks waiting for credits before the offer
/// is deferred back to the client.
pub const DEFAULT_ADMIT_DEADLINE: Duration = Duration::from_millis(25);

/// 64-bit FNV-1a over the seed (little-endian) then the key bytes.
fn seeded_fnv1a64(seed: u64, key: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in seed.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    for b in key.as_bytes() {
        h = (h ^ *b as u64).wrapping_mul(PRIME);
    }
    h
}

/// Lamping–Veach jump consistent hash: maps a key hash to one of `buckets`
/// buckets such that growing the bucket count only ever moves keys *onto the
/// new bucket*, never between old ones.
fn jump_hash(mut key: u64, buckets: usize) -> usize {
    debug_assert!(buckets >= 1);
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = (((b + 1) as f64) * ((1i64 << 31) as f64 / (((key >> 33) + 1) as f64))) as i64;
    }
    b as usize
}

/// A deterministic, seeded consistent-hash ring over N shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRing {
    shards: usize,
    seed: u64,
}

impl ShardRing {
    /// A ring over `shards` shards (clamped to at least 1) with the given
    /// seed.
    pub fn new(shards: usize, seed: u64) -> ShardRing {
        ShardRing { shards: shards.max(1), seed }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The ring seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard owning `key`. Pure: same seed + same shard count → same
    /// answer, in this process or the next.
    pub fn shard_of(&self, key: &str) -> usize {
        jump_hash(seeded_fnv1a64(self.seed, key), self.shards)
    }
}

/// Verdict from [`AdmissionGate::admit`] / [`ShardSet::admit`].
#[derive(Debug)]
pub enum Admit<'a> {
    /// Credits reserved; dropping the permit releases them.
    Granted(AdmitPermit<'a>),
    /// Credits were short for the whole deadline; the client should retry
    /// after the hint.
    Deferred {
        /// Shard that deferred the work.
        shard: usize,
        /// Suggested client back-off (ms).
        retry_after_ms: u64,
    },
    /// The batch can never be admitted (exceeds the per-site quota or the
    /// shard budget outright).
    Rejected {
        /// Shard that rejected the work.
        shard: usize,
    },
}

/// RAII credit reservation: holds `samples` credits against one site on one
/// gate until dropped.
#[derive(Debug)]
pub struct AdmitPermit<'a> {
    gate: &'a AdmissionGate,
    site: String,
    samples: usize,
}

impl Drop for AdmitPermit<'_> {
    fn drop(&mut self) {
        self.gate.release(&self.site, self.samples);
    }
}

/// Admission-control limits for one shard's gate.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// In-flight sample quota per site.
    pub max_inflight_per_site: usize,
    /// In-flight sample budget for the whole shard.
    pub max_inflight_per_shard: usize,
    /// How long `admit` blocks for credits before deferring.
    pub admit_deadline: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight_per_site: DEFAULT_MAX_INFLIGHT_PER_SITE,
            max_inflight_per_shard: DEFAULT_MAX_INFLIGHT_PER_SITE * 4,
            admit_deadline: DEFAULT_ADMIT_DEADLINE,
        }
    }
}

#[derive(Debug, Default)]
struct GateState {
    in_flight_total: usize,
    in_flight_by_site: HashMap<String, usize>,
}

#[derive(Debug, Default)]
struct GateCounters {
    offered_batches: AtomicU64,
    offered_samples: AtomicU64,
    admitted_batches: AtomicU64,
    admitted_samples: AtomicU64,
    deferred_batches: AtomicU64,
    deferred_samples: AtomicU64,
    rejected_batches: AtomicU64,
    rejected_samples: AtomicU64,
}

/// Per-shard credit gate: bounds in-flight ingest samples per site and per
/// shard, blocking admissions up to a deadline before deferring.
#[derive(Debug)]
pub struct AdmissionGate {
    shard: usize,
    config: AdmissionConfig,
    state: Mutex<GateState>,
    freed: Condvar,
    counters: GateCounters,
}

impl AdmissionGate {
    /// A gate for shard index `shard` with the given limits (both caps
    /// clamped to at least 1 sample).
    pub fn new(shard: usize, mut config: AdmissionConfig) -> AdmissionGate {
        config.max_inflight_per_site = config.max_inflight_per_site.max(1);
        config.max_inflight_per_shard = config.max_inflight_per_shard.max(1);
        AdmissionGate {
            shard,
            config,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            counters: GateCounters::default(),
        }
    }

    /// Offers `samples` credits' worth of work for `site`, blocking up to the
    /// configured deadline. Every call gets exactly one conserved verdict.
    pub fn admit(&self, site: &str, samples: usize) -> Admit<'_> {
        self.counters.offered_batches.fetch_add(1, Ordering::Relaxed);
        self.counters.offered_samples.fetch_add(samples as u64, Ordering::Relaxed);
        if samples > self.config.max_inflight_per_site
            || samples > self.config.max_inflight_per_shard
        {
            // Larger than a whole quota: waiting can never help.
            self.counters.rejected_batches.fetch_add(1, Ordering::Relaxed);
            self.counters.rejected_samples.fetch_add(samples as u64, Ordering::Relaxed);
            return Admit::Rejected { shard: self.shard };
        }
        let deadline = self.config.admit_deadline;
        let start = Instant::now();
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            let site_load = st.in_flight_by_site.get(site).copied().unwrap_or(0);
            if st.in_flight_total + samples <= self.config.max_inflight_per_shard
                && site_load + samples <= self.config.max_inflight_per_site
            {
                st.in_flight_total += samples;
                *st.in_flight_by_site.entry(site.to_string()).or_insert(0) += samples;
                self.counters.admitted_batches.fetch_add(1, Ordering::Relaxed);
                self.counters.admitted_samples.fetch_add(samples as u64, Ordering::Relaxed);
                return Admit::Granted(AdmitPermit { gate: self, site: site.to_string(), samples });
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                drop(st);
                self.counters.deferred_batches.fetch_add(1, Ordering::Relaxed);
                self.counters.deferred_samples.fetch_add(samples as u64, Ordering::Relaxed);
                return Admit::Deferred {
                    shard: self.shard,
                    retry_after_ms: (deadline.as_millis() as u64).max(1),
                };
            }
            let (guard, _) =
                self.freed.wait_timeout(st, deadline - elapsed).unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    fn release(&self, site: &str, samples: usize) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.in_flight_total = st.in_flight_total.saturating_sub(samples);
        if let Some(load) = st.in_flight_by_site.get_mut(site) {
            *load = load.saturating_sub(samples);
            if *load == 0 {
                st.in_flight_by_site.remove(site);
            }
        }
        drop(st);
        self.freed.notify_all();
    }

    /// Samples currently holding credits on this shard.
    pub fn depth_samples(&self) -> usize {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).in_flight_total
    }

    /// Fills a wire-level stats record for this gate (`sites` is supplied by
    /// the caller, which owns the registry).
    pub fn stats(&self, sites: usize) -> crate::protocol::ShardStats {
        crate::protocol::ShardStats {
            shard: self.shard,
            sites,
            queue_depth_samples: self.depth_samples() as u64,
            offered_batches: self.counters.offered_batches.load(Ordering::Relaxed),
            offered_samples: self.counters.offered_samples.load(Ordering::Relaxed),
            admitted_batches: self.counters.admitted_batches.load(Ordering::Relaxed),
            admitted_samples: self.counters.admitted_samples.load(Ordering::Relaxed),
            deferred_batches: self.counters.deferred_batches.load(Ordering::Relaxed),
            deferred_samples: self.counters.deferred_samples.load(Ordering::Relaxed),
            rejected_batches: self.counters.rejected_batches.load(Ordering::Relaxed),
            rejected_samples: self.counters.rejected_samples.load(Ordering::Relaxed),
        }
    }
}

/// Construction parameters for a [`ShardSet`].
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of worker shards (clamped to at least 1).
    pub shards: usize,
    /// Ring seed; must be stable across restarts of a persistent deployment.
    pub seed: u64,
    /// Total maintenance workers split across shards (0 = one per core *per
    /// shard*, matching the unsharded `0` semantics per registry).
    pub maintenance_threads: usize,
    /// Admission limits applied to every shard's gate.
    pub admission: AdmissionConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            seed: DEFAULT_SHARD_SEED,
            maintenance_threads: crate::registry::DEFAULT_MAINTENANCE_THREADS,
            admission: AdmissionConfig::default(),
        }
    }
}

#[derive(Debug)]
struct WorkerShard {
    registry: Registry,
    gate: AdmissionGate,
}

/// N worker shards behind a consistent-hash ring. Presents the same
/// `add`/`get`/`remove`/`list` surface as a single [`Registry`], so request
/// dispatch is oblivious to the shard count.
#[derive(Debug)]
pub struct ShardSet {
    ring: ShardRing,
    shards: Vec<WorkerShard>,
}

impl ShardSet {
    /// Builds the shard set: each shard gets its own registry (with its
    /// slice of the maintenance pool) and its own admission gate.
    pub fn new(config: ShardConfig) -> ShardSet {
        let n = config.shards.max(1);
        // Split the pool evenly; every shard gets at least one worker so a
        // small pool spread over many shards cannot starve any of them.
        let per_shard = if config.maintenance_threads == 0 {
            0
        } else {
            config.maintenance_threads.div_ceil(n)
        };
        let shards = (0..n)
            .map(|i| WorkerShard {
                registry: Registry::with_maintenance_threads(per_shard),
                gate: AdmissionGate::new(i, config.admission),
            })
            .collect();
        ShardSet { ring: ShardRing::new(n, config.seed), shards }
    }

    /// The ring (for clients that want to predict ownership).
    pub fn ring(&self) -> ShardRing {
        self.ring
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `site`.
    pub fn shard_of(&self, site: &str) -> usize {
        self.ring.shard_of(site)
    }

    /// Registers `site` on its owning shard.
    pub fn add(&self, site: Site) -> Result<std::sync::Arc<Site>> {
        self.shards[self.ring.shard_of(site.name())].registry.add(site)
    }

    /// Looks a site up on its owning shard.
    pub fn get(&self, name: &str) -> Result<std::sync::Arc<Site>> {
        self.shards[self.ring.shard_of(name)].registry.get(name)
    }

    /// Unregisters a site from its owning shard.
    pub fn remove(&self, name: &str) -> Result<std::sync::Arc<Site>> {
        self.shards[self.ring.shard_of(name)].registry.remove(name)
    }

    /// All sites across all shards, name-sorted.
    pub fn list(&self) -> Vec<std::sync::Arc<Site>> {
        let mut sites: Vec<std::sync::Arc<Site>> =
            self.shards.iter().flat_map(|s| s.registry.list()).collect();
        sites.sort_by(|a, b| a.name().cmp(b.name()));
        sites
    }

    /// Offers `samples` ingest credits for `site` on its owning shard.
    pub fn admit(&self, site: &str, samples: usize) -> Admit<'_> {
        self.shards[self.ring.shard_of(site)].gate.admit(site, samples)
    }

    /// Per-shard admission/queue stats, shard-ordered.
    pub fn shard_stats(&self) -> Vec<crate::protocol::ShardStats> {
        self.shards.iter().map(|s| s.gate.stats(s.registry.list().len())).collect()
    }

    /// Per-site stats with each site's owning shard filled in, name-sorted.
    pub fn site_stats(&self) -> Vec<crate::protocol::SiteStats> {
        let mut out: Vec<crate::protocol::SiteStats> = Vec::new();
        for (idx, shard) in self.shards.iter().enumerate() {
            for site in shard.registry.list() {
                let mut st = site.stats();
                st.shard = idx;
                out.push(st);
            }
        }
        out.sort_by(|a, b| a.site.cmp(&b.site));
        out
    }

    /// Stops maintenance on every shard (server shutdown).
    pub fn stop_maintenance(&self) {
        for shard in &self.shards {
            shard.registry.stop_maintenance();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 7, 16] {
            let a = ShardRing::new(shards, DEFAULT_SHARD_SEED);
            let b = ShardRing::new(shards, DEFAULT_SHARD_SEED);
            for i in 0..500 {
                let key = format!("site-{i}");
                let s = a.shard_of(&key);
                assert!(s < shards);
                assert_eq!(s, b.shard_of(&key), "same seed, same count, same answer");
            }
        }
    }

    #[test]
    fn ring_resize_only_moves_keys_onto_the_new_shard() {
        let keys: Vec<String> = (0..2000).map(|i| format!("site-{i}")).collect();
        for n in 1usize..12 {
            let old = ShardRing::new(n, DEFAULT_SHARD_SEED);
            let new = ShardRing::new(n + 1, DEFAULT_SHARD_SEED);
            let mut moved = 0usize;
            for k in &keys {
                let (a, b) = (old.shard_of(k), new.shard_of(k));
                if a != b {
                    assert_eq!(b, n, "a moved key must land on the new shard");
                    moved += 1;
                }
            }
            // Expectation is K/(N+1); allow 2x plus slack against hash noise.
            let bound = 2 * keys.len() / (n + 1) + 16;
            assert!(moved <= bound, "moved {moved} of {} keys at N={n}, bound {bound}", keys.len());
            assert!(moved > 0, "growing the ring must hand the new shard some keys");
        }
    }

    #[test]
    fn ring_spreads_keys_reasonably() {
        let ring = ShardRing::new(4, DEFAULT_SHARD_SEED);
        let mut per = [0usize; 4];
        for i in 0..4000 {
            per[ring.shard_of(&format!("site-{i}"))] += 1;
        }
        for (i, &count) in per.iter().enumerate() {
            assert!(
                (500..=1500).contains(&count),
                "shard {i} owns {count} of 4000 keys — ring badly unbalanced"
            );
        }
    }

    #[test]
    fn different_seeds_shuffle_ownership() {
        let a = ShardRing::new(8, 1);
        let b = ShardRing::new(8, 2);
        let diffs = (0..500)
            .filter(|i| {
                let k = format!("site-{i}");
                a.shard_of(&k) != b.shard_of(&k)
            })
            .count();
        assert!(diffs > 100, "seeds barely change the mapping ({diffs}/500 keys moved)");
    }

    #[test]
    fn gate_conserves_verdicts_and_releases_credits() {
        let gate = AdmissionGate::new(
            0,
            AdmissionConfig {
                max_inflight_per_site: 10,
                max_inflight_per_shard: 10,
                admit_deadline: Duration::ZERO,
            },
        );
        // Fits: granted, and the permit holds the credits...
        let p1 = match gate.admit("a", 8) {
            Admit::Granted(p) => p,
            other => panic!("expected grant, got {other:?}"),
        };
        assert_eq!(gate.depth_samples(), 8);
        // ...so a second offer past the budget defers (deadline zero)...
        assert!(matches!(gate.admit("a", 8), Admit::Deferred { .. }));
        // ...and an offer that could never fit rejects immediately.
        assert!(matches!(gate.admit("a", 11), Admit::Rejected { .. }));
        drop(p1);
        assert_eq!(gate.depth_samples(), 0);
        assert!(matches!(gate.admit("a", 8), Admit::Granted(_)));
        let st = gate.stats(1);
        assert_eq!(st.offered_batches, 4);
        assert_eq!(st.admitted_batches + st.deferred_batches + st.rejected_batches, 4);
        assert_eq!(
            st.admitted_samples + st.deferred_samples + st.rejected_samples,
            st.offered_samples
        );
    }

    #[test]
    fn gate_enforces_per_site_quota_within_a_roomy_shard() {
        let gate = AdmissionGate::new(
            0,
            AdmissionConfig {
                max_inflight_per_site: 4,
                max_inflight_per_shard: 100,
                admit_deadline: Duration::ZERO,
            },
        );
        let _pa = match gate.admit("a", 4) {
            Admit::Granted(p) => p,
            other => panic!("expected grant, got {other:?}"),
        };
        // Site `a` is at quota; site `b` on the same shard still has room.
        assert!(matches!(gate.admit("a", 1), Admit::Deferred { .. }));
        assert!(matches!(gate.admit("b", 4), Admit::Granted(_)));
    }
}
