//! Error type for the serving layer.

use std::fmt;

/// Anything that can go wrong while serving: transport failures, malformed
/// wire messages, unknown sites, or errors bubbling up from the core library.
#[derive(Debug)]
pub enum ServeError {
    /// Socket / filesystem trouble.
    Io(std::io::Error),
    /// A malformed, corrupt, or mis-framed wire message (either protocol
    /// version). [`taf_wire::WireError::is_recoverable`] tells the server
    /// whether the connection can survive it.
    Wire(taf_wire::WireError),
    /// An error from the localization core (bad shapes, solver failure, ...).
    Core(tafloc_core::TaflocError),
    /// A numerical-substrate error.
    Linalg(taf_linalg::LinalgError),
    /// An error from the streaming ingestion pipeline.
    Ingest(tafloc_ingest::IngestError),
    /// Request named a site the registry does not hold.
    UnknownSite(String),
    /// `add-site` for a name that is already registered.
    SiteExists(String),
    /// Wire-protocol violation (unexpected EOF, invalid UTF-8, ...).
    Protocol(String),
    /// A request line exceeded the per-line byte cap. Recoverable: the
    /// reader drained through the terminating newline, so the connection
    /// stays framed and the server answers with an error frame.
    OversizedLine {
        /// Bytes the offending line occupied on the wire.
        got: usize,
        /// The configured cap it exceeded.
        limit: usize,
    },
    /// A reconstructed database failed the sanity gates and was rolled
    /// back; the previous snapshot is still being served.
    RefreshRejected {
        /// Human-readable gate failure.
        reason: String,
        /// Whether the rejection pushed the site into quarantine.
        quarantined: bool,
    },
    /// A snapshot-store failure (unreadable directory, corrupt file, bad
    /// checksum, torn write).
    Store(String),
    /// The server answered a client call with an error response.
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Wire(e) => write!(f, "{e}"),
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::Linalg(e) => write!(f, "{e}"),
            ServeError::Ingest(e) => write!(f, "{e}"),
            ServeError::UnknownSite(s) => write!(f, "unknown site {s:?}"),
            ServeError::SiteExists(s) => write!(f, "site {s:?} already registered"),
            ServeError::Protocol(s) => write!(f, "protocol error: {s}"),
            ServeError::OversizedLine { got, limit } => {
                write!(f, "request line of {got} bytes exceeds the {limit}-byte cap")
            }
            ServeError::RefreshRejected { reason, quarantined } => {
                write!(f, "refresh rejected ({reason}); previous snapshot stays live")?;
                if *quarantined {
                    write!(f, "; site quarantined")?;
                }
                Ok(())
            }
            ServeError::Store(s) => write!(f, "snapshot store: {s}"),
            ServeError::Remote(s) => write!(f, "server error: {s}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<taf_wire::WireError> for ServeError {
    fn from(e: taf_wire::WireError) -> Self {
        // I/O failures inside the wire layer are transport failures, not
        // codec failures; keep them in `Io` so timeout/reset accounting and
        // the client's retry classifier keep seeing them.
        match e {
            taf_wire::WireError::Io(io) => ServeError::Io(io),
            other => ServeError::Wire(other),
        }
    }
}

impl From<tafloc_core::TaflocError> for ServeError {
    fn from(e: tafloc_core::TaflocError) -> Self {
        ServeError::Core(e)
    }
}

impl From<taf_linalg::LinalgError> for ServeError {
    fn from(e: taf_linalg::LinalgError) -> Self {
        ServeError::Linalg(e)
    }
}

impl From<tafloc_ingest::IngestError> for ServeError {
    fn from(e: tafloc_ingest::IngestError) -> Self {
        ServeError::Ingest(e)
    }
}

/// Result alias for the serving layer.
pub type Result<T> = std::result::Result<T, ServeError>;
