//! Error type for the serving layer.

use std::fmt;

/// Anything that can go wrong while serving: transport failures, malformed
/// wire messages, unknown sites, or errors bubbling up from the core library.
#[derive(Debug)]
pub enum ServeError {
    /// Socket / filesystem trouble.
    Io(std::io::Error),
    /// A line that is not valid JSON for the expected message type.
    Json(serde_json::Error),
    /// An error from the localization core (bad shapes, solver failure, ...).
    Core(tafloc_core::TaflocError),
    /// A numerical-substrate error.
    Linalg(taf_linalg::LinalgError),
    /// An error from the streaming ingestion pipeline.
    Ingest(tafloc_ingest::IngestError),
    /// Request named a site the registry does not hold.
    UnknownSite(String),
    /// `add-site` for a name that is already registered.
    SiteExists(String),
    /// Wire-protocol violation (unexpected EOF, oversized line, ...).
    Protocol(String),
    /// The server answered a client call with an error response.
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Json(e) => write!(f, "malformed message: {e}"),
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::Linalg(e) => write!(f, "{e}"),
            ServeError::Ingest(e) => write!(f, "{e}"),
            ServeError::UnknownSite(s) => write!(f, "unknown site {s:?}"),
            ServeError::SiteExists(s) => write!(f, "site {s:?} already registered"),
            ServeError::Protocol(s) => write!(f, "protocol error: {s}"),
            ServeError::Remote(s) => write!(f, "server error: {s}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        ServeError::Json(e)
    }
}

impl From<tafloc_core::TaflocError> for ServeError {
    fn from(e: tafloc_core::TaflocError) -> Self {
        ServeError::Core(e)
    }
}

impl From<taf_linalg::LinalgError> for ServeError {
    fn from(e: taf_linalg::LinalgError) -> Self {
        ServeError::Linalg(e)
    }
}

impl From<tafloc_ingest::IngestError> for ServeError {
    fn from(e: tafloc_ingest::IngestError) -> Self {
        ServeError::Ingest(e)
    }
}

/// Result alias for the serving layer.
pub type Result<T> = std::result::Result<T, ServeError>;
