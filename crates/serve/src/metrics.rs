//! Observability: per-endpoint atomic counters and latency histograms.
//!
//! Everything here is wait-free on the hot path: recording a request is a
//! handful of relaxed atomic adds (count, error flag, histogram bucket,
//! running sum, `fetch_max`). Reading statistics takes a consistent-enough
//! snapshot by loading each atomic once — the small skew between counters
//! under concurrent traffic does not matter for monitoring.

use crate::protocol::EndpointStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Power-of-two latency buckets: bucket `i` covers `[2^i, 2^{i+1})` µs.
/// 40 buckets reach ~2^40 µs ≈ 12.7 days, far beyond any request.
const BUCKETS: usize = 40;

/// The daemon's request endpoints (metrics keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Endpoint {
    AddSite,
    RemoveSite,
    ListSites,
    Locate,
    LocateStream,
    LocateBatch,
    Ingest,
    Track,
    Detect,
    MeasureRefs,
    Refresh,
    Stats,
    Ping,
    Shutdown,
}

/// All endpoints, in display order.
pub const ALL_ENDPOINTS: [Endpoint; 14] = [
    Endpoint::AddSite,
    Endpoint::RemoveSite,
    Endpoint::ListSites,
    Endpoint::Locate,
    Endpoint::LocateStream,
    Endpoint::LocateBatch,
    Endpoint::Ingest,
    Endpoint::Track,
    Endpoint::Detect,
    Endpoint::MeasureRefs,
    Endpoint::Refresh,
    Endpoint::Stats,
    Endpoint::Ping,
    Endpoint::Shutdown,
];

impl Endpoint {
    /// Wire name of the endpoint.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::AddSite => "add-site",
            Endpoint::RemoveSite => "remove-site",
            Endpoint::ListSites => "list-sites",
            Endpoint::Locate => "locate",
            Endpoint::LocateStream => "locate-stream",
            Endpoint::LocateBatch => "locate-batch",
            Endpoint::Ingest => "ingest",
            Endpoint::Track => "track",
            Endpoint::Detect => "detect",
            Endpoint::MeasureRefs => "measure-refs",
            Endpoint::Refresh => "refresh",
            Endpoint::Stats => "stats",
            Endpoint::Ping => "ping",
            Endpoint::Shutdown => "shutdown",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// A lock-free log₂ latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = (latency.as_micros() as u64).max(1);
        let idx = (us.ilog2() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest observation in µs.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Upper bound (µs) of the bucket holding quantile `q` (0 when empty).
    /// Log-bucketed, so the answer is within 2x of the true quantile — plenty
    /// for a `stats` endpoint. The bucket upper bound is clamped to the
    /// largest observation, so `quantile_us(1.0)` equals [`Self::max_us`]
    /// instead of overshooting to the end of the top occupied bucket.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return ((1u64 << (i + 1)) - 1).min(self.max_us());
            }
        }
        self.max_us()
    }
}

/// Counters + histogram for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: LatencyHistogram,
}

/// The server-wide metrics table, indexed by [`Endpoint`], plus
/// connection-lifecycle counters that have no endpoint to charge.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: [EndpointMetrics; ALL_ENDPOINTS.len()],
    /// Connections closed because the read timeout elapsed (idle peer).
    conn_timeouts: AtomicU64,
    /// Connections closed by a transport error (reset, broken pipe, ...).
    conn_resets: AtomicU64,
    /// Connection handlers that panicked (isolated; the worker survived).
    conn_panics: AtomicU64,
    /// Frames (or v1 lines) rejected for exceeding the size cap.
    wire_frame_too_large: AtomicU64,
    /// v2 frames with an unknown version byte (connection closed).
    wire_bad_magic: AtomicU64,
    /// v2 frames whose payload failed its CRC32 check.
    wire_checksum_mismatch: AtomicU64,
    /// Messages rejected for invalid UTF-8 (connection closed).
    wire_bad_utf8: AtomicU64,
    /// Messages that framed correctly but failed to decode.
    wire_malformed: AtomicU64,
}

impl Metrics {
    /// Creates an empty table.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one served request.
    pub fn record(&self, endpoint: Endpoint, latency: Duration, ok: bool) {
        let m = &self.endpoints[endpoint.index()];
        m.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            m.errors.fetch_add(1, Ordering::Relaxed);
        }
        m.latency.record(latency);
    }

    /// Requests served on one endpoint so far.
    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        self.endpoints[endpoint.index()].requests.load(Ordering::Relaxed)
    }

    /// Error responses on one endpoint so far.
    pub fn errors(&self, endpoint: Endpoint) -> u64 {
        self.endpoints[endpoint.index()].errors.load(Ordering::Relaxed)
    }

    /// Records a connection closed by a read timeout.
    pub fn record_conn_timeout(&self) {
        self.conn_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection closed by a transport error.
    pub fn record_conn_reset(&self) {
        self.conn_resets.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection handler that panicked.
    pub fn record_conn_panic(&self) {
        self.conn_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections closed by a read timeout so far.
    pub fn conn_timeouts(&self) -> u64 {
        self.conn_timeouts.load(Ordering::Relaxed)
    }

    /// Connections closed by a transport error so far.
    pub fn conn_resets(&self) -> u64 {
        self.conn_resets.load(Ordering::Relaxed)
    }

    /// Connection handlers that panicked so far.
    pub fn conn_panics(&self) -> u64 {
        self.conn_panics.load(Ordering::Relaxed)
    }

    /// Records one wire-level decode/framing failure by kind. Truncation and
    /// transport I/O are connection-lifecycle events, not codec failures;
    /// they are charged to the reset/timeout counters by the caller instead.
    pub fn record_wire_error(&self, err: &taf_wire::WireError) {
        use taf_wire::WireError as E;
        match err {
            E::FrameTooLarge { .. } => &self.wire_frame_too_large,
            E::BadMagic { .. } => &self.wire_bad_magic,
            E::ChecksumMismatch { .. } => &self.wire_checksum_mismatch,
            E::BadUtf8 => &self.wire_bad_utf8,
            E::Malformed(_) => &self.wire_malformed,
            E::Truncated | E::Io(_) => return,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Oversized-frame rejections so far (both protocol versions).
    pub fn wire_frame_too_large(&self) -> u64 {
        self.wire_frame_too_large.load(Ordering::Relaxed)
    }

    /// Unknown-version-byte rejections so far.
    pub fn wire_bad_magic(&self) -> u64 {
        self.wire_bad_magic.load(Ordering::Relaxed)
    }

    /// Checksum-mismatch rejections so far.
    pub fn wire_checksum_mismatch(&self) -> u64 {
        self.wire_checksum_mismatch.load(Ordering::Relaxed)
    }

    /// Invalid-UTF-8 rejections so far.
    pub fn wire_bad_utf8(&self) -> u64 {
        self.wire_bad_utf8.load(Ordering::Relaxed)
    }

    /// Well-framed but undecodable messages so far.
    pub fn wire_malformed(&self) -> u64 {
        self.wire_malformed.load(Ordering::Relaxed)
    }

    /// Snapshot of every endpoint that has seen traffic.
    pub fn report(&self) -> Vec<EndpointStats> {
        ALL_ENDPOINTS
            .iter()
            .filter_map(|&e| {
                let m = &self.endpoints[e.index()];
                let requests = m.requests.load(Ordering::Relaxed);
                if requests == 0 {
                    return None;
                }
                Some(EndpointStats {
                    endpoint: e.name().to_string(),
                    requests,
                    errors: m.errors.load(Ordering::Relaxed),
                    p50_us: m.latency.quantile_us(0.50),
                    p95_us: m.latency.quantile_us(0.95),
                    p99_us: m.latency.quantile_us(0.99),
                    max_us: m.latency.max_us(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let h = LatencyHistogram::default();
        for us in [3u64, 10, 10, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max_us(), 10_000);
        let p50 = h.quantile_us(0.5);
        let p95 = h.quantile_us(0.95);
        let p99 = h.quantile_us(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        // p50 lands in the bucket containing 10 µs: [8, 16).
        assert_eq!(p50, 15);
        // The top bucket's upper bound (16_383) is clamped to the max.
        assert_eq!(h.quantile_us(1.0), 10_000);
    }

    #[test]
    fn quantile_extremes_hit_first_and_last_observation_buckets() {
        let h = LatencyHistogram::default();
        for us in [3u64, 100, 9_000] {
            h.record(Duration::from_micros(us));
        }
        // q = 0.0 resolves to the first occupied bucket: 3 µs lies in [2, 4).
        assert_eq!(h.quantile_us(0.0), 3);
        // q = 1.0 is exactly the largest observation, not its bucket bound.
        assert_eq!(h.quantile_us(1.0), h.max_us());
        assert_eq!(h.quantile_us(1.0), 9_000);
    }

    #[test]
    fn single_observation_is_its_own_quantile() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(700));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 700, "q = {q}");
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.0), 0);
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.quantile_us(1.0), 0);
        assert_eq!(h.max_us(), 0);
    }

    #[test]
    fn connection_counters_are_independent() {
        let m = Metrics::new();
        m.record_conn_timeout();
        m.record_conn_timeout();
        m.record_conn_reset();
        m.record_conn_panic();
        assert_eq!(m.conn_timeouts(), 2);
        assert_eq!(m.conn_resets(), 1);
        assert_eq!(m.conn_panics(), 1);
        assert_eq!(m.requests(Endpoint::Ping), 0, "no endpoint is charged");
    }

    #[test]
    fn wire_errors_are_counted_by_kind() {
        use taf_wire::WireError as E;
        let m = Metrics::new();
        m.record_wire_error(&E::FrameTooLarge { got: 99, limit: 16 });
        m.record_wire_error(&E::BadMagic { got: 0x7F });
        m.record_wire_error(&E::ChecksumMismatch { stored: 1, computed: 2 });
        m.record_wire_error(&E::BadUtf8);
        m.record_wire_error(&E::malformed("nope"));
        m.record_wire_error(&E::malformed("still nope"));
        // Truncation is a connection-lifecycle event, not a codec counter.
        m.record_wire_error(&E::Truncated);
        assert_eq!(m.wire_frame_too_large(), 1);
        assert_eq!(m.wire_bad_magic(), 1);
        assert_eq!(m.wire_checksum_mismatch(), 1);
        assert_eq!(m.wire_bad_utf8(), 1);
        assert_eq!(m.wire_malformed(), 2);
    }

    #[test]
    fn metrics_count_requests_and_errors() {
        let m = Metrics::new();
        m.record(Endpoint::Locate, Duration::from_micros(50), true);
        m.record(Endpoint::Locate, Duration::from_micros(70), false);
        m.record(Endpoint::Ping, Duration::from_micros(1), true);
        assert_eq!(m.requests(Endpoint::Locate), 2);
        assert_eq!(m.errors(Endpoint::Locate), 1);
        assert_eq!(m.requests(Endpoint::Refresh), 0);
        let report = m.report();
        assert_eq!(report.len(), 2); // silent endpoints are omitted
        assert!(report.iter().any(|r| r.endpoint == "locate" && r.requests == 2));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = std::sync::Arc::new(Metrics::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record(Endpoint::Locate, Duration::from_micros(12), true);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.requests(Endpoint::Locate), 8000);
    }
}
