//! The TCP server: accept loop, worker-thread pool, request dispatch, and
//! graceful shutdown.
//!
//! Std-only by design (the repo carries no async runtime): a blocking
//! `TcpListener` accept loop hands connections to a fixed pool of worker
//! threads over an `mpsc` channel. Each connection speaks either wire
//! protocol of [`crate::wire`] — newline-delimited JSON (v1) or checksummed
//! binary frames (v2), sniffed per message — and may pipeline any number of
//! requests.
//!
//! Shutdown is graceful: a `shutdown` request (or
//! [`ServerHandle::shutdown`]) raises the flag and nudges the accept loop
//! with a loopback connection; the accept thread stops handing out new
//! connections and drops the channel sender; workers finish the connections
//! they hold (and any still queued) and exit; the maintenance scheduler is
//! stopped and joined last.

use crate::journal::{Journal, JournalConfig};
use crate::maintenance::MaintenancePolicy;
use crate::metrics::Metrics;
use crate::protocol::{Request, Response, StatsReport};
use crate::shard::{AdmissionConfig, Admit, ShardConfig, ShardSet};
use crate::site::{detection_detail, recommendation_name, Site};
use crate::store::SiteStore;
use crate::wire::{self, WireVersion};
use crate::{Result, ServeError};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tafloc_core::system::TafLoc;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Per-connection read timeout; an idle connection past it is closed
    /// (`None` = wait forever — then idle keep-alive clients pin workers).
    pub read_timeout: Option<Duration>,
    /// Maintenance policy applied to sites added without an explicit one.
    pub default_policy: MaintenancePolicy,
    /// Workers in the shared maintenance pool that runs per-site refresh work
    /// off the request path (0 = one per core). Shared by all sites, so
    /// background CPU stays bounded regardless of site count.
    pub maintenance_threads: usize,
    /// Snapshot directory (`--data-dir`). When set, every committed site
    /// generation is persisted there and [`Server::bind`] recovers the
    /// newest valid generation of each site on startup. `None` keeps the
    /// daemon fully in-memory.
    pub data_dir: Option<std::path::PathBuf>,
    /// Adaptive-sensing planner attached to every site the server registers
    /// or recovers (`None` = classic full-survey refreshes). Plan state
    /// (schedule, history window, cumulative costs) is persisted with every
    /// committed snapshot, so a recovered site resumes its schedule
    /// mid-plan; recovery re-attaches the planner here and only falls back
    /// to a full first survey when no plan was persisted or its shape no
    /// longer matches the system.
    pub plan: Option<taf_plan::PlannerConfig>,
    /// Group-commit window for the per-site write-ahead ingest journal
    /// (`--journal-flush-ms`). `Duration::ZERO` fsyncs every admitted
    /// survey-path record individually. Only meaningful with `data_dir`
    /// set — the journal lives next to the snapshot files.
    pub journal_flush: Duration,
    /// Worker shards (`--shards`, clamped to at least 1). Site ownership is
    /// a pure function of `(shard_seed, site name, shards)`, so the same
    /// flags re-shard identically across restarts.
    pub shards: usize,
    /// Consistent-hash ring seed. Must stay stable across restarts of a
    /// persistent deployment; there is no flag for it on purpose.
    pub shard_seed: u64,
    /// Per-site in-flight ingest sample quota (`--max-inflight-per-site`).
    pub max_inflight_per_site: usize,
    /// Per-shard in-flight ingest sample budget (defaults to 4x the per-site
    /// quota).
    pub max_inflight_per_shard: usize,
    /// How long an ingest admission blocks for credits before the server
    /// answers with a `deferred` overload frame.
    pub admit_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            read_timeout: Some(Duration::from_secs(60)),
            default_policy: MaintenancePolicy::default(),
            maintenance_threads: crate::registry::DEFAULT_MAINTENANCE_THREADS,
            data_dir: None,
            plan: None,
            shards: 1,
            shard_seed: crate::shard::DEFAULT_SHARD_SEED,
            max_inflight_per_site: crate::shard::DEFAULT_MAX_INFLIGHT_PER_SITE,
            max_inflight_per_shard: crate::shard::DEFAULT_MAX_INFLIGHT_PER_SITE * 4,
            admit_deadline: crate::shard::DEFAULT_ADMIT_DEADLINE,
            journal_flush: JournalConfig::default().flush_interval,
        }
    }
}

/// Shared server state, visible to every worker.
#[derive(Debug)]
pub struct ServerCtx {
    /// The sharded site registry: N worker shards behind a consistent-hash
    /// ring, each with its own maintenance pool and admission gate.
    pub registry: ShardSet,
    /// Per-endpoint counters and latency histograms.
    pub metrics: Metrics,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    read_timeout: Option<Duration>,
    default_policy: MaintenancePolicy,
    plan: Option<taf_plan::PlannerConfig>,
    workers: usize,
    started: Instant,
    /// The attached snapshot store (`--data-dir`), if persistence is on.
    store: Option<Arc<SiteStore>>,
    /// Journal knobs applied to every site when persistence is on.
    journal: JournalConfig,
}

impl ServerCtx {
    /// Whether shutdown has been initiated.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Initiates shutdown: raises the flag and wakes the accept loop.
    pub fn initiate_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Nudge the (blocking) accept call so it observes the flag.
            let _ = TcpStream::connect(self.local_addr);
        }
    }

    /// Builds the `stats` report.
    pub fn stats_report(&self) -> StatsReport {
        StatsReport {
            uptime_s: self.started.elapsed().as_secs_f64(),
            conn_timeouts: self.metrics.conn_timeouts(),
            conn_resets: self.metrics.conn_resets(),
            conn_panics: self.metrics.conn_panics(),
            wire_frame_too_large: self.metrics.wire_frame_too_large(),
            wire_bad_magic: self.metrics.wire_bad_magic(),
            wire_checksum_mismatch: self.metrics.wire_checksum_mismatch(),
            wire_bad_utf8: self.metrics.wire_bad_utf8(),
            wire_malformed: self.metrics.wire_malformed(),
            endpoints: self.metrics.report(),
            sites: self.registry.site_stats(),
            shards: self.registry.shard_stats(),
        }
    }

    /// The snapshot store backing `--data-dir`, if persistence is on.
    pub fn store(&self) -> Option<&Arc<SiteStore>> {
        self.store.as_ref()
    }

    /// Attaches durability to a freshly registered site: a clean write-ahead
    /// journal (leftover segments from a previous site of the same name are
    /// discarded — their records describe a system that no longer exists)
    /// and the snapshot store, which persists generation 0 immediately.
    fn attach_durability(&self, site: Site) -> Result<Site> {
        let Some(store) = &self.store else {
            return Ok(site);
        };
        let stem = SiteStore::stem(site.name());
        let (journal, recovery) = Journal::open(store.dir(), &stem, self.journal, 0)?;
        if !recovery.records.is_empty() {
            journal.prune(journal.last_seq())?;
        }
        site.with_journal(Arc::new(journal)).with_persistence(Arc::clone(store))
    }
}

/// A bound-but-not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
}

/// Handle to a running server: its address, context, and thread joins.
#[derive(Debug)]
pub struct ServerHandle {
    ctx: Arc<ServerCtx>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let store = match &config.data_dir {
            Some(dir) => Some(Arc::new(SiteStore::open(dir)?)),
            None => None,
        };
        let ctx = Arc::new(ServerCtx {
            registry: ShardSet::new(ShardConfig {
                shards: config.shards,
                seed: config.shard_seed,
                maintenance_threads: config.maintenance_threads,
                admission: AdmissionConfig {
                    max_inflight_per_site: config.max_inflight_per_site,
                    max_inflight_per_shard: config.max_inflight_per_shard,
                    admit_deadline: config.admit_deadline,
                },
            }),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            local_addr,
            read_timeout: config.read_timeout,
            default_policy: config.default_policy,
            plan: config.plan,
            workers: config.workers.max(1),
            started: Instant::now(),
            store,
            journal: JournalConfig {
                flush_interval: config.journal_flush,
                ..JournalConfig::default()
            },
        });
        Ok(Server { listener, ctx })
    }

    /// Recovers every persisted site from the configured `data_dir` into the
    /// registry (no-op without one). Each site comes back at its last
    /// committed generation with its plan schedule, survey history, and
    /// solver warm state; the write-ahead journal is then replayed through
    /// the normal ingest pipeline, so survey-path records admitted after the
    /// last commit (and their not-yet-refreshed pending columns) survive a
    /// crash too. Corrupt or truncated snapshot files are skipped and
    /// reported, never fatal. Returns the recovered site names and the
    /// files that had to be skipped.
    pub fn recover_sites(&self) -> Result<(Vec<String>, Vec<crate::store::RecoveryIssue>)> {
        let Some(store) = &self.ctx.store else {
            return Ok((Vec::new(), Vec::new()));
        };
        let recovery = store.recover_all()?;
        let mut names = Vec::with_capacity(recovery.sites.len());
        for persisted in recovery.sites {
            let name = persisted.name.clone();
            let watermark = persisted.journal_watermark;
            let mut site = Site::from_persisted(persisted, tafloc_ingest::ClockMode::default())?;
            if let Some(plan) = self.ctx.plan {
                site = site.with_planning(plan)?;
            }
            let (journal, jrec) =
                Journal::open(store.dir(), &SiteStore::stem(&name), self.ctx.journal, watermark)?;
            let site = site.with_journal(Arc::new(journal));
            site.replay_journal(&jrec.records);
            let site = site.with_persistence(Arc::clone(store))?;
            self.ctx.registry.add(site)?;
            names.push(name);
        }
        Ok((names, recovery.skipped))
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.local_addr
    }

    /// Shared context (register sites before starting, inspect metrics...).
    pub fn ctx(&self) -> &Arc<ServerCtx> {
        &self.ctx
    }

    /// Registers a site before (or while) serving. With persistence on, the
    /// site's generation 0 is written immediately (so even a crash before
    /// the first refresh recovers it) and a fresh write-ahead journal is
    /// attached for everything admitted between commits.
    pub fn add_site(&self, name: &str, system: TafLoc, day: f64) -> Result<()> {
        let policy = self.ctx.default_policy;
        let mut site = self.ctx.attach_durability(Site::new(name, system, day, policy)?)?;
        if let Some(plan) = self.ctx.plan {
            site = site.with_planning(plan)?;
        }
        self.ctx.registry.add(site)?;
        Ok(())
    }

    /// Starts the accept loop and worker pool; returns immediately.
    pub fn spawn(self) -> ServerHandle {
        let workers = self.ctx.workers;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let ctx = Arc::clone(&self.ctx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("taflocd-worker-{i}"))
                    .spawn(move || worker_loop(rx, ctx))
                    .expect("spawning a worker thread cannot fail"),
            );
        }
        let ctx = Arc::clone(&self.ctx);
        let listener = self.listener;
        threads.push(
            std::thread::Builder::new()
                .name("taflocd-accept".to_string())
                .spawn(move || accept_loop(listener, tx, ctx))
                .expect("spawning the accept thread cannot fail"),
        );
        ServerHandle { ctx: self.ctx, threads }
    }

    /// Runs to completion: serves until a `shutdown` request arrives, then
    /// drains and returns. This is what `taflocd` calls.
    pub fn run(self) -> Result<()> {
        self.spawn().join();
        Ok(())
    }
}

impl ServerHandle {
    /// Shared context.
    pub fn ctx(&self) -> &Arc<ServerCtx> {
        &self.ctx
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.local_addr
    }

    /// Initiates graceful shutdown without waiting.
    pub fn shutdown(&self) {
        self.ctx.initiate_shutdown();
    }

    /// Waits for the accept loop and workers to drain, then stops
    /// maintenance threads. Call after `shutdown`, or rely on a client's
    /// `shutdown` request to initiate it.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
        self.ctx.registry.stop_maintenance();
        // Graceful shutdown persists every site's final state (no-op for
        // sites without an attached store). After maintenance has stopped,
        // so nothing can move the generation mid-save.
        for site in self.ctx.registry.list() {
            let _ = site.persist_now();
        }
    }
}

fn accept_loop(listener: TcpListener, tx: mpsc::Sender<TcpStream>, ctx: Arc<ServerCtx>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if ctx.is_shutdown() {
                    break; // the wake-up connection (or a late client) — drop it
                }
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => {
                if ctx.is_shutdown() {
                    break;
                }
                // Transient accept errors (EMFILE, aborted handshake): keep serving.
            }
        }
    }
    // Dropping `tx` here lets workers drain queued connections and exit.
}

fn worker_loop(rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>, ctx: Arc<ServerCtx>) {
    loop {
        // Hold the receiver lock only while dequeuing, never while serving.
        let stream = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        match stream {
            Ok(s) => {
                // Panic boundary: a handler bug (or a panic escaping the core
                // on pathological input) kills this connection, not the
                // worker — the daemon keeps serving every other client.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = handle_connection(s, &ctx);
                }));
                if outcome.is_err() {
                    ctx.metrics.record_conn_panic();
                }
            }
            Err(_) => break, // channel closed: shutdown drain complete
        }
    }
}

fn handle_connection(stream: TcpStream, ctx: &ServerCtx) -> Result<()> {
    stream.set_read_timeout(ctx.read_timeout)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    // The protocol version is sniffed per message and updated before any
    // decoding, so an error reply always goes out in the framing the peer
    // last spoke — a v2 client never has to parse a JSON error line.
    let mut version = WireVersion::V1Json;
    loop {
        let request: Request = match wire::read_request(&mut reader, &mut version) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()), // clean EOF
            Err(e @ ServeError::OversizedLine { got, limit }) => {
                // The reader drained through the newline without buffering
                // the line, so the connection is still framed: answer with
                // an error frame and keep serving it.
                ctx.metrics.record_wire_error(&taf_wire::WireError::FrameTooLarge { got, limit });
                wire::write_response(
                    &mut writer,
                    &Response::Error { message: e.to_string() },
                    version,
                )?;
                continue;
            }
            Err(ServeError::Wire(e)) => {
                ctx.metrics.record_wire_error(&e);
                if !e.is_recoverable() {
                    // Bad magic, invalid UTF-8, mid-frame truncation: the
                    // stream cannot be re-framed. Close quietly.
                    return Ok(());
                }
                // Malformed payload, checksum mismatch, oversized frame —
                // the framing layer already drained the bad message, so the
                // connection survives: report and keep serving.
                let message = match &e {
                    taf_wire::WireError::Malformed(m) => format!("malformed request: {m}"),
                    other => other.to_string(),
                };
                wire::write_response(&mut writer, &Response::Error { message }, version)?;
                continue;
            }
            Err(ServeError::Io(e)) => {
                // An idle peer hitting the read timeout and a torn transport
                // are different operational signals; count them apart.
                match e.kind() {
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                        ctx.metrics.record_conn_timeout()
                    }
                    _ => ctx.metrics.record_conn_reset(),
                }
                return Ok(());
            }
            Err(_) => return Ok(()), // protocol violation: close quietly
        };
        let endpoint = request.endpoint();
        let shutdown_requested = matches!(request, Request::Shutdown);
        let start = Instant::now();
        let response = dispatch(request, ctx);
        let ok = !matches!(response, Response::Error { .. });
        ctx.metrics.record(endpoint, start.elapsed(), ok);
        wire::write_response(&mut writer, &response, version)?;
        if shutdown_requested {
            ctx.initiate_shutdown();
            return Ok(());
        }
        // Finish the in-flight request, then drain: no new work on this
        // connection once shutdown has started.
        if ctx.is_shutdown() {
            return Ok(());
        }
    }
}

fn err_response(e: ServeError) -> Response {
    Response::Error { message: e.to_string() }
}

/// Serves one request against the shared state. Pure request → response; all
/// transport concerns live in [`handle_connection`].
pub fn dispatch(request: Request, ctx: &ServerCtx) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::ShuttingDown,
        Request::Stats => Response::Stats { report: ctx.stats_report() },
        Request::ListSites => {
            Response::Sites { sites: ctx.registry.list().iter().map(|s| s.info()).collect() }
        }
        Request::AddSite { site, snapshot, day, policy } => {
            let system = match TafLoc::from_snapshot(*snapshot) {
                Ok(s) => s,
                Err(e) => return err_response(e.into()),
            };
            let links = system.db().num_links();
            let cells = system.db().num_cells();
            let policy = policy.unwrap_or(ctx.default_policy);
            let built = Site::new(&site, system, day, policy)
                .and_then(|s| ctx.attach_durability(s))
                .and_then(|s| match ctx.plan {
                    Some(plan) => s.with_planning(plan),
                    None => Ok(s),
                });
            match built.and_then(|s| ctx.registry.add(s)) {
                Ok(_) => Response::SiteAdded { site, links, cells },
                Err(e) => err_response(e),
            }
        }
        Request::RemoveSite { site } => match ctx.registry.remove(&site) {
            Ok(_) => Response::SiteRemoved { site },
            Err(e) => err_response(e),
        },
        Request::Locate { site, y } => match ctx.registry.get(&site).and_then(|s| s.locate(&y)) {
            Ok((fix, version)) => Response::Located {
                cell: fix.cell,
                x: fix.point.x,
                y: fix.point.y,
                distance_db: fix.best_distance,
                version,
            },
            Err(e) => err_response(e),
        },
        Request::LocateBatch { site, ys } => {
            match ctx.registry.get(&site).and_then(|s| s.locate_batch(&ys)) {
                Ok((fixes, version)) => Response::LocatedBatch {
                    fixes: fixes
                        .into_iter()
                        .map(|fix| crate::protocol::Fix {
                            cell: fix.cell,
                            x: fix.point.x,
                            y: fix.point.y,
                            distance_db: fix.best_distance,
                        })
                        .collect(),
                    version,
                },
                Err(e) => err_response(e),
            }
        }
        Request::LocateStream { site } => {
            match ctx.registry.get(&site).and_then(|s| s.locate_stream()) {
                Ok((fix, assembled, version)) => Response::StreamLocated {
                    cell: fix.cell,
                    x: fix.point.x,
                    y: fix.point.y,
                    distance_db: fix.best_distance,
                    version,
                    missing_links: assembled.missing,
                    stale_links: assembled.stale,
                    stream_t_s: assembled.latest_t_s.unwrap_or(0.0),
                    window_samples: assembled.window_samples,
                },
                Err(e) => err_response(e),
            }
        }
        Request::Ingest { site, ref_cell, day, samples } => {
            // Look the site up first: an unknown site is an error, not an
            // overload, regardless of gate pressure.
            let owner = match ctx.registry.get(&site) {
                Ok(s) => s,
                Err(e) => return err_response(e),
            };
            match ctx.registry.admit(&site, samples.len()) {
                Admit::Granted(permit) => {
                    // The permit holds the credits for the whole synchronous
                    // ingest; dropping it releases them.
                    let outcome = owner.ingest_samples(ref_cell, day, &samples);
                    drop(permit);
                    match outcome {
                        Ok(report) => Response::Ingested { report },
                        Err(e) => err_response(e),
                    }
                }
                Admit::Deferred { shard, retry_after_ms } => Response::Overloaded {
                    site,
                    shard,
                    reason: "deferred".to_string(),
                    retry_after_ms,
                },
                Admit::Rejected { shard } => Response::Overloaded {
                    site,
                    shard,
                    reason: "rejected".to_string(),
                    retry_after_ms: 0,
                },
            }
        }
        Request::Track { site, stream, y, dt_s } => {
            match ctx.registry.get(&site).and_then(|s| s.track(&stream, &y, dt_s)) {
                Ok(est) => Response::Tracked {
                    x: est.point.x,
                    y: est.point.y,
                    effective_sample_size: est.effective_sample_size,
                },
                Err(e) => err_response(e),
            }
        }
        Request::Detect { site, stream, y } => {
            match ctx.registry.get(&site).and_then(|s| s.detect(&stream, &y)) {
                Ok(det) => {
                    Response::Detected { present: det.is_present(), detail: detection_detail(&det) }
                }
                Err(e) => err_response(e),
            }
        }
        Request::MeasureRefs { site, day, columns, empty } => {
            match ctx.registry.get(&site).and_then(|s| s.ingest_refs(day, columns, empty)) {
                Ok(rec) => Response::RefsAccepted {
                    recommendation: recommendation_name(&rec).to_string(),
                    estimated_error_db: rec.estimated_error_db(),
                },
                Err(e) => err_response(e),
            }
        }
        Request::Refresh { site } => match ctx.registry.get(&site).and_then(|s| s.refresh()) {
            Ok((report, version)) => Response::Refreshed {
                iterations: report.iterations,
                converged: report.converged,
                mean_abs_change_db: report.mean_abs_change_db,
                version,
            },
            Err(e) => err_response(e),
        },
    }
}
