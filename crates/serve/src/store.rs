//! Crash-safe per-site snapshot persistence.
//!
//! `taflocd` holds every site's state in memory; this module is what makes a
//! crash survivable. Each committed generation of a site — fingerprint
//! database, correlation matrix `Z`, reference set, drift-monitor state,
//! health counters and the maintenance policy — is written as one
//! self-contained snapshot file under the daemon's `--data-dir`:
//!
//! ```text
//! magic     "TAFSNAP1"              8 bytes
//! version   format version          u32 LE
//! length    payload byte count      u64 LE
//! payload   encoded PersistedSite   `length` bytes
//! checksum  CRC32 (IEEE) of payload u32 LE
//! ```
//!
//! Writes are torn-write safe: the file is assembled in a `.tmp` sibling,
//! fsynced, then atomically renamed into place — a crash mid-write leaves
//! either the previous generation or a `.tmp` orphan, never a half-valid
//! snapshot under the real name. Recovery scans the directory, decodes every
//! `.snap` file, keeps the newest valid generation per site and reports (but
//! survives) corrupt, truncated, or mis-checksummed files.
//!
//! The payload is a hand-rolled little-endian binary encoding rather than
//! JSON: the snapshot store must keep working in builds where `serde_json`
//! is stubbed out, and the dominant content is two large `f64` matrices that
//! a text codec would bloat and slow down for no benefit. The site name
//! *inside* the payload is authoritative; the filename only makes listings
//! readable.

use crate::maintenance::MaintenancePolicy;
use crate::{Result, ServeError};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::Write;
use std::path::{Path, PathBuf};
use taf_linalg::Matrix;
use taf_plan::{HistoryWindow, MeasurementPlan};
use tafloc_core::loli_ir::WarmState;
use tafloc_core::monitor::MonitorConfig;
use tafloc_core::system::SystemSnapshot;
use tafloc_ingest::IngestConfig;

/// File magic: identifies a taflocd snapshot and its major layout.
pub const MAGIC: &[u8; 8] = b"TAFSNAP1";

/// Payload format version. Bump on any change to the encoded layout.
/// Version 2 appended the durable hot state (journal watermark, planner
/// schedule/history/costs, solver warm state) after the v1 fields; v1 files
/// still load, with those fields taking their cold-start defaults.
pub const FORMAT_VERSION: u32 = 2;

/// Committed generations retained per site; older snapshot files are pruned
/// after each successful save. More than one so a latent corruption of the
/// newest file still leaves a recoverable (if stale) generation behind.
pub const KEEP_GENERATIONS: usize = 3;

/// CRC32 (IEEE 802.3, polynomial `0xEDB88320`) — the checksum guarding the
/// snapshot payload. The implementation lives in [`taf_wire::codec`] and is
/// shared with the v2 wire protocol; re-exported here so existing callers
/// (and the known-vector tests) keep their `store::crc32` path.
pub use taf_wire::crc32;

/// Everything needed to resurrect a serving site after a restart.
#[derive(Debug, Clone)]
pub struct PersistedSite {
    /// Site name (the registry key; authoritative over the filename).
    pub name: String,
    /// Snapshot version at save time — the site's committed generation.
    pub generation: u64,
    /// Deployment day of the last refresh (or calibration).
    pub refreshed_day: f64,
    /// The calibrated system: config, database, reference cells, LRR, empty
    /// baseline.
    pub snapshot: SystemSnapshot,
    /// Drift-monitor comparison baseline (`M x k`).
    pub monitor_stored: Matrix,
    /// Cells the monitor spot-checks.
    pub monitor_cells: Vec<usize>,
    /// Day of the monitor's last completed update (cooldown anchor).
    pub monitor_last_update_day: f64,
    /// Monitor thresholds.
    pub monitor_config: MonitorConfig,
    /// Consecutive over-threshold checks at save time (hysteresis state).
    pub breach_streak: u32,
    /// Lifetime maintenance-loop spot checks.
    pub maintenance_checks: u64,
    /// Lifetime auto-refreshes.
    pub auto_refreshes: u64,
    /// Lifetime refreshes rejected by the reconstruction guard.
    pub refresh_rejections: u64,
    /// Consecutive failed refreshes / panicking ticks (backoff input).
    pub consecutive_failures: u32,
    /// Reason the most recent refresh was rejected, if any.
    pub last_reject_reason: Option<String>,
    /// Whether the site was quarantined at save time.
    pub quarantined: bool,
    /// Scheduler passes left before a quarantined site is re-admitted.
    pub quarantine_cooldown: u32,
    /// Lifetime maintenance ticks that panicked.
    pub tick_panics: u64,
    /// The maintenance policy in force.
    pub policy: MaintenancePolicy,
    /// The streaming-ingestion configuration in force.
    pub ingest: IngestConfig,
    /// Highest write-ahead-journal sequence number whose effects are already
    /// contained in this snapshot. Recovery replays only records beyond it,
    /// and the journal prunes segments at or below it.
    pub journal_watermark: u64,
    /// Survey epoch counter (increments per completed reference survey).
    pub survey_epoch: u64,
    /// Lifetime planned measurement cost (link-measurements scheduled).
    pub planned_cost: u64,
    /// Lifetime actual measurement cost (link-measurements delivered).
    pub actual_cost: u64,
    /// What the same surveys would have cost unbudgeted.
    pub full_survey_cost: u64,
    /// The measurement plan in force at save time, if planning is enabled —
    /// the schedule position a restarted daemon resumes from.
    pub current_plan: Option<MeasurementPlan>,
    /// Per-cell confidence of the last accepted reconstruction.
    pub last_ref_confidence: Option<Vec<f64>>,
    /// Bounded survey history backing budgeted refreshes.
    pub history: Option<HistoryWindow>,
    /// The solver's last accepted factor pair, so the first post-restart
    /// refresh warm-starts instead of paying a cold SVD start.
    pub warm: Option<WarmState>,
}

// ---------------------------------------------------------------------------
// Binary codec — delegated to `taf-wire`
// ---------------------------------------------------------------------------
//
// The payload is encoded with the exact primitives and domain codecs the v2
// wire protocol uses (`taf_wire::{Enc, Dec}`, `taf_wire::types`, plus the
// shared maintenance-policy codec in `crate::wire::v2`), so the on-disk
// layout and the wire layout cannot drift apart. The byte layout is
// unchanged from the original in-module codec: `SystemSnapshot` fields are
// the `taf_wire::types::enc_snapshot` sequence, and the store frames them
// with the site identity before and the health/policy state after.

use crate::wire::v2::{dec_policy, enc_policy};
use taf_wire::types as wt;
use taf_wire::{Dec, Enc};

/// The v1 field sequence — unchanged since the original in-module codec, so
/// v1 files keep decoding byte-for-byte.
fn encode_v1_fields(e: &mut Enc, site: &PersistedSite) {
    e.str(&site.name);
    e.u64(site.generation);
    e.f64(site.refreshed_day);
    wt::enc_snapshot(e, &site.snapshot);
    e.matrix(&site.monitor_stored);
    e.usizes(&site.monitor_cells);
    e.f64(site.monitor_last_update_day);
    wt::enc_monitor_config(e, &site.monitor_config);
    e.u32(site.breach_streak);
    e.u64(site.maintenance_checks);
    e.u64(site.auto_refreshes);
    e.u64(site.refresh_rejections);
    e.u32(site.consecutive_failures);
    e.opt_str(site.last_reject_reason.as_deref());
    e.bool(site.quarantined);
    e.u32(site.quarantine_cooldown);
    e.u64(site.tick_panics);
    enc_policy(e, &site.policy);
    wt::enc_ingest_config(e, &site.ingest);
}

fn encode_payload(site: &PersistedSite) -> Vec<u8> {
    let mut e = Enc::new();
    encode_v1_fields(&mut e, site);
    // v2: durable hot state, appended after the v1 fields.
    e.u64(site.journal_watermark);
    e.u64(site.survey_epoch);
    e.u64(site.planned_cost);
    e.u64(site.actual_cost);
    e.u64(site.full_survey_cost);
    match &site.current_plan {
        Some(p) => {
            e.bool(true);
            wt::enc_measurement_plan(&mut e, p);
        }
        None => e.bool(false),
    }
    match &site.last_ref_confidence {
        Some(c) => {
            e.bool(true);
            e.f64s(c);
        }
        None => e.bool(false),
    }
    match &site.history {
        Some(h) => {
            e.bool(true);
            wt::enc_history(&mut e, h);
        }
        None => e.bool(false),
    }
    match &site.warm {
        Some(w) => {
            e.bool(true);
            wt::enc_warm_state(&mut e, w);
        }
        None => e.bool(false),
    }
    e.into_inner()
}

fn decode_payload(data: &[u8], version: u32) -> Result<PersistedSite> {
    let mut d = Dec::new(data);
    let name = d.str()?;
    let generation = d.u64()?;
    let refreshed_day = d.f64()?;
    let snapshot = wt::dec_snapshot(&mut d)?;
    let mut site = PersistedSite {
        name,
        generation,
        refreshed_day,
        snapshot,
        monitor_stored: d.matrix()?,
        monitor_cells: d.usizes()?,
        monitor_last_update_day: d.f64()?,
        monitor_config: wt::dec_monitor_config(&mut d)?,
        breach_streak: d.u32()?,
        maintenance_checks: d.u64()?,
        auto_refreshes: d.u64()?,
        refresh_rejections: d.u64()?,
        consecutive_failures: d.u32()?,
        last_reject_reason: d.opt_str()?,
        quarantined: d.bool()?,
        quarantine_cooldown: d.u32()?,
        tick_panics: d.u64()?,
        policy: dec_policy(&mut d)?,
        ingest: wt::dec_ingest_config(&mut d)?,
        journal_watermark: 0,
        survey_epoch: 0,
        planned_cost: 0,
        actual_cost: 0,
        full_survey_cost: 0,
        current_plan: None,
        last_ref_confidence: None,
        history: None,
        warm: None,
    };
    if version >= 2 {
        site.journal_watermark = d.u64()?;
        site.survey_epoch = d.u64()?;
        site.planned_cost = d.u64()?;
        site.actual_cost = d.u64()?;
        site.full_survey_cost = d.u64()?;
        if d.bool()? {
            site.current_plan = Some(wt::dec_measurement_plan(&mut d)?);
        }
        if d.bool()? {
            site.last_ref_confidence = Some(d.f64s()?);
        }
        if d.bool()? {
            site.history = Some(wt::dec_history(&mut d)?);
        }
        if d.bool()? {
            site.warm = Some(wt::dec_warm_state(&mut d)?);
        }
    }
    d.finish()?;
    Ok(site)
}

// ---------------------------------------------------------------------------
// File store
// ---------------------------------------------------------------------------

/// One file the recovery pass had to skip, and why.
#[derive(Debug)]
pub struct RecoveryIssue {
    /// The skipped file.
    pub path: PathBuf,
    /// Why it was unusable (truncated, bad checksum, undecodable, ...).
    pub reason: String,
}

/// What a directory scan recovered.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Newest valid generation of every recoverable site, name-sorted.
    pub sites: Vec<PersistedSite>,
    /// Files that were present but unusable.
    pub skipped: Vec<RecoveryIssue>,
}

/// Fsyncs a directory so renames/creates/unlinks inside it survive power
/// loss. A no-op error sink on platforms where directories cannot be opened
/// for sync is deliberately *not* provided: the serve plane only targets
/// platforms where this works.
pub(crate) fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// A directory of per-site snapshot files.
#[derive(Debug, Clone)]
pub struct SiteStore {
    dir: PathBuf,
}

impl SiteStore {
    /// Opens (creating if needed) the snapshot directory.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<SiteStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ServeError::Store(format!("cannot create {}: {e}", dir.display())))?;
        Ok(SiteStore { dir })
    }

    /// The directory snapshots live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Filename stem for a site: a readable sanitized prefix plus a short
    /// hash of the exact name, so distinct names that sanitize identically
    /// ("a/b" vs "a:b") cannot collide. The name inside the payload is what
    /// recovery trusts; this is only for humans and pruning. The write-ahead
    /// journal shares this stem so a site's snapshot and journal files sort
    /// together in listings.
    pub fn stem(name: &str) -> String {
        let sanitized: String = name
            .chars()
            .take(48)
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        format!("{sanitized}-{:08x}", (h.finish() & 0xFFFF_FFFF) as u32)
    }

    fn snap_path(&self, name: &str, generation: u64) -> PathBuf {
        self.dir.join(format!("{}.{generation:020}.snap", SiteStore::stem(name)))
    }

    /// Persists one site generation: encode, checksum, write to a `.tmp`
    /// sibling, fsync, rename into place, then prune generations older than
    /// the newest [`KEEP_GENERATIONS`]. Returns the snapshot path.
    pub fn save(&self, site: &PersistedSite) -> Result<PathBuf> {
        let payload = encode_payload(site);
        let mut file = Vec::with_capacity(payload.len() + 24);
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&crc32(&payload).to_le_bytes());

        let final_path = self.snap_path(&site.name, site.generation);
        let tmp_path = final_path.with_extension("tmp");
        let io = |what: &str, e: std::io::Error| {
            ServeError::Store(format!("{what} {}: {e}", tmp_path.display()))
        };
        {
            let mut f = std::fs::File::create(&tmp_path).map_err(|e| io("cannot create", e))?;
            f.write_all(&file).map_err(|e| io("cannot write", e))?;
            f.sync_all().map_err(|e| io("cannot sync", e))?;
        }
        std::fs::rename(&tmp_path, &final_path).map_err(|e| {
            ServeError::Store(format!(
                "cannot rename {} to {}: {e}",
                tmp_path.display(),
                final_path.display()
            ))
        })?;
        // The rename is atomic but not durable until the directory entry
        // itself is synced: without this, a power loss can forget the rename
        // and resurrect the old directory state (or nothing at all).
        fsync_dir(&self.dir)
            .map_err(|e| ServeError::Store(format!("cannot sync {}: {e}", self.dir.display())))?;
        self.prune(&site.name, site.generation);
        Ok(final_path)
    }

    /// Removes generations of `name` older than the newest
    /// [`KEEP_GENERATIONS`]. Best-effort: pruning failures never fail a save.
    fn prune(&self, name: &str, _newest: u64) {
        let prefix = format!("{}.", SiteStore::stem(name));
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return };
        let mut generations: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "snap")
                    && p.file_name()
                        .and_then(|f| f.to_str())
                        .is_some_and(|f| f.starts_with(&prefix))
            })
            .collect();
        // The zero-padded generation suffix makes lexicographic order
        // chronological.
        generations.sort();
        if generations.len() > KEEP_GENERATIONS {
            for old in &generations[..generations.len() - KEEP_GENERATIONS] {
                let _ = std::fs::remove_file(old);
            }
        }
    }

    /// Reads and validates one snapshot file.
    pub fn load(path: &Path) -> Result<PersistedSite> {
        let bytes = std::fs::read(path)
            .map_err(|e| ServeError::Store(format!("cannot read {}: {e}", path.display())))?;
        if bytes.len() < MAGIC.len() + 4 + 8 + 4 {
            return Err(ServeError::Store("file too short for a snapshot header".into()));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(ServeError::Store("bad magic: not a taflocd snapshot".into()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version == 0 || version > FORMAT_VERSION {
            return Err(ServeError::Store(format!(
                "unsupported format version {version} (this build reads 1..={FORMAT_VERSION})"
            )));
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| ServeError::Store("payload length does not fit this platform".into()))?;
        let expected_total = 20usize
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(4))
            .ok_or_else(|| ServeError::Store("payload length overflows".into()))?;
        if bytes.len() < expected_total {
            return Err(ServeError::Store(format!(
                "truncated: header promises {payload_len} payload bytes, file holds {}",
                bytes.len().saturating_sub(24)
            )));
        }
        let payload = &bytes[20..20 + payload_len];
        let stored_crc =
            u32::from_le_bytes(bytes[20 + payload_len..24 + payload_len].try_into().expect("4"));
        let actual_crc = crc32(payload);
        if stored_crc != actual_crc {
            return Err(ServeError::Store(format!(
                "checksum mismatch: stored {stored_crc:08x}, computed {actual_crc:08x}"
            )));
        }
        decode_payload(payload, version)
    }

    /// Scans the directory and recovers the newest valid generation of every
    /// site. Corrupt, truncated, or undecodable files are skipped and
    /// reported — a bad newest generation falls back to the next older valid
    /// one. `.tmp` orphans from torn writes are ignored (and cleaned up).
    pub fn recover_all(&self) -> Result<Recovery> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| ServeError::Store(format!("cannot scan {}: {e}", self.dir.display())))?;
        let mut best: HashMap<String, PersistedSite> = HashMap::new();
        let mut skipped = Vec::new();
        let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for path in paths {
            match path.extension().and_then(|x| x.to_str()) {
                Some("snap") => {}
                Some("tmp") => {
                    // A torn write that never reached its rename; never valid.
                    let _ = std::fs::remove_file(&path);
                    continue;
                }
                _ => continue,
            }
            match SiteStore::load(&path) {
                Ok(site) => {
                    let keep =
                        best.get(&site.name).map_or(true, |cur| site.generation > cur.generation);
                    if keep {
                        best.insert(site.name.clone(), site);
                    }
                }
                Err(e) => skipped.push(RecoveryIssue { path, reason: e.to_string() }),
            }
        }
        let mut sites: Vec<PersistedSite> = best.into_values().collect();
        sites.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(Recovery { sites, skipped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taf_plan::{PlanEntry, PlanPolicy, SurveyRecord};
    use taf_rfsim::geometry::{Point, Segment};
    use taf_rfsim::grid::FloorGrid;
    use tafloc_core::db::FingerprintDb;
    use tafloc_core::matcher::MatchMethod;
    use tafloc_core::reference::ReferenceStrategy;
    use tafloc_core::system::{TafLocConfig, ZRefreshPolicy};
    use tafloc_core::LrrModel;
    use tafloc_ingest::Aggregator;

    fn temp_store(tag: &str) -> SiteStore {
        let dir =
            std::env::temp_dir().join(format!("tafloc-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SiteStore::open(&dir).unwrap()
    }

    /// A small hand-built site: 2 links x 4 cells, enough to exercise every
    /// field of the codec without running a calibration.
    fn sample_site(name: &str, generation: u64) -> PersistedSite {
        let rss =
            Matrix::from_vec(2, 4, vec![-50.0, -51.5, -49.0, -60.25, -40.0, -41.0, -42.5, -43.75])
                .unwrap();
        let links = vec![
            Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 0.0)),
            Segment::new(Point::new(0.0, 1.0), Point::new(3.0, 1.0)),
        ];
        let grid = FloorGrid::new(Point::new(-0.5, -0.5), 1.0, 4, 1);
        let db = FingerprintDb::new(rss, links, grid).unwrap();
        let z = Matrix::from_vec(2, 4, vec![1.0, 0.0, 0.25, -0.5, 0.0, 1.0, 0.75, 1.5]).unwrap();
        let lrr = LrrModel::from_parts(vec![0, 2], z, 1e-2).unwrap();
        PersistedSite {
            name: name.to_string(),
            generation,
            refreshed_day: 45.5,
            snapshot: SystemSnapshot {
                config: TafLocConfig {
                    ref_count: 2,
                    ref_strategy: ReferenceStrategy::Random { seed: 99 },
                    matcher: MatchMethod::Knn { k: 3 },
                    z_policy: ZRefreshPolicy::RefitAfterUpdate,
                    ..Default::default()
                },
                db,
                ref_cells: vec![0, 2],
                lrr,
                empty_rss: vec![-38.0, -39.5],
            },
            monitor_stored: Matrix::from_vec(2, 1, vec![-50.0, -40.0]).unwrap(),
            monitor_cells: vec![0],
            monitor_last_update_day: 44.0,
            monitor_config: MonitorConfig { error_threshold_db: 2.5, min_interval_days: 1.0 },
            breach_streak: 1,
            maintenance_checks: 17,
            auto_refreshes: 4,
            refresh_rejections: 2,
            consecutive_failures: 1,
            last_reject_reason: Some("reconstruction contains non-finite entries".into()),
            quarantined: false,
            quarantine_cooldown: 0,
            tick_panics: 1,
            policy: MaintenancePolicy {
                interval_ms: 125,
                breach_streak: 3,
                quarantine_after: 5,
                ..Default::default()
            },
            ingest: IngestConfig {
                stale_after_s: 7.5,
                aggregator: Aggregator::Ewma { alpha: 0.3 },
                ..Default::default()
            },
            journal_watermark: 12,
            survey_epoch: 3,
            planned_cost: 5,
            actual_cost: 4,
            full_survey_cost: 8,
            current_plan: Some(MeasurementPlan {
                epoch: 3,
                policy: PlanPolicy::UncertaintyGreedy,
                entries: vec![
                    PlanEntry { ref_slot: 0, links: vec![0, 1] },
                    PlanEntry { ref_slot: 1, links: vec![1] },
                ],
                planned_cost: 3,
                full_cost: 4,
            }),
            last_ref_confidence: Some(vec![0.9, 0.4, 0.7, 0.85]),
            history: Some({
                let mut h = HistoryWindow::new(2, 2, 4).unwrap();
                h.record(0, SurveyRecord { epoch: 2, y: vec![-50.0, -40.0], fresh: vec![true; 2] })
                    .unwrap();
                h.record(
                    0,
                    SurveyRecord { epoch: 3, y: vec![-50.5, -40.5], fresh: vec![true, false] },
                )
                .unwrap();
                h
            }),
            warm: Some(
                WarmState::from_parts(
                    Matrix::from_vec(2, 1, vec![0.5, -0.25]).unwrap(),
                    Matrix::from_vec(4, 1, vec![1.0, 0.5, 0.25, -1.0]).unwrap(),
                )
                .unwrap(),
            ),
        }
    }

    fn assert_sites_equal(a: &PersistedSite, b: &PersistedSite) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.generation, b.generation);
        assert_eq!(a.refreshed_day, b.refreshed_day);
        assert!(a.snapshot.db.rss().approx_eq(b.snapshot.db.rss(), 0.0));
        assert_eq!(a.snapshot.db.links(), b.snapshot.db.links());
        assert_eq!(a.snapshot.ref_cells, b.snapshot.ref_cells);
        assert_eq!(a.snapshot.lrr.ref_cells(), b.snapshot.lrr.ref_cells());
        assert!(a.snapshot.lrr.z().approx_eq(b.snapshot.lrr.z(), 0.0));
        assert_eq!(a.snapshot.lrr.lambda(), b.snapshot.lrr.lambda());
        assert_eq!(a.snapshot.empty_rss, b.snapshot.empty_rss);
        assert_eq!(a.snapshot.config, b.snapshot.config);
        assert!(a.monitor_stored.approx_eq(&b.monitor_stored, 0.0));
        assert_eq!(a.monitor_cells, b.monitor_cells);
        assert_eq!(a.monitor_last_update_day, b.monitor_last_update_day);
        assert_eq!(a.monitor_config, b.monitor_config);
        assert_eq!(a.breach_streak, b.breach_streak);
        assert_eq!(a.maintenance_checks, b.maintenance_checks);
        assert_eq!(a.auto_refreshes, b.auto_refreshes);
        assert_eq!(a.refresh_rejections, b.refresh_rejections);
        assert_eq!(a.consecutive_failures, b.consecutive_failures);
        assert_eq!(a.last_reject_reason, b.last_reject_reason);
        assert_eq!(a.quarantined, b.quarantined);
        assert_eq!(a.quarantine_cooldown, b.quarantine_cooldown);
        assert_eq!(a.tick_panics, b.tick_panics);
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.ingest, b.ingest);
        assert_eq!(a.journal_watermark, b.journal_watermark);
        assert_eq!(a.survey_epoch, b.survey_epoch);
        assert_eq!(a.planned_cost, b.planned_cost);
        assert_eq!(a.actual_cost, b.actual_cost);
        assert_eq!(a.full_survey_cost, b.full_survey_cost);
        assert_eq!(a.current_plan, b.current_plan);
        assert_eq!(a.last_ref_confidence, b.last_ref_confidence);
        match (&a.history, &b.history) {
            (None, None) => {}
            (Some(ha), Some(hb)) => {
                assert_eq!(ha.n_slots(), hb.n_slots());
                assert_eq!(ha.n_links(), hb.n_links());
                assert_eq!(ha.depth(), hb.depth());
                for slot in 0..ha.n_slots() {
                    let ra: Vec<_> = ha.records(slot).collect();
                    let rb: Vec<_> = hb.records(slot).collect();
                    assert_eq!(ra, rb, "history slot {slot}");
                }
            }
            _ => panic!("history presence differs"),
        }
        match (&a.warm, &b.warm) {
            (None, None) => {}
            (Some(wa), Some(wb)) => {
                assert_eq!(wa.shape(), wb.shape());
                assert_eq!(wa.l().as_slice(), wb.l().as_slice());
                assert_eq!(wa.r().as_slice(), wb.r().as_slice());
            }
            _ => panic!("warm-state presence differs"),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn save_load_round_trip() {
        let store = temp_store("roundtrip");
        let site = sample_site("lab", 3);
        let path = store.save(&site).unwrap();
        let loaded = SiteStore::load(&path).unwrap();
        assert_sites_equal(&site, &loaded);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn recovery_keeps_newest_valid_generation_and_reports_corruption() {
        let store = temp_store("recovery");
        let g1 = sample_site("lab", 1);
        let mut g2 = sample_site("lab", 2);
        g2.auto_refreshes = 5;
        store.save(&g1).unwrap();
        let p2 = store.save(&g2).unwrap();

        // Torn write: generation 2 is truncated mid-payload.
        let bytes = std::fs::read(&p2).unwrap();
        std::fs::write(&p2, &bytes[..bytes.len() / 2]).unwrap();
        // And a torn tmp orphan is lying around.
        std::fs::write(store.dir().join("lab-garbage.tmp"), b"half").unwrap();

        let rec = store.recover_all().unwrap();
        assert_eq!(rec.sites.len(), 1, "generation 1 must survive");
        assert_sites_equal(&rec.sites[0], &g1);
        assert_eq!(rec.skipped.len(), 1);
        assert!(rec.skipped[0].reason.contains("truncated"), "{}", rec.skipped[0].reason);
        assert!(!store.dir().join("lab-garbage.tmp").exists(), "tmp orphans are cleaned");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn checksum_catches_a_flipped_byte() {
        let store = temp_store("crc");
        let path = store.save(&sample_site("lab", 1)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = SiteStore::load(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        let rec = store.recover_all().unwrap();
        assert!(rec.sites.is_empty());
        assert_eq!(rec.skipped.len(), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let store = temp_store("magic");
        let path = store.dir().join("junk.snap");
        std::fs::write(&path, b"NOTASNAPxxxxxxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(SiteStore::load(&path).unwrap_err().to_string().contains("magic"));

        let site = sample_site("lab", 1);
        let real = store.save(&site).unwrap();
        let mut bytes = std::fs::read(&real).unwrap();
        bytes[8] = 0xFF; // format version
        std::fs::write(&real, &bytes).unwrap();
        assert!(SiteStore::load(&real).unwrap_err().to_string().contains("version"));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn old_generations_are_pruned() {
        let store = temp_store("prune");
        for gen in 1..=6u64 {
            store.save(&sample_site("lab", gen)).unwrap();
        }
        let snaps: Vec<_> = std::fs::read_dir(store.dir())
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
            .collect();
        assert_eq!(snaps.len(), KEEP_GENERATIONS);
        let rec = store.recover_all().unwrap();
        assert_eq!(rec.sites[0].generation, 6);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn hostile_site_names_stay_inside_the_directory() {
        let store = temp_store("names");
        // Distinct names that sanitize identically must not collide.
        let a = sample_site("a/b", 1);
        let b = sample_site("a:b", 1);
        let pa = store.save(&a).unwrap();
        let pb = store.save(&b).unwrap();
        assert_ne!(pa, pb);
        assert_eq!(pa.parent().unwrap(), store.dir());
        assert_eq!(pb.parent().unwrap(), store.dir());
        let rec = store.recover_all().unwrap();
        let names: Vec<&str> = rec.sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a/b", "a:b"], "payload name is authoritative");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn v1_snapshots_load_with_cold_start_defaults() {
        // A pre-journal (v1) snapshot: only the v1 fields, version 1 header.
        let site = sample_site("lab", 2);
        let mut e = Enc::new();
        encode_v1_fields(&mut e, &site);
        let payload = e.into_inner();
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&1u32.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&crc32(&payload).to_le_bytes());
        let store = temp_store("v1compat");
        let path = store.dir().join("lab-old.snap");
        std::fs::write(&path, &file).unwrap();

        let loaded = SiteStore::load(&path).unwrap();
        assert_eq!(loaded.name, site.name);
        assert_eq!(loaded.generation, site.generation);
        assert_eq!(loaded.auto_refreshes, site.auto_refreshes);
        // The hot state a v1 file never recorded comes back cold.
        assert_eq!(loaded.journal_watermark, 0);
        assert_eq!(loaded.survey_epoch, 0);
        assert_eq!(loaded.planned_cost, 0);
        assert_eq!(loaded.actual_cost, 0);
        assert_eq!(loaded.full_survey_cost, 0);
        assert!(loaded.current_plan.is_none());
        assert!(loaded.last_ref_confidence.is_none());
        assert!(loaded.history.is_none());
        assert!(loaded.warm.is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn decode_rejects_garbage_that_passes_the_checksum() {
        // A structurally valid file whose payload is nonsense: the decoder
        // must error, not panic or allocate absurdly.
        let mut file = Vec::new();
        let payload = vec![0xFFu8; 64];
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&crc32(&payload).to_le_bytes());
        let dir = temp_store("garbage");
        let path = dir.dir().join("g.snap");
        std::fs::write(&path, &file).unwrap();
        assert!(SiteStore::load(&path).is_err());
        let _ = std::fs::remove_dir_all(dir.dir());
    }
}
