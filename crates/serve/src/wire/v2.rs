//! v2 message codec: a one-byte message tag followed by the fields in
//! declaration order, encoded with the shared [`taf_wire::codec`]
//! primitives. The payload produced here travels inside a checksummed
//! [`taf_wire::frame`]; this module never sees framing.
//!
//! Tags are append-only: new message kinds take the next free number, and
//! removed kinds retire their tag instead of freeing it for reuse.

use crate::maintenance::MaintenancePolicy;
use crate::protocol::{
    EndpointStats, Fix, Request, Response, ShardStats, SiteInfo, SiteStats, StatsReport,
};
use crate::Result;
use taf_wire::types as wt;
use taf_wire::{Dec, Enc, WireError};
use tafloc_core::system::ReconstructionGuard;

/// Encodes one request as a v2 frame payload (tag byte + body).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let mut e = Enc::reusing(std::mem::take(out));
    match req {
        Request::AddSite { site, snapshot, day, policy } => {
            e.u8(1);
            e.str(site);
            wt::enc_snapshot(&mut e, snapshot);
            e.f64(*day);
            match policy {
                Some(p) => {
                    e.u8(1);
                    enc_policy(&mut e, p);
                }
                None => e.u8(0),
            }
        }
        Request::RemoveSite { site } => {
            e.u8(2);
            e.str(site);
        }
        Request::ListSites => e.u8(3),
        Request::Locate { site, y } => {
            e.u8(4);
            e.str(site);
            e.f64s(y);
        }
        Request::LocateStream { site } => {
            e.u8(5);
            e.str(site);
        }
        Request::LocateBatch { site, ys } => {
            e.u8(6);
            e.str(site);
            e.usize(ys.len());
            for y in ys {
                e.f64s(y);
            }
        }
        Request::Ingest { site, ref_cell, day, samples } => {
            e.u8(7);
            e.str(site);
            match ref_cell {
                Some(c) => {
                    e.u8(1);
                    e.usize(*c);
                }
                None => e.u8(0),
            }
            e.f64(*day);
            e.usize(samples.len());
            for s in samples {
                wt::enc_link_sample(&mut e, s);
            }
        }
        Request::Track { site, stream, y, dt_s } => {
            e.u8(8);
            e.str(site);
            e.str(stream);
            e.f64s(y);
            e.f64(*dt_s);
        }
        Request::Detect { site, stream, y } => {
            e.u8(9);
            e.str(site);
            e.str(stream);
            e.f64s(y);
        }
        Request::MeasureRefs { site, day, columns, empty } => {
            e.u8(10);
            e.str(site);
            e.f64(*day);
            e.matrix(columns);
            e.f64s(empty);
        }
        Request::Refresh { site } => {
            e.u8(11);
            e.str(site);
        }
        Request::Stats => e.u8(12),
        Request::Ping => e.u8(13),
        Request::Shutdown => e.u8(14),
    }
    *out = e.into_inner();
}

/// Decodes one request from a v2 frame payload.
pub fn decode_request(data: &[u8]) -> Result<Request> {
    let mut d = Dec::new(data);
    let req = match d.u8()? {
        1 => Request::AddSite {
            site: d.str()?,
            snapshot: Box::new(wt::dec_snapshot(&mut d)?),
            day: d.f64()?,
            policy: match d.u8()? {
                0 => None,
                1 => Some(dec_policy(&mut d)?),
                v => return Err(WireError::malformed(format!("invalid option tag {v}")).into()),
            },
        },
        2 => Request::RemoveSite { site: d.str()? },
        3 => Request::ListSites,
        4 => Request::Locate { site: d.str()?, y: d.f64s()? },
        5 => Request::LocateStream { site: d.str()? },
        6 => Request::LocateBatch {
            site: d.str()?,
            ys: {
                let n = d.count()?;
                let mut ys = Vec::with_capacity(n);
                for _ in 0..n {
                    ys.push(d.f64s()?);
                }
                ys
            },
        },
        7 => Request::Ingest {
            site: d.str()?,
            ref_cell: match d.u8()? {
                0 => None,
                1 => Some(d.usize()?),
                v => return Err(WireError::malformed(format!("invalid option tag {v}")).into()),
            },
            day: d.f64()?,
            samples: {
                let n = d.count()?;
                let mut samples = Vec::with_capacity(n);
                for _ in 0..n {
                    samples.push(wt::dec_link_sample(&mut d)?);
                }
                samples
            },
        },
        8 => Request::Track { site: d.str()?, stream: d.str()?, y: d.f64s()?, dt_s: d.f64()? },
        9 => Request::Detect { site: d.str()?, stream: d.str()?, y: d.f64s()? },
        10 => Request::MeasureRefs {
            site: d.str()?,
            day: d.f64()?,
            columns: d.matrix()?,
            empty: d.f64s()?,
        },
        11 => Request::Refresh { site: d.str()? },
        12 => Request::Stats,
        13 => Request::Ping,
        14 => Request::Shutdown,
        v => return Err(WireError::malformed(format!("unknown request tag {v}")).into()),
    };
    d.finish()?;
    Ok(req)
}

/// Encodes one response as a v2 frame payload (tag byte + body).
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    let mut e = Enc::reusing(std::mem::take(out));
    match resp {
        Response::Error { message } => {
            e.u8(1);
            e.str(message);
        }
        Response::SiteAdded { site, links, cells } => {
            e.u8(2);
            e.str(site);
            e.usize(*links);
            e.usize(*cells);
        }
        Response::SiteRemoved { site } => {
            e.u8(3);
            e.str(site);
        }
        Response::Sites { sites } => {
            e.u8(4);
            e.usize(sites.len());
            for s in sites {
                enc_site_info(&mut e, s);
            }
        }
        Response::Located { cell, x, y, distance_db, version } => {
            e.u8(5);
            e.usize(*cell);
            e.f64(*x);
            e.f64(*y);
            e.f64(*distance_db);
            e.u64(*version);
        }
        Response::StreamLocated {
            cell,
            x,
            y,
            distance_db,
            version,
            missing_links,
            stale_links,
            stream_t_s,
            window_samples,
        } => {
            e.u8(6);
            e.usize(*cell);
            e.f64(*x);
            e.f64(*y);
            e.f64(*distance_db);
            e.u64(*version);
            e.usizes(missing_links);
            e.usizes(stale_links);
            e.f64(*stream_t_s);
            e.usize(*window_samples);
        }
        Response::LocatedBatch { fixes, version } => {
            e.u8(7);
            e.usize(fixes.len());
            for f in fixes {
                enc_fix(&mut e, f);
            }
            e.u64(*version);
        }
        Response::Ingested { report } => {
            e.u8(8);
            wt::enc_batch_report(&mut e, report);
        }
        Response::Tracked { x, y, effective_sample_size } => {
            e.u8(9);
            e.f64(*x);
            e.f64(*y);
            e.f64(*effective_sample_size);
        }
        Response::Detected { present, detail } => {
            e.u8(10);
            e.bool(*present);
            e.str(detail);
        }
        Response::RefsAccepted { recommendation, estimated_error_db } => {
            e.u8(11);
            e.str(recommendation);
            e.f64(*estimated_error_db);
        }
        Response::Refreshed { iterations, converged, mean_abs_change_db, version } => {
            e.u8(12);
            e.usize(*iterations);
            e.bool(*converged);
            e.f64(*mean_abs_change_db);
            e.u64(*version);
        }
        Response::Stats { report } => {
            e.u8(13);
            enc_stats_report(&mut e, report);
        }
        Response::Pong => e.u8(14),
        Response::ShuttingDown => e.u8(15),
        Response::Overloaded { site, shard, reason, retry_after_ms } => {
            e.u8(16);
            e.str(site);
            e.usize(*shard);
            e.str(reason);
            e.u64(*retry_after_ms);
        }
    }
    *out = e.into_inner();
}

/// Decodes one response from a v2 frame payload.
pub fn decode_response(data: &[u8]) -> Result<Response> {
    let mut d = Dec::new(data);
    let resp = match d.u8()? {
        1 => Response::Error { message: d.str()? },
        2 => Response::SiteAdded { site: d.str()?, links: d.usize()?, cells: d.usize()? },
        3 => Response::SiteRemoved { site: d.str()? },
        4 => Response::Sites {
            sites: {
                let n = d.count()?;
                let mut sites = Vec::with_capacity(n);
                for _ in 0..n {
                    sites.push(dec_site_info(&mut d)?);
                }
                sites
            },
        },
        5 => Response::Located {
            cell: d.usize()?,
            x: d.f64()?,
            y: d.f64()?,
            distance_db: d.f64()?,
            version: d.u64()?,
        },
        6 => Response::StreamLocated {
            cell: d.usize()?,
            x: d.f64()?,
            y: d.f64()?,
            distance_db: d.f64()?,
            version: d.u64()?,
            missing_links: d.usizes()?,
            stale_links: d.usizes()?,
            stream_t_s: d.f64()?,
            window_samples: d.usize()?,
        },
        7 => Response::LocatedBatch {
            fixes: {
                let n = d.count()?;
                let mut fixes = Vec::with_capacity(n);
                for _ in 0..n {
                    fixes.push(dec_fix(&mut d)?);
                }
                fixes
            },
            version: d.u64()?,
        },
        8 => Response::Ingested { report: wt::dec_batch_report(&mut d)? },
        9 => Response::Tracked { x: d.f64()?, y: d.f64()?, effective_sample_size: d.f64()? },
        10 => Response::Detected { present: d.bool()?, detail: d.str()? },
        11 => Response::RefsAccepted { recommendation: d.str()?, estimated_error_db: d.f64()? },
        12 => Response::Refreshed {
            iterations: d.usize()?,
            converged: d.bool()?,
            mean_abs_change_db: d.f64()?,
            version: d.u64()?,
        },
        13 => Response::Stats { report: dec_stats_report(&mut d)? },
        14 => Response::Pong,
        15 => Response::ShuttingDown,
        16 => Response::Overloaded {
            site: d.str()?,
            shard: d.usize()?,
            reason: d.str()?,
            retry_after_ms: d.u64()?,
        },
        v => return Err(WireError::malformed(format!("unknown response tag {v}")).into()),
    };
    d.finish()?;
    Ok(resp)
}

/// Binary maintenance-policy layout, shared with the snapshot store (the
/// on-disk `.snap` payload embeds exactly these bytes).
pub fn enc_policy(e: &mut Enc, p: &MaintenancePolicy) {
    e.u64(p.interval_ms);
    e.bool(p.auto_refresh);
    e.u32(p.breach_streak);
    e.usize(p.monitor_cells);
    e.bool(p.manual_tick);
    wt::enc_monitor_config(e, &p.monitor);
    e.f64(p.guard.max_ref_rmse_db);
    e.f64(p.guard.max_mean_delta_db);
    e.u32(p.quarantine_after);
    e.u32(p.quarantine_cooldown_ticks);
    e.u32(p.backoff_cap);
    e.u32(p.debug_panic_ticks);
}

/// Inverse of [`enc_policy`].
pub fn dec_policy(d: &mut Dec<'_>) -> taf_wire::Result<MaintenancePolicy> {
    Ok(MaintenancePolicy {
        interval_ms: d.u64()?,
        auto_refresh: d.bool()?,
        breach_streak: d.u32()?,
        monitor_cells: d.usize()?,
        manual_tick: d.bool()?,
        monitor: wt::dec_monitor_config(d)?,
        guard: ReconstructionGuard { max_ref_rmse_db: d.f64()?, max_mean_delta_db: d.f64()? },
        quarantine_after: d.u32()?,
        quarantine_cooldown_ticks: d.u32()?,
        backoff_cap: d.u32()?,
        debug_panic_ticks: d.u32()?,
    })
}

fn enc_fix(e: &mut Enc, f: &Fix) {
    e.usize(f.cell);
    e.f64(f.x);
    e.f64(f.y);
    e.f64(f.distance_db);
}

fn dec_fix(d: &mut Dec<'_>) -> taf_wire::Result<Fix> {
    Ok(Fix { cell: d.usize()?, x: d.f64()?, y: d.f64()?, distance_db: d.f64()? })
}

fn enc_site_info(e: &mut Enc, s: &SiteInfo) {
    e.str(&s.site);
    e.usize(s.links);
    e.usize(s.cells);
    e.u64(s.version);
}

fn dec_site_info(d: &mut Dec<'_>) -> taf_wire::Result<SiteInfo> {
    Ok(SiteInfo { site: d.str()?, links: d.usize()?, cells: d.usize()?, version: d.u64()? })
}

fn enc_stats_report(e: &mut Enc, r: &StatsReport) {
    e.f64(r.uptime_s);
    e.u64(r.conn_timeouts);
    e.u64(r.conn_resets);
    e.u64(r.conn_panics);
    e.u64(r.wire_frame_too_large);
    e.u64(r.wire_bad_magic);
    e.u64(r.wire_checksum_mismatch);
    e.u64(r.wire_bad_utf8);
    e.u64(r.wire_malformed);
    e.usize(r.endpoints.len());
    for ep in &r.endpoints {
        enc_endpoint_stats(e, ep);
    }
    e.usize(r.sites.len());
    for s in &r.sites {
        enc_site_stats(e, s);
    }
    e.usize(r.shards.len());
    for s in &r.shards {
        enc_shard_stats(e, s);
    }
}

fn dec_stats_report(d: &mut Dec<'_>) -> taf_wire::Result<StatsReport> {
    Ok(StatsReport {
        uptime_s: d.f64()?,
        conn_timeouts: d.u64()?,
        conn_resets: d.u64()?,
        conn_panics: d.u64()?,
        wire_frame_too_large: d.u64()?,
        wire_bad_magic: d.u64()?,
        wire_checksum_mismatch: d.u64()?,
        wire_bad_utf8: d.u64()?,
        wire_malformed: d.u64()?,
        endpoints: {
            let n = d.count()?;
            let mut eps = Vec::with_capacity(n);
            for _ in 0..n {
                eps.push(dec_endpoint_stats(d)?);
            }
            eps
        },
        sites: {
            let n = d.count()?;
            let mut sites = Vec::with_capacity(n);
            for _ in 0..n {
                sites.push(dec_site_stats(d)?);
            }
            sites
        },
        shards: {
            let n = d.count()?;
            let mut shards = Vec::with_capacity(n);
            for _ in 0..n {
                shards.push(dec_shard_stats(d)?);
            }
            shards
        },
    })
}

fn enc_shard_stats(e: &mut Enc, s: &ShardStats) {
    e.usize(s.shard);
    e.usize(s.sites);
    e.u64(s.queue_depth_samples);
    e.u64(s.offered_batches);
    e.u64(s.offered_samples);
    e.u64(s.admitted_batches);
    e.u64(s.admitted_samples);
    e.u64(s.deferred_batches);
    e.u64(s.deferred_samples);
    e.u64(s.rejected_batches);
    e.u64(s.rejected_samples);
}

fn dec_shard_stats(d: &mut Dec<'_>) -> taf_wire::Result<ShardStats> {
    Ok(ShardStats {
        shard: d.usize()?,
        sites: d.usize()?,
        queue_depth_samples: d.u64()?,
        offered_batches: d.u64()?,
        offered_samples: d.u64()?,
        admitted_batches: d.u64()?,
        admitted_samples: d.u64()?,
        deferred_batches: d.u64()?,
        deferred_samples: d.u64()?,
        rejected_batches: d.u64()?,
        rejected_samples: d.u64()?,
    })
}

fn enc_endpoint_stats(e: &mut Enc, s: &EndpointStats) {
    e.str(&s.endpoint);
    e.u64(s.requests);
    e.u64(s.errors);
    e.u64(s.p50_us);
    e.u64(s.p95_us);
    e.u64(s.p99_us);
    e.u64(s.max_us);
}

fn dec_endpoint_stats(d: &mut Dec<'_>) -> taf_wire::Result<EndpointStats> {
    Ok(EndpointStats {
        endpoint: d.str()?,
        requests: d.u64()?,
        errors: d.u64()?,
        p50_us: d.u64()?,
        p95_us: d.u64()?,
        p99_us: d.u64()?,
        max_us: d.u64()?,
    })
}

fn enc_site_stats(e: &mut Enc, s: &SiteStats) {
    e.str(&s.site);
    e.u64(s.version);
    e.f64(s.refreshed_day);
    e.bool(s.pending_refs);
    match s.estimated_error_db {
        Some(x) => {
            e.u8(1);
            e.f64(x);
        }
        None => e.u8(0),
    }
    e.u64(s.maintenance_checks);
    e.u64(s.auto_refreshes);
    e.u64(s.refresh_rejections);
    e.opt_str(s.last_reject_reason.as_deref());
    e.u32(s.consecutive_failures);
    e.bool(s.quarantined);
    e.u64(s.tick_panics);
    e.u64(s.persist_failures);
    e.usize(s.active_trackers);
    wt::enc_ingest_stats(e, &s.ingest);
    e.f64(s.stream_clock_s);
    e.usize(s.active_ref_captures);
    e.u64(s.planned_cost);
    e.u64(s.actual_cost);
    e.u64(s.full_survey_cost);
    e.opt_str(s.plan_policy.as_deref());
    e.usize(s.shard);
}

fn dec_site_stats(d: &mut Dec<'_>) -> taf_wire::Result<SiteStats> {
    Ok(SiteStats {
        site: d.str()?,
        version: d.u64()?,
        refreshed_day: d.f64()?,
        pending_refs: d.bool()?,
        estimated_error_db: match d.u8()? {
            0 => None,
            1 => Some(d.f64()?),
            v => return Err(WireError::malformed(format!("invalid option tag {v}"))),
        },
        maintenance_checks: d.u64()?,
        auto_refreshes: d.u64()?,
        refresh_rejections: d.u64()?,
        last_reject_reason: d.opt_str()?,
        consecutive_failures: d.u32()?,
        quarantined: d.bool()?,
        tick_panics: d.u64()?,
        persist_failures: d.u64()?,
        active_trackers: d.usize()?,
        ingest: wt::dec_ingest_stats(d)?,
        stream_clock_s: d.f64()?,
        active_ref_captures: d.usize()?,
        planned_cost: d.u64()?,
        actual_cost: d.u64()?,
        full_survey_cost: d.u64()?,
        plan_policy: d.opt_str()?,
        shard: d.usize()?,
    })
}
