//! Version-negotiating transport: one reader/writer pair that speaks both
//! wire protocols.
//!
//! * **v1** — newline-delimited JSON, byte-compatible with the original
//!   `serde_json`-backed codec (see [`v1`]). What `netcat` and every
//!   pre-existing client speaks.
//! * **v2** — length-prefixed checksummed binary frames (see [`v2`] and
//!   [`taf_wire::frame`]). Dense `f64` payloads (`y` vectors, snapshot
//!   matrices) cross the wire as raw little-endian bytes instead of decimal
//!   text.
//!
//! Negotiation is per *message*, not per connection: every read starts by
//! sniffing one byte. `{` (or any other non-`0xB2` byte) routes to the v1
//! line reader; [`taf_wire::frame::V2_SNIFF`] routes to the v2 frame reader.
//! `0xB2` is not valid lead byte of UTF-8 text, so the two protocols cannot
//! be confused. The server replies in whichever version the request arrived
//! in, so a v1 client and a v2 client can share one server — even one
//! connection, handed from one to the other.

use crate::protocol::{Request, Response, MAX_LINE_BYTES};
use crate::{Result, ServeError};
use std::io::{BufRead, Write};
use taf_wire::frame::{self, Sniff};

pub mod v1;
pub mod v2;

/// Which protocol a message (or a client) speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireVersion {
    /// Newline-delimited JSON — the compatibility default.
    #[default]
    V1Json,
    /// Length-prefixed checksummed binary frames.
    V2Binary,
}

/// Serializes one request in `version` framing and flushes.
pub fn write_request<W: Write>(w: &mut W, req: &Request, version: WireVersion) -> Result<()> {
    let mut buf = Vec::with_capacity(128);
    match version {
        WireVersion::V1Json => {
            v1::encode_request(req, &mut buf);
            buf.push(b'\n');
            w.write_all(&buf)?;
        }
        WireVersion::V2Binary => {
            v2::encode_request(req, &mut buf);
            frame::write_frame(w, &buf).map_err(ServeError::from)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Serializes one response in `version` framing and flushes.
pub fn write_response<W: Write>(w: &mut W, resp: &Response, version: WireVersion) -> Result<()> {
    let mut buf = Vec::with_capacity(128);
    match version {
        WireVersion::V1Json => {
            v1::encode_response(resp, &mut buf);
            buf.push(b'\n');
            w.write_all(&buf)?;
        }
        WireVersion::V2Binary => {
            v2::encode_response(resp, &mut buf);
            frame::write_frame(w, &buf).map_err(ServeError::from)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads one request, sniffing its protocol version first. `version` is
/// updated to the sniffed protocol *before* any decoding, so the caller can
/// answer an undecodable message in the framing its sender understands.
/// `Ok(None)` is a clean end of stream.
pub fn read_request<R: BufRead>(r: &mut R, version: &mut WireVersion) -> Result<Option<Request>> {
    read_message(r, version, v1::decode_request, v2::decode_request)
}

/// Reads one response, sniffing its protocol version first (see
/// [`read_request`]).
pub fn read_response<R: BufRead>(r: &mut R, version: &mut WireVersion) -> Result<Option<Response>> {
    read_message(r, version, v1::decode_response, v2::decode_response)
}

fn read_message<R: BufRead, T>(
    r: &mut R,
    version: &mut WireVersion,
    decode_v1: fn(&str) -> Result<T>,
    decode_v2: fn(&[u8]) -> Result<T>,
) -> Result<Option<T>> {
    let mut line = Vec::new();
    loop {
        match frame::sniff(r)? {
            Sniff::Eof => return Ok(None),
            Sniff::V2 => {
                *version = WireVersion::V2Binary;
                line.clear();
                frame::read_frame(r, &mut line, frame::MAX_FRAME_BYTES)
                    .map_err(ServeError::from)?;
                return decode_v2(&line).map(Some);
            }
            Sniff::V1 => {
                *version = WireVersion::V1Json;
                let n = read_bounded_line(r, &mut line, MAX_LINE_BYTES)?;
                if n == 0 {
                    return Ok(None);
                }
                let text = std::str::from_utf8(&line)
                    .map_err(|_| ServeError::Wire(taf_wire::WireError::BadUtf8))?;
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    continue; // blank keep-alive line; sniff the next message
                }
                return decode_v1(trimmed).map(Some);
            }
        }
    }
}

/// Reads one line of at most `limit` bytes (newline included) into `buf`.
///
/// Unlike `BufRead::read_line`, the cap is enforced *while reading*: an
/// attacker streaming an endless unterminated line is cut off at the cap
/// instead of growing the buffer without bound. On overflow the reader
/// drains (without buffering) through the terminating newline so the
/// connection stays framed, then reports [`ServeError::OversizedLine`] with
/// the true line size. Returns the bytes consumed; `0` means clean EOF.
pub fn read_bounded_line<R: BufRead>(r: &mut R, buf: &mut Vec<u8>, limit: usize) -> Result<usize> {
    buf.clear();
    let mut total = 0usize;
    let mut overflowed = false;
    loop {
        let available = r.fill_buf()?;
        if available.is_empty() {
            // EOF. A partial unterminated line is handed to the caller;
            // oversize still errors below.
            break;
        }
        let (chunk, done) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (&available[..=i], true),
            None => (available, false),
        };
        let used = chunk.len();
        total += used;
        if !overflowed {
            if buf.len() + used > limit {
                overflowed = true;
                buf.clear();
            } else {
                buf.extend_from_slice(chunk);
            }
        }
        r.consume(used);
        if done {
            break;
        }
    }
    if overflowed {
        return Err(ServeError::OversizedLine { got: total, limit });
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn bounded_reader_enforces_the_cap_and_stays_framed() {
        // A 100-byte line against a 16-byte cap, followed by a small line:
        // the oversized line errors with its true size, and the next read
        // lands cleanly on the following line.
        let mut wire = vec![b'x'; 100];
        wire.push(b'\n');
        wire.extend_from_slice(b"ok\n");
        // Tiny BufReader capacity so the line spans many fill_buf chunks.
        let mut reader = BufReader::with_capacity(8, &wire[..]);
        let mut buf = Vec::new();
        let err = read_bounded_line(&mut reader, &mut buf, 16).unwrap_err();
        match err {
            ServeError::OversizedLine { got, limit } => {
                assert_eq!(got, 101, "true size, newline included");
                assert_eq!(limit, 16);
            }
            other => panic!("expected OversizedLine, got {other}"),
        }
        assert_eq!(read_bounded_line(&mut reader, &mut buf, 16).unwrap(), 3);
        assert_eq!(buf, b"ok\n");
    }

    #[test]
    fn bounded_reader_handles_eof_and_exact_fit() {
        // Unterminated final line under the cap: delivered as-is.
        let mut reader = BufReader::with_capacity(4, "tail".as_bytes());
        let mut buf = Vec::new();
        assert_eq!(read_bounded_line(&mut reader, &mut buf, 16).unwrap(), 4);
        assert_eq!(buf, b"tail");
        assert_eq!(read_bounded_line(&mut reader, &mut buf, 16).unwrap(), 0, "clean EOF");
        // A line of exactly `limit` bytes fits; one more does not.
        let mut reader = BufReader::new("abc\nabcd\n".as_bytes());
        assert_eq!(read_bounded_line(&mut reader, &mut buf, 4).unwrap(), 4);
        assert!(matches!(
            read_bounded_line(&mut reader, &mut buf, 4),
            Err(ServeError::OversizedLine { got: 5, limit: 4 })
        ));
        // Oversized unterminated line at EOF still errors.
        let mut reader = BufReader::new("xxxxxxxxxx".as_bytes());
        assert!(matches!(
            read_bounded_line(&mut reader, &mut buf, 4),
            Err(ServeError::OversizedLine { got: 10, limit: 4 })
        ));
    }

    #[test]
    fn requests_round_trip_in_both_versions_over_one_stream() {
        let reqs = [
            Request::Ping,
            Request::Locate { site: "lab".into(), y: vec![-50.0, -41.5] },
            Request::Refresh { site: "lab".into() },
            Request::Shutdown,
        ];
        let mut buf = Vec::new();
        // Interleave versions on the same stream: the reader renegotiates
        // per message.
        for (i, r) in reqs.iter().enumerate() {
            let v = if i % 2 == 0 { WireVersion::V1Json } else { WireVersion::V2Binary };
            write_request(&mut buf, r, v).unwrap();
        }
        let mut reader = BufReader::new(&buf[..]);
        let mut ver = WireVersion::V1Json;
        for (i, want) in reqs.iter().enumerate() {
            let got = read_request(&mut reader, &mut ver).unwrap().unwrap();
            let expect = if i % 2 == 0 { WireVersion::V1Json } else { WireVersion::V2Binary };
            assert_eq!(ver, expect, "sniffed version for message {i}");
            let mut a = Vec::new();
            let mut b = Vec::new();
            v1::encode_request(&got, &mut a);
            v1::encode_request(want, &mut b);
            assert_eq!(a, b, "message {i} survived the round trip");
        }
        assert!(read_request(&mut reader, &mut ver).unwrap().is_none());
    }

    #[test]
    fn blank_lines_are_skipped_and_garbage_rejected() {
        let mut reader = BufReader::new("\n\n{\"cmd\":\"ping\"}\nnot json\n".as_bytes());
        let mut ver = WireVersion::V1Json;
        let got = read_request(&mut reader, &mut ver).unwrap().unwrap();
        assert!(matches!(got, Request::Ping));
        assert!(matches!(
            read_request(&mut reader, &mut ver),
            Err(ServeError::Wire(taf_wire::WireError::Malformed(_)))
        ));
    }

    #[test]
    fn v2_checksum_and_frame_errors_surface_as_wire_errors() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Ping, WireVersion::V2Binary).unwrap();
        let n = buf.len();
        buf[n - 5] ^= 0x10; // flip a payload bit, invalidating the checksum
        let mut reader = BufReader::new(&buf[..]);
        let mut ver = WireVersion::V1Json;
        match read_request(&mut reader, &mut ver) {
            Err(ServeError::Wire(e)) => {
                assert!(matches!(e, taf_wire::WireError::ChecksumMismatch { .. }), "got {e:?}");
                assert!(e.is_recoverable());
            }
            other => panic!("expected a checksum error, got {other:?}"),
        }
        assert_eq!(ver, WireVersion::V2Binary, "version sniffed before the failure");
    }
}
