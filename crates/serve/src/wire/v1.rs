//! v1 message codec: hand-rolled newline-delimited JSON, byte-compatible
//! with the `serde_json` encoding of the [`crate::protocol`] derives.
//!
//! Byte compatibility is a hard contract, not an aspiration — the protocol
//! tests re-encode through `serde_json` and assert equality. Concretely:
//! tagged unions put the `cmd`/`reply` tag first, fields follow in
//! declaration order, every field is emitted (`None` as `null`), numbers
//! render the way the workspace `serde_json` renders them, and decoding
//! honors the same `#[serde(default)]` semantics the derives declare.

use crate::maintenance::MaintenancePolicy;
use crate::protocol::{
    EndpointStats, Fix, Request, Response, ShardStats, SiteInfo, SiteStats, StatsReport,
};
use crate::Result;
use taf_wire::json::{self, JsonValue, JsonWriter};
use taf_wire::types as wt;
use taf_wire::WireError;

/// Encodes one request as a single compact JSON object (no trailing newline).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let mut w = JsonWriter::new(out);
    w.begin_obj();
    w.key("cmd");
    match req {
        Request::AddSite { site, snapshot, day, policy } => {
            w.str_val("add-site");
            w.key("site");
            w.str_val(site);
            w.key("snapshot");
            wt::json_write_snapshot(&mut w, snapshot);
            w.key("day");
            w.f64_val(*day);
            w.key("policy");
            match policy {
                Some(p) => write_policy(&mut w, p),
                None => w.null_val(),
            }
        }
        Request::RemoveSite { site } => {
            w.str_val("remove-site");
            w.key("site");
            w.str_val(site);
        }
        Request::ListSites => w.str_val("list-sites"),
        Request::Locate { site, y } => {
            w.str_val("locate");
            w.key("site");
            w.str_val(site);
            w.key("y");
            w.f64s_val(y);
        }
        Request::LocateStream { site } => {
            w.str_val("locate-stream");
            w.key("site");
            w.str_val(site);
        }
        Request::LocateBatch { site, ys } => {
            w.str_val("locate-batch");
            w.key("site");
            w.str_val(site);
            w.key("ys");
            w.begin_arr();
            for y in ys {
                w.f64s_val(y);
            }
            w.end_arr();
        }
        Request::Ingest { site, ref_cell, day, samples } => {
            w.str_val("ingest");
            w.key("site");
            w.str_val(site);
            w.key("ref_cell");
            match ref_cell {
                Some(c) => w.usize_val(*c),
                None => w.null_val(),
            }
            w.key("day");
            w.f64_val(*day);
            w.key("samples");
            w.begin_arr();
            for s in samples {
                wt::json_write_link_sample(&mut w, s);
            }
            w.end_arr();
        }
        Request::Track { site, stream, y, dt_s } => {
            w.str_val("track");
            w.key("site");
            w.str_val(site);
            w.key("stream");
            w.str_val(stream);
            w.key("y");
            w.f64s_val(y);
            w.key("dt_s");
            w.f64_val(*dt_s);
        }
        Request::Detect { site, stream, y } => {
            w.str_val("detect");
            w.key("site");
            w.str_val(site);
            w.key("stream");
            w.str_val(stream);
            w.key("y");
            w.f64s_val(y);
        }
        Request::MeasureRefs { site, day, columns, empty } => {
            w.str_val("measure-refs");
            w.key("site");
            w.str_val(site);
            w.key("day");
            w.f64_val(*day);
            w.key("columns");
            wt::json_write_matrix(&mut w, columns);
            w.key("empty");
            w.f64s_val(empty);
        }
        Request::Refresh { site } => {
            w.str_val("refresh");
            w.key("site");
            w.str_val(site);
        }
        Request::Stats => w.str_val("stats"),
        Request::Ping => w.str_val("ping"),
        Request::Shutdown => w.str_val("shutdown"),
    }
    w.end_obj();
}

/// Decodes one request from its JSON text.
pub fn decode_request(text: &str) -> Result<Request> {
    let v = json::parse(text)?;
    let tag = v
        .get("cmd")
        .and_then(|t| t.as_str())
        .ok_or_else(|| WireError::malformed("Request: missing or non-string tag `cmd`"))?
        .to_string();
    let c = "Request";
    Ok(match tag.as_str() {
        "add-site" => Request::AddSite {
            site: json::get_string(json::field(&v, "site", c)?, "Request.site")?,
            snapshot: Box::new(wt::json_read_snapshot(
                json::field(&v, "snapshot", c)?,
                "Request.snapshot",
            )?),
            day: opt_f64(&v, "day", 0.0)?,
            policy: match v.get("policy") {
                None => None,
                Some(p) if p.is_null() => None,
                Some(p) => Some(read_policy(p)?),
            },
        },
        "remove-site" => Request::RemoveSite { site: req_string(&v, "site")? },
        "list-sites" => Request::ListSites,
        "locate" => Request::Locate {
            site: req_string(&v, "site")?,
            y: json::get_f64s(json::field(&v, "y", c)?, "Request.y")?,
        },
        "locate-stream" => Request::LocateStream { site: req_string(&v, "site")? },
        "locate-batch" => Request::LocateBatch {
            site: req_string(&v, "site")?,
            ys: json::get_arr(json::field(&v, "ys", c)?, "Request.ys")?
                .iter()
                .map(|y| json::get_f64s(y, "Request.ys"))
                .collect::<taf_wire::Result<_>>()?,
        },
        "ingest" => Request::Ingest {
            site: req_string(&v, "site")?,
            ref_cell: match v.get("ref_cell") {
                None => None,
                Some(x) if x.is_null() => None,
                Some(x) => Some(json::get_usize(x, "Request.ref_cell")?),
            },
            day: opt_f64(&v, "day", 0.0)?,
            samples: json::get_arr(json::field(&v, "samples", c)?, "Request.samples")?
                .iter()
                .map(|s| wt::json_read_link_sample(s, "Request.samples"))
                .collect::<taf_wire::Result<_>>()?,
        },
        "track" => Request::Track {
            site: req_string(&v, "site")?,
            stream: req_string(&v, "stream")?,
            y: json::get_f64s(json::field(&v, "y", c)?, "Request.y")?,
            dt_s: json::get_f64(json::field(&v, "dt_s", c)?, "Request.dt_s")?,
        },
        "detect" => Request::Detect {
            site: req_string(&v, "site")?,
            stream: req_string(&v, "stream")?,
            y: json::get_f64s(json::field(&v, "y", c)?, "Request.y")?,
        },
        "measure-refs" => Request::MeasureRefs {
            site: req_string(&v, "site")?,
            day: json::get_f64(json::field(&v, "day", c)?, "Request.day")?,
            columns: wt::json_read_matrix(json::field(&v, "columns", c)?, "Request.columns")?,
            empty: json::get_f64s(json::field(&v, "empty", c)?, "Request.empty")?,
        },
        "refresh" => Request::Refresh { site: req_string(&v, "site")? },
        "stats" => Request::Stats,
        "ping" => Request::Ping,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(WireError::malformed(format!("Request: unknown variant `{other}`")).into())
        }
    })
}

/// Encodes one response as a single compact JSON object (no newline).
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    let mut w = JsonWriter::new(out);
    w.begin_obj();
    w.key("reply");
    match resp {
        Response::Error { message } => {
            w.str_val("error");
            w.key("message");
            w.str_val(message);
        }
        Response::SiteAdded { site, links, cells } => {
            w.str_val("site-added");
            w.key("site");
            w.str_val(site);
            w.key("links");
            w.usize_val(*links);
            w.key("cells");
            w.usize_val(*cells);
        }
        Response::SiteRemoved { site } => {
            w.str_val("site-removed");
            w.key("site");
            w.str_val(site);
        }
        Response::Sites { sites } => {
            w.str_val("sites");
            w.key("sites");
            w.begin_arr();
            for s in sites {
                write_site_info(&mut w, s);
            }
            w.end_arr();
        }
        Response::Located { cell, x, y, distance_db, version } => {
            w.str_val("located");
            w.key("cell");
            w.usize_val(*cell);
            w.key("x");
            w.f64_val(*x);
            w.key("y");
            w.f64_val(*y);
            w.key("distance_db");
            w.f64_val(*distance_db);
            w.key("version");
            w.u64_val(*version);
        }
        Response::StreamLocated {
            cell,
            x,
            y,
            distance_db,
            version,
            missing_links,
            stale_links,
            stream_t_s,
            window_samples,
        } => {
            w.str_val("stream-located");
            w.key("cell");
            w.usize_val(*cell);
            w.key("x");
            w.f64_val(*x);
            w.key("y");
            w.f64_val(*y);
            w.key("distance_db");
            w.f64_val(*distance_db);
            w.key("version");
            w.u64_val(*version);
            w.key("missing_links");
            w.usizes_val(missing_links);
            w.key("stale_links");
            w.usizes_val(stale_links);
            w.key("stream_t_s");
            w.f64_val(*stream_t_s);
            w.key("window_samples");
            w.usize_val(*window_samples);
        }
        Response::LocatedBatch { fixes, version } => {
            w.str_val("located-batch");
            w.key("fixes");
            w.begin_arr();
            for f in fixes {
                write_fix(&mut w, f);
            }
            w.end_arr();
            w.key("version");
            w.u64_val(*version);
        }
        Response::Ingested { report } => {
            w.str_val("ingested");
            w.key("report");
            wt::json_write_batch_report(&mut w, report);
        }
        Response::Tracked { x, y, effective_sample_size } => {
            w.str_val("tracked");
            w.key("x");
            w.f64_val(*x);
            w.key("y");
            w.f64_val(*y);
            w.key("effective_sample_size");
            w.f64_val(*effective_sample_size);
        }
        Response::Detected { present, detail } => {
            w.str_val("detected");
            w.key("present");
            w.bool_val(*present);
            w.key("detail");
            w.str_val(detail);
        }
        Response::RefsAccepted { recommendation, estimated_error_db } => {
            w.str_val("refs-accepted");
            w.key("recommendation");
            w.str_val(recommendation);
            w.key("estimated_error_db");
            w.f64_val(*estimated_error_db);
        }
        Response::Refreshed { iterations, converged, mean_abs_change_db, version } => {
            w.str_val("refreshed");
            w.key("iterations");
            w.usize_val(*iterations);
            w.key("converged");
            w.bool_val(*converged);
            w.key("mean_abs_change_db");
            w.f64_val(*mean_abs_change_db);
            w.key("version");
            w.u64_val(*version);
        }
        Response::Stats { report } => {
            w.str_val("stats");
            w.key("report");
            write_stats_report(&mut w, report);
        }
        Response::Pong => w.str_val("pong"),
        Response::ShuttingDown => w.str_val("shutting-down"),
        Response::Overloaded { site, shard, reason, retry_after_ms } => {
            w.str_val("overloaded");
            w.key("site");
            w.str_val(site);
            w.key("shard");
            w.usize_val(*shard);
            w.key("reason");
            w.str_val(reason);
            w.key("retry_after_ms");
            w.u64_val(*retry_after_ms);
        }
    }
    w.end_obj();
}

/// Decodes one response from its JSON text.
pub fn decode_response(text: &str) -> Result<Response> {
    let v = json::parse(text)?;
    let tag = v
        .get("reply")
        .and_then(|t| t.as_str())
        .ok_or_else(|| WireError::malformed("Response: missing or non-string tag `reply`"))?
        .to_string();
    let c = "Response";
    Ok(match tag.as_str() {
        "error" => Response::Error {
            message: json::get_string(json::field(&v, "message", c)?, "Response.message")?,
        },
        "site-added" => Response::SiteAdded {
            site: json::get_string(json::field(&v, "site", c)?, "Response.site")?,
            links: json::get_usize(json::field(&v, "links", c)?, "Response.links")?,
            cells: json::get_usize(json::field(&v, "cells", c)?, "Response.cells")?,
        },
        "site-removed" => Response::SiteRemoved {
            site: json::get_string(json::field(&v, "site", c)?, "Response.site")?,
        },
        "sites" => Response::Sites {
            sites: json::get_arr(json::field(&v, "sites", c)?, "Response.sites")?
                .iter()
                .map(read_site_info)
                .collect::<Result<_>>()?,
        },
        "located" => Response::Located {
            cell: json::get_usize(json::field(&v, "cell", c)?, "Response.cell")?,
            x: json::get_f64(json::field(&v, "x", c)?, "Response.x")?,
            y: json::get_f64(json::field(&v, "y", c)?, "Response.y")?,
            distance_db: json::get_f64(json::field(&v, "distance_db", c)?, "Response.distance_db")?,
            version: json::get_u64(json::field(&v, "version", c)?, "Response.version")?,
        },
        "stream-located" => Response::StreamLocated {
            cell: json::get_usize(json::field(&v, "cell", c)?, "Response.cell")?,
            x: json::get_f64(json::field(&v, "x", c)?, "Response.x")?,
            y: json::get_f64(json::field(&v, "y", c)?, "Response.y")?,
            distance_db: json::get_f64(json::field(&v, "distance_db", c)?, "Response.distance_db")?,
            version: json::get_u64(json::field(&v, "version", c)?, "Response.version")?,
            missing_links: json::get_usizes(
                json::field(&v, "missing_links", c)?,
                "Response.missing_links",
            )?,
            stale_links: json::get_usizes(
                json::field(&v, "stale_links", c)?,
                "Response.stale_links",
            )?,
            stream_t_s: json::get_f64(json::field(&v, "stream_t_s", c)?, "Response.stream_t_s")?,
            window_samples: json::get_usize(
                json::field(&v, "window_samples", c)?,
                "Response.window_samples",
            )?,
        },
        "located-batch" => Response::LocatedBatch {
            fixes: json::get_arr(json::field(&v, "fixes", c)?, "Response.fixes")?
                .iter()
                .map(read_fix)
                .collect::<Result<_>>()?,
            version: json::get_u64(json::field(&v, "version", c)?, "Response.version")?,
        },
        "ingested" => Response::Ingested {
            report: wt::json_read_batch_report(json::field(&v, "report", c)?, "Response.report")?,
        },
        "tracked" => Response::Tracked {
            x: json::get_f64(json::field(&v, "x", c)?, "Response.x")?,
            y: json::get_f64(json::field(&v, "y", c)?, "Response.y")?,
            effective_sample_size: json::get_f64(
                json::field(&v, "effective_sample_size", c)?,
                "Response.effective_sample_size",
            )?,
        },
        "detected" => Response::Detected {
            present: json::get_bool(json::field(&v, "present", c)?, "Response.present")?,
            detail: json::get_string(json::field(&v, "detail", c)?, "Response.detail")?,
        },
        "refs-accepted" => Response::RefsAccepted {
            recommendation: json::get_string(
                json::field(&v, "recommendation", c)?,
                "Response.recommendation",
            )?,
            estimated_error_db: json::get_f64(
                json::field(&v, "estimated_error_db", c)?,
                "Response.estimated_error_db",
            )?,
        },
        "refreshed" => Response::Refreshed {
            iterations: json::get_usize(json::field(&v, "iterations", c)?, "Response.iterations")?,
            converged: json::get_bool(json::field(&v, "converged", c)?, "Response.converged")?,
            mean_abs_change_db: json::get_f64(
                json::field(&v, "mean_abs_change_db", c)?,
                "Response.mean_abs_change_db",
            )?,
            version: json::get_u64(json::field(&v, "version", c)?, "Response.version")?,
        },
        "stats" => Response::Stats { report: read_stats_report(json::field(&v, "report", c)?)? },
        "pong" => Response::Pong,
        "shutting-down" => Response::ShuttingDown,
        "overloaded" => Response::Overloaded {
            site: json::get_string(json::field(&v, "site", c)?, "Response.site")?,
            shard: json::get_usize(json::field(&v, "shard", c)?, "Response.shard")?,
            reason: json::get_string(json::field(&v, "reason", c)?, "Response.reason")?,
            retry_after_ms: json::get_u64(
                json::field(&v, "retry_after_ms", c)?,
                "Response.retry_after_ms",
            )?,
        },
        other => {
            return Err(WireError::malformed(format!("Response: unknown variant `{other}`")).into())
        }
    })
}

/// Encodes a maintenance policy exactly the way its serde derive does.
pub fn write_policy(w: &mut JsonWriter<'_>, p: &MaintenancePolicy) {
    w.begin_obj();
    w.key("interval_ms");
    w.u64_val(p.interval_ms);
    w.key("auto_refresh");
    w.bool_val(p.auto_refresh);
    w.key("breach_streak");
    w.u32_val(p.breach_streak);
    w.key("monitor_cells");
    w.usize_val(p.monitor_cells);
    w.key("manual_tick");
    w.bool_val(p.manual_tick);
    w.key("monitor");
    wt::json_write_monitor_config(w, &p.monitor);
    w.key("guard");
    wt::json_write_guard(w, &p.guard);
    w.key("quarantine_after");
    w.u32_val(p.quarantine_after);
    w.key("quarantine_cooldown_ticks");
    w.u32_val(p.quarantine_cooldown_ticks);
    w.key("backoff_cap");
    w.u32_val(p.backoff_cap);
    w.key("debug_panic_ticks");
    w.u32_val(p.debug_panic_ticks);
    w.end_obj();
}

/// Decodes a maintenance policy; every field is optional and falls back to
/// its serde default, mirroring the derive.
pub fn read_policy(v: &JsonValue) -> Result<MaintenancePolicy> {
    let mut p = MaintenancePolicy::default();
    let c = "MaintenancePolicy";
    if let Some(x) = v.get("interval_ms") {
        p.interval_ms = json::get_u64(x, "MaintenancePolicy.interval_ms")?;
    }
    if let Some(x) = v.get("auto_refresh") {
        p.auto_refresh = json::get_bool(x, "MaintenancePolicy.auto_refresh")?;
    }
    if let Some(x) = v.get("breach_streak") {
        p.breach_streak = json::get_u32(x, "MaintenancePolicy.breach_streak")?;
    }
    if let Some(x) = v.get("monitor_cells") {
        p.monitor_cells = json::get_usize(x, "MaintenancePolicy.monitor_cells")?;
    }
    if let Some(x) = v.get("manual_tick") {
        p.manual_tick = json::get_bool(x, "MaintenancePolicy.manual_tick")?;
    }
    if let Some(x) = v.get("monitor") {
        p.monitor = wt::json_read_monitor_config(x, c)?;
    }
    if let Some(x) = v.get("guard") {
        p.guard = wt::json_read_guard(x, c)?;
    }
    if let Some(x) = v.get("quarantine_after") {
        p.quarantine_after = json::get_u32(x, "MaintenancePolicy.quarantine_after")?;
    }
    if let Some(x) = v.get("quarantine_cooldown_ticks") {
        p.quarantine_cooldown_ticks =
            json::get_u32(x, "MaintenancePolicy.quarantine_cooldown_ticks")?;
    }
    if let Some(x) = v.get("backoff_cap") {
        p.backoff_cap = json::get_u32(x, "MaintenancePolicy.backoff_cap")?;
    }
    if let Some(x) = v.get("debug_panic_ticks") {
        p.debug_panic_ticks = json::get_u32(x, "MaintenancePolicy.debug_panic_ticks")?;
    }
    Ok(p)
}

fn write_fix(w: &mut JsonWriter<'_>, f: &Fix) {
    w.begin_obj();
    w.key("cell");
    w.usize_val(f.cell);
    w.key("x");
    w.f64_val(f.x);
    w.key("y");
    w.f64_val(f.y);
    w.key("distance_db");
    w.f64_val(f.distance_db);
    w.end_obj();
}

fn read_fix(v: &JsonValue) -> Result<Fix> {
    let c = "Fix";
    Ok(Fix {
        cell: json::get_usize(json::field(v, "cell", c)?, "Fix.cell")?,
        x: json::get_f64(json::field(v, "x", c)?, "Fix.x")?,
        y: json::get_f64(json::field(v, "y", c)?, "Fix.y")?,
        distance_db: json::get_f64(json::field(v, "distance_db", c)?, "Fix.distance_db")?,
    })
}

fn write_site_info(w: &mut JsonWriter<'_>, s: &SiteInfo) {
    w.begin_obj();
    w.key("site");
    w.str_val(&s.site);
    w.key("links");
    w.usize_val(s.links);
    w.key("cells");
    w.usize_val(s.cells);
    w.key("version");
    w.u64_val(s.version);
    w.end_obj();
}

fn read_site_info(v: &JsonValue) -> Result<SiteInfo> {
    let c = "SiteInfo";
    Ok(SiteInfo {
        site: json::get_string(json::field(v, "site", c)?, "SiteInfo.site")?,
        links: json::get_usize(json::field(v, "links", c)?, "SiteInfo.links")?,
        cells: json::get_usize(json::field(v, "cells", c)?, "SiteInfo.cells")?,
        version: json::get_u64(json::field(v, "version", c)?, "SiteInfo.version")?,
    })
}

fn write_stats_report(w: &mut JsonWriter<'_>, r: &StatsReport) {
    w.begin_obj();
    w.key("uptime_s");
    w.f64_val(r.uptime_s);
    w.key("conn_timeouts");
    w.u64_val(r.conn_timeouts);
    w.key("conn_resets");
    w.u64_val(r.conn_resets);
    w.key("conn_panics");
    w.u64_val(r.conn_panics);
    w.key("wire_frame_too_large");
    w.u64_val(r.wire_frame_too_large);
    w.key("wire_bad_magic");
    w.u64_val(r.wire_bad_magic);
    w.key("wire_checksum_mismatch");
    w.u64_val(r.wire_checksum_mismatch);
    w.key("wire_bad_utf8");
    w.u64_val(r.wire_bad_utf8);
    w.key("wire_malformed");
    w.u64_val(r.wire_malformed);
    w.key("endpoints");
    w.begin_arr();
    for e in &r.endpoints {
        write_endpoint_stats(w, e);
    }
    w.end_arr();
    w.key("sites");
    w.begin_arr();
    for s in &r.sites {
        write_site_stats(w, s);
    }
    w.end_arr();
    w.key("shards");
    w.begin_arr();
    for s in &r.shards {
        write_shard_stats(w, s);
    }
    w.end_arr();
    w.end_obj();
}

fn read_stats_report(v: &JsonValue) -> Result<StatsReport> {
    let c = "StatsReport";
    Ok(StatsReport {
        uptime_s: json::get_f64(json::field(v, "uptime_s", c)?, "StatsReport.uptime_s")?,
        conn_timeouts: opt_u64(v, "conn_timeouts")?,
        conn_resets: opt_u64(v, "conn_resets")?,
        conn_panics: opt_u64(v, "conn_panics")?,
        wire_frame_too_large: opt_u64(v, "wire_frame_too_large")?,
        wire_bad_magic: opt_u64(v, "wire_bad_magic")?,
        wire_checksum_mismatch: opt_u64(v, "wire_checksum_mismatch")?,
        wire_bad_utf8: opt_u64(v, "wire_bad_utf8")?,
        wire_malformed: opt_u64(v, "wire_malformed")?,
        endpoints: json::get_arr(json::field(v, "endpoints", c)?, "StatsReport.endpoints")?
            .iter()
            .map(read_endpoint_stats)
            .collect::<Result<_>>()?,
        sites: json::get_arr(json::field(v, "sites", c)?, "StatsReport.sites")?
            .iter()
            .map(read_site_stats)
            .collect::<Result<_>>()?,
        shards: match v.get("shards") {
            None => Vec::new(),
            Some(x) => json::get_arr(x, "StatsReport.shards")?
                .iter()
                .map(read_shard_stats)
                .collect::<Result<_>>()?,
        },
    })
}

fn write_shard_stats(w: &mut JsonWriter<'_>, s: &ShardStats) {
    w.begin_obj();
    w.key("shard");
    w.usize_val(s.shard);
    w.key("sites");
    w.usize_val(s.sites);
    w.key("queue_depth_samples");
    w.u64_val(s.queue_depth_samples);
    w.key("offered_batches");
    w.u64_val(s.offered_batches);
    w.key("offered_samples");
    w.u64_val(s.offered_samples);
    w.key("admitted_batches");
    w.u64_val(s.admitted_batches);
    w.key("admitted_samples");
    w.u64_val(s.admitted_samples);
    w.key("deferred_batches");
    w.u64_val(s.deferred_batches);
    w.key("deferred_samples");
    w.u64_val(s.deferred_samples);
    w.key("rejected_batches");
    w.u64_val(s.rejected_batches);
    w.key("rejected_samples");
    w.u64_val(s.rejected_samples);
    w.end_obj();
}

fn read_shard_stats(v: &JsonValue) -> Result<ShardStats> {
    let c = "ShardStats";
    Ok(ShardStats {
        shard: json::get_usize(json::field(v, "shard", c)?, "ShardStats.shard")?,
        sites: json::get_usize(json::field(v, "sites", c)?, "ShardStats.sites")?,
        queue_depth_samples: json::get_u64(
            json::field(v, "queue_depth_samples", c)?,
            "ShardStats.queue_depth_samples",
        )?,
        offered_batches: json::get_u64(
            json::field(v, "offered_batches", c)?,
            "ShardStats.offered_batches",
        )?,
        offered_samples: json::get_u64(
            json::field(v, "offered_samples", c)?,
            "ShardStats.offered_samples",
        )?,
        admitted_batches: json::get_u64(
            json::field(v, "admitted_batches", c)?,
            "ShardStats.admitted_batches",
        )?,
        admitted_samples: json::get_u64(
            json::field(v, "admitted_samples", c)?,
            "ShardStats.admitted_samples",
        )?,
        deferred_batches: json::get_u64(
            json::field(v, "deferred_batches", c)?,
            "ShardStats.deferred_batches",
        )?,
        deferred_samples: json::get_u64(
            json::field(v, "deferred_samples", c)?,
            "ShardStats.deferred_samples",
        )?,
        rejected_batches: json::get_u64(
            json::field(v, "rejected_batches", c)?,
            "ShardStats.rejected_batches",
        )?,
        rejected_samples: json::get_u64(
            json::field(v, "rejected_samples", c)?,
            "ShardStats.rejected_samples",
        )?,
    })
}

fn write_endpoint_stats(w: &mut JsonWriter<'_>, e: &EndpointStats) {
    w.begin_obj();
    w.key("endpoint");
    w.str_val(&e.endpoint);
    w.key("requests");
    w.u64_val(e.requests);
    w.key("errors");
    w.u64_val(e.errors);
    w.key("p50_us");
    w.u64_val(e.p50_us);
    w.key("p95_us");
    w.u64_val(e.p95_us);
    w.key("p99_us");
    w.u64_val(e.p99_us);
    w.key("max_us");
    w.u64_val(e.max_us);
    w.end_obj();
}

fn read_endpoint_stats(v: &JsonValue) -> Result<EndpointStats> {
    let c = "EndpointStats";
    Ok(EndpointStats {
        endpoint: json::get_string(json::field(v, "endpoint", c)?, "EndpointStats.endpoint")?,
        requests: json::get_u64(json::field(v, "requests", c)?, "EndpointStats.requests")?,
        errors: json::get_u64(json::field(v, "errors", c)?, "EndpointStats.errors")?,
        p50_us: json::get_u64(json::field(v, "p50_us", c)?, "EndpointStats.p50_us")?,
        p95_us: json::get_u64(json::field(v, "p95_us", c)?, "EndpointStats.p95_us")?,
        p99_us: json::get_u64(json::field(v, "p99_us", c)?, "EndpointStats.p99_us")?,
        max_us: json::get_u64(json::field(v, "max_us", c)?, "EndpointStats.max_us")?,
    })
}

fn write_site_stats(w: &mut JsonWriter<'_>, s: &SiteStats) {
    w.begin_obj();
    w.key("site");
    w.str_val(&s.site);
    w.key("version");
    w.u64_val(s.version);
    w.key("refreshed_day");
    w.f64_val(s.refreshed_day);
    w.key("pending_refs");
    w.bool_val(s.pending_refs);
    w.key("estimated_error_db");
    match s.estimated_error_db {
        Some(x) => w.f64_val(x),
        None => w.null_val(),
    }
    w.key("maintenance_checks");
    w.u64_val(s.maintenance_checks);
    w.key("auto_refreshes");
    w.u64_val(s.auto_refreshes);
    w.key("refresh_rejections");
    w.u64_val(s.refresh_rejections);
    w.key("last_reject_reason");
    w.opt_str_val(s.last_reject_reason.as_deref());
    w.key("consecutive_failures");
    w.u32_val(s.consecutive_failures);
    w.key("quarantined");
    w.bool_val(s.quarantined);
    w.key("tick_panics");
    w.u64_val(s.tick_panics);
    w.key("persist_failures");
    w.u64_val(s.persist_failures);
    w.key("active_trackers");
    w.usize_val(s.active_trackers);
    w.key("ingest");
    wt::json_write_ingest_stats(w, &s.ingest);
    w.key("stream_clock_s");
    w.f64_val(s.stream_clock_s);
    w.key("active_ref_captures");
    w.usize_val(s.active_ref_captures);
    w.key("planned_cost");
    w.u64_val(s.planned_cost);
    w.key("actual_cost");
    w.u64_val(s.actual_cost);
    w.key("full_survey_cost");
    w.u64_val(s.full_survey_cost);
    w.key("plan_policy");
    w.opt_str_val(s.plan_policy.as_deref());
    w.key("shard");
    w.usize_val(s.shard);
    w.end_obj();
}

fn read_site_stats(v: &JsonValue) -> Result<SiteStats> {
    let c = "SiteStats";
    Ok(SiteStats {
        site: json::get_string(json::field(v, "site", c)?, "SiteStats.site")?,
        version: json::get_u64(json::field(v, "version", c)?, "SiteStats.version")?,
        refreshed_day: json::get_f64(
            json::field(v, "refreshed_day", c)?,
            "SiteStats.refreshed_day",
        )?,
        pending_refs: json::get_bool(json::field(v, "pending_refs", c)?, "SiteStats.pending_refs")?,
        estimated_error_db: match v.get("estimated_error_db") {
            None => None,
            Some(x) if x.is_null() => None,
            Some(x) => Some(json::get_f64(x, "SiteStats.estimated_error_db")?),
        },
        maintenance_checks: json::get_u64(
            json::field(v, "maintenance_checks", c)?,
            "SiteStats.maintenance_checks",
        )?,
        auto_refreshes: json::get_u64(
            json::field(v, "auto_refreshes", c)?,
            "SiteStats.auto_refreshes",
        )?,
        refresh_rejections: opt_u64(v, "refresh_rejections")?,
        last_reject_reason: match v.get("last_reject_reason") {
            None => None,
            Some(x) if x.is_null() => None,
            Some(x) => Some(json::get_string(x, "SiteStats.last_reject_reason")?),
        },
        consecutive_failures: match v.get("consecutive_failures") {
            None => 0,
            Some(x) => json::get_u32(x, "SiteStats.consecutive_failures")?,
        },
        quarantined: match v.get("quarantined") {
            None => false,
            Some(x) => json::get_bool(x, "SiteStats.quarantined")?,
        },
        tick_panics: opt_u64(v, "tick_panics")?,
        persist_failures: opt_u64(v, "persist_failures")?,
        active_trackers: json::get_usize(
            json::field(v, "active_trackers", c)?,
            "SiteStats.active_trackers",
        )?,
        ingest: wt::json_read_ingest_stats(json::field(v, "ingest", c)?, "SiteStats.ingest")?,
        stream_clock_s: json::get_f64(
            json::field(v, "stream_clock_s", c)?,
            "SiteStats.stream_clock_s",
        )?,
        active_ref_captures: json::get_usize(
            json::field(v, "active_ref_captures", c)?,
            "SiteStats.active_ref_captures",
        )?,
        planned_cost: opt_u64(v, "planned_cost")?,
        actual_cost: opt_u64(v, "actual_cost")?,
        full_survey_cost: opt_u64(v, "full_survey_cost")?,
        plan_policy: match v.get("plan_policy") {
            None => None,
            Some(x) if x.is_null() => None,
            Some(x) => Some(json::get_string(x, "SiteStats.plan_policy")?),
        },
        shard: match v.get("shard") {
            None => 0,
            Some(x) => json::get_usize(x, "SiteStats.shard")?,
        },
    })
}

fn req_string(v: &JsonValue, name: &str) -> Result<String> {
    json::get_string(json::field(v, name, "Request")?, "Request").map_err(Into::into)
}

/// An `f64` field with a `#[serde(default)]` fallback.
fn opt_f64(v: &JsonValue, name: &str, default: f64) -> Result<f64> {
    match v.get(name) {
        None => Ok(default),
        Some(x) => json::get_f64(x, name).map_err(Into::into),
    }
}

/// A `u64` field with a `#[serde(default)]` fallback of zero.
fn opt_u64(v: &JsonValue, name: &str) -> Result<u64> {
    match v.get(name) {
        None => Ok(0),
        Some(x) => json::get_u64(x, name).map_err(Into::into),
    }
}
