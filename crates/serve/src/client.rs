//! A thin blocking line-protocol client.
//!
//! One request per call, one response per line, in order — the protocol is
//! strictly request/response per connection, so a persistent [`Client`] can
//! pipeline calls back to back without correlation ids.

use crate::protocol::{read_message, write_message, Fix, Request, Response};
use crate::{Result, ServeError};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use tafloc_ingest::{BatchReport, LinkSample};

/// A persistent connection to a `taflocd` server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sets the receive timeout for subsequent calls.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.writer.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads its response.
    pub fn call(&mut self, request: &Request) -> Result<Response> {
        write_message(&mut self.writer, request)?;
        read_message(&mut self.reader)?
            .ok_or_else(|| ServeError::Protocol("server closed the connection".into()))
    }

    /// Like [`call`](Client::call), but turns an error response into `Err` —
    /// for callers that treat server-side failures as failures.
    pub fn call_ok(&mut self, request: &Request) -> Result<Response> {
        match self.call(request)? {
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Ok(other),
        }
    }

    /// Convenience: `locate` returning `(cell, x, y, snapshot version)`.
    pub fn locate(&mut self, site: &str, y: &[f64]) -> Result<(usize, f64, f64, u64)> {
        match self.call_ok(&Request::Locate { site: site.to_string(), y: y.to_vec() })? {
            Response::Located { cell, x, y, version, .. } => Ok((cell, x, y, version)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?} to locate"))),
        }
    }

    /// Convenience: liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call_ok(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?} to ping"))),
        }
    }

    /// Convenience: push one batch of raw link samples into the site's live
    /// ingestion window, returning the per-batch accept/drop report.
    pub fn ingest(&mut self, site: &str, samples: Vec<LinkSample>) -> Result<BatchReport> {
        self.ingest_for(site, None, 0.0, samples)
    }

    /// Like [`ingest`](Client::ingest), but addressed: `ref_cell: Some(k)`
    /// feeds the capture window for reference cell `k` of a day-`day` survey.
    pub fn ingest_for(
        &mut self,
        site: &str,
        ref_cell: Option<usize>,
        day: f64,
        samples: Vec<LinkSample>,
    ) -> Result<BatchReport> {
        let req = Request::Ingest { site: site.to_string(), ref_cell, day, samples };
        match self.call_ok(&req)? {
            Response::Ingested { report } => Ok(report),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?} to ingest"))),
        }
    }

    /// Convenience: `locate-stream` returning `(cell, x, y, version)`.
    pub fn locate_stream(&mut self, site: &str) -> Result<(usize, f64, f64, u64)> {
        match self.call_ok(&Request::LocateStream { site: site.to_string() })? {
            Response::StreamLocated { cell, x, y, version, .. } => Ok((cell, x, y, version)),
            other => {
                Err(ServeError::Protocol(format!("unexpected reply {other:?} to locate-stream")))
            }
        }
    }

    /// Convenience: `locate-batch` returning the fixes and the single
    /// snapshot version that served them.
    pub fn locate_batch(&mut self, site: &str, ys: Vec<Vec<f64>>) -> Result<(Vec<Fix>, u64)> {
        match self.call_ok(&Request::LocateBatch { site: site.to_string(), ys })? {
            Response::LocatedBatch { fixes, version } => Ok((fixes, version)),
            other => {
                Err(ServeError::Protocol(format!("unexpected reply {other:?} to locate-batch")))
            }
        }
    }
}
