//! A thin blocking client speaking either wire protocol.
//!
//! [`Client::connect`] speaks v1 newline-delimited JSON (the compatibility
//! default); [`Client::connect_v2`] speaks the binary v2 framing. One
//! request per call, one response per message, in order — the protocol is
//! strictly request/response per connection, so a persistent [`Client`] can
//! pipeline calls back to back without correlation ids.
//!
//! [`Client::locate_with_retry`] adds a bounded, jittered-exponential-backoff
//! retry for *transient transport* failures only (reset, broken pipe,
//! timeout, a server restart dropping the connection). Semantic failures —
//! an error response, an unknown site, malformed JSON — are never retried:
//! the server already answered, and asking again cannot change the answer.

use crate::protocol::{Fix, Request, Response};
use crate::wire::{self, WireVersion};
use crate::{Result, ServeError};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use tafloc_ingest::{BatchReport, LinkSample};

/// Retry schedule for [`Client::locate_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, the first included (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each subsequent retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_delay: Duration,
    /// Seed for the deterministic backoff jitter (any value is fine; give
    /// concurrent clients different seeds so their retries don't align).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0x5EED,
        }
    }
}

/// Whether `err` is a transient transport failure that a retry (on a fresh
/// connection) can plausibly fix. Semantic errors — the server *answered*,
/// unhappily — must not be retried.
pub fn is_transient(err: &ServeError) -> bool {
    match err {
        ServeError::Io(e) => matches!(
            e.kind(),
            std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::ConnectionRefused
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::NotConnected
                | std::io::ErrorKind::TimedOut
                | std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::UnexpectedEof
        ),
        // The server (or its restart) closed the connection between our
        // request and its response — indistinguishable from a reset.
        ServeError::Protocol(s) => s == "server closed the connection",
        _ => false,
    }
}

/// xorshift64* step — a tiny deterministic jitter source (the workspace's
/// `rand` is a compile-only stub).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Outcome of a back-pressure-aware [`Client::try_ingest`] call.
#[derive(Debug, Clone)]
pub enum IngestOutcome {
    /// The batch was admitted and applied; the per-batch report.
    Ingested(BatchReport),
    /// Admission control pushed back; nothing was ingested.
    Overloaded {
        /// Shard that pushed back.
        shard: usize,
        /// `deferred` (retry after the hint) or `rejected` (over quota).
        reason: String,
        /// Suggested back-off before retrying (ms).
        retry_after_ms: u64,
    },
}

/// A persistent connection to a `taflocd` server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Peer address, kept so a retry can reconnect after a reset.
    peer: SocketAddr,
    /// Last timeout set via [`Client::set_timeout`], reapplied on reconnect.
    timeout: Option<Duration>,
    /// Protocol version this client speaks; survives reconnects.
    version: WireVersion,
}

impl Client {
    /// Connects to a running server speaking v1 JSON — the compatibility
    /// default every existing caller expects.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        Client::connect_with(addr, WireVersion::V1Json)
    }

    /// Connects speaking the v2 binary protocol (length-prefixed checksummed
    /// frames; dense `f64` payloads travel as raw bytes instead of decimal
    /// text).
    pub fn connect_v2<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        Client::connect_with(addr, WireVersion::V2Binary)
    }

    /// Connects speaking an explicit protocol version.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, version: WireVersion) -> Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let peer = writer.peer_addr()?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer, peer, timeout: None, version })
    }

    /// The protocol version this client speaks.
    pub fn version(&self) -> WireVersion {
        self.version
    }

    /// Sets the receive timeout for subsequent calls.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.writer.set_read_timeout(timeout)?;
        self.timeout = timeout;
        Ok(())
    }

    /// Drops the current connection and dials the same peer again,
    /// reapplying the configured timeout. Any half-read response on the old
    /// connection is discarded with it, so the new connection starts framed.
    pub fn reconnect(&mut self) -> Result<()> {
        let mut fresh = Client::connect_with(self.peer, self.version)?;
        fresh.set_timeout(self.timeout)?;
        *self = fresh;
        Ok(())
    }

    /// Sends one request and reads its response.
    pub fn call(&mut self, request: &Request) -> Result<Response> {
        wire::write_request(&mut self.writer, request, self.version)?;
        // The server replies in the request's version, but decode by
        // sniffing anyway — it is free, and it keeps the client honest if a
        // proxy re-frames the stream.
        let mut replied = self.version;
        wire::read_response(&mut self.reader, &mut replied)?
            .ok_or_else(|| ServeError::Protocol("server closed the connection".into()))
    }

    /// Like [`call`](Client::call), but turns an error response into `Err` —
    /// for callers that treat server-side failures as failures.
    pub fn call_ok(&mut self, request: &Request) -> Result<Response> {
        match self.call(request)? {
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Ok(other),
        }
    }

    /// Convenience: `locate` returning `(cell, x, y, snapshot version)`.
    pub fn locate(&mut self, site: &str, y: &[f64]) -> Result<(usize, f64, f64, u64)> {
        match self.call_ok(&Request::Locate { site: site.to_string(), y: y.to_vec() })? {
            Response::Located { cell, x, y, version, .. } => Ok((cell, x, y, version)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?} to locate"))),
        }
    }

    /// Like [`locate`](Client::locate), but retries *transient transport*
    /// failures (see [`is_transient`]) up to `policy.max_attempts` total
    /// attempts, reconnecting and sleeping a jittered exponential backoff
    /// between attempts. `locate` is safe to retry: it is a pure read — at
    /// worst the server computes a fix nobody reads. Semantic errors (an
    /// error response, unknown site, malformed reply) return immediately.
    pub fn locate_with_retry(
        &mut self,
        site: &str,
        y: &[f64],
        policy: &RetryPolicy,
    ) -> Result<(usize, f64, f64, u64)> {
        let attempts = policy.max_attempts.max(1);
        let mut jitter_state = policy.jitter_seed | 1;
        let mut backoff = policy.base_delay;
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                // Jitter in [backoff/2, backoff] so a fleet of clients that
                // lost the same server doesn't retry in lockstep.
                let half = backoff / 2;
                let span_ms = half.as_millis().max(1) as u64;
                let sleep = half + Duration::from_millis(xorshift(&mut jitter_state) % span_ms);
                std::thread::sleep(sleep.min(policy.max_delay));
                backoff = (backoff * 2).min(policy.max_delay);
                if self.reconnect().is_err() {
                    // The server may still be coming back; burn this attempt
                    // and keep backing off.
                    continue;
                }
            }
            match self.locate(site, y) {
                Ok(fix) => return Ok(fix),
                Err(e) if is_transient(&e) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            ServeError::Protocol("retries exhausted without reaching the server".into())
        }))
    }

    /// Convenience: liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call_ok(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?} to ping"))),
        }
    }

    /// Convenience: push one batch of raw link samples into the site's live
    /// ingestion window, returning the per-batch accept/drop report.
    pub fn ingest(&mut self, site: &str, samples: Vec<LinkSample>) -> Result<BatchReport> {
        self.ingest_for(site, None, 0.0, samples)
    }

    /// Like [`ingest`](Client::ingest), but addressed: `ref_cell: Some(k)`
    /// feeds the capture window for reference cell `k` of a day-`day` survey.
    /// Overload frames surface as [`ServeError::Remote`]; use
    /// [`try_ingest`](Client::try_ingest) to handle back-pressure explicitly.
    pub fn ingest_for(
        &mut self,
        site: &str,
        ref_cell: Option<usize>,
        day: f64,
        samples: Vec<LinkSample>,
    ) -> Result<BatchReport> {
        match self.try_ingest(site, ref_cell, day, samples)? {
            IngestOutcome::Ingested(report) => Ok(report),
            IngestOutcome::Overloaded { shard, reason, retry_after_ms } => {
                Err(ServeError::Remote(format!(
                    "site overloaded ({reason} by shard {shard}, retry after {retry_after_ms} ms)"
                )))
            }
        }
    }

    /// Back-pressure-aware ingest: an `overloaded` reply comes back as
    /// [`IngestOutcome::Overloaded`] instead of an error, so a producer can
    /// pace itself off the server's explicit verdict.
    pub fn try_ingest(
        &mut self,
        site: &str,
        ref_cell: Option<usize>,
        day: f64,
        samples: Vec<LinkSample>,
    ) -> Result<IngestOutcome> {
        let req = Request::Ingest { site: site.to_string(), ref_cell, day, samples };
        match self.call_ok(&req)? {
            Response::Ingested { report } => Ok(IngestOutcome::Ingested(report)),
            Response::Overloaded { shard, reason, retry_after_ms, .. } => {
                Ok(IngestOutcome::Overloaded { shard, reason, retry_after_ms })
            }
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?} to ingest"))),
        }
    }

    /// Convenience: `locate-stream` returning `(cell, x, y, version)`.
    pub fn locate_stream(&mut self, site: &str) -> Result<(usize, f64, f64, u64)> {
        match self.call_ok(&Request::LocateStream { site: site.to_string() })? {
            Response::StreamLocated { cell, x, y, version, .. } => Ok((cell, x, y, version)),
            other => {
                Err(ServeError::Protocol(format!("unexpected reply {other:?} to locate-stream")))
            }
        }
    }

    /// Convenience: `locate-batch` returning the fixes and the single
    /// snapshot version that served them.
    pub fn locate_batch(&mut self, site: &str, ys: Vec<Vec<f64>>) -> Result<(Vec<Fix>, u64)> {
        match self.call_ok(&Request::LocateBatch { site: site.to_string(), ys })? {
            Response::LocatedBatch { fixes, version } => Ok((fixes, version)),
            other => {
                Err(ServeError::Protocol(format!("unexpected reply {other:?} to locate-batch")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::ErrorKind;

    fn io(kind: ErrorKind) -> ServeError {
        ServeError::Io(std::io::Error::new(kind, "test"))
    }

    #[test]
    fn transport_failures_are_transient() {
        for kind in [
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionAborted,
            ErrorKind::ConnectionRefused,
            ErrorKind::BrokenPipe,
            ErrorKind::NotConnected,
            ErrorKind::TimedOut,
            ErrorKind::WouldBlock,
            ErrorKind::UnexpectedEof,
        ] {
            assert!(is_transient(&io(kind)), "{kind:?} must be retryable");
        }
        assert!(is_transient(&ServeError::Protocol("server closed the connection".into())));
    }

    #[test]
    fn semantic_failures_are_never_retried() {
        // The server answered; retrying cannot change its mind — and for
        // non-idempotent requests it could double-apply work.
        assert!(!is_transient(&ServeError::Remote("unknown site \"attic\"".into())));
        assert!(!is_transient(&ServeError::UnknownSite("attic".into())));
        assert!(!is_transient(&ServeError::SiteExists("lab".into())));
        assert!(!is_transient(&ServeError::RefreshRejected {
            reason: "non-finite".into(),
            quarantined: false,
        }));
        assert!(!is_transient(&ServeError::Protocol("unexpected reply".into())));
        assert!(!is_transient(&ServeError::OversizedLine { got: 9, limit: 4 }));
        assert!(!is_transient(&ServeError::Store("checksum mismatch".into())));
        // Non-transport I/O (permissions, disk) is not a retry candidate.
        assert!(!is_transient(&io(ErrorKind::PermissionDenied)));
    }

    #[test]
    fn jitter_is_deterministic_and_nonzero() {
        let mut a = 0x5EEDu64 | 1;
        let mut b = 0x5EEDu64 | 1;
        let xs: Vec<u64> = (0..8).map(|_| xorshift(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| xorshift(&mut b)).collect();
        assert_eq!(xs, ys, "same seed, same sequence");
        assert!(xs.windows(2).any(|w| w[0] != w[1]), "sequence must vary");
    }
}
