//! # tafloc-serve
//!
//! The always-on serving layer for the TafLoc reproduction: a multi-site
//! localization daemon (`taflocd`) speaking newline-delimited JSON over TCP.
//!
//! The library crate exposes every building block so the daemon can be
//! embedded in-process (tests, benchmarks, the `tafloc serve` CLI command):
//!
//! * [`protocol`] — the `Request`/`Response` wire types;
//! * [`wire`] — both wire codecs (v1 newline-delimited JSON, v2 checksummed
//!   binary frames) and the per-message version sniffing between them;
//! * [`snapshot`] — `SnapshotCell`, the atomically swappable immutable
//!   snapshot slot behind the contention-free read path;
//! * [`site`] — per-site state: the swappable calibrated system plus the
//!   mutex-guarded mutable half (drift monitor, pending refs, per-stream
//!   trackers and detectors) and the streaming [`tafloc_ingest::Ingestor`]
//!   accepting raw link samples behind the `ingest` / `locate-stream`
//!   endpoints;
//! * [`registry`] — the name → site map and maintenance-thread ownership;
//! * [`shard`] — consistent-hash worker shards over registries, plus
//!   credit-based ingest admission control (per-site quotas, deadline
//!   blocking, explicit overload frames);
//! * [`maintenance`] — the background drift/refresh loop and its policy;
//! * [`metrics`] — wait-free per-endpoint counters and latency histograms;
//! * [`store`] — crash-safe checksummed per-site snapshot persistence
//!   behind `--data-dir`;
//! * [`journal`] — the per-site write-ahead ingest journal that makes
//!   admitted survey batches durable between snapshot commits;
//! * [`server`] — TCP accept loop, worker pool, dispatch, graceful shutdown;
//! * [`client`] — a thin blocking client for the line protocol.
//!
//! ## Quick tour
//!
//! ```no_run
//! use tafloc_serve::server::{Server, ServerConfig};
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.spawn();
//! let mut client = tafloc_serve::client::Client::connect(addr).unwrap();
//! client.ping().unwrap();
//! handle.shutdown();
//! handle.join();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
mod error;
pub mod journal;
pub mod maintenance;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod shard;
pub mod site;
pub mod snapshot;
pub mod store;
pub mod wire;

pub use error::{Result, ServeError};
