//! Per-site write-ahead ingest journal.
//!
//! The snapshot store makes *committed* generations durable, but everything
//! between commits — admitted reference-capture batches and measured survey
//! columns that have not yet been folded into an accepted refresh — used to
//! live only in memory. This module closes that gap: the serve plane appends
//! every admitted survey-path record here *before* applying it, and recovery
//! replays the tail through the exact same ingest code the live path uses.
//!
//! On-disk layout, one segment file per rotation
//! (`<stem>.<index:020>.wal` next to the site's `.snap` files):
//!
//! ```text
//! header   magic "TAFWAL01"      8 bytes
//!          version               u32 LE
//! record   length of payload     u32 LE
//!          CRC32 (IEEE) payload  u32 LE
//!          payload               `length` bytes
//! record   ...
//! ```
//!
//! Each payload is `seq (u64) | tag (u8) | body` in the [`taf_wire::codec`]
//! encoding; `seq` is a strictly increasing per-site sequence number that
//! survives restarts. Recovery stops at the first short or mis-checksummed
//! record and truncates the active segment there (*torn-tail truncation*):
//! a crash mid-append loses at most the records the durability contract had
//! not yet promised (see below), never the valid prefix.
//!
//! **Durability contract (group commit).** With a zero
//! [`JournalConfig::flush_interval`] every append is fsynced before the call
//! returns. With a non-zero interval, appends buffer in the OS and the next
//! append at least `flush_interval` after the last fsync — or an explicit
//! [`Journal::sync`], which the maintenance loop drives every tick, or a
//! clean shutdown — makes them durable. A `kill -9` can therefore lose at
//! most the records admitted inside the last flush window; it can never
//! corrupt earlier ones.
//!
//! **Pruning.** Snapshots record the highest sequence number whose effects
//! they contain (`PersistedSite::journal_watermark`). Once a snapshot commits,
//! [`Journal::prune`] deletes sealed segments entirely at or below the
//! watermark. Records are only ever pruned *after* the snapshot holding them
//! is durable, so a crash between journal append and snapshot commit replays
//! from the journal, and a crash between snapshot commit and prune merely
//! replays records recovery then recognizes (by watermark) as already
//! applied.

use crate::store::fsync_dir;
use crate::{Result, ServeError};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use taf_wire::types as wt;
use taf_wire::{crc32, Dec, Enc};
use tafloc_ingest::LinkSample;

/// Segment file magic: identifies a taflocd write-ahead journal segment.
pub const WAL_MAGIC: &[u8; 8] = b"TAFWAL01";

/// Journal format version.
pub const WAL_VERSION: u32 = 1;

/// Segment header length: magic plus version.
const HEADER_LEN: u64 = 12;

/// Frame overhead per record: length prefix plus checksum.
const FRAME_LEN: usize = 8;

/// Knobs for the append path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalConfig {
    /// Group-commit window: `ZERO` fsyncs every append (maximum durability,
    /// one fsync per admitted batch); otherwise appends become durable at the
    /// next append/sync at least this long after the previous fsync.
    pub flush_interval: Duration,
    /// Rotate to a fresh segment once the active one exceeds this many bytes.
    /// Only sealed (rotated-away) segments are eligible for pruning.
    pub segment_max_bytes: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            flush_interval: Duration::from_millis(25),
            segment_max_bytes: 4 * 1024 * 1024,
        }
    }
}

/// One replayable unit of admitted survey-path work.
///
/// Live-window locate traffic is deliberately *not* journaled: those samples
/// age out of the sliding window within seconds and rebuilding them after a
/// restart would serve stale radio state (see DESIGN.md §9). The journal
/// covers exactly the records whose loss would cost a re-survey.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// An admitted reference-capture batch (`ingest` with a `ref_cell`).
    RefBatch {
        /// Reference slot the batch was captured at.
        ref_slot: usize,
        /// Deployment day of the capture.
        day: f64,
        /// The admitted samples, exactly as they passed admission.
        samples: Vec<LinkSample>,
    },
    /// A full measured-references survey (`measure-refs`).
    Survey {
        /// Deployment day of the survey.
        day: f64,
        /// Per-reference-slot measured columns (`n_refs` columns of `m`).
        columns: Vec<Vec<f64>>,
        /// Empty-room RSS measured alongside (may be empty to keep the old).
        empty: Vec<f64>,
    },
}

fn encode_record(seq: u64, rec: &JournalRecord) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(seq);
    match rec {
        JournalRecord::RefBatch { ref_slot, day, samples } => {
            e.u8(1);
            e.usize(*ref_slot);
            e.f64(*day);
            e.usize(samples.len());
            for s in samples {
                wt::enc_link_sample(&mut e, s);
            }
        }
        JournalRecord::Survey { day, columns, empty } => {
            e.u8(2);
            e.f64(*day);
            e.usize(columns.len());
            for c in columns {
                e.f64s(c);
            }
            e.f64s(empty);
        }
    }
    e.into_inner()
}

fn decode_record(payload: &[u8]) -> Result<(u64, JournalRecord)> {
    let mut d = Dec::new(payload);
    let seq = d.u64()?;
    let rec = match d.u8()? {
        1 => {
            let ref_slot = d.usize()?;
            let day = d.f64()?;
            let n = d.count()?;
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                samples.push(wt::dec_link_sample(&mut d)?);
            }
            JournalRecord::RefBatch { ref_slot, day, samples }
        }
        2 => {
            let day = d.f64()?;
            let n = d.count()?;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                columns.push(d.f64s()?);
            }
            JournalRecord::Survey { day, columns, empty: d.f64s()? }
        }
        v => {
            return Err(ServeError::Store(format!("unknown journal record tag {v}")));
        }
    };
    d.finish()?;
    Ok((seq, rec))
}

/// A sealed (rotated-away) segment still on disk, prunable once a snapshot's
/// watermark passes its highest sequence number.
#[derive(Debug)]
struct Sealed {
    max_seq: u64,
    path: PathBuf,
}

#[derive(Debug)]
struct Inner {
    file: std::fs::File,
    path: PathBuf,
    index: u64,
    /// Bytes in the active segment including its header.
    bytes: u64,
    /// Records in the active segment (a header-only segment prunes by
    /// rotation without a seal).
    records: u64,
    next_seq: u64,
    max_seq: u64,
    dirty: bool,
    last_flush: Instant,
    sealed: Vec<Sealed>,
}

/// One scanned segment: its valid records, the byte length of the valid
/// prefix, and the file's total length on disk.
type ScannedSegment = (Vec<(u64, JournalRecord)>, u64, u64);

/// What [`Journal::open`] recovered from disk.
#[derive(Debug)]
pub struct JournalRecovery {
    /// Records beyond the caller's watermark, in append order, ready to be
    /// replayed through the ingest pipeline.
    pub records: Vec<(u64, JournalRecord)>,
    /// Bytes dropped by torn-tail truncation (0 on a clean shutdown).
    pub truncated_bytes: u64,
}

/// An append-only, checksummed, segment-rotated write-ahead log for one site.
pub struct Journal {
    dir: PathBuf,
    stem: String,
    config: JournalConfig,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("dir", &self.dir).field("stem", &self.stem).finish()
    }
}

fn store_err(what: &str, path: &Path, e: std::io::Error) -> ServeError {
    ServeError::Store(format!("{what} {}: {e}", path.display()))
}

impl Journal {
    fn segment_path(dir: &Path, stem: &str, index: u64) -> PathBuf {
        dir.join(format!("{stem}.{index:020}.wal"))
    }

    /// Opens (or creates) the journal for `stem` under `dir`, scanning every
    /// existing segment: torn tails are truncated, segments wholly at or
    /// below `watermark` are deleted, and the surviving records beyond the
    /// watermark are returned for replay. Appends resume with a sequence
    /// number above everything ever written.
    pub fn open(
        dir: &Path,
        stem: &str,
        config: JournalConfig,
        watermark: u64,
    ) -> Result<(Journal, JournalRecovery)> {
        std::fs::create_dir_all(dir).map_err(|e| store_err("cannot create", dir, e))?;
        let prefix = format!("{stem}.");
        let mut segments: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
            .map_err(|e| store_err("cannot scan", dir, e))?
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "wal")
                    && p.file_name().and_then(|f| f.to_str()).is_some_and(|f| {
                        f.strip_prefix(&prefix)
                            .and_then(|rest| rest.strip_suffix(".wal"))
                            .is_some_and(|idx| {
                                idx.len() == 20 && idx.bytes().all(|b| b.is_ascii_digit())
                            })
                    })
            })
            .filter_map(|p| {
                let idx = p
                    .file_name()?
                    .to_str()?
                    .strip_prefix(&prefix)?
                    .strip_suffix(".wal")?
                    .parse::<u64>()
                    .ok()?;
                Some((idx, p))
            })
            .collect();
        segments.sort();

        let mut records = Vec::new();
        let mut truncated_bytes = 0u64;
        let mut max_seq = watermark;
        let mut torn_tail = false;
        let mut sealed = Vec::new();
        let last_index = segments.last().map(|(i, _)| *i);
        for (index, path) in &segments {
            let (seg_records, valid_len, total_len) = Journal::scan_segment(path)?;
            let is_last = Some(*index) == last_index;
            if valid_len < total_len {
                truncated_bytes += total_len - valid_len;
                torn_tail |= is_last;
                // Truncate the torn tail in place so the valid prefix is all
                // that remains — for the active segment so appends continue
                // from a clean end, for sealed ones so a rescan agrees.
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| store_err("cannot open", path, e))?;
                f.set_len(valid_len).map_err(|e| store_err("cannot truncate", path, e))?;
                f.sync_all().map_err(|e| store_err("cannot sync", path, e))?;
            }
            let seg_max = seg_records.iter().map(|(s, _)| *s).max().unwrap_or(0);
            max_seq = max_seq.max(seg_max);
            for (seq, rec) in seg_records {
                if seq > watermark {
                    records.push((seq, rec));
                }
            }
            if !is_last {
                sealed.push(Sealed { max_seq: seg_max, path: path.clone() });
            }
        }
        // Replay strictly in append order even if a torn rotation interleaved
        // segment scans oddly.
        records.sort_by_key(|(seq, _)| *seq);

        let (index, path, file, bytes, seg_records) = match segments.last() {
            Some((index, path)) => {
                let mut file = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(path)
                    .map_err(|e| store_err("cannot open", path, e))?;
                let bytes = file
                    .seek(std::io::SeekFrom::End(0))
                    .map_err(|e| store_err("cannot seek", path, e))?;
                let (recs, _, _) = Journal::scan_segment(path)?;
                (*index, path.clone(), file, bytes, recs.len() as u64)
            }
            None => {
                let (path, file) = Journal::create_segment(dir, stem, 0)?;
                (0, path, file, HEADER_LEN, 0)
            }
        };

        let journal = Journal {
            dir: dir.to_path_buf(),
            stem: stem.to_string(),
            config,
            inner: Mutex::new(Inner {
                file,
                path,
                index,
                bytes,
                records: seg_records,
                // A torn active tail means one append died mid-write; its
                // sequence number is skipped so no future record can ever be
                // confused with the lost one. (`max_seq` already starts at
                // the snapshot watermark, which covers sequence numbers that
                // were consumed into a durable snapshot but lost from an
                // unsynced journal tail.)
                next_seq: max_seq + if torn_tail { 2 } else { 1 },
                max_seq,
                dirty: false,
                last_flush: Instant::now(),
                sealed,
            }),
        };
        // Anything wholly covered by the snapshot is dead weight already.
        journal.prune(watermark)?;
        Ok((journal, JournalRecovery { records, truncated_bytes }))
    }

    /// Creates a fresh segment: header written, fsynced, directory fsynced.
    fn create_segment(dir: &Path, stem: &str, index: u64) -> Result<(PathBuf, std::fs::File)> {
        let path = Journal::segment_path(dir, stem, index);
        let mut file = std::fs::OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| store_err("cannot create", &path, e))?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        file.write_all(&header).map_err(|e| store_err("cannot write", &path, e))?;
        file.sync_all().map_err(|e| store_err("cannot sync", &path, e))?;
        fsync_dir(dir).map_err(|e| store_err("cannot sync dir", dir, e))?;
        Ok((path, file))
    }

    /// Reads one segment, returning its valid records, the byte length of the
    /// valid prefix, and the file's total length. A bad header yields an
    /// empty segment whose valid prefix is just a fresh header (the file is
    /// rewritten by truncation at open).
    fn scan_segment(path: &Path) -> Result<ScannedSegment> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| store_err("cannot read", path, e))?;
        let total = bytes.len() as u64;
        if bytes.len() < HEADER_LEN as usize
            || &bytes[..8] != WAL_MAGIC
            || u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) != WAL_VERSION
        {
            return Err(store_err(
                "bad journal segment header in",
                path,
                std::io::Error::new(std::io::ErrorKind::InvalidData, "magic/version mismatch"),
            ));
        }
        let mut records = Vec::new();
        let mut pos = HEADER_LEN as usize;
        loop {
            if pos + FRAME_LEN > bytes.len() {
                break; // torn length/crc prefix (or clean end)
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
            let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4"));
            let Some(end) = pos.checked_add(FRAME_LEN).and_then(|s| s.checked_add(len)) else {
                break;
            };
            if end > bytes.len() {
                break; // torn payload
            }
            let payload = &bytes[pos + FRAME_LEN..end];
            if crc32(payload) != stored_crc {
                break; // torn or bit-flipped payload: stop at the valid prefix
            }
            let Ok((seq, rec)) = decode_record(payload) else {
                break; // checksum ok but undecodable: treat as tail damage
            };
            records.push((seq, rec));
            pos = end;
        }
        Ok((records, pos as u64, total))
    }

    /// Appends one record, returning its sequence number. Durability follows
    /// the group-commit contract in the module docs.
    pub fn append(&self, rec: &JournalRecord) -> Result<u64> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let seq = inner.next_seq;
        let payload = encode_record(seq, rec);
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        inner.file.write_all(&frame).map_err(|e| store_err("cannot append", &inner.path, e))?;
        inner.next_seq = seq + 1;
        inner.max_seq = seq;
        inner.bytes += frame.len() as u64;
        inner.records += 1;
        inner.dirty = true;
        if self.config.flush_interval.is_zero()
            || inner.last_flush.elapsed() >= self.config.flush_interval
        {
            Journal::flush_locked(&mut inner)?;
        }
        if inner.bytes >= self.config.segment_max_bytes {
            self.rotate_locked(&mut inner)?;
        }
        Ok(seq)
    }

    fn flush_locked(inner: &mut Inner) -> Result<()> {
        if inner.dirty {
            inner.file.sync_data().map_err(|e| store_err("cannot sync", &inner.path, e))?;
            inner.dirty = false;
        }
        inner.last_flush = Instant::now();
        Ok(())
    }

    fn rotate_locked(&self, inner: &mut Inner) -> Result<()> {
        Journal::flush_locked(inner)?;
        let (path, file) = Journal::create_segment(&self.dir, &self.stem, inner.index + 1)?;
        if inner.records > 0 {
            let old = std::mem::replace(&mut inner.path, path);
            inner.sealed.push(Sealed { max_seq: inner.max_seq, path: old });
        } else {
            // Nothing in the old segment: replace it silently.
            let old = std::mem::replace(&mut inner.path, path);
            let _ = std::fs::remove_file(old);
        }
        inner.file = file;
        inner.index += 1;
        inner.bytes = HEADER_LEN;
        inner.records = 0;
        Ok(())
    }

    /// Forces any buffered appends to disk now (used by the maintenance tick
    /// to bound the group-commit window, and on clean shutdown).
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        Journal::flush_locked(&mut inner)
    }

    /// Deletes sealed segments whose records all sit at or below `watermark`
    /// (their effects are in a durable snapshot). If the *active* segment is
    /// also wholly covered, it is rotated out first so it becomes prunable
    /// too — after a quiet period the journal shrinks back to one empty
    /// segment.
    pub fn prune(&self, watermark: u64) -> Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.records > 0 && inner.max_seq <= watermark {
            self.rotate_locked(&mut inner)?;
        }
        let mut removed = false;
        inner.sealed.retain(|s| {
            if s.max_seq <= watermark {
                let _ = std::fs::remove_file(&s.path);
                removed = true;
                false
            } else {
                true
            }
        });
        if removed {
            fsync_dir(&self.dir).map_err(|e| store_err("cannot sync dir", &self.dir, e))?;
        }
        Ok(())
    }

    /// Highest sequence number ever handed out (0 if none).
    pub fn last_seq(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.next_seq - 1
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Best-effort: a clean shutdown closes the group-commit window.
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tafloc-journal-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn batch(slot: usize, day: f64, n: usize) -> JournalRecord {
        JournalRecord::RefBatch {
            ref_slot: slot,
            day,
            samples: (0..n)
                .map(|i| LinkSample::new(i, day * 86_400.0 + i as f64, -50.0 - i as f64))
                .collect(),
        }
    }

    fn strict() -> JournalConfig {
        JournalConfig { flush_interval: Duration::ZERO, ..JournalConfig::default() }
    }

    #[test]
    fn records_survive_reopen_and_replay_in_order() {
        let dir = temp_dir("roundtrip");
        let (j, rec) = Journal::open(&dir, "lab-00000000", strict(), 0).unwrap();
        assert!(rec.records.is_empty());
        let survey = JournalRecord::Survey {
            day: 90.0,
            columns: vec![vec![-50.0, -51.0], vec![-40.0, -41.0]],
            empty: vec![-38.0, -39.0],
        };
        assert_eq!(j.append(&batch(0, 90.0, 3)).unwrap(), 1);
        assert_eq!(j.append(&survey).unwrap(), 2);
        assert_eq!(j.append(&batch(1, 90.0, 2)).unwrap(), 3);
        drop(j);

        let (j, rec) = Journal::open(&dir, "lab-00000000", strict(), 0).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        let seqs: Vec<u64> = rec.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(rec.records[1].1, survey);
        assert_eq!(j.append(&batch(0, 91.0, 1)).unwrap(), 4, "seq continues after reopen");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watermark_filters_already_applied_records() {
        let dir = temp_dir("watermark");
        let (j, _) = Journal::open(&dir, "s-0", strict(), 0).unwrap();
        for i in 0..5 {
            j.append(&batch(i, 90.0, 1)).unwrap();
        }
        drop(j);
        let (_, rec) = Journal::open(&dir, "s-0", strict(), 3).unwrap();
        let seqs: Vec<u64> = rec.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![4, 5]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = temp_dir("torn");
        let (j, _) = Journal::open(&dir, "s-0", strict(), 0).unwrap();
        j.append(&batch(0, 90.0, 4)).unwrap();
        j.append(&batch(1, 90.0, 4)).unwrap();
        drop(j);
        // Tear the tail mid-record, as a crash mid-append would.
        let seg = Journal::segment_path(&dir, "s-0", 0);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 7]).unwrap();

        let (j, rec) = Journal::open(&dir, "s-0", strict(), 0).unwrap();
        assert!(rec.truncated_bytes > 0);
        assert_eq!(rec.records.len(), 1, "only the intact record survives");
        assert_eq!(rec.records[0].0, 1);
        // The torn seq is NOT reused: replayed state must never see two
        // different records under one sequence number.
        assert_eq!(j.append(&batch(2, 90.0, 1)).unwrap(), 3);
        drop(j);
        let (_, rec) = Journal::open(&dir, "s-0", strict(), 0).unwrap();
        let seqs: Vec<u64> = rec.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_stops_replay_at_the_valid_prefix() {
        let dir = temp_dir("bitflip");
        let (j, _) = Journal::open(&dir, "s-0", strict(), 0).unwrap();
        j.append(&batch(0, 90.0, 4)).unwrap();
        j.append(&batch(1, 90.0, 4)).unwrap();
        j.append(&batch(2, 90.0, 4)).unwrap();
        drop(j);
        let seg = Journal::segment_path(&dir, "s-0", 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = HEADER_LEN as usize + (bytes.len() - HEADER_LEN as usize) / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();

        let (_, rec) = Journal::open(&dir, "s-0", strict(), 0).unwrap();
        assert!(rec.records.len() < 3, "the damaged record and its suffix are dropped");
        assert!(rec.truncated_bytes > 0);
        for (i, (seq, _)) in rec.records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1, "surviving prefix is contiguous");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_segments_and_prune_respects_the_watermark() {
        let dir = temp_dir("rotate");
        let cfg = JournalConfig { flush_interval: Duration::ZERO, segment_max_bytes: 256 };
        let (j, _) = Journal::open(&dir, "s-0", cfg, 0).unwrap();
        for i in 0..8 {
            j.append(&batch(i, 90.0, 4)).unwrap();
        }
        let wal_count = |dir: &Path| {
            std::fs::read_dir(dir)
                .unwrap()
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "wal"))
                .count()
        };
        assert!(wal_count(&dir) > 1, "tiny segment cap must have rotated");

        // Nothing may be pruned below the watermark…
        j.prune(3).unwrap();
        drop(j);
        let (j, rec) = Journal::open(&dir, "s-0", cfg, 3).unwrap();
        let seqs: Vec<u64> = rec.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![4, 5, 6, 7, 8], "records above the watermark all survive");
        // …and once the watermark passes everything, the journal shrinks to
        // one empty segment.
        j.prune(8).unwrap();
        assert_eq!(wal_count(&dir), 1);
        drop(j);
        let (_, rec) = Journal::open(&dir, "s-0", cfg, 8).unwrap();
        assert!(rec.records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_buffers_then_syncs_on_interval_or_demand() {
        let dir = temp_dir("groupcommit");
        let cfg = JournalConfig { flush_interval: Duration::from_secs(3600), ..Default::default() };
        let (j, _) = Journal::open(&dir, "s-0", cfg, 0).unwrap();
        // These appends buffer (the interval is absurdly long)…
        j.append(&batch(0, 90.0, 2)).unwrap();
        j.append(&batch(1, 90.0, 2)).unwrap();
        // …but an explicit sync (the maintenance tick / shutdown path) and a
        // reopen must still see them: write() reached the file even if
        // fsync had not.
        j.sync().unwrap();
        drop(j);
        let (_, rec) = Journal::open(&dir, "s-0", cfg, 0).unwrap();
        assert_eq!(rec.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
