//! `SnapshotCell`: an atomically swappable, immutable snapshot slot.
//!
//! The serving hot path must never wait behind a refresh. LoLi-IR takes
//! hundreds of milliseconds; a `locate` takes microseconds. The contract here
//! is the classic read-copy-update shape:
//!
//! * readers call [`SnapshotCell::load`] and get an `Arc` to an **immutable**
//!   snapshot; everything they do afterwards touches no shared mutable state;
//! * the refresher builds the *next* snapshot entirely off to the side and
//!   publishes it with one pointer [`SnapshotCell::store`]; readers holding
//!   the old `Arc` finish on the old (still valid) state.
//!
//! Within the std-only dependency budget the swap point is an `RwLock<Arc<T>>`
//! whose critical sections contain exactly one `Arc` clone or one pointer
//! assignment — nanoseconds, never held across any computation, and never
//! contended by design (one refresher per site). The request path is
//! *wait-free in practice*: no reader ever blocks behind reconstruction, and
//! the lock can only be observed held for the duration of a pointer copy.

use std::sync::{Arc, RwLock};

/// An atomically swappable slot holding an immutable snapshot.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    slot: RwLock<Arc<T>>,
}

impl<T> SnapshotCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: T) -> Self {
        SnapshotCell { slot: RwLock::new(Arc::new(value)) }
    }

    /// Returns the current snapshot. The caller's view is frozen: later
    /// [`store`](SnapshotCell::store) calls do not affect it.
    pub fn load(&self) -> Arc<T> {
        // A poisoned lock only means a writer panicked mid-swap; the Arc in
        // the slot is still a complete snapshot, so recover it.
        match self.slot.read() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Publishes `value` as the new snapshot, returning the one it replaced.
    pub fn store(&self, value: T) -> Arc<T> {
        let next = Arc::new(value);
        let mut g = match self.slot.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        std::mem::replace(&mut *g, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn load_is_frozen_across_store() {
        let cell = SnapshotCell::new(1u64);
        let before = cell.load();
        let old = cell.store(2);
        assert_eq!(*before, 1);
        assert_eq!(*old, 1);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn concurrent_readers_always_see_a_complete_snapshot() {
        // Snapshots are (n, n * 7): a torn read would break the invariant.
        // Readers do a fixed amount of work while a writer stores until they
        // finish, so the test cannot depend on scheduling order.
        let cell = Arc::new(SnapshotCell::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let cell = cell.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    n += 1;
                    cell.store((n, n * 7));
                }
                n
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        let s = cell.load();
                        assert_eq!(s.1, s.0 * 7, "torn snapshot");
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let stores = writer.join().unwrap();
        assert!(stores > 0);
        assert_eq!(cell.load().0, stores);
    }
}
