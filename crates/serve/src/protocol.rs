//! The `Request`/`Response` message types shared by both wire protocols.
//!
//! The types here are pure data; the codecs live in [`crate::wire`]. The
//! canonical v1 encoding is newline-delimited JSON — trivial enough to speak
//! from `netcat` or a shell script. Requests are tagged unions on a `"cmd"`
//! field:
//!
//! ```text
//! {"cmd":"ping"}
//! {"cmd":"locate","site":"lab","y":[-52.1,-48.7,...]}
//! {"cmd":"stats"}
//! {"cmd":"shutdown"}
//! ```
//!
//! and responses on a `"reply"` field:
//!
//! ```text
//! {"reply":"pong"}
//! {"reply":"located","cell":42,"x":3.9,"y":5.1,"distance_db":2.31,"version":1}
//! {"reply":"error","message":"unknown site \"attic\""}
//! ```
//!
//! The `serde` derives on these types are kept as the *reference* encoding:
//! the hand-rolled v1 codec in [`crate::wire::v1`] is tested byte-for-byte
//! against them, so a build with the real `serde_json` and the bundled
//! zero-dependency codec speak identical bytes.

use crate::maintenance::MaintenancePolicy;
use serde::{Deserialize, Serialize};
use taf_linalg::Matrix;
use tafloc_core::system::SystemSnapshot;
use tafloc_ingest::{BatchReport, IngestStats, LinkSample};

/// Hard cap on one wire line (16 MiB) — a full `SystemSnapshot` for the
/// paper-scale site is well under this; anything larger is a protocol abuse.
pub const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// A client request, one JSON object per line, tagged by `cmd`.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "cmd", rename_all = "kebab-case")]
pub enum Request {
    /// Register a new site from a calibrated system snapshot.
    AddSite {
        /// Site name (registry key).
        site: String,
        /// The calibrated system state to serve (boxed: this variant is far
        /// larger than every other request).
        snapshot: Box<SystemSnapshot>,
        /// Deployment day the snapshot corresponds to (drift-clock origin).
        #[serde(default)]
        day: f64,
        /// Maintenance policy override; server default when omitted.
        #[serde(default)]
        policy: Option<MaintenancePolicy>,
    },
    /// Unregister a site and stop its maintenance thread.
    RemoveSite {
        /// Site name.
        site: String,
    },
    /// List registered sites.
    ListSites,
    /// Localize one live RSS vector.
    Locate {
        /// Site name.
        site: String,
        /// Averaged per-link RSS (length = site's link count).
        y: Vec<f64>,
    },
    /// Localize from the site's live ingestion window: assemble the current
    /// per-link aggregates into a fingerprint vector and match it.
    LocateStream {
        /// Site name.
        site: String,
    },
    /// Localize many RSS vectors in one round trip over one snapshot.
    LocateBatch {
        /// Site name.
        site: String,
        /// One averaged per-link RSS vector per fix wanted.
        ys: Vec<Vec<f64>>,
    },
    /// Push raw timestamped link samples into the site's ingestion pipeline.
    Ingest {
        /// Site name.
        site: String,
        /// When set, samples feed the capture window for this reference cell
        /// (for maintenance spot checks) instead of the live window.
        #[serde(default)]
        ref_cell: Option<usize>,
        /// Deployment day the samples were taken (used for reference
        /// captures; ignored for live traffic).
        #[serde(default)]
        day: f64,
        /// The raw samples, in any order.
        samples: Vec<LinkSample>,
    },
    /// Advance a named tracking stream by one measurement (particle filter).
    Track {
        /// Site name.
        site: String,
        /// Stream id — each id owns an independent filter state.
        stream: String,
        /// Averaged per-link RSS.
        y: Vec<f64>,
        /// Seconds since the stream's previous measurement.
        dt_s: f64,
    },
    /// Feed a named presence-detection stream (snapshot + CUSUM).
    Detect {
        /// Site name.
        site: String,
        /// Stream id — each id owns independent CUSUM state.
        stream: String,
        /// Averaged per-link RSS.
        y: Vec<f64>,
    },
    /// Ingest freshly measured reference columns (the cheap survey).
    MeasureRefs {
        /// Site name.
        site: String,
        /// Deployment day of the measurement.
        day: f64,
        /// `M x n` matrix, columns in the site's reference-cell order.
        columns: Matrix,
        /// Fresh empty-room baseline (length `M`).
        empty: Vec<f64>,
    },
    /// Run LoLi-IR on the last ingested references and swap the snapshot.
    Refresh {
        /// Site name.
        site: String,
    },
    /// Per-endpoint counters/latency and per-site health.
    Stats,
    /// Liveness probe.
    Ping,
    /// Graceful shutdown: drain in-flight connections, then exit.
    Shutdown,
}

impl Request {
    /// Stable endpoint name, used as the metrics key.
    pub fn endpoint(&self) -> crate::metrics::Endpoint {
        use crate::metrics::Endpoint as E;
        match self {
            Request::AddSite { .. } => E::AddSite,
            Request::RemoveSite { .. } => E::RemoveSite,
            Request::ListSites => E::ListSites,
            Request::Locate { .. } => E::Locate,
            Request::LocateStream { .. } => E::LocateStream,
            Request::LocateBatch { .. } => E::LocateBatch,
            Request::Ingest { .. } => E::Ingest,
            Request::Track { .. } => E::Track,
            Request::Detect { .. } => E::Detect,
            Request::MeasureRefs { .. } => E::MeasureRefs,
            Request::Refresh { .. } => E::Refresh,
            Request::Stats => E::Stats,
            Request::Ping => E::Ping,
            Request::Shutdown => E::Shutdown,
        }
    }
}

/// A server response, one JSON object per line, tagged by `reply`.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "kebab-case")]
pub enum Response {
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// Site registered and serving.
    SiteAdded {
        /// Site name.
        site: String,
        /// Link count.
        links: usize,
        /// Cell count.
        cells: usize,
    },
    /// Site removed.
    SiteRemoved {
        /// Site name.
        site: String,
    },
    /// Registered sites.
    Sites {
        /// One entry per site.
        sites: Vec<SiteInfo>,
    },
    /// Localization fix.
    Located {
        /// Best-matching cell.
        cell: usize,
        /// Estimated x (m).
        x: f64,
        /// Estimated y (m).
        y: f64,
        /// Fingerprint distance of the best match (dB).
        distance_db: f64,
        /// Snapshot version that served the request.
        version: u64,
    },
    /// Localization fix assembled from the live ingestion window.
    StreamLocated {
        /// Best-matching cell.
        cell: usize,
        /// Estimated x (m).
        x: f64,
        /// Estimated y (m).
        y: f64,
        /// Fingerprint distance of the best match (dB).
        distance_db: f64,
        /// Snapshot version that served the request.
        version: u64,
        /// Links imputed from the empty-room baseline (no samples ever seen).
        missing_links: Vec<usize>,
        /// Links whose freshest sample is older than the staleness bound.
        stale_links: Vec<usize>,
        /// Stream-clock time (s) at which the vector was assembled.
        stream_t_s: f64,
        /// Total window samples backing the assembled vector.
        window_samples: usize,
    },
    /// One fix per input vector, all served from one snapshot.
    LocatedBatch {
        /// Fixes, in input order.
        fixes: Vec<Fix>,
        /// Snapshot version that served the whole batch.
        version: u64,
    },
    /// Ingestion outcome for one sample batch.
    Ingested {
        /// Per-batch accept/drop accounting.
        report: BatchReport,
    },
    /// Tracking estimate.
    Tracked {
        /// Estimated x (m).
        x: f64,
        /// Estimated y (m).
        y: f64,
        /// Particle-filter effective sample size (diagnostic).
        effective_sample_size: f64,
    },
    /// Presence decision.
    Detected {
        /// Whether a target is believed present.
        present: bool,
        /// Which detector fired and on what evidence.
        detail: String,
    },
    /// Reference measurements accepted; the monitor's verdict on them.
    RefsAccepted {
        /// `healthy`, `update-recommended`, or `cooldown`.
        recommendation: String,
        /// Estimated whole-database drift (dB).
        estimated_error_db: f64,
    },
    /// Snapshot refreshed (LoLi-IR ran and the swap happened).
    Refreshed {
        /// LoLi-IR outer iterations.
        iterations: usize,
        /// Whether the solver met tolerance.
        converged: bool,
        /// Mean absolute change applied to the database (dB).
        mean_abs_change_db: f64,
        /// New snapshot version.
        version: u64,
    },
    /// Server statistics.
    Stats {
        /// The report.
        report: StatsReport,
    },
    /// Liveness answer.
    Pong,
    /// Shutdown acknowledged; the server is draining.
    ShuttingDown,
    /// Admission control pushed back: the batch was **not** ingested. A
    /// `deferred` reason means credits stayed short for the whole admission
    /// deadline — retry after the hint; `rejected` means the batch exceeds a
    /// quota outright and retrying unchanged can never succeed.
    Overloaded {
        /// Site the work was addressed to.
        site: String,
        /// Shard that pushed back.
        shard: usize,
        /// `deferred` or `rejected`.
        reason: String,
        /// Suggested client back-off before retrying (ms); 0 for rejections.
        retry_after_ms: u64,
    },
}

/// One localization fix inside a `located-batch` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fix {
    /// Best-matching cell.
    pub cell: usize,
    /// Estimated x (m).
    pub x: f64,
    /// Estimated y (m).
    pub y: f64,
    /// Fingerprint distance of the best match (dB).
    pub distance_db: f64,
}

/// One site's identity row in `list-sites`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteInfo {
    /// Site name.
    pub site: String,
    /// Link count.
    pub links: usize,
    /// Cell count.
    pub cells: usize,
    /// Current snapshot version (increments on every refresh).
    pub version: u64,
}

/// Aggregated server statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReport {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Connections closed because the read timeout elapsed.
    #[serde(default)]
    pub conn_timeouts: u64,
    /// Connections closed by a transport error (reset, broken pipe, ...).
    #[serde(default)]
    pub conn_resets: u64,
    /// Connection handlers that panicked (isolated; the worker survived).
    #[serde(default)]
    pub conn_panics: u64,
    /// Frames (or lines) rejected for exceeding the size cap.
    #[serde(default)]
    pub wire_frame_too_large: u64,
    /// v2 frames rejected for an unknown version byte (fatal per connection).
    #[serde(default)]
    pub wire_bad_magic: u64,
    /// v2 frames whose payload failed its CRC32 check.
    #[serde(default)]
    pub wire_checksum_mismatch: u64,
    /// Messages rejected for invalid UTF-8 (fatal per connection).
    #[serde(default)]
    pub wire_bad_utf8: u64,
    /// Messages that framed correctly but failed to decode.
    #[serde(default)]
    pub wire_malformed: u64,
    /// Per-endpoint request counters and latency quantiles.
    pub endpoints: Vec<EndpointStats>,
    /// Per-site health.
    pub sites: Vec<SiteStats>,
    /// Per-shard admission/queue accounting, shard-ordered.
    #[serde(default)]
    pub shards: Vec<ShardStats>,
}

/// Admission-control and queue accounting for one worker shard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index on the ring.
    pub shard: usize,
    /// Sites this shard owns.
    pub sites: usize,
    /// Samples currently holding ingest credits on this shard.
    pub queue_depth_samples: u64,
    /// Ingest batches offered to the gate.
    pub offered_batches: u64,
    /// Ingest samples offered to the gate.
    pub offered_samples: u64,
    /// Batches admitted (credits granted).
    pub admitted_batches: u64,
    /// Samples admitted.
    pub admitted_samples: u64,
    /// Batches deferred at the admission deadline.
    pub deferred_batches: u64,
    /// Samples deferred.
    pub deferred_samples: u64,
    /// Batches rejected outright (over quota).
    pub rejected_batches: u64,
    /// Samples rejected.
    pub rejected_samples: u64,
}

/// Counters and latency for one endpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndpointStats {
    /// Endpoint name (`locate`, `refresh`, ...).
    pub endpoint: String,
    /// Requests served (including failures).
    pub requests: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Median service latency (µs, histogram upper bound).
    pub p50_us: u64,
    /// 95th-percentile service latency (µs, histogram upper bound).
    pub p95_us: u64,
    /// 99th-percentile service latency (µs, histogram upper bound).
    pub p99_us: u64,
    /// Largest observed service latency (µs).
    pub max_us: u64,
}

/// Health row for one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteStats {
    /// Site name.
    pub site: String,
    /// Current snapshot version.
    pub version: u64,
    /// Deployment day of the snapshot's last refresh (or calibration).
    pub refreshed_day: f64,
    /// Whether un-applied reference measurements are pending.
    pub pending_refs: bool,
    /// Latest drift estimate from the monitor (dB), if any check ran.
    pub estimated_error_db: Option<f64>,
    /// Spot checks performed by the maintenance loop.
    pub maintenance_checks: u64,
    /// Refreshes triggered automatically by the maintenance loop.
    pub auto_refreshes: u64,
    /// Refreshes the reconstruction guard rejected and rolled back.
    #[serde(default)]
    pub refresh_rejections: u64,
    /// Why the most recent refresh was rejected, if any.
    #[serde(default)]
    pub last_reject_reason: Option<String>,
    /// Consecutive rejections/panics since the last committed refresh.
    #[serde(default)]
    pub consecutive_failures: u32,
    /// Whether the site is quarantined (read-only, maintenance suspended).
    #[serde(default)]
    pub quarantined: bool,
    /// Maintenance ticks that panicked (isolated by the scheduler).
    #[serde(default)]
    pub tick_panics: u64,
    /// Snapshot saves that failed (persistence is best-effort).
    #[serde(default)]
    pub persist_failures: u64,
    /// Live tracking streams.
    pub active_trackers: usize,
    /// Cumulative ingestion-pipeline counters (samples, drops, link health).
    pub ingest: IngestStats,
    /// The live ingestion stream clock (s); 0 until the first sample lands.
    pub stream_clock_s: f64,
    /// Reference-cell capture windows currently accumulating samples.
    pub active_ref_captures: usize,
    /// Cumulative link-measurements the measurement planner scheduled
    /// (equal to the full-survey cost when no planner is attached).
    #[serde(default)]
    pub planned_cost: u64,
    /// Cumulative link-measurements actually delivered by surveys.
    #[serde(default)]
    pub actual_cost: u64,
    /// Cumulative link-measurements a full survey would have cost over the
    /// same refresh cycles — the savings baseline.
    #[serde(default)]
    pub full_survey_cost: u64,
    /// Active measurement-planning policy, if any.
    #[serde(default)]
    pub plan_policy: Option<String>,
    /// Worker shard owning this site (0 in unsharded deployments).
    #[serde(default)]
    pub shard: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_format_is_stable_kebab_case() {
        let line = serde_json::to_string(&Request::ListSites).unwrap();
        assert_eq!(line, r#"{"cmd":"list-sites"}"#);
        let line = serde_json::to_string(&Response::Pong).unwrap();
        assert_eq!(line, r#"{"reply":"pong"}"#);
        let parsed: Request =
            serde_json::from_str(r#"{"cmd":"locate","site":"a","y":[-1.0]}"#).unwrap();
        assert!(matches!(parsed, Request::Locate { .. }));
    }

    #[test]
    fn hand_rolled_v1_codec_matches_the_derive_byte_for_byte() {
        // The derives are the reference encoding; `wire::v1` must reproduce
        // them exactly or pre-existing clients would notice the swap.
        let messages = [
            serde_json::to_string(&Request::ListSites).unwrap(),
            serde_json::to_string(&Request::Locate { site: "lab".into(), y: vec![-50.0, -41.5] })
                .unwrap(),
        ];
        let hand = [
            {
                let mut out = Vec::new();
                crate::wire::v1::encode_request(&Request::ListSites, &mut out);
                String::from_utf8(out).unwrap()
            },
            {
                let mut out = Vec::new();
                crate::wire::v1::encode_request(
                    &Request::Locate { site: "lab".into(), y: vec![-50.0, -41.5] },
                    &mut out,
                );
                String::from_utf8(out).unwrap()
            },
        ];
        assert_eq!(messages, hand);
    }
}
